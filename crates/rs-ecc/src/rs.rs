//! Systematic Reed–Solomon encoding over GF(2⁸), plus the constant
//! diversification scheme of GlitchResistor (paper §VI-A): ENUM and return
//! values are replaced with RS parity words so that the minimum pairwise
//! Hamming distance between any two valid values is large, making it
//! unlikely that bit flips turn one valid value into another.

use crate::gf256::Gf256;

/// A Reed–Solomon encoder with a fixed number of parity symbols.
///
/// ```
/// use gd_rs_ecc::RsEncoder;
/// let rs = RsEncoder::new(4);
/// let codeword = rs.encode(&[0x00, 0x01]);
/// assert_eq!(codeword.len(), 6); // 2 message + 4 parity bytes
/// assert!(rs.check(&codeword));
/// ```
#[derive(Debug, Clone)]
pub struct RsEncoder {
    gf: Gf256,
    generator: Vec<u8>,
    nsym: usize,
}

impl RsEncoder {
    /// Creates an encoder producing `nsym` parity bytes.
    ///
    /// # Panics
    ///
    /// Panics if `nsym` is 0 or ≥ 255.
    pub fn new(nsym: usize) -> RsEncoder {
        assert!(nsym > 0 && nsym < 255, "parity length must be in 1..255");
        let gf = Gf256::new();
        // g(x) = Π (x − αⁱ) for i in 0..nsym.
        let mut generator = vec![1u8];
        for i in 0..nsym {
            generator = gf.poly_mul(&generator, &[1, gf.alpha_pow(i as u32)]);
        }
        RsEncoder { gf, generator, nsym }
    }

    /// Number of parity bytes appended per message.
    pub fn parity_len(&self) -> usize {
        self.nsym
    }

    /// The generator polynomial, highest-degree coefficient first.
    pub fn generator(&self) -> &[u8] {
        &self.generator
    }

    /// Computes the parity bytes for `msg` (polynomial remainder of
    /// `msg · xⁿ` by the generator).
    ///
    /// # Panics
    ///
    /// Panics if `msg.len() + nsym > 255` (code length bound).
    pub fn parity(&self, msg: &[u8]) -> Vec<u8> {
        assert!(msg.len() + self.nsym <= 255, "codeword exceeds GF(256) block length");
        let mut rem = vec![0u8; self.nsym];
        for &byte in msg {
            let factor = byte ^ rem[0];
            rem.rotate_left(1);
            rem[self.nsym - 1] = 0;
            if factor != 0 {
                for (r, &g) in rem.iter_mut().zip(self.generator[1..].iter()) {
                    *r ^= self.gf.mul(g, factor);
                }
            }
        }
        rem
    }

    /// Systematic encoding: message followed by parity.
    pub fn encode(&self, msg: &[u8]) -> Vec<u8> {
        let mut out = msg.to_vec();
        out.extend(self.parity(msg));
        out
    }

    /// Whether `codeword` is a valid codeword (all syndromes zero).
    pub fn check(&self, codeword: &[u8]) -> bool {
        self.syndromes(codeword).iter().all(|&s| s == 0)
    }

    /// The `nsym` syndromes of a codeword (non-zero ⇒ corrupted).
    pub fn syndromes(&self, codeword: &[u8]) -> Vec<u8> {
        (0..self.nsym).map(|i| self.gf.poly_eval(codeword, self.gf.alpha_pow(i as u32))).collect()
    }
}

/// Generates `count` diversified 32-bit constants, exactly as GlitchResistor
/// configures its ENUM rewriter: a 2-byte message (the ordinal, starting at
/// 1) with a 4-byte ECC, using the **parity bytes** as the program constant.
///
/// The resulting set has a minimum pairwise Hamming distance of at least 8
/// for any set size the tool meets in practice.
///
/// ```
/// use gd_rs_ecc::diversified_constants;
/// let values = diversified_constants(4);
/// assert_eq!(values.len(), 4);
/// // No duplicates, and far apart bit-wise:
/// for (i, a) in values.iter().enumerate() {
///     for b in &values[i + 1..] {
///         assert!((a ^ b).count_ones() >= 8);
///     }
/// }
/// ```
///
/// # Panics
///
/// Panics if `count` is 0 or exceeds the 2-byte message space (65 535).
pub fn diversified_constants(count: u32) -> Vec<u32> {
    assert!(count > 0, "at least one constant");
    assert!(count <= 0xFFFF, "2-byte message space exhausted");
    let rs = RsEncoder::new(4);
    (1..=count)
        .map(|i| {
            let msg = (i as u16).to_be_bytes();
            let parity = rs.parity(&msg);
            u32::from_be_bytes([parity[0], parity[1], parity[2], parity[3]])
        })
        .collect()
}

/// The minimum pairwise Hamming distance of a set of 32-bit values.
///
/// Returns `u32::MAX` for sets smaller than two.
pub fn min_pairwise_distance(values: &[u32]) -> u32 {
    let mut min = u32::MAX;
    for (i, a) in values.iter().enumerate() {
        for b in &values[i + 1..] {
            min = min.min((a ^ b).count_ones());
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_makes_valid_codewords() {
        let rs = RsEncoder::new(4);
        for msg in [[0u8, 1], [0xAB, 0xCD], [0xFF, 0xFF], [0, 0]] {
            let cw = rs.encode(&msg);
            assert!(rs.check(&cw), "codeword for {msg:?}");
        }
    }

    #[test]
    fn corruption_breaks_syndromes() {
        let rs = RsEncoder::new(4);
        let cw = rs.encode(&[0x12, 0x34]);
        for byte in 0..cw.len() {
            for bit in 0..8 {
                let mut bad = cw.clone();
                bad[byte] ^= 1 << bit;
                assert!(!rs.check(&bad), "single flip at {byte}:{bit} must be detected");
            }
        }
    }

    #[test]
    fn up_to_nsym_flips_detected() {
        // RS(n, k) with nsym parity symbols detects any ≤ nsym symbol errors.
        let rs = RsEncoder::new(4);
        let cw = rs.encode(&[0x55, 0xAA]);
        let mut bad = cw.clone();
        bad[0] ^= 0x01;
        bad[2] ^= 0x80;
        bad[4] ^= 0xFF;
        bad[5] ^= 0x10;
        assert!(!rs.check(&bad));
    }

    #[test]
    fn generator_has_roots_at_alpha_powers() {
        let rs = RsEncoder::new(6);
        let gf = Gf256::new();
        for i in 0..6 {
            assert_eq!(gf.poly_eval(rs.generator(), gf.alpha_pow(i)), 0);
        }
        assert_eq!(rs.generator().len(), 7);
        assert_eq!(rs.parity_len(), 6);
    }

    #[test]
    fn diversified_constants_distance_small_sets() {
        // Typical ENUM sizes: the paper claims a minimum pairwise Hamming
        // distance of 8 for its configuration.
        for count in [2u32, 3, 4, 8, 16, 64] {
            let values = diversified_constants(count);
            let d = min_pairwise_distance(&values);
            assert!(d >= 8, "count={count}: distance {d} < 8");
        }
    }

    #[test]
    fn diversified_constants_distance_from_zero_and_ones() {
        // Values should also sit far from the "lazy" constants 0 and !0 a
        // glitch drives registers toward.
        let values = diversified_constants(16);
        for v in &values {
            assert!(v.count_ones() >= 4, "{v:#010x} too close to zero");
            assert!(v.count_zeros() >= 4, "{v:#010x} too close to all-ones");
        }
    }

    #[test]
    fn diversified_constants_deterministic_and_distinct() {
        let a = diversified_constants(32);
        let b = diversified_constants(32);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "all constants distinct");
    }

    #[test]
    fn min_distance_helper() {
        assert_eq!(min_pairwise_distance(&[]), u32::MAX);
        assert_eq!(min_pairwise_distance(&[7]), u32::MAX);
        assert_eq!(min_pairwise_distance(&[0b1111, 0b1100]), 2);
    }

    #[test]
    #[should_panic(expected = "parity length")]
    fn zero_parity_rejected() {
        RsEncoder::new(0);
    }
}
