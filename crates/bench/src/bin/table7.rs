//! Regenerates Table VII: the qualitative comparison with prior
//! software-based glitching defenses. `--check` diffs the output against
//! `results/table7.txt`.

use std::process::ExitCode;

use glitch_resistor::related;

fn main() -> ExitCode {
    gd_bench::selfcheck::main("table7.txt", &[], || {
        gd_bench::report::heading("Table VII — software-based defense comparison");
        println!("{}", related::TABLE_HEADER);
        for row in related::comparison() {
            println!("{row}");
        }
    })
}
