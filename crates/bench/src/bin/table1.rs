//! Regenerates Table I: single-glitch scans (8 cycles × 9,801 parameter
//! combinations) against the three §V loop guards, with post-mortems.
//! A thin client of the campaign engine; `--check` diffs the output
//! against `results/table1.txt`.

use std::process::ExitCode;

fn main() -> ExitCode {
    gd_bench::selfcheck::main("table1.txt", &[], || {
        let result = gd_campaign::Engine::ephemeral()
            .run(&gd_campaign::CampaignSpec::table1())
            .expect("campaign runs");
        print!("{}", result.text);
    })
}
