//! Attack execution and parameter-space scans: the drivers behind the
//! paper's Tables I (single glitch), II (multi-glitch), and III (long
//! glitch).

use std::collections::BTreeMap;

use gd_emu::StopReason;
use gd_pipeline::{RunEnd, Window};
use gd_thumb::Reg;

use crate::device::Device;
use crate::model::{FaultModel, GlitchParams};

/// How an attempt decides it "won".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuccessCheck {
    /// Execution stopped at `bkpt #n` (§V assembly targets mark the
    /// loop-exit path this way).
    Bkpt(u8),
    /// Execution halted at the final `bkpt #0` with `r0` equal to this
    /// marker (§VII compiled firmware returns a success code from `main`).
    HaltWithR0(u32),
}

/// Everything needed to judge one glitch attempt.
#[derive(Debug, Clone, Copy)]
pub struct AttackSpec {
    /// Success criterion.
    pub success: SuccessCheck,
    /// Cycle budget per attempt (a still-spinning loop is *no effect*).
    pub max_cycles: u64,
}

/// Outcome of one glitch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackOutcome {
    /// The guarded code was reached: the glitch worked.
    Success,
    /// The firmware detected the glitch (GlitchResistor's `gr_detected`).
    Detected,
    /// The firmware is still looping / behaved normally.
    NoEffect,
    /// The core crashed (hard fault of any kind).
    Crash,
    /// The glitch browned the core out.
    Reset,
}

/// One finished attempt, with the pipeline for post-mortem inspection.
#[derive(Debug)]
pub struct Attempt {
    /// Classified outcome.
    pub outcome: AttackOutcome,
    /// The device state after the attempt.
    pub pipe: gd_pipeline::Pipeline,
}

/// Runs one glitch attempt against a fresh boot of `device`.
///
/// `boot` both seeds per-attempt mask noise and, when `nvm` is provided,
/// threads the non-volatile state (delay seed) from attempt to attempt.
pub fn run_attack(
    device: &Device,
    model: &FaultModel,
    params: GlitchParams,
    boot: u64,
    spec: &AttackSpec,
    nvm: Option<&mut Vec<u8>>,
) -> Attempt {
    let mut pipe = match &nvm {
        Some(state) if !state.is_empty() => device.boot_with_nvm(Some(state)),
        _ => device.boot(),
    };
    let mut injector = model.injector(params, boot);
    let end = pipe.run_with(spec.max_cycles, |w: &Window| injector(w));
    if let Some(state) = nvm {
        *state = Device::snapshot_nvm(&pipe);
    }
    let detected = device
        .detect_flag()
        .and_then(|addr| pipe.emu.mem.peek(addr, 4).ok())
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]) != 0)
        .unwrap_or(false);
    let outcome = match end {
        RunEnd::Stop { reason: StopReason::Bkpt(n), .. } => match spec.success {
            SuccessCheck::Bkpt(want) if n == want => AttackOutcome::Success,
            SuccessCheck::HaltWithR0(marker) if n == 0 && pipe.emu.cpu.reg(Reg::R0) == marker => {
                AttackOutcome::Success
            }
            _ if detected => AttackOutcome::Detected,
            _ => AttackOutcome::NoEffect,
        },
        RunEnd::Stop { .. } => {
            if detected {
                AttackOutcome::Detected
            } else {
                AttackOutcome::Crash
            }
        }
        RunEnd::Fault(_) => AttackOutcome::Crash,
        RunEnd::Reset => AttackOutcome::Reset,
        RunEnd::CycleLimit => {
            if detected {
                AttackOutcome::Detected
            } else {
                AttackOutcome::NoEffect
            }
        }
    };
    Attempt { outcome, pipe }
}

/// Counts per outcome, plus the Table I-style post-mortem histogram of a
/// chosen register among successes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellCounts {
    /// Attempts made.
    pub attempts: u64,
    /// Successful glitches.
    pub successes: u64,
    /// Detected attempts (hardened firmware only).
    pub detections: u64,
    /// Crashes (faults).
    pub crashes: u64,
    /// Brown-out resets.
    pub resets: u64,
    /// Comparator-register value → count, among successes.
    pub post_mortem: BTreeMap<u32, u64>,
}

impl CellCounts {
    fn record(&mut self, outcome: AttackOutcome, reg: Option<u32>) {
        self.attempts += 1;
        match outcome {
            AttackOutcome::Success => {
                self.successes += 1;
                if let Some(v) = reg {
                    *self.post_mortem.entry(v).or_default() += 1;
                }
            }
            AttackOutcome::Detected => self.detections += 1,
            AttackOutcome::Crash => self.crashes += 1,
            AttackOutcome::Reset => self.resets += 1,
            AttackOutcome::NoEffect => {}
        }
    }

    /// Success rate in percent.
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            100.0 * self.successes as f64 / self.attempts as f64
        }
    }

    /// Detections / (detections + successes) — the paper's detection rate.
    pub fn detection_rate(&self) -> f64 {
        let denom = self.detections + self.successes;
        if denom == 0 {
            0.0
        } else {
            100.0 * self.detections as f64 / denom as f64
        }
    }

    /// Merges another cell.
    pub fn merge(&mut self, other: &CellCounts) {
        self.attempts += other.attempts;
        self.successes += other.successes;
        self.detections += other.detections;
        self.crashes += other.crashes;
        self.resets += other.resets;
        for (k, v) in &other.post_mortem {
            *self.post_mortem.entry(*k).or_default() += v;
        }
    }
}

/// The full ±49% × ±49% grid of (width, offset) pairs — 9,801 points,
/// exactly the paper's per-cycle scan.
pub fn full_grid() -> Vec<(i8, i8)> {
    let mut grid = Vec::with_capacity(99 * 99);
    for width in -49i8..=49 {
        for offset in -49i8..=49 {
            grid.push((width, offset));
        }
    }
    grid
}

/// Scans the full grid at each glitch cycle in `cycles`, single glitches.
/// `post_reg` selects the register recorded in success post-mortems.
pub fn scan_single(
    device: &Device,
    model: &FaultModel,
    cycles: core::ops::Range<u32>,
    spec: &AttackSpec,
    post_reg: Option<Reg>,
) -> Vec<(u32, CellCounts)> {
    scan_grid(device, model, cycles, 1, spec, post_reg)
}

/// Grid points per worker chunk: one full width row of the 99×99 scan.
/// In-region attempts each boot the device, so a row is tens of
/// microseconds at minimum — coarse enough to amortize dispatch, fine
/// enough to split a scan across any worker count.
const GRID_CHUNK: usize = 99;

/// Scans the grid with a repeated (long) glitch of `repeat` cycles
/// starting at each cycle in `starts`.
///
/// The width×offset grid at each start cycle is fanned out across
/// [`gd_exec`] workers. Every attempt seeds its per-boot noise from a
/// *position-derived* boot counter (`start_index × grid + point_index`),
/// reproducing the serial implementation's sequential numbering exactly,
/// so the parallel scan is bit-for-bit identical to [`scan_grid_serial`]
/// at any `GD_THREADS`. Campaigns that thread NVM state between attempts
/// carry cross-attempt dependencies and deliberately do **not** route
/// through here (see `defense`/`search` callers).
pub fn scan_grid(
    device: &Device,
    model: &FaultModel,
    starts: core::ops::Range<u32>,
    repeat: u32,
    spec: &AttackSpec,
    post_reg: Option<Reg>,
) -> Vec<(u32, CellCounts)> {
    starts
        .enumerate()
        .map(|(start_idx, start)| {
            (start, scan_cell(device, model, start, start_idx as u64, repeat, spec, post_reg))
        })
        .collect()
}

/// Scans the full 99×99 grid for **one** start cycle of a larger scan.
///
/// `start_index` is the cell's position within that larger scan: per-boot
/// noise is seeded from `start_index × 9801 + point_index`, reproducing
/// the sequential boot numbering of a serial multi-cycle scan exactly.
/// [`scan_grid`] is simply this function mapped over its start range, so
/// a distributed driver (the campaign engine shards at cell granularity)
/// produces bytes identical to the monolithic scan.
pub fn scan_cell(
    device: &Device,
    model: &FaultModel,
    start: u32,
    start_index: u64,
    repeat: u32,
    spec: &AttackSpec,
    post_reg: Option<Reg>,
) -> CellCounts {
    let grid = full_grid();
    let boot_base = start_index * grid.len() as u64;
    let partials = gd_exec::par_map_chunks(&grid, GRID_CHUNK, |chunk| {
        let mut cell = CellCounts::default();
        for (j, &(width, offset)) in chunk.items.iter().enumerate() {
            let boot = boot_base + (chunk.start + j) as u64 + 1;
            // Out-of-region points cannot fault: count them as clean
            // attempts without booting (a 20× scan speedup).
            if model.severity(width, offset) == 0.0 {
                cell.record(AttackOutcome::NoEffect, None);
                continue;
            }
            let params = GlitchParams { ext_offset: start, repeat, width, offset };
            let attempt = run_attack(device, model, params, boot, spec, None);
            let reg = post_reg.map(|r| attempt.pipe.emu.cpu.reg(r));
            cell.record(attempt.outcome, reg);
        }
        cell
    });
    let mut cell = CellCounts::default();
    for partial in &partials {
        cell.merge(partial);
    }
    cell
}

/// The serial reference implementation of [`scan_grid`] — kept for the
/// differential tests that pin the parallel scan to it byte for byte.
pub fn scan_grid_serial(
    device: &Device,
    model: &FaultModel,
    starts: core::ops::Range<u32>,
    repeat: u32,
    spec: &AttackSpec,
    post_reg: Option<Reg>,
) -> Vec<(u32, CellCounts)> {
    let grid = full_grid();
    let mut out = Vec::new();
    let mut boot = 0u64;
    for start in starts {
        let mut cell = CellCounts::default();
        for &(width, offset) in &grid {
            boot += 1;
            if model.severity(width, offset) == 0.0 {
                cell.record(AttackOutcome::NoEffect, None);
                continue;
            }
            let params = GlitchParams { ext_offset: start, repeat, width, offset };
            let attempt = run_attack(device, model, params, boot, spec, None);
            let reg = post_reg.map(|r| attempt.pipe.emu.cpu.reg(r));
            cell.record(attempt.outcome, reg);
        }
        out.push((start, cell));
    }
    out
}

/// The multi-glitch experiment (§V-C, Table II): the firmware raises the
/// trigger twice (two identical loops); the same glitch parameters apply
/// after each trigger. *Partial* means the first loop was escaped but not
/// the second; *full* means both.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiCell {
    /// Attempts made.
    pub attempts: u64,
    /// First glitch succeeded, second failed.
    pub partial: u64,
    /// Both glitches succeeded.
    pub full: u64,
}

impl MultiCell {
    /// Merges another cell (counts are additive).
    pub fn merge(&mut self, other: &MultiCell) {
        self.attempts += other.attempts;
        self.partial += other.partial;
        self.full += other.full;
    }
}

/// Runs the multi-glitch scan. The firmware must raise the trigger before
/// each loop; reaching the second trigger proves the first glitch worked.
///
/// Parallelized like [`scan_grid`]: the grid fans out across workers
/// with position-derived boot numbering, and per-chunk cells merge in
/// input order, so output matches the serial loop exactly.
pub fn scan_multi(
    device: &Device,
    model: &FaultModel,
    cycles: core::ops::Range<u32>,
    spec: &AttackSpec,
) -> Vec<(u32, MultiCell)> {
    cycles
        .enumerate()
        .map(|(cycle_idx, cycle)| {
            (cycle, scan_multi_cell(device, model, cycle, cycle_idx as u64, spec))
        })
        .collect()
}

/// One cell of a multi-glitch scan, with the same position-derived boot
/// numbering contract as [`scan_cell`]: `cycle_index` is the cell's
/// position within the enclosing scan.
pub fn scan_multi_cell(
    device: &Device,
    model: &FaultModel,
    cycle: u32,
    cycle_index: u64,
    spec: &AttackSpec,
) -> MultiCell {
    let grid = full_grid();
    let boot_base = cycle_index * grid.len() as u64;
    let partials = gd_exec::par_map_chunks(&grid, GRID_CHUNK, |chunk| {
        let mut cell = MultiCell { attempts: 0, partial: 0, full: 0 };
        for (j, &(width, offset)) in chunk.items.iter().enumerate() {
            let boot = boot_base + (chunk.start + j) as u64 + 1;
            cell.attempts += 1;
            if model.severity(width, offset) == 0.0 {
                continue;
            }
            let params = GlitchParams::single(cycle, width, offset);
            let attempt = run_attack(device, model, params, boot, spec, None);
            let triggers = attempt.pipe.trigger_cycles().len();
            match attempt.outcome {
                AttackOutcome::Success => cell.full += 1,
                _ if triggers >= 2 => cell.partial += 1,
                _ => {}
            }
        }
        cell
    });
    let mut cell = MultiCell { attempts: 0, partial: 0, full: 0 };
    for partial in &partials {
        cell.merge(partial);
    }
    cell
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets;

    fn quick_spec() -> AttackSpec {
        AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: 600 }
    }

    #[test]
    fn unglitched_loop_never_exits() {
        let dev = Device::from_asm(targets::WHILE_NOT_A).unwrap();
        let model = FaultModel::default();
        // (0, 0) is outside the violation region.
        let attempt =
            run_attack(&dev, &model, GlitchParams::single(0, 0, 0), 1, &quick_spec(), None);
        assert_eq!(attempt.outcome, AttackOutcome::NoEffect);
    }

    #[test]
    fn some_grid_point_succeeds_against_while_not_a() {
        let dev = Device::from_asm(targets::WHILE_NOT_A).unwrap();
        let model = FaultModel::default();
        let scans = scan_single(&dev, &model, 4..6, &quick_spec(), Some(Reg::R3));
        let total: u64 = scans.iter().map(|(_, c)| c.successes).sum();
        assert!(total > 0, "the cmp/branch cycles must be glitchable");
        for (_, cell) in &scans {
            assert_eq!(cell.attempts, 9801);
        }
    }

    #[test]
    fn post_mortem_histogram_populated_on_success() {
        let dev = Device::from_asm(targets::WHILE_NOT_A).unwrap();
        let model = FaultModel::default();
        let scans = scan_single(&dev, &model, 2..4, &quick_spec(), Some(Reg::R3));
        let hist: u64 = scans.iter().flat_map(|(_, c)| c.post_mortem.values()).sum();
        let succ: u64 = scans.iter().map(|(_, c)| c.successes).sum();
        assert_eq!(hist, succ, "each success records the comparator register");
    }

    /// The tentpole guarantee on the rig side: the parallel grid scan —
    /// position-derived boot numbering included — reproduces the serial
    /// scan exactly, post-mortem histograms and all.
    #[test]
    fn parallel_scan_matches_serial() {
        let dev = Device::from_asm(targets::WHILE_NOT_A).unwrap();
        let model = FaultModel::default();
        let par = scan_grid(&dev, &model, 3..6, 1, &quick_spec(), Some(Reg::R3));
        let ser = scan_grid_serial(&dev, &model, 3..6, 1, &quick_spec(), Some(Reg::R3));
        assert_eq!(par, ser);
    }

    /// Same guarantee for the multi-glitch scan, against an inline serial
    /// re-derivation (the production serial path no longer exists).
    #[test]
    fn parallel_multi_scan_matches_serial() {
        let dev = Device::from_asm(&targets::while_not_a_doubled()).unwrap();
        let model = FaultModel::default();
        let spec = AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: 1_200 };
        let par = scan_multi(&dev, &model, 4..6, &spec);

        let grid = full_grid();
        let mut ser = Vec::new();
        let mut boot = 0u64;
        for cycle in 4..6u32 {
            let mut cell = MultiCell::default();
            for &(width, offset) in &grid {
                boot += 1;
                cell.attempts += 1;
                if model.severity(width, offset) == 0.0 {
                    continue;
                }
                let params = GlitchParams::single(cycle, width, offset);
                let attempt = run_attack(&dev, &model, params, boot, &spec, None);
                let triggers = attempt.pipe.trigger_cycles().len();
                match attempt.outcome {
                    AttackOutcome::Success => cell.full += 1,
                    _ if triggers >= 2 => cell.partial += 1,
                    _ => {}
                }
            }
            ser.push((cycle, cell));
        }
        assert_eq!(par, ser);
    }

    #[test]
    fn cell_counts_rates() {
        let mut c = CellCounts::default();
        c.record(AttackOutcome::Success, Some(8));
        c.record(AttackOutcome::Detected, None);
        c.record(AttackOutcome::Detected, None);
        c.record(AttackOutcome::NoEffect, None);
        assert_eq!(c.attempts, 4);
        assert!((c.success_rate() - 25.0).abs() < 1e-9);
        assert!((c.detection_rate() - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(c.post_mortem[&8], 1);
    }
}
