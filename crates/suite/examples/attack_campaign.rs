//! An attacker's-eye view: tune glitch parameters against an unprotected
//! loop guard until the attack is 100% reliable, exactly like the paper's
//! §V-B experiment, then replay the found parameters.
//!
//! ```text
//! cargo run --release --example attack_campaign
//! ```

use gd_chipwhisperer::{
    find_reliable_params, run_attack, targets, AttackOutcome, AttackSpec, Device, FaultModel,
    SuccessCheck,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = FaultModel::default();
    let spec = AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: 600 };

    println!("target: the paper's `while(a)` guard (val != 0 comparator)\n");
    let device = Device::from_asm(targets::WHILE_A)?;

    // Phase 1-3: blanket sweep → per-cycle refinement → 10/10 verification.
    let report = find_reliable_params(&device, &model, &spec, 10);
    println!("search attempts : {}", report.attempts);
    println!("search successes: {}", report.successes);
    println!("bench wall-clock: {:.1} minutes at 95 ms/attempt", report.minutes());
    let Some(params) = report.found else {
        println!("no 10/10 parameter set found");
        return Ok(());
    };
    println!(
        "found           : glitch cycle {} width {}% offset {}%\n",
        params.ext_offset, params.width, params.offset
    );

    // Replay: the tuned parameters keep working, like a productized exploit
    // (the XBOX reset glitch shipped with an auto-retry for the misses).
    let mut wins = 0;
    let trials = 50;
    for boot in 10_000..10_000 + trials {
        let attempt = run_attack(&device, &model, params, boot, &spec, None);
        if attempt.outcome == AttackOutcome::Success {
            wins += 1;
        }
    }
    println!("replaying tuned parameters: {wins}/{trials} successful glitches");
    Ok(())
}
