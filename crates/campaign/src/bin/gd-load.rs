//! `gd-load` — a synthetic load generator with SLO assertions for the
//! campaign service.
//!
//! ```text
//! gd-load [--clients N] [--rounds M] [--spawn-workers K]
//!         [--p99-ms X] [--min-rps Y] [--require-fleet-metrics]
//!         [--addr HOST:PORT]
//! ```
//!
//! Without `--addr` it spins up an in-process [`Server`] (and, with
//! `--spawn-workers K`, `K` in-process [`WorkerServer`]s feeding it
//! through a fleet dispatcher) on ephemeral loopback ports, so a single
//! command exercises the whole stack. `N` client threads each submit
//! `M` tiny campaigns — every client under its own `x-gd-client`
//! identity, cycling priorities — and poll them to completion, timing
//! every control-plane round trip.
//!
//! The run **fails (exit 1)** when an SLO is missed:
//!
//! * p99 control-plane latency over all requests must stay at or under
//!   `--p99-ms` (default 250 ms), and
//! * sustained control-plane throughput must reach `--min-rps`
//!   (default 50 requests/second),
//! * every submitted campaign must finish `done`, and
//! * with `--require-fleet-metrics`, the scraped `/metrics` must expose
//!   the `gd_fleet_*` families (proof the fleet path actually ran).

use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gd_campaign::fleet::WorkerServer;
use gd_campaign::http::{request_timeout, request_timeout_with_headers};
use gd_campaign::json;
use gd_campaign::service::{Server, ServerConfig};

/// Per-request deadline: loopback control-plane requests are in-memory
/// lookups, so anything near this is already an SLO disaster.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// Pause between status polls — long enough not to turn the poll loop
/// into a busy spin, short enough to resolve campaign completion fast.
const POLL_PAUSE: Duration = Duration::from_millis(5);

/// Pause before retrying a `429` submit.
const REJECT_PAUSE: Duration = Duration::from_millis(50);

/// One campaign's worth of load: a single fig2 shard, the smallest unit
/// the engine shards to, so the queue turns over quickly.
const LOAD_SPEC: &str = r#"{"version":1,"workload":{"kind":"fig2"},"shards":[0,1]}"#;

struct Options {
    clients: usize,
    rounds: usize,
    spawn_workers: usize,
    p99_ms: f64,
    min_rps: f64,
    require_fleet_metrics: bool,
    addr: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: gd-load [--clients N] [--rounds M] [--spawn-workers K]\n\
         \x20              [--p99-ms X] [--min-rps Y] [--require-fleet-metrics]\n\
         \x20              [--addr HOST:PORT]"
    );
    ExitCode::from(2)
}

/// Pulls `--flag value` out of `args`, if present.
fn take_option(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            Ok(Some(args.remove(i)))
        }
        Some(_) => Err(format!("{flag} requires a value")),
    }
}

fn take_number<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
    default: T,
) -> Result<T, String> {
    match take_option(args, flag)? {
        None => Ok(default),
        Some(n) => n.parse().map_err(|_| format!("{flag} {n}: not a number")),
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("gd-load: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_options() -> Result<Option<Options>, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let options = Options {
        clients: take_number(&mut args, "--clients", 4)?,
        rounds: take_number(&mut args, "--rounds", 3)?,
        spawn_workers: take_number(&mut args, "--spawn-workers", 0)?,
        p99_ms: take_number(&mut args, "--p99-ms", 250.0)?,
        min_rps: take_number(&mut args, "--min-rps", 50.0)?,
        require_fleet_metrics: take_flag(&mut args, "--require-fleet-metrics"),
        addr: take_option(&mut args, "--addr")?,
    };
    if !args.is_empty() {
        return Ok(None);
    }
    if options.clients == 0 || options.rounds == 0 {
        return Err("--clients and --rounds must be at least 1".into());
    }
    Ok(Some(options))
}

fn run() -> Result<ExitCode, String> {
    let Some(options) = parse_options()? else { return Ok(usage()) };
    if options.addr.is_some() && options.spawn_workers > 0 {
        return Err("--spawn-workers needs the in-process server (drop --addr)".into());
    }

    // Target: the caller's server, or a full in-process stack.
    let mut workers: Vec<WorkerServer> = Vec::new();
    let mut server: Option<Server> = None;
    let addr = match &options.addr {
        Some(addr) => addr.clone(),
        None => {
            for _ in 0..options.spawn_workers {
                workers.push(WorkerServer::start("127.0.0.1:0")?);
            }
            let config = ServerConfig {
                // Sized so the load itself cannot trip queue-full 429s;
                // backpressure behavior has its own tests.
                queue_limit: options.clients * options.rounds + 4,
                workers: workers.iter().map(|w| w.addr().to_string()).collect(),
                ..ServerConfig::default()
            };
            let started = Server::start(config)?;
            let addr = started.addr().to_string();
            server = Some(started);
            addr
        }
    };
    println!(
        "gd-load: {} clients x {} rounds against {addr} ({} spawned workers)",
        options.clients,
        options.rounds,
        workers.len()
    );

    // Every control-plane round trip's latency, in milliseconds.
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..options.clients {
            let addr = &addr;
            let latencies = &latencies;
            let errors = &errors;
            scope.spawn(move || {
                if let Err(e) = drive_client(client, options.rounds, addr, latencies) {
                    errors.lock().unwrap().push(format!("client {client}: {e}"));
                }
            });
        }
    });
    let elapsed = started.elapsed();

    // Scrape before teardown so the SLO verdict and the metrics proof
    // come from the same live process.
    let (_, metrics) = request_timeout(&addr, "GET", "/metrics", None, REQUEST_TIMEOUT)?;

    if options.addr.is_none() {
        if let Some(server) = server {
            server.shutdown()?;
        }
        for worker in workers {
            worker.shutdown()?;
        }
    }

    let errors = errors.into_inner().unwrap();
    if !errors.is_empty() {
        return Err(format!("{} client(s) failed: {}", errors.len(), errors.join("; ")));
    }
    report(&options, &latencies.into_inner().unwrap(), elapsed, &metrics)
}

/// One synthetic client: submit, poll to completion, repeat.
fn drive_client(
    client: usize,
    rounds: usize,
    addr: &str,
    latencies: &Mutex<Vec<f64>>,
) -> Result<(), String> {
    let identity = format!("load-client-{client}");
    for round in 0..rounds {
        // Cycle priorities so all three queues see traffic.
        let priority = ["high", "normal", "low"][(client + round) % 3];
        let headers = [("x-gd-client", identity.as_str()), ("x-gd-priority", priority)];
        let id = loop {
            let t = Instant::now();
            let (status, _, body) = request_timeout_with_headers(
                addr,
                "POST",
                "/campaigns",
                &headers,
                Some(LOAD_SPEC),
                REQUEST_TIMEOUT,
            )?;
            latencies.lock().unwrap().push(ms(t));
            match status {
                202 => break submitted_id(&body)?,
                429 => std::thread::sleep(REJECT_PAUSE),
                s => return Err(format!("submit answered {s}: {body}")),
            }
        };
        loop {
            let t = Instant::now();
            let (status, body) =
                request_timeout(addr, "GET", &format!("/campaigns/{id}"), None, REQUEST_TIMEOUT)?;
            latencies.lock().unwrap().push(ms(t));
            if status != 200 {
                return Err(format!("status poll answered {status}: {body}"));
            }
            if body.contains(r#""state":"done""#) {
                break;
            }
            if body.contains(r#""state":"failed""#) {
                return Err(format!("campaign {id} failed: {body}"));
            }
            std::thread::sleep(POLL_PAUSE);
        }
    }
    Ok(())
}

fn submitted_id(body: &str) -> Result<u64, String> {
    json::parse(body)
        .ok()
        .and_then(|v| v.get("id").and_then(json::Json::as_u64))
        .ok_or_else(|| format!("submit response has no id: {body}"))
}

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Prints the latency/throughput summary and turns SLO misses into a
/// failed exit.
fn report(
    options: &Options,
    latencies: &[f64],
    elapsed: Duration,
    metrics: &str,
) -> Result<ExitCode, String> {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let rps = sorted.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    let campaigns = options.clients * options.rounds;
    println!(
        "gd-load: {campaigns} campaigns done in {:.2}s; {} control-plane requests, \
         p50 {p50:.2} ms, p99 {p99:.2} ms, {rps:.1} req/s",
        elapsed.as_secs_f64(),
        sorted.len(),
    );

    let mut violations = Vec::new();
    if p99 > options.p99_ms {
        violations.push(format!("p99 {p99:.2} ms exceeds the {:.2} ms SLO", options.p99_ms));
    }
    if rps < options.min_rps {
        violations.push(format!("{rps:.1} req/s is under the {:.1} req/s SLO", options.min_rps));
    }
    for family in ["gd_http_requests_total", "gd_campaign_queue_depth"] {
        if !metrics.contains(family) {
            violations.push(format!("/metrics is missing the {family} family"));
        }
    }
    if options.require_fleet_metrics {
        for family in ["gd_fleet_workers_live", "gd_fleet_shards_dispatched_total"] {
            if !metrics.contains(family) {
                violations.push(format!("/metrics is missing the {family} family"));
            }
        }
    }
    if violations.is_empty() {
        println!(
            "gd-load: SLOs met (p99 {p99:.2} ms <= {:.2} ms, {rps:.1} req/s >= {:.1})",
            options.p99_ms, options.min_rps
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &violations {
            eprintln!("gd-load: SLO VIOLATION: {v}");
        }
        Err(format!("{} SLO violation(s)", violations.len()))
    }
}
