//! The target memory map: an STM32F0-style layout.
//!
//! | Region | Base | Size | Holds |
//! |---|---|---|---|
//! | flash  | `0x0800_0000` | 60 KiB | `.text` (code + literal pools) |
//! | nvm    | `0x0800_F000` | 4 KiB  | non-volatile data (the delay seed); writable but *slow* |
//! | sram   | `0x2000_0000` | 14 KiB | `.data`, `.bss`, stack |
//! | shadow | `0x2000_3800` | 2 KiB  | integrity shadows (`*__integrity`), physically separated from their primaries |
//! | gpio   | `0x4800_0000` | 1 KiB  | trigger port (writes observable by the glitcher) |
//!
//! The *shadow* region realizes the paper's requirement that integrity
//! copies are "allocated in a separate region of memory to ensure that
//! [they are] not physically co-located with the initial variable"
//! (§VI-B-a). The *nvm* region gives flash-seed writes somewhere to go; the
//! pipeline model charges them the documented multi-thousand-cycle cost.

/// Flash (code) base address.
pub const FLASH_BASE: u32 = 0x0800_0000;
/// Flash size in bytes.
pub const FLASH_SIZE: u32 = 0xF000;
/// Non-volatile data base (top flash page).
pub const NVM_BASE: u32 = 0x0800_F000;
/// Non-volatile data size.
pub const NVM_SIZE: u32 = 0x1000;
/// SRAM base address.
pub const SRAM_BASE: u32 = 0x2000_0000;
/// SRAM size available for `.data`/`.bss`/stack.
pub const SRAM_SIZE: u32 = 0x3800;
/// Shadow-region base (second SRAM bank).
pub const SHADOW_BASE: u32 = 0x2000_3800;
/// Shadow-region size.
pub const SHADOW_SIZE: u32 = 0x800;
/// Initial stack pointer (top of primary SRAM).
pub const STACK_TOP: u32 = SRAM_BASE + SRAM_SIZE;
/// GPIO (trigger) port base.
pub const GPIO_BASE: u32 = 0x4800_0000;
/// GPIO region size.
pub const GPIO_SIZE: u32 = 0x400;
/// The output-data register the trigger writes (GPIOA ODR).
pub const GPIO_ODR: u32 = GPIO_BASE + 0x14;
/// APB peripheral window (RCC, USART, ADC, DMA, EXTI, timers).
pub const PERIPH_BASE: u32 = 0x4000_0000;
/// APB peripheral window size.
pub const PERIPH_SIZE: u32 = 0x0002_2000;
/// System control space (SysTick, NVIC).
pub const SCS_BASE: u32 = 0xE000_E000;
/// System control space size.
pub const SCS_SIZE: u32 = 0x1000;

/// Section a global is assigned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// Initialized RAM data.
    Data,
    /// Zero-initialized RAM data.
    Bss,
    /// Integrity shadows.
    Shadow,
    /// Non-volatile (slow-write) data.
    Nvm,
}

/// Assigns a global to a section by the conventions shared with
/// `glitch-resistor`: `*__integrity` shadows go to [`Section::Shadow`],
/// `__gr_nv_*` to [`Section::Nvm`], everything else to `.data`/`.bss` by
/// initializer.
pub fn section_of(name: &str, init: i64) -> Section {
    if name.ends_with("__integrity") {
        Section::Shadow
    } else if name.starts_with("__gr_nv_") {
        Section::Nvm
    } else if init == 0 {
        Section::Bss
    } else {
        Section::Data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the layout invariants
    fn regions_do_not_overlap() {
        assert!(FLASH_BASE + FLASH_SIZE <= NVM_BASE);
        assert!(SRAM_BASE + SRAM_SIZE <= SHADOW_BASE);
        assert_eq!(STACK_TOP, SHADOW_BASE, "stack tops out below the shadow bank");
    }

    #[test]
    fn section_assignment() {
        assert_eq!(section_of("tick", 0), Section::Bss);
        assert_eq!(section_of("tick", 5), Section::Data);
        assert_eq!(section_of("tick__integrity", -6), Section::Shadow);
        assert_eq!(section_of("__gr_nv_seed", 0), Section::Nvm);
    }
}
