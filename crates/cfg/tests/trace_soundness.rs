//! Trace soundness: every `(pc → pc')` transition an *unfaulted*
//! emulator run performs must be an edge the recovered CFG explains.
//!
//! This is the foundational property under the agreement harness — if
//! honest execution already escapes the graph, the glitch-reachability
//! verdicts built on it mean nothing. The property runs over every
//! Table IV defense configuration of `firmware::boot` (picked by the
//! deterministic case harness) and over the ingest demo under wide
//! decode.

use gd_cfg::recover;
use gd_emu::{StepOutcome, StopReason};
use glitch_resistor::{harden, Config as GrConfig, Defenses};

/// Generous step bound; the boot fixture finishes in a few hundred
/// steps even fully hardened, and the demo in a couple dozen.
const MAX_STEPS: u64 = 100_000;

/// Steps `image` from reset to its stop, asserting every transition is
/// explained by the recovered graph.
fn assert_trace_covered(image: &gd_backend::FirmwareImage, cfg: gd_emu::Config, label: &str) {
    let g = recover(image, cfg);
    let mut emu = image.boot_emu();
    emu.cfg = cfg;
    let mut steps = 0u64;
    loop {
        assert!(steps < MAX_STEPS, "{label}: unfaulted run did not stop");
        steps += 1;
        match emu.step() {
            Ok(StepOutcome::Step(s)) => {
                assert!(
                    g.has_transition(s.addr, s.next_pc),
                    "{label}: transition {:#010x} -> {:#010x} ({:?}, branched={}) \
                     is not a CFG edge",
                    s.addr,
                    s.next_pc,
                    s.instr,
                    s.branched,
                );
            }
            Ok(StepOutcome::Stop { reason, addr }) => {
                // The trace ends at a stop the graph also knows about.
                assert!(
                    matches!(reason, StopReason::Bkpt(_)),
                    "{label}: unexpected stop {reason:?} at {addr:#010x}"
                );
                break;
            }
            Err(f) => panic!("{label}: unfaulted run faulted: {f:?}"),
        }
    }
}

#[test]
fn boot_traces_are_cfg_paths_at_every_table4_config() {
    let configs: Vec<(&str, Defenses)> = vec![
        ("None", Defenses::NONE),
        ("Branches", Defenses::BRANCHES),
        ("Delay", Defenses::DELAY),
        ("Integrity", Defenses::INTEGRITY),
        ("Loops", Defenses::LOOPS),
        ("Returns", Defenses::RETURNS),
        ("All\\Delay", Defenses::ALL_EXCEPT_DELAY),
        ("All", Defenses::ALL),
    ];
    // One property case per configuration: the case harness picks the
    // config from its deterministic stream, so a failure report names
    // the reproducing case index.
    gd_exec::check::cases(configs.len() as u64, "boot trace is a CFG path", |rng| {
        let (name, defenses) = configs[(rng.u32() as usize) % configs.len()];
        let mut m = gd_firmware::boot();
        harden(&mut m, &GrConfig::new(defenses));
        let image = gd_backend::compile(&m, "main").expect("boot lowers");
        assert_trace_covered(&image, gd_emu::Config::default(), name);
    });
}

#[test]
fn ingest_demo_trace_is_a_cfg_path() {
    let ing = gd_ingest::ingest_bin(&gd_ingest::testimg::demo_bin(), gd_ingest::testimg::DEMO_BASE)
        .expect("demo ingests");
    let cfg = gd_emu::Config { wide: true, ..gd_emu::Config::default() };
    assert_trace_covered(&ing.image, cfg, "ingest demo");
}
