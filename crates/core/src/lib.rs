//! # glitch-resistor — automated software-only glitching defenses
//!
//! A from-scratch reproduction of **GlitchResistor**, the defense tool of
//! *Glitching Demystified* (DSN 2021, §VI). Hardware fault injection
//! ("glitching") can skip a security-critical branch even in bug-free code;
//! GlitchResistor rewrites a program at compile time so that no *single*
//! glitch can do so, a multi-glitch is improbable, and failed attempts are
//! *detected*.
//!
//! Defenses (all independently selectable, see [`Defenses`]):
//!
//! | Defense | Paper | What it does |
//! |---|---|---|
//! | [`BranchDuplication`] | §VI-B-b | re-checks every taken branch with a complemented comparison |
//! | [`LoopHardening`] | §VI-B-b | the same, on loop-guard exit edges |
//! | [`DataIntegrity`] | §VI-B-a | complement shadow copies of sensitive globals |
//! | [`RandomDelay`] | §VI-1 | LCG-driven busy-wait before every branch |
//! | [`ReturnCodes`] | §VI-A-b | Reed–Solomon return values for constant-returning functions |
//! | [`EnumRewriter`] | §VI-A-a | Reed–Solomon values for uninitialized enums |
//!
//! The whole pipeline in one call:
//!
//! ```
//! use gd_ir::parse_module;
//! use glitch_resistor::{harden, Config, Defenses};
//!
//! let mut module = parse_module(
//!     "fn @guard(%a: i32) -> i32 {\n\
//!      entry:\n  %c = icmp eq i32 %a, 0\n  br %c, ok, no\n\
//!      ok:\n  ret i32 1\n\
//!      no:\n  ret i32 0\n}\n",
//! )?;
//! let report = harden(&mut module, &Config::new(Defenses::ALL));
//! // The guard's branch plus the branches of the injected runtime itself.
//! assert!(report.branches_instrumented >= 1);
//! assert!(module.func("gr_detected").is_some(), "runtime linked in");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod config;
mod pass;
mod passes;
pub mod related;
pub mod runtime;

pub use config::{Config, Defenses, DelayScope};
pub use pass::{
    clone_chain, detect_trampoline, is_runtime_fn, retarget_phis, run_pass, split_edge, EdgeArm,
    Pass, PassReport, Report, DELAY_FN, DETECT_FN, SEED_INIT_FN,
};
pub use passes::branches::{BranchDuplication, LoopHardening};
pub use passes::delay::RandomDelay;
pub use passes::enums::EnumRewriter;
pub use passes::integrity::{DataIntegrity, INTEGRITY_SUFFIX};
pub use passes::returns::{return_code_candidates, ReturnCodes};
pub use runtime::add_runtime;

use gd_ir::Module;

/// Runs the full GlitchResistor pipeline over `module` with the selected
/// defenses, adding the runtime when any instrumentation needs it.
///
/// Pass order follows the paper's tooling: constant diversification first
/// (source-level in the paper), then data integrity, then control-flow
/// redundancy, then random delays — so the delay pass also covers the
/// blocks the other passes introduced, and the runtime itself is hardened
/// by the redundancy passes.
pub fn harden(module: &mut Module, config: &Config) -> Report {
    harden_with_reports(module, config).0
}

/// [`harden`], additionally returning the per-pass attribution of the
/// total counts, in pipeline order. Each pass runs against a fresh
/// [`Report`]; the total is their [`Report::merge`], so module-level
/// counts (like `enums_rewritten`) stay attributable even on
/// multi-function modules. Every pass output is verified in debug builds
/// (see [`run_pass`]).
pub fn harden_with_reports(module: &mut Module, config: &Config) -> (Report, Vec<PassReport>) {
    let mut total = Report::default();
    let mut passes = Vec::new();
    let d = config.defenses;
    if !d.any() {
        return (total, passes);
    }
    let mut run = |pass: &dyn Pass, module: &mut Module| {
        let pr = run_pass(pass, module, config);
        total.merge(&pr.counts);
        passes.push(pr);
    };
    if d.enums {
        run(&EnumRewriter, module);
    }
    if d.returns {
        run(&ReturnCodes, module);
    }
    // The runtime goes in before the redundancy passes so they instrument
    // it too (the paper instruments the seed-init code).
    add_runtime(module, config);
    #[cfg(debug_assertions)]
    gd_ir::verify_module(module).expect("runtime injection produces valid IR");
    if d.integrity {
        run(&DataIntegrity, module);
    }
    if d.branches {
        run(&BranchDuplication, module);
    }
    if d.loops {
        run(&LoopHardening, module);
    }
    if d.delay {
        let entry = module
            .func("main")
            .map(|f| f.name.clone())
            .or_else(|| module.funcs.first().map(|f| f.name.clone()));
        let pass = match entry.as_deref() {
            Some("main") => RandomDelay::with_entry("main"),
            _ => RandomDelay::default(),
        };
        run(&pass, module);
    }
    (total, passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_ir::{parse_module, print_module, verify_module, Interpreter, RtVal};

    const FIRMWARE: &str = "
enum Status { FAILURE, SUCCESS }
global @tick : i32 = 0 sensitive

fn @get_status(%sig: i32) -> i32 {
entry:
  %ok = icmp eq i32 %sig, 0x1234
  br %ok, good, bad
good:
  ret i32 1
bad:
  ret i32 0
}

fn @main(%sig: i32) -> i32 {
entry:
  %p = globaladdr @tick
  %t = load i32, %p
  %t2 = add i32 %t, 1
  store i32 %t2, %p
  %r = call i32 @get_status(%sig)
  %c = icmp eq i32 %r, 1
  br %c, boot, halt
boot:
  ret i32 100
halt:
  ret i32 200
}
";

    #[test]
    fn full_pipeline_verifies_and_preserves_semantics() {
        let mut m = parse_module(FIRMWARE).unwrap();
        let report = harden(&mut m, &Config::new(Defenses::ALL));
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        assert!(report.branches_instrumented >= 2);
        assert!(report.loads_checked >= 1);
        assert!(report.stores_shadowed >= 1);
        assert!(report.delays_injected >= 2);
        assert_eq!(report.returns_rewritten, 1);
        assert_eq!(report.enums_rewritten, 1);

        for (sig, want) in [(0x1234i64, 100i64), (99, 200)] {
            let mut interp = Interpreter::new(&m);
            let mut detected = false;
            let r = interp
                .run("main", &[RtVal::Int(sig)], &mut |n, _| {
                    detected |= n == "gr_detected";
                    RtVal::Int(0)
                })
                .unwrap();
            assert_eq!(r, RtVal::Int(want), "main({sig:#x})");
            assert!(!detected, "no false detections for main({sig:#x})");
        }
    }

    #[test]
    fn each_defense_alone_verifies() {
        for (name, d) in [
            ("branches", Defenses::BRANCHES),
            ("loops", Defenses::LOOPS),
            ("integrity", Defenses::INTEGRITY),
            ("delay", Defenses::DELAY),
            ("returns", Defenses::RETURNS),
            ("enums", Defenses::ENUMS),
            ("all-except-delay", Defenses::ALL_EXCEPT_DELAY),
        ] {
            let mut m = parse_module(FIRMWARE).unwrap();
            harden(&mut m, &Config::new(d));
            verify_module(&m).unwrap_or_else(|e| panic!("{name}: {e}\n{}", print_module(&m)));
        }
    }

    #[test]
    fn per_pass_counts_survive_multi_function_modules() {
        // FIRMWARE has two functions; module-level work (the enum rewrite)
        // must be attributed once, not once per function, and the per-pass
        // breakdown must merge back to exactly the total.
        let mut m = parse_module(FIRMWARE).unwrap();
        let (total, passes) = harden_with_reports(&mut m, &Config::new(Defenses::ALL));

        let by_name = |name: &str| {
            passes
                .iter()
                .find(|p| p.pass == name)
                .unwrap_or_else(|| panic!("pass `{name}` ran"))
                .counts
        };
        assert_eq!(by_name("enum-rewriter").enums_rewritten, 1, "one enum, two functions");
        assert_eq!(by_name("return-codes").returns_rewritten, 1);
        assert!(by_name("branch-duplication").branches_instrumented >= 2);
        assert!(by_name("data-integrity").stores_shadowed >= 1);
        assert!(by_name("random-delay").delays_injected >= 2);

        // Each counter belongs to exactly one pass: merging the breakdown
        // reproduces the total, field for field.
        let mut merged = Report::default();
        for p in &passes {
            merged.merge(&p.counts);
        }
        assert_eq!(merged, total, "per-pass reports merge back to the total");

        // And no counter leaked into a pass that does not own it.
        assert_eq!(by_name("enum-rewriter").branches_instrumented, 0);
        assert_eq!(by_name("branch-duplication").enums_rewritten, 0);
    }

    #[test]
    fn passes_annotate_what_they_protected() {
        let mut m = parse_module(FIRMWARE).unwrap();
        let (report, _) = harden_with_reports(&mut m, &Config::new(Defenses::ALL));
        let branch_checks: usize = m.funcs.iter().map(|f| f.guards.branch_checks.len()).sum();
        let loop_checks: usize = m.funcs.iter().map(|f| f.guards.loop_checks.len()).sum();
        let shadowed: usize = m.funcs.iter().map(|f| f.guards.shadowed_stores.len()).sum();
        let checked: usize = m.funcs.iter().map(|f| f.guards.checked_loads.len()).sum();
        assert_eq!(branch_checks, report.branches_instrumented as usize);
        assert_eq!(loop_checks, report.loops_instrumented as usize);
        assert_eq!(shadowed, report.stores_shadowed as usize);
        assert_eq!(checked, report.loads_checked as usize);
        // Every annotated site really carries its guard: the check block
        // re-branches, with the failing arm reaching gr_detected.
        for f in &m.funcs {
            for c in f.guards.branch_checks.iter().chain(&f.guards.loop_checks) {
                assert!(
                    matches!(f.block(c.site).term, Some(gd_ir::Terminator::CondBr { .. })),
                    "{}: annotated site keeps its cond-br",
                    f.name
                );
                assert!(
                    matches!(f.block(c.check).term, Some(gd_ir::Terminator::CondBr { .. })),
                    "{}: annotated check block re-branches",
                    f.name
                );
            }
        }
    }

    #[test]
    fn none_is_a_no_op() {
        let mut m = parse_module(FIRMWARE).unwrap();
        let before = print_module(&m);
        let report = harden(&mut m, &Config::new(Defenses::NONE));
        assert_eq!(report, Report::default());
        assert_eq!(print_module(&m), before);
    }

    #[test]
    fn user_defined_detection_reaction_is_respected() {
        let src = "
fn @gr_detected() -> void {
entry:
  ret void
}
fn @main(%a: i32) -> i32 {
entry:
  %c = icmp eq i32 %a, 0
  br %c, x, y
x:
  ret i32 1
y:
  ret i32 2
}
";
        let mut m = parse_module(src).unwrap();
        harden(&mut m, &Config::new(Defenses::BRANCHES));
        verify_module(&m).unwrap();
        // Still exactly one gr_detected: the user's.
        assert_eq!(m.funcs.iter().filter(|f| f.name == "gr_detected").count(), 1);
        let f = m.func("gr_detected").unwrap();
        assert_eq!(f.block_count(), 1, "user's trivial reaction kept");
    }

    #[test]
    fn runtime_itself_gets_branch_hardening() {
        let mut m = parse_module(FIRMWARE).unwrap();
        harden(&mut m, &Config::new(Defenses::ALL));
        let delay = m.func("gr_delay").unwrap();
        let text = gd_ir::print_function(delay);
        assert!(text.contains("gr_detected"), "gr_delay's own branches are duplicated:\n{text}");
    }
}
