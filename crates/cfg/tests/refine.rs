//! Extent refinement: CFG recovery discovers code the linear ingest
//! sweep misclassified as pool, and the refined extent table splits
//! around the literal pool rather than swallowing it.
//!
//! The fixture is the pathological layout the sweep cannot see through:
//! the only path to the routine's tail is a computed branch through a
//! pool constant, and the pool word sits *between* the two code runs.
//!
//! ```text
//! 0x00  vector table: initial SP, reset | 1
//! 0x08  reset: ldr r0, [pc, #0]   ; loads pool @ 0x0c
//! 0x0a         bx r0              ; computed: → 0x10 | 1
//! 0x0c  pool:  .word (base+0x10) | 1
//! 0x10  tail:  movs r0, #42
//! 0x12         bkpt #0
//! ```
//!
//! The sweep stops at the referenced pool word (`code_end = 0x0c`), so
//! `tail` is classified as pool filler. Recovery resolves `bx r0`
//! through constant propagation and walks `tail`; refinement must then
//! split `reset` into two extents with the pool word left as pool.

use gd_backend::layout::STACK_TOP;
use gd_cfg::recover;
use gd_cfg::refine::{divergences, refined_extents};
use gd_thumb::{Encoding, Instr, Reg};

const BASE: u32 = 0x0800_0000;

fn emit(code: &mut Vec<u8>, instr: Instr) {
    match instr.try_encode().unwrap_or_else(|e| panic!("fixture instr {instr}: {e}")) {
        Encoding::Half(hw) => code.extend_from_slice(&hw.to_le_bytes()),
        Encoding::Pair(hw1, hw2) => {
            code.extend_from_slice(&hw1.to_le_bytes());
            code.extend_from_slice(&hw2.to_le_bytes());
        }
    }
}

/// Builds the computed-branch-past-pool image described in the module
/// docs. The word at offset 8 is even, so the vector-table scan finds
/// no handlers past reset and the image has exactly one routine.
fn fixture() -> Vec<u8> {
    let mut image = Vec::new();
    image.extend_from_slice(&STACK_TOP.to_le_bytes());
    image.extend_from_slice(&((BASE + 8) | 1).to_le_bytes());
    let code = &mut image;
    emit(code, Instr::LdrLit { rt: Reg::R0, imm8: 0 }); // 0x08 → pool @ 0x0c
    emit(code, Instr::Bx { rm: Reg::R0 }); // 0x0a
    assert_eq!(image.len(), 0x0c, "fixture layout drifted");
    image.extend_from_slice(&((BASE + 0x10) | 1).to_le_bytes()); // pool
    let code = &mut image;
    emit(code, Instr::MovImm { rd: Reg::R0, imm8: 42 }); // 0x10
    emit(code, Instr::Bkpt { imm8: 0 }); // 0x12
    image
}

#[test]
fn computed_branch_code_past_pool_is_rediscovered_and_split() {
    let ing = gd_ingest::ingest_bin(&fixture(), BASE).expect("fixture ingests");

    // The linear sweep stops at the referenced pool word: the tail is
    // misclassified as pool, inflating the pool byte count.
    assert_eq!(ing.image.extents.len(), 1);
    let e = &ing.image.extents[0];
    assert_eq!((e.base, e.code_end, e.end), (BASE + 0x08, BASE + 0x0c, BASE + 0x14));
    assert_eq!(ing.pool_bytes(), 8);

    // Recovery resolves the computed branch through the pool constant
    // and walks the tail the sweep could not reach.
    let cfg = gd_emu::Config { wide: true, ..gd_emu::Config::default() };
    let g = recover(&ing.image, cfg);
    assert!(g.unresolved.is_empty(), "unresolved: {:x?}", g.unresolved);
    assert_eq!(g.resolved.get(&(BASE + 0x0a)), Some(&(BASE + 0x10)));
    assert!(g.instr_blocks.contains_key(&(BASE + 0x10)), "tail recovered");
    assert!(!g.instr_blocks.contains_key(&(BASE + 0x0c)), "pool not decoded");

    // The divergence report names the routine and counts the tail.
    let divs = divergences(&g, &ing.image);
    assert_eq!(divs.len(), 1);
    assert_eq!(divs[0].name, "reset");
    assert_eq!((divs[0].code_end, divs[0].refined), (BASE + 0x0c, BASE + 0x14));
    assert_eq!(divs[0].extra_instrs, 2);

    // Refinement splits around the pool word instead of claiming it.
    let refined = refined_extents(&g, &ing.image);
    assert_eq!(refined.len(), 2);
    assert_eq!(refined[0].name, "reset");
    assert_eq!(
        (refined[0].base, refined[0].code_end, refined[0].end),
        (BASE + 0x08, BASE + 0x0c, BASE + 0x10)
    );
    assert_eq!(refined[1].name, "reset+0x8");
    assert_eq!(
        (refined[1].base, refined[1].code_end, refined[1].end),
        (BASE + 0x10, BASE + 0x14, BASE + 0x14)
    );

    // Applying the refinement shrinks the pool to the one real word,
    // and the refined image re-recovers with no new divergences.
    let ing = ing.with_extents(refined);
    assert_eq!(ing.pool_bytes(), 4);
    let g2 = recover(&ing.image, cfg);
    assert!(divergences(&g2, &ing.image).is_empty());
}

#[test]
fn images_without_hidden_code_refine_to_themselves() {
    // The committed ingest demo has no code past any `code_end`:
    // refinement must be the identity on its extent table.
    let ing = gd_ingest::ingest_bin(&gd_ingest::testimg::demo_bin(), gd_ingest::testimg::DEMO_BASE)
        .expect("demo ingests");
    let cfg = gd_emu::Config { wide: true, ..gd_emu::Config::default() };
    let g = recover(&ing.image, cfg);
    assert!(divergences(&g, &ing.image).is_empty());
    assert_eq!(refined_extents(&g, &ing.image), ing.image.extents);
}
