//! Fleet-dispatch acceptance: remote shard execution must reproduce the
//! local engine's bytes at every worker count, through worker loss, and
//! under every worker-boundary chaos site.
//!
//! Like `chaos.rs`, this binary's tests each take a chaos guard
//! ([`gd_chaos::activate`] or [`gd_chaos::suppress`]), which both scopes
//! the schedule and serializes the tests against the process-global
//! chaos state.

use std::sync::Arc;
use std::time::Duration;

use gd_campaign::engine::Engine;
use gd_campaign::fleet::{FleetConfig, FleetDispatcher, WorkerServer};
use gd_campaign::spec::CampaignSpec;

/// A 3-shard Figure 2 slice — the standard small-but-real campaign.
fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::fig2();
    spec.shards = Some((0, 3));
    spec
}

/// Fleet tuning for loopback tests: fast heartbeats, tight hedging.
fn test_config(workers: &[WorkerServer]) -> FleetConfig {
    FleetConfig {
        workers: workers.iter().map(|w| w.addr().to_string()).collect(),
        hedge_after: Duration::from_millis(50),
        heartbeat_interval: Duration::from_millis(50),
        liveness_deadline: Duration::from_millis(500),
        ..FleetConfig::default()
    }
}

fn fleet_engine(workers: &[WorkerServer]) -> Engine {
    Engine::ephemeral().with_dispatcher(Arc::new(FleetDispatcher::new(test_config(workers))))
}

/// Value of a single-series metric in the current Prometheus rendering.
fn metric_value(name: &str) -> f64 {
    gd_obs::global()
        .render_prometheus()
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

/// The tentpole acceptance property: identical bytes from the local
/// pool, a single worker, and a four-worker fleet — and from a fleet
/// with *no* workers at all, which degrades to local execution.
#[test]
fn fleet_results_are_bit_identical_at_zero_one_and_four_workers() {
    let _off = gd_chaos::suppress();
    let baseline = Engine::ephemeral().run(&small_spec()).unwrap();

    for count in [0usize, 1, 4] {
        let workers: Vec<WorkerServer> =
            (0..count).map(|_| WorkerServer::start("127.0.0.1:0").unwrap()).collect();
        let fallback_before = metric_value("gd_fleet_local_fallback_shards_total");
        let result = fleet_engine(&workers).run(&small_spec()).unwrap();
        assert_eq!(result.text, baseline.text, "workers={count}");
        assert_eq!(result.shards, baseline.shards, "workers={count}");
        if count == 0 {
            assert!(
                metric_value("gd_fleet_local_fallback_shards_total") >= fallback_before + 3.0,
                "an empty fleet must degrade every shard to local execution"
            );
        }
        for worker in workers {
            worker.shutdown().unwrap();
        }
    }
}

/// Killing a worker mid-campaign loses leases, not results: the
/// dispatcher retries them on the survivor (or locally) and the bytes
/// still match.
#[test]
fn a_worker_killed_mid_campaign_does_not_change_the_bytes() {
    let _off = gd_chaos::suppress();
    let mut spec = CampaignSpec::fig2();
    spec.shards = Some((0, 6));
    let baseline = Engine::ephemeral().run(&spec).unwrap();

    let survivor = WorkerServer::start("127.0.0.1:0").unwrap();
    let victim = WorkerServer::start("127.0.0.1:0").unwrap();
    let config = FleetConfig {
        workers: vec![survivor.addr().to_string(), victim.addr().to_string()],
        hedge_after: Duration::from_millis(50),
        heartbeat_interval: Duration::from_millis(50),
        liveness_deadline: Duration::from_millis(500),
        ..FleetConfig::default()
    };
    let engine = Engine::ephemeral().with_dispatcher(Arc::new(FleetDispatcher::new(config)));
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        victim.shutdown().unwrap();
    });
    let result = engine.run(&spec).unwrap();
    killer.join().unwrap();
    assert_eq!(result.text, baseline.text, "the kill must not surface in the output");
    survivor.shutdown().unwrap();
}

/// Every remote result corrupted in flight: the SHA-256 seal rejects
/// them all, the seal-failure counter proves it, and the campaign falls
/// back to local execution with identical bytes.
#[test]
fn corrupted_worker_results_are_caught_by_the_seal_and_recomputed() {
    let baseline = {
        let _off = gd_chaos::suppress();
        Engine::ephemeral().run(&small_spec()).unwrap()
    };
    let _chaos = gd_chaos::activate(gd_chaos::Plan::parse("21:fleet.corrupt_result=1").unwrap());
    let worker = WorkerServer::start("127.0.0.1:0").unwrap();
    let seal_before = metric_value("gd_fleet_seal_failures_total");
    let fallback_before = metric_value("gd_fleet_local_fallback_shards_total");
    let result = fleet_engine(std::slice::from_ref(&worker)).run(&small_spec()).unwrap();
    assert_eq!(result.text, baseline.text);
    assert!(
        metric_value("gd_fleet_seal_failures_total") > seal_before,
        "every corrupted response must be caught by the seal"
    );
    assert!(
        metric_value("gd_fleet_local_fallback_shards_total") > fallback_before,
        "shards whose remote budget is spent run locally"
    );
    worker.shutdown().unwrap();
}

/// A universally hanging fleet still answers (the hang is shorter than
/// the shard timeout), but every lease outlives the hedge threshold —
/// the hedged counter must show the dispatcher racing a second worker.
#[test]
fn hanging_workers_trip_the_hedge_and_keep_the_bytes() {
    let baseline = {
        let _off = gd_chaos::suppress();
        Engine::ephemeral().run(&small_spec()).unwrap()
    };
    let _chaos = gd_chaos::activate(gd_chaos::Plan::parse("22:fleet.hang=1").unwrap());
    let workers =
        [WorkerServer::start("127.0.0.1:0").unwrap(), WorkerServer::start("127.0.0.1:0").unwrap()];
    let hedged_before = metric_value("gd_fleet_shards_hedged_total");
    let result = fleet_engine(&workers).run(&small_spec()).unwrap();
    assert_eq!(result.text, baseline.text);
    assert!(
        metric_value("gd_fleet_shards_hedged_total") > hedged_before,
        "a 400 ms hang against a 50 ms hedge threshold must hedge"
    );
    for worker in workers {
        worker.shutdown().unwrap();
    }
}

/// Workers crashing mid-shard half the time: the connection closes
/// without a response, the dispatcher requeues, and enough retries
/// (plus the local fallback) still deliver the exact bytes.
#[test]
fn crashing_workers_are_survived_by_requeue_and_fallback() {
    let baseline = {
        let _off = gd_chaos::suppress();
        Engine::ephemeral().run(&small_spec()).unwrap()
    };
    let _chaos = gd_chaos::activate(gd_chaos::Plan::parse("23:fleet.worker_crash=0.5").unwrap());
    let worker = WorkerServer::start("127.0.0.1:0").unwrap();
    let result = fleet_engine(std::slice::from_ref(&worker)).run(&small_spec()).unwrap();
    assert_eq!(result.text, baseline.text);
    worker.shutdown().unwrap();
}

/// Every connection dropped before the payload lands: the worker racks
/// up consecutive failures, gets quarantined (observably), and the
/// campaign completes locally with identical bytes.
#[test]
fn a_dead_connection_quarantines_the_worker_and_degrades_locally() {
    let baseline = {
        let _off = gd_chaos::suppress();
        Engine::ephemeral().run(&small_spec()).unwrap()
    };
    let _chaos = gd_chaos::activate(gd_chaos::Plan::parse("24:fleet.conn_drop=1").unwrap());
    let worker = WorkerServer::start("127.0.0.1:0").unwrap();
    let quarantined_before = metric_value("gd_fleet_workers_quarantined_total");
    let result = fleet_engine(std::slice::from_ref(&worker)).run(&small_spec()).unwrap();
    assert_eq!(result.text, baseline.text);
    assert!(
        metric_value("gd_fleet_workers_quarantined_total") > quarantined_before,
        "three straight connection drops must quarantine the worker"
    );
    worker.shutdown().unwrap();
}
