//! Tables I–III: single-, multi-, and long-glitch scans against the three
//! §V loop guards on the simulated ChipWhisperer rig. (Moved here from
//! `gd-bench` so the campaign engine can shard and serve the workloads;
//! `gd_bench::glitch_tables` re-exports this module.)

use std::fmt::Write as _;

use gd_chipwhisperer::{
    scan_grid, scan_multi, scan_single, AttackSpec, CellCounts, Device, FaultModel, MultiCell,
    SuccessCheck,
};
use gd_thumb::Reg;

/// Maps each post-trigger cycle to the instruction occupying it on an
/// unglitched run — the left-hand column of the paper's Table I.
pub fn cycle_annotations(device: &Device, cycles: u32) -> Vec<String> {
    let mut pipe = device.boot();
    let mut notes = vec![String::new(); cycles as usize];
    // Step until the window past the trigger covers the requested range.
    for _ in 0..10_000 {
        let mut seen: Option<(u64, u32, String)> = None;
        let step = pipe.step_with(&mut |w| {
            if let Some(s) = w.since_trigger {
                seen = Some((s, w.cycles, w.instr.to_string()));
            }
            Vec::new()
        });
        if step.is_err() {
            break;
        }
        if let Some((start, dur, text)) = seen {
            if start >= u64::from(cycles) {
                break;
            }
            for c in start..(start + u64::from(dur)).min(u64::from(cycles)) {
                notes[c as usize] = text.clone();
            }
        }
    }
    notes
}

/// Cycle budget for one §V attempt: enough for thousands of loop
/// iterations plus the exit path.
pub const GUARD_BUDGET: u64 = 600;

/// The attack spec shared by the §V experiments.
pub fn guard_spec() -> AttackSpec {
    AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: GUARD_BUDGET }
}

/// The comparator register Table I post-mortems record for a given guard:
/// the complex guard compares r2 against r3; the simple guards keep the
/// loaded value in r3.
pub fn post_mortem_reg(guard_name: &str) -> Reg {
    if guard_name.contains('!') || guard_name == "while(a)" {
        Reg::R3
    } else {
        Reg::R2
    }
}

/// Table I: per-cycle single-glitch successes with comparator post-mortems.
pub struct Table1Row {
    /// Guard name.
    pub name: &'static str,
    /// Per-cycle results (cycle, counts).
    pub cells: Vec<(u32, CellCounts)>,
}

/// Runs Table I for all three guards over glitch cycles 0..8.
pub fn table1(model: &FaultModel) -> Vec<Table1Row> {
    gd_chipwhisperer::targets::table1_guards()
        .into_iter()
        .map(|(name, src)| {
            let dev = Device::from_asm(src).expect("guard assembles");
            let reg = post_mortem_reg(name);
            let cells = scan_single(&dev, model, 0..8, &guard_spec(), Some(reg));
            Table1Row { name, cells }
        })
        .collect()
}

/// Renders a Table I row in the paper's layout (cycle → instruction →
/// successes → comparator post-mortem).
pub fn render_table1_row(row: &Table1Row, annotations: &[String]) -> String {
    let mut out = crate::report::heading_str(&format!("Table I — single glitch vs {}", row.name));
    writeln!(
        out,
        "{:<6} {:<22} {:>9}   post-mortem (register=count)",
        "cycle", "instruction", "successes"
    )
    .unwrap();
    let mut total_s = 0u64;
    let mut total_a = 0u64;
    for (cycle, cell) in &row.cells {
        total_s += cell.successes;
        total_a += cell.attempts;
        let mut hist: Vec<String> =
            cell.post_mortem.iter().map(|(v, n)| format!("{v:#x}={n}")).collect();
        hist.truncate(6);
        let instr = annotations.get(*cycle as usize).map(String::as_str).unwrap_or("");
        writeln!(out, "{cycle:<6} {instr:<22} {:>9}   {}", cell.successes, hist.join(" ")).unwrap();
    }
    writeln!(
        out,
        "total  {:<22} {total_s:>9}   ({} of {} attempts)",
        "",
        crate::report::pct(total_s, total_a),
        total_a
    )
    .unwrap();
    out
}

/// Prints a Table I row (legacy CLI surface over [`render_table1_row`]).
pub fn print_table1_row(row: &Table1Row, annotations: &[String]) {
    print!("{}", render_table1_row(row, annotations));
}

/// Table II: multi-glitch (two identical back-to-back loops).
pub struct Table2Row {
    /// Guard name.
    pub name: &'static str,
    /// Per-cycle partial/full counts.
    pub cells: Vec<(u32, MultiCell)>,
}

/// The per-attempt spec for the doubled guards (twice the loop, twice the
/// budget).
pub fn doubled_spec() -> AttackSpec {
    AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: 1_200 }
}

/// Runs Table II over glitch cycles 0..8.
pub fn table2(model: &FaultModel) -> Vec<Table2Row> {
    crate::spec::doubled_guards()
        .into_iter()
        .map(|(name, src)| {
            let dev = Device::from_asm(&src).expect("guard assembles");
            let cells = scan_multi(&dev, model, 0..8, &doubled_spec());
            Table2Row { name, cells }
        })
        .collect()
}

/// Renders Table II in the paper's layout.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = crate::report::heading_str("Table II — multi-glitch (partial vs full)");
    write!(out, "{:<6}", "cycle").unwrap();
    for r in rows {
        write!(out, " | {:^21}", r.name).unwrap();
    }
    writeln!(out).unwrap();
    write!(out, "{:<6}", "").unwrap();
    for _ in rows {
        write!(out, " | {:>10} {:>10}", "partial", "full").unwrap();
    }
    writeln!(out).unwrap();
    for i in 0..rows[0].cells.len() {
        write!(out, "{:<6}", rows[0].cells[i].0).unwrap();
        for r in rows {
            let c = &r.cells[i];
            write!(out, " | {:>10} {:>10}", c.1.partial, c.1.full).unwrap();
        }
        writeln!(out).unwrap();
    }
    write!(out, "total ").unwrap();
    for r in rows {
        let partial: u64 = r.cells.iter().map(|c| c.1.partial).sum();
        let full: u64 = r.cells.iter().map(|c| c.1.full).sum();
        write!(out, " | {partial:>10} {full:>10}").unwrap();
    }
    writeln!(out).unwrap();
    write!(out, "rate  ").unwrap();
    for r in rows {
        let attempts: u64 = r.cells.iter().map(|c| c.1.attempts).sum();
        let partial: u64 = r.cells.iter().map(|c| c.1.partial).sum();
        let full: u64 = r.cells.iter().map(|c| c.1.full).sum();
        write!(
            out,
            " | {:>10} {:>10}",
            crate::report::pct(partial, attempts),
            crate::report::pct(full, attempts)
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    out
}

/// Prints Table II (legacy CLI surface over [`render_table2`]).
pub fn print_table2(rows: &[Table2Row]) {
    print!("{}", render_table2(rows));
}

/// Table III: long glitches (0..N contiguous cycles) against the doubled
/// guards.
pub struct Table3Row {
    /// Guard name.
    pub name: &'static str,
    /// (cycles glitched, counts).
    pub cells: Vec<(u32, CellCounts)>,
}

/// Runs Table III: glitch lengths 10..=20 from cycle 0.
pub fn table3(model: &FaultModel) -> Vec<Table3Row> {
    crate::spec::doubled_guards()
        .into_iter()
        .map(|(name, src)| {
            let dev = Device::from_asm(&src).expect("guard assembles");
            // The eleven glitch lengths are independent single-start scans:
            // fan them out, keeping length order for byte-identical output.
            let lens: Vec<u32> = (10..=20).collect();
            let cells = gd_exec::par_map(&lens, |&len| {
                let scanned = scan_grid(&dev, model, 0..1, len, &doubled_spec(), None);
                let (_, cell) = scanned.into_iter().next().expect("one start cycle");
                (len, cell)
            });
            Table3Row { name, cells }
        })
        .collect()
}

/// Renders Table III in the paper's layout.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = crate::report::heading_str("Table III — long glitch successes (cycles 0..N)");
    write!(out, "{:<8}", "cycles").unwrap();
    for r in rows {
        write!(out, " {:>22}", r.name).unwrap();
    }
    writeln!(out).unwrap();
    for i in 0..rows[0].cells.len() {
        write!(out, "0-{:<6}", rows[0].cells[i].0).unwrap();
        for r in rows {
            write!(out, " {:>22}", r.cells[i].1.successes).unwrap();
        }
        writeln!(out).unwrap();
    }
    write!(out, "{:<8}", "total").unwrap();
    for r in rows {
        let s: u64 = r.cells.iter().map(|c| c.1.successes).sum();
        let a: u64 = r.cells.iter().map(|c| c.1.attempts).sum();
        write!(out, " {:>14} ({})", s, crate::report::pct(s, a)).unwrap();
    }
    writeln!(out).unwrap();
    out
}

/// Prints Table III (legacy CLI surface over [`render_table3`]).
pub fn print_table3(rows: &[Table3Row]) {
    print!("{}", render_table3(rows));
}
