//! # gd-glitch-emu — the glitching emulation framework (paper §IV)
//!
//! Quantifies the fault tolerance of the Thumb-1 instruction encoding by
//! forcing bit flips on a targeted instruction and executing the result:
//! every C(16, k) mask for every k, ANDed/ORed/XORed into the encoding,
//! exactly as the paper's Unicorn-based framework does for Figure 2.
//!
//! ```
//! use gd_emu::Config;
//! use gd_glitch_emu::{branch_case, sweep_k, Direction, Outcome};
//! use gd_thumb::Cond;
//!
//! let case = branch_case(Cond::Eq);
//! let tally = sweep_k(&case, Direction::And, 2, Config::default());
//! assert_eq!(tally.total(), 120); // C(16, 2)
//! assert!(tally.count(Outcome::Success) > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod classify;
pub mod ext;
pub mod harness;
pub mod masks;
pub mod sweep;

pub use classify::{branch_flips, branch_flips_with, BranchFlips, Flip, FlipClass};
pub use harness::{all_branch_cases, branch_case, flag_setup, TestCase};
pub use sweep::{
    run_perturbed, sweep_case, sweep_case_with, sweep_k, sweep_k_serial, sweep_k_with, Direction,
    Outcome, PerturbRunner, SweepResult, Tally,
};
