//! The qualitative comparison with prior software-based glitching defenses
//! (paper Table VII), encoded as data so the table regenerates from code.

use core::fmt;

/// The properties Table VII compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Properties {
    /// Applies to arbitrary code, not one application (e.g. AES).
    pub generic: bool,
    /// New defenses can be slotted into the framework.
    pub extensible: bool,
    /// Works on existing code without whole-program rewrites.
    pub backward_compatible: bool,
    /// Constant diversification defense.
    pub constant_diversification: bool,
    /// Data integrity defense.
    pub data_integrity: bool,
    /// Control-flow hardening defense.
    pub control_flow_hardening: bool,
    /// Random delay defense.
    pub random_delay: bool,
}

/// One row of the comparison table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Technique {
    /// Technique name (with the paper's citation keys).
    pub name: &'static str,
    /// Its properties.
    pub props: Properties,
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = |b: bool| if b { "✓" } else { "✗" };
        let p = self.props;
        write!(
            f,
            "{:<22} {:^7} {:^10} {:^9} {:^10} {:^9} {:^9} {:^7}",
            self.name,
            mark(p.generic),
            mark(p.extensible),
            mark(p.backward_compatible),
            mark(p.constant_diversification),
            mark(p.data_integrity),
            mark(p.control_flow_hardening),
            mark(p.random_delay),
        )
    }
}

/// Header line matching [`Technique`]'s `Display` columns.
pub const TABLE_HEADER: &str =
    "Technique              Generic Extensible BackCompat ConstDiv  DataInt   CFHard    Random";

/// The comparison rows (transcribed from Table VII of the paper).
pub fn comparison() -> Vec<Technique> {
    let t = true;
    let f = false;
    let row = |name,
               generic,
               extensible,
               backward_compatible,
               constant_diversification,
               data_integrity,
               control_flow_hardening,
               random_delay| Technique {
        name,
        props: Properties {
            generic,
            extensible,
            backward_compatible,
            constant_diversification,
            data_integrity,
            control_flow_hardening,
            random_delay,
        },
    };
    vec![
        row("Data Encoding [37,14]", f, f, f, t, t, f, f),
        row("CAMFAS [17]", t, f, f, f, t, f, f),
        row("Loop Hardening [60]", t, f, t, f, f, t, f),
        row("IIR [58]", f, f, f, f, t, f, f),
        row("CountCompile [11]", t, f, t, f, f, t, f),
        row("CountC [36]", f, f, f, f, f, t, f),
        row("SWIFT [63]", t, f, t, f, t, t, f),
        row("CFCSS [55]", t, f, t, f, f, t, f),
        row("GlitchResistor", t, t, t, t, t, t, t),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glitch_resistor_is_the_only_full_row() {
        let rows = comparison();
        let full: Vec<_> = rows
            .iter()
            .filter(|r| {
                let p = r.props;
                p.generic
                    && p.extensible
                    && p.backward_compatible
                    && p.constant_diversification
                    && p.data_integrity
                    && p.control_flow_hardening
                    && p.random_delay
            })
            .collect();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].name, "GlitchResistor");
    }

    #[test]
    fn nine_rows_like_the_paper() {
        assert_eq!(comparison().len(), 9);
    }

    #[test]
    fn display_is_aligned_with_header() {
        let rows = comparison();
        let line = rows[0].to_string();
        assert!(line.contains('✓') || line.contains('✗'));
        assert!(TABLE_HEADER.starts_with("Technique"));
    }
}
