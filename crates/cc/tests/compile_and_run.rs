//! Differential tests for the C frontend: every program runs identically
//! under the IR interpreter and as compiled Thumb machine code, and stays
//! correct after GlitchResistor hardening.

use gd_backend::compile;
use gd_cc::{compile_c, compile_c_with, Options};
use gd_emu::{RunOutcome, StopReason};
use gd_ir::{verify_module, Interpreter, RtVal};
use gd_thumb::Reg;
use glitch_resistor::{harden, Config, Defenses};

/// Compiles C, checks the IR, and runs `main` three ways: interpreter,
/// native, and native-after-hardening. All three must agree.
fn run_c(src: &str) -> u32 {
    let module = compile_c(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    verify_module(&module).unwrap_or_else(|e| panic!("{e}\n{module}"));

    let mut interp = Interpreter::new(&module);
    interp.fuel = 10_000_000;
    let expected = interp
        .run("main", &[], &mut |_, _| RtVal::Int(0))
        .unwrap_or_else(|e| panic!("{e}\n{module}"))
        .int() as u32;

    let image = compile(&module, "main").unwrap();
    let mut emu = image.boot_emu();
    match emu.run(5_000_000) {
        RunOutcome::Stop { reason: StopReason::Bkpt(0), .. } => {}
        other => panic!("native run ended oddly: {other:?}\n{module}"),
    }
    assert_eq!(emu.cpu.reg(Reg::R0), expected, "interp vs native:\n{src}");

    let mut hardened = module.clone();
    harden(&mut hardened, &Config::new(Defenses::ALL_EXCEPT_DELAY));
    verify_module(&hardened).unwrap();
    let image = compile(&hardened, "main").unwrap();
    let mut emu = image.boot_emu();
    emu.run(5_000_000);
    assert_eq!(emu.cpu.reg(Reg::R0), expected, "hardened result differs:\n{src}");

    expected
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run_c("int main(void) { return 1 + 2 * 3; }"), 7);
    assert_eq!(run_c("int main(void) { return (1 + 2) * 3; }"), 9);
    assert_eq!(run_c("int main(void) { return 100 / 7 + 100 % 7; }"), 14 + 2);
    assert_eq!(run_c("int main(void) { return 0xF0 | 0x0F; }"), 0xFF);
    assert_eq!(run_c("int main(void) { return (1 << 10) >> 3; }"), 128);
    assert_eq!(run_c("int main(void) { return ~0 & 0xFF; }"), 0xFF);
    assert_eq!(run_c("int main(void) { return -5 + 6; }"), 1);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(run_c("int main(void) { return 3 < 4; }"), 1);
    assert_eq!(run_c("int main(void) { return 4 <= 3; }"), 0);
    assert_eq!(run_c("int main(void) { return (2 > 1) + (1 == 1) + (1 != 1); }"), 2);
    assert_eq!(run_c("int main(void) { return 1 && 2; }"), 1);
    assert_eq!(run_c("int main(void) { return 0 || 3; }"), 1);
    assert_eq!(run_c("int main(void) { return !7; }"), 0);
    assert_eq!(run_c("int main(void) { return !0; }"), 1);
}

#[test]
fn short_circuit_has_real_control_flow() {
    // The right operand must not execute when the left decides: division
    // would trap-to-zero, so use a global side effect to observe it.
    let src = "
int touched = 0;
int touch(void) { touched = 1; return 1; }
int main(void) {
    int r = 0 && touch();
    return touched * 10 + r;
}
";
    assert_eq!(run_c(src), 0, "rhs of 0 && … must not run");
    let src2 = "
int touched = 0;
int touch(void) { touched = 1; return 0; }
int main(void) {
    int r = 1 || touch();
    return touched * 10 + r;
}
";
    assert_eq!(run_c(src2), 1, "rhs of 1 || … must not run");
}

#[test]
fn locals_params_and_calls() {
    let src = "
int mac(int a, int b, int c) { return a * b + c; }
int main(void) {
    int x = mac(6, 7, 8);
    x += mac(x, 2, 0);
    return x;
}
";
    assert_eq!(run_c(src), 50 + 100);
}

#[test]
fn recursion() {
    let src = "
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(10); }
";
    assert_eq!(run_c(src), 55);
}

#[test]
fn loops_break_continue() {
    let src = "
int main(void) {
    int sum = 0;
    for (int i = 0; i < 20; i++) {
        if (i % 2) { continue; }
        if (i > 10) { break; }
        sum += i;
    }
    return sum;
}
";
    assert_eq!(run_c(src), 2 + 4 + 6 + 8 + 10);
}

#[test]
fn do_while_runs_at_least_once() {
    let src = "
int main(void) {
    int n = 0;
    do { n++; } while (0);
    return n;
}
";
    assert_eq!(run_c(src), 1);
}

#[test]
fn globals_and_enums() {
    let src = "
enum Status { FAILURE, SUCCESS, RETRY = 7, DONE };
int counter = 3;
int main(void) {
    counter += DONE;
    if (counter == 11) { return SUCCESS; }
    return FAILURE;
}
";
    assert_eq!(run_c(src), 1);
}

#[test]
fn narrow_types_wrap() {
    let src = "
char c = 200;
int main(void) {
    c += 100;
    short s = 0x7FFF;
    s += 2;
    return (s & 0xFFFF) * 1000 + c;
}
";
    // char: (200+100)&0xFF = 44; short: 0x8001 = 32769.
    assert_eq!(run_c(src), 32769 * 1000 + 44);
}

#[test]
fn volatile_guard_compiles_to_volatile_ir() {
    let src = "
volatile int a = 1;
int main(void) {
    while (a) { a -= 1; }
    return 42;
}
";
    let module = compile_c(src).unwrap();
    let text = gd_ir::print_module(&module);
    assert!(text.contains("load volatile i32"), "{text}");
    assert!(text.contains("store volatile i32"), "{text}");
    assert_eq!(run_c(src), 42);
}

#[test]
fn sensitive_marking_via_source_and_options() {
    let src = "__sensitive int key = 7;\nint other = 1;\nint main(void) { return key; }";
    let module = compile_c(src).unwrap();
    assert!(module.global("key").unwrap().sensitive);
    assert!(!module.global("other").unwrap().sensitive);

    let mut opts = Options::default();
    opts.sensitive.insert("other".into());
    let module = compile_c_with(src, &opts).unwrap();
    assert!(module.global("other").unwrap().sensitive, "config file route");
}

#[test]
fn the_papers_guard_in_c_hardens_end_to_end() {
    // The §VII worst-case firmware, written the way the paper's users
    // would write it.
    let src = "
enum Status { FAILURE, SUCCESS };
volatile int a = 0;

int main(void) {
    *(volatile int *)0x48000014 = 1;  /* trigger */
    while (!a) { }
    return 0xACCE55;
}
";
    let mut module = compile_c(src).unwrap();
    let report = harden(&mut module, &Config::new(Defenses::ALL));
    verify_module(&module).unwrap();
    assert!(report.branches_instrumented >= 1);
    assert!(report.loops_instrumented >= 1);
    assert_eq!(report.enums_rewritten, 1);
    // The enum moved off 0/1.
    assert!(module.enum_def("Status").unwrap().value_of(1) > 255);
    // It still compiles to firmware.
    let image = compile(&module, "main").unwrap();
    assert!(image.sizes.text > 0);
}

#[test]
fn dead_code_after_return_is_tolerated() {
    let src = "
int main(void) {
    return 5;
    return 6;
}
";
    assert_eq!(run_c(src), 5);
}

#[test]
fn mmio_reads_and_writes() {
    let src = "
int main(void) {
    *(volatile int *)0x20000100 = 0xBEEF;
    int v = *(volatile int *)0x20000100;
    return v;
}
";
    // Interpreter treats raw MMIO as write-ignored/read-zero; compare only
    // the native result here.
    let module = compile_c(src).unwrap();
    verify_module(&module).unwrap();
    let image = compile(&module, "main").unwrap();
    let mut emu = image.boot_emu();
    emu.run(100_000);
    assert_eq!(emu.cpu.reg(Reg::R0), 0xBEEF);
}

#[test]
fn error_reporting() {
    assert!(compile_c("int main(void) { return x; }").is_err());
    assert!(compile_c("int main(void) { f(); }").is_err());
    assert!(compile_c("int f(int a) { return a; } int main(void) { return f(); }").is_err());
    assert!(compile_c("int main(void) { break; }").is_err());
    let err = compile_c("int main(void) {\n  int x = ;\n}").unwrap_err();
    assert_eq!(err.line, 2);
}
