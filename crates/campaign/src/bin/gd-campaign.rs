//! The campaign CLI: run a campaign spec locally or serve the campaign
//! engine over HTTP.
//!
//! ```text
//! gd-campaign run <spec.json|workload> [--store DIR]
//! gd-campaign key <spec.json|workload>
//! gd-campaign serve [--addr HOST:PORT] [--store DIR] [--queue N]
//! ```
//!
//! `<spec.json|workload>` is either a path to a spec file or a bare
//! workload name (`fig2`, `table1`, `table2`, `table3`, `table6`) for
//! the published configuration.

use std::process::ExitCode;

use gd_campaign::service::{Server, ServerConfig};
use gd_campaign::{CampaignSpec, Engine};

fn usage() -> ExitCode {
    eprintln!(
        "usage: gd-campaign run <spec.json|workload> [--store DIR]\n\
         \x20      gd-campaign key <spec.json|workload>\n\
         \x20      gd-campaign serve [--addr HOST:PORT] [--store DIR] [--queue N]"
    );
    ExitCode::from(2)
}

fn load_spec(arg: &str) -> Result<CampaignSpec, String> {
    match arg {
        "fig2" => Ok(CampaignSpec::fig2()),
        "table1" => Ok(CampaignSpec::table1()),
        "table2" => Ok(CampaignSpec::table2()),
        "table3" => Ok(CampaignSpec::table3()),
        "table6" => Ok(CampaignSpec::table6()),
        path => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading spec {path}: {e}"))?;
            CampaignSpec::from_json_text(&text)
        }
    }
}

/// Pulls `--flag value` out of `args`, if present.
fn take_option(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            Ok(Some(args.remove(i)))
        }
        Some(_) => Err(format!("{flag} requires a value")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("gd-campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else { return Ok(usage()) };
    args.remove(0);
    let store = take_option(&mut args, "--store")?;
    match command.as_str() {
        "run" => {
            let [spec_arg] = args.as_slice() else { return Ok(usage()) };
            let spec = load_spec(spec_arg)?;
            let engine = match store {
                Some(dir) => Engine::with_store(dir),
                None => Engine::ephemeral(),
            };
            let result = engine.run(&spec)?;
            print!("{}", result.text);
            Ok(ExitCode::SUCCESS)
        }
        "key" => {
            let [spec_arg] = args.as_slice() else { return Ok(usage()) };
            let spec = load_spec(spec_arg)?;
            println!("{}", spec.cache_key()?);
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            let addr =
                take_option(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7309".to_owned());
            let queue_limit = match take_option(&mut args, "--queue")? {
                None => 16,
                Some(n) => n.parse().map_err(|_| format!("--queue {n}: not a number"))?,
            };
            if !args.is_empty() {
                return Ok(usage());
            }
            let config = ServerConfig {
                addr,
                store: store.map(Into::into),
                queue_limit,
                ..ServerConfig::default()
            };
            let server = Server::start(config)?;
            println!("gd-campaign: serving on http://{}", server.addr());
            println!("gd-campaign: GET /metrics for Prometheus metrics, POST /shutdown to stop");
            // The accept thread owns the lifecycle from here; park until
            // a shutdown request lands and the threads wind down.
            server.join()?;
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}
