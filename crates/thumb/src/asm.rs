//! A two-pass text assembler for Thumb-1 (the Keystone substitute).
//!
//! Accepts the canonical syntax printed by [`fmt`](crate::fmt), plus labels,
//! `ldr rX, =value` literal-pool loads, and a handful of data directives:
//!
//! ```text
//! loop:                     ; labels end with ':'
//!     ldr   r3, =0xD3B9AEC6 ; literal pools are emitted at .pool / end
//!     cmp   r2, r3
//!     bne   loop            ; branch targets may be labels or .+N/.-N
//!     .word 0xdeadbeef      ; .word/.hword/.byte/.space/.align/.pool
//! ```
//!
//! ```
//! use gd_thumb::asm::assemble;
//! let prog = assemble("movs r0, #170\nbkpt #0\n", 0x0800_0000)?;
//! assert_eq!(prog.code, vec![0xAA, 0x20, 0x00, 0xBE]);
//! # Ok::<(), gd_thumb::asm::AsmError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::instr::{AluOp, Hint, ShiftOp, Width};
use crate::{Cond, Instr, Reg};

/// An assembled program: raw code bytes plus the symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Little-endian machine code.
    pub code: Vec<u8>,
    /// Label name → absolute address.
    pub symbols: BTreeMap<String, u32>,
    /// Address of the first byte of `code`.
    pub origin: u32,
}

impl Program {
    /// Absolute address of a label.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if the label was never defined.
    pub fn symbol(&self, name: &str) -> Result<u32, AsmError> {
        self.symbols
            .get(name)
            .copied()
            .ok_or_else(|| AsmError { line: 0, msg: format!("undefined symbol `{name}`") })
    }

    /// End address (origin + code length).
    pub fn end(&self) -> u32 {
        self.origin + self.code.len() as u32
    }
}

/// Error produced while assembling, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for whole-program errors).
    pub line: usize,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.msg)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, PartialEq)]
enum Operand {
    Reg(Reg),
    Imm(i64),
    /// `[base]`, `[base, #imm]` or `[base, reg]`.
    Mem {
        base: Reg,
        imm: Option<i64>,
        index: Option<Reg>,
    },
    /// `{r0, r1, lr}` — low-register bits plus whether lr/pc was present.
    RegList {
        rlist: u8,
        special: bool,
    },
    /// `=value` or `=label`.
    Lit(LitValue),
    /// `.+N` / `.-N`.
    Rel(i32),
    Label(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LitValue {
    Imm(u32),
    Label(String),
}

#[derive(Debug, Clone)]
enum Target {
    Label(String),
    Rel(i32),
}

#[derive(Debug, Clone)]
enum BranchKind {
    B,
    BCond(Cond),
    Bl,
}

#[derive(Debug, Clone)]
enum Item {
    Instr(Instr),
    Branch {
        kind: BranchKind,
        target: Target,
    },
    Adr {
        rd: Reg,
        target: Target,
    },
    /// `ldr rt, =lit` — patched to an `LdrLit` at fix-up time.
    LitLoad {
        rt: Reg,
        slot: usize,
    },
    Data(Vec<u8>),
    /// A pool slot holding one 32-bit literal (value resolved in pass 2).
    PoolEntry(usize),
}

struct PendingLiteral {
    value: LitValue,
    /// Pool-entry address, assigned when the pool is flushed.
    addr: Option<u32>,
}

/// Assembles `src` at `origin`.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line for syntax errors, unknown
/// mnemonics, out-of-range immediates or branch targets, and undefined or
/// duplicate labels.
pub fn assemble(src: &str, origin: u32) -> Result<Program, AsmError> {
    let mut asm = Asm {
        origin,
        addr: origin,
        items: Vec::new(),
        symbols: BTreeMap::new(),
        literals: Vec::new(),
        unflushed: Vec::new(),
    };
    for (idx, raw) in src.lines().enumerate() {
        asm.line(idx + 1, raw)?;
    }
    if !asm.unflushed.is_empty() {
        asm.flush_pool();
    }
    asm.emit()
}

struct Asm {
    origin: u32,
    addr: u32,
    items: Vec<(usize, u32, Item)>,
    symbols: BTreeMap<String, u32>,
    literals: Vec<PendingLiteral>,
    unflushed: Vec<usize>,
}

impl Asm {
    fn push(&mut self, line: usize, item: Item) {
        let size = match &item {
            Item::Instr(i) => i.size(),
            Item::Branch { kind: BranchKind::Bl, .. } => 4,
            Item::Branch { .. } | Item::Adr { .. } | Item::LitLoad { .. } => 2,
            Item::Data(bytes) => bytes.len() as u32,
            Item::PoolEntry(_) => 4,
        };
        self.items.push((line, self.addr, item));
        self.addr += size;
    }

    fn flush_pool(&mut self) {
        if !self.addr.is_multiple_of(4) {
            self.push(0, Item::Data(vec![0, 0]));
        }
        let pending = std::mem::take(&mut self.unflushed);
        for slot in pending {
            self.literals[slot].addr = Some(self.addr);
            self.push(0, Item::PoolEntry(slot));
        }
    }

    fn line(&mut self, line: usize, raw: &str) -> Result<(), AsmError> {
        let mut text = raw;
        for marker in [";", "//", "@"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut text = text.trim();
        // Leading labels (possibly several).
        while let Some(pos) = text.find(':') {
            let (label, rest) = text.split_at(pos);
            let label = label.trim();
            if !is_ident(label) {
                break;
            }
            if self.symbols.insert(label.to_owned(), self.addr).is_some() {
                return Err(AsmError { line, msg: format!("duplicate label `{label}`") });
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            return Ok(());
        }
        if let Some(directive) = text.strip_prefix('.') {
            return self.directive(line, directive);
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let ops = parse_operands(line, rest)?;
        let item = build(line, &mnemonic.to_ascii_lowercase(), &ops, self)?;
        self.push(line, item);
        Ok(())
    }

    fn directive(&mut self, line: usize, directive: &str) -> Result<(), AsmError> {
        let (name, rest) = match directive.find(char::is_whitespace) {
            Some(pos) => (&directive[..pos], directive[pos..].trim()),
            None => (directive, ""),
        };
        let args: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        match name {
            "word" => {
                let mut bytes = Vec::new();
                for arg in &args {
                    let v = parse_imm(line, arg)?;
                    bytes.extend_from_slice(&(v as u32).to_le_bytes());
                }
                if !self.addr.is_multiple_of(4) {
                    self.push(line, Item::Data(vec![0, 0]));
                }
                self.push(line, Item::Data(bytes));
            }
            "hword" => {
                let mut bytes = Vec::new();
                for arg in &args {
                    let v = parse_imm(line, arg)?;
                    bytes.extend_from_slice(&(v as u16).to_le_bytes());
                }
                self.push(line, Item::Data(bytes));
            }
            "byte" => {
                let mut bytes = Vec::new();
                for arg in &args {
                    bytes.push(parse_imm(line, arg)? as u8);
                }
                self.push(line, Item::Data(bytes));
            }
            "space" => {
                let n = parse_imm(line, args.first().copied().unwrap_or("0"))? as usize;
                self.push(line, Item::Data(vec![0; n]));
            }
            "align" => {
                if !self.addr.is_multiple_of(4) {
                    self.push(line, Item::Data(vec![0; (4 - self.addr % 4) as usize]));
                }
            }
            "pool" => self.flush_pool(),
            other => return Err(AsmError { line, msg: format!("unknown directive `.{other}`") }),
        }
        Ok(())
    }

    fn emit(self) -> Result<Program, AsmError> {
        let Asm { origin, symbols, items, literals, .. } = self;
        let resolve = |line: usize, target: &Target, pc: u32| -> Result<i32, AsmError> {
            match target {
                Target::Rel(off) => Ok(*off),
                Target::Label(name) => {
                    let addr = symbols.get(name).ok_or_else(|| AsmError {
                        line,
                        msg: format!("undefined label `{name}`"),
                    })?;
                    Ok(*addr as i64 as i32 - pc as i32)
                }
            }
        };
        let mut code = Vec::new();
        for (line, addr, item) in &items {
            let line = *line;
            let err = |msg: String| AsmError { line, msg };
            match item {
                Item::Instr(i) => {
                    i.try_encode().map_err(|e| err(e.to_string()))?.write_to(&mut code)
                }
                Item::Branch { kind, target } => {
                    let off = resolve(line, target, addr + 4)?;
                    let instr = match kind {
                        BranchKind::B => Instr::B { offset: off },
                        BranchKind::BCond(c) => Instr::BCond { cond: *c, offset: off },
                        BranchKind::Bl => Instr::Bl { offset: off },
                    };
                    instr.try_encode().map_err(|e| err(e.to_string()))?.write_to(&mut code);
                }
                Item::Adr { rd, target } => {
                    let base = (addr + 4) & !3;
                    let off = resolve(line, target, base)?;
                    if off < 0 || off % 4 != 0 || off > 1020 {
                        return Err(err(format!("adr target out of range (offset {off})")));
                    }
                    Instr::Adr { rd: *rd, imm8: (off / 4) as u8 }
                        .try_encode()
                        .map_err(|e| err(e.to_string()))?
                        .write_to(&mut code);
                }
                Item::LitLoad { rt, slot } => {
                    let entry =
                        literals[*slot].addr.expect("pool flushed before emit assigns every slot");
                    let base = (addr + 4) & !3;
                    let off = entry as i64 - i64::from(base);
                    if off < 0 || off % 4 != 0 || off > 1020 {
                        return Err(err(format!(
                            "literal pool out of range for load at {addr:#x} (offset {off})"
                        )));
                    }
                    Instr::LdrLit { rt: *rt, imm8: (off / 4) as u8 }
                        .try_encode()
                        .map_err(|e| err(e.to_string()))?
                        .write_to(&mut code);
                }
                Item::Data(bytes) => code.extend_from_slice(bytes),
                Item::PoolEntry(slot) => {
                    let value = match &literals[*slot].value {
                        LitValue::Imm(v) => *v,
                        LitValue::Label(name) => *symbols
                            .get(name)
                            .ok_or_else(|| err(format!("undefined label `{name}` in literal")))?,
                    };
                    code.extend_from_slice(&value.to_le_bytes());
                }
            }
        }
        Ok(Program { code, symbols, origin })
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_imm(line: usize, text: &str) -> Result<i64, AsmError> {
    let text = text.trim().trim_start_matches('#');
    let (neg, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value =
        if let Some(hex) = digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X")) {
            i64::from_str_radix(hex, 16)
        } else if let Some(bin) = digits.strip_prefix("0b") {
            i64::from_str_radix(bin, 2)
        } else {
            digits.parse()
        }
        .map_err(|_| AsmError { line, msg: format!("invalid immediate `{text}`") })?;
    Ok(if neg { -value } else { value })
}

fn parse_operands(line: usize, text: &str) -> Result<Vec<Operand>, AsmError> {
    let mut ops = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let (op, remaining) = parse_one_operand(line, rest)?;
        ops.push(op);
        rest = remaining.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.is_empty() {
            return Err(AsmError { line, msg: format!("expected `,` before `{rest}`") });
        }
    }
    Ok(ops)
}

fn parse_one_operand(line: usize, text: &str) -> Result<(Operand, &str), AsmError> {
    let err = |msg: String| AsmError { line, msg };
    if let Some(rest) = text.strip_prefix('[') {
        let close = rest.find(']').ok_or_else(|| err("missing `]`".into()))?;
        let inner = &rest[..close];
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        let base: Reg =
            parts[0].parse().map_err(|_| err(format!("invalid base register `{}`", parts[0])))?;
        let (imm, index) = match parts.len() {
            1 => (None, None),
            2 => {
                if parts[1].starts_with('#') || parts[1].starts_with('-') {
                    (Some(parse_imm(line, parts[1])?), None)
                } else {
                    let idx: Reg = parts[1]
                        .parse()
                        .map_err(|_| err(format!("invalid index register `{}`", parts[1])))?;
                    (None, Some(idx))
                }
            }
            _ => return Err(err(format!("too many fields in `[{inner}]`"))),
        };
        return Ok((Operand::Mem { base, imm, index }, &rest[close + 1..]));
    }
    if let Some(rest) = text.strip_prefix('{') {
        let close = rest.find('}').ok_or_else(|| err("missing `}`".into()))?;
        let inner = &rest[..close];
        let mut rlist = 0u8;
        let mut special = false;
        for part in inner.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some((lo, hi)) = part.split_once('-') {
                let lo: Reg = lo.trim().parse().map_err(|_| err(format!("bad range `{part}`")))?;
                let hi: Reg = hi.trim().parse().map_err(|_| err(format!("bad range `{part}`")))?;
                if !lo.is_low() || !hi.is_low() || lo > hi {
                    return Err(err(format!("bad register range `{part}`")));
                }
                for i in lo.index()..=hi.index() {
                    rlist |= 1 << i;
                }
            } else {
                let reg: Reg =
                    part.parse().map_err(|_| err(format!("invalid register `{part}`")))?;
                if reg.is_low() {
                    rlist |= 1 << reg.index();
                } else if reg == Reg::LR || reg == Reg::PC {
                    special = true;
                } else {
                    return Err(err(format!("register `{part}` not allowed in list")));
                }
            }
        }
        return Ok((Operand::RegList { rlist, special }, &rest[close + 1..]));
    }
    // Single token (up to a comma).
    let end = text.find(',').unwrap_or(text.len());
    let token = text[..end].trim();
    let rest = &text[end..];
    if token.starts_with('#')
        || token.starts_with('-')
        || token.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return Ok((Operand::Imm(parse_imm(line, token)?), rest));
    }
    if let Some(lit) = token.strip_prefix('=') {
        let value = if lit.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-') {
            LitValue::Imm(parse_imm(line, lit)? as u32)
        } else {
            LitValue::Label(lit.to_owned())
        };
        return Ok((Operand::Lit(value), rest));
    }
    if let Some(relative) = token.strip_prefix('.') {
        if relative.starts_with('+') || relative.starts_with('-') {
            let off = relative
                .parse::<i32>()
                .map_err(|_| err(format!("invalid relative target `{token}`")))?;
            return Ok((Operand::Rel(off), rest));
        }
    }
    if let Ok(reg) = token.parse::<Reg>() {
        return Ok((Operand::Reg(reg), rest));
    }
    // `rN!` (write-back marker on stm/ldm base registers).
    if let Some(bare) = token.strip_suffix('!') {
        if let Ok(reg) = bare.parse::<Reg>() {
            return Ok((Operand::Reg(reg), rest));
        }
    }
    if is_ident(token) {
        return Ok((Operand::Label(token.to_owned()), rest));
    }
    Err(err(format!("cannot parse operand `{token}`")))
}

fn target_of(line: usize, op: &Operand) -> Result<Target, AsmError> {
    match op {
        Operand::Label(name) => Ok(Target::Label(name.clone())),
        Operand::Rel(off) => Ok(Target::Rel(*off)),
        other => Err(AsmError { line, msg: format!("expected branch target, got {other:?}") }),
    }
}

fn low_reg(line: usize, op: &Operand) -> Result<Reg, AsmError> {
    match op {
        Operand::Reg(r) if r.is_low() => Ok(*r),
        other => Err(AsmError { line, msg: format!("expected low register, got {other:?}") }),
    }
}

fn any_reg(line: usize, op: &Operand) -> Result<Reg, AsmError> {
    match op {
        Operand::Reg(r) => Ok(*r),
        other => Err(AsmError { line, msg: format!("expected register, got {other:?}") }),
    }
}

fn scaled(line: usize, value: i64, scale: i64, max: i64, what: &str) -> Result<u8, AsmError> {
    if value % scale != 0 || value < 0 || value / scale > max {
        return Err(AsmError {
            line,
            msg: format!("{what} offset {value} not a multiple of {scale} in 0..={}", max * scale),
        });
    }
    Ok((value / scale) as u8)
}

#[allow(clippy::too_many_lines)]
fn build(line: usize, mnemonic: &str, ops: &[Operand], asm: &mut Asm) -> Result<Item, AsmError> {
    use Operand as O;
    let err = |msg: String| AsmError { line, msg };
    let instr = |i: Instr| Ok(Item::Instr(i));

    // Conditional branches: b<cond>.
    if let Some(cond_text) = mnemonic.strip_prefix('b') {
        if let Ok(cond) = cond_text.parse::<Cond>() {
            let [target] = ops else {
                return Err(err(format!("`{mnemonic}` takes one target")));
            };
            return Ok(Item::Branch {
                kind: BranchKind::BCond(cond),
                target: target_of(line, target)?,
            });
        }
    }

    // Simple ALU register ops (format 4).
    let alu = |op: AluOp| -> Result<Item, AsmError> {
        let [d, m] = ops else {
            return Err(err(format!("`{mnemonic}` takes two registers")));
        };
        Ok(Item::Instr(Instr::Alu { op, rdn: low_reg(line, d)?, rm: low_reg(line, m)? }))
    };

    match (mnemonic, ops) {
        ("b", [t]) => Ok(Item::Branch { kind: BranchKind::B, target: target_of(line, t)? }),
        ("bl", [t]) => Ok(Item::Branch { kind: BranchKind::Bl, target: target_of(line, t)? }),
        ("bx", [m]) => instr(Instr::Bx { rm: any_reg(line, m)? }),
        ("blx", [m]) => instr(Instr::Blx { rm: any_reg(line, m)? }),
        ("adr", [d, O::Imm(v)]) => {
            instr(Instr::Adr { rd: low_reg(line, d)?, imm8: scaled(line, *v, 4, 255, "adr")? })
        }
        ("adr", [d, t]) => Ok(Item::Adr { rd: low_reg(line, d)?, target: target_of(line, t)? }),
        ("movs", [d, O::Imm(v)]) => {
            let v = u8::try_from(*v).map_err(|_| err(format!("movs immediate {v} > 255")))?;
            instr(Instr::MovImm { rd: low_reg(line, d)?, imm8: v })
        }
        ("movs", [d, O::Reg(m)]) if m.is_low() => {
            instr(Instr::ShiftImm { op: ShiftOp::Lsl, rd: low_reg(line, d)?, rm: *m, imm5: 0 })
        }
        ("mov", [d, m]) => instr(Instr::MovHi { rd: any_reg(line, d)?, rm: any_reg(line, m)? }),
        ("cmp", [n, O::Imm(v)]) => {
            let v = u8::try_from(*v).map_err(|_| err(format!("cmp immediate {v} > 255")))?;
            instr(Instr::CmpImm { rn: low_reg(line, n)?, imm8: v })
        }
        ("cmp", [n, O::Reg(m)]) => {
            let rn = any_reg(line, n)?;
            if rn.is_low() && m.is_low() {
                instr(Instr::Alu { op: AluOp::Cmp, rdn: rn, rm: *m })
            } else {
                instr(Instr::CmpHi { rn, rm: *m })
            }
        }
        ("adds", [d, n, O::Reg(m)]) => {
            instr(Instr::AddReg3 { rd: low_reg(line, d)?, rn: low_reg(line, n)?, rm: *m })
        }
        ("adds", [d, n, O::Imm(v)]) => {
            let v = u8::try_from(*v).ok().filter(|v| *v < 8);
            let imm3 = v.ok_or_else(|| err("adds 3-operand immediate must be 0-7".into()))?;
            instr(Instr::AddImm3 { rd: low_reg(line, d)?, rn: low_reg(line, n)?, imm3 })
        }
        ("adds", [d, O::Imm(v)]) => {
            let v = u8::try_from(*v).map_err(|_| err(format!("adds immediate {v} > 255")))?;
            instr(Instr::AddImm8 { rdn: low_reg(line, d)?, imm8: v })
        }
        ("subs", [d, n, O::Reg(m)]) => {
            instr(Instr::SubReg3 { rd: low_reg(line, d)?, rn: low_reg(line, n)?, rm: *m })
        }
        ("subs", [d, n, O::Imm(v)]) => {
            let v = u8::try_from(*v).ok().filter(|v| *v < 8);
            let imm3 = v.ok_or_else(|| err("subs 3-operand immediate must be 0-7".into()))?;
            instr(Instr::SubImm3 { rd: low_reg(line, d)?, rn: low_reg(line, n)?, imm3 })
        }
        ("subs", [d, O::Imm(v)]) => {
            let v = u8::try_from(*v).map_err(|_| err(format!("subs immediate {v} > 255")))?;
            instr(Instr::SubImm8 { rdn: low_reg(line, d)?, imm8: v })
        }
        ("add", [O::Reg(r), O::Imm(v)]) | ("add", [O::Reg(r), O::Reg(Reg::SP), O::Imm(v)])
            if *r == Reg::SP =>
        {
            instr(Instr::AddSp { imm7: scaled(line, *v, 4, 127, "add sp")? })
        }
        ("sub", [O::Reg(r), O::Imm(v)]) | ("sub", [O::Reg(r), O::Reg(Reg::SP), O::Imm(v)])
            if *r == Reg::SP =>
        {
            instr(Instr::SubSp { imm7: scaled(line, *v, 4, 127, "sub sp")? })
        }
        ("add", [d, O::Reg(Reg::SP), O::Imm(v)]) => instr(Instr::AddSpImm {
            rd: low_reg(line, d)?,
            imm8: scaled(line, *v, 4, 255, "add rd, sp")?,
        }),
        ("add", [d, m]) => instr(Instr::AddHi { rdn: any_reg(line, d)?, rm: any_reg(line, m)? }),
        ("lsls" | "lsrs" | "asrs", [d, m, O::Imm(v)]) => {
            let op = match mnemonic {
                "lsls" => ShiftOp::Lsl,
                "lsrs" => ShiftOp::Lsr,
                _ => ShiftOp::Asr,
            };
            // lsr/asr encode a shift of 32 as imm5 = 0; lsl cannot shift by 32.
            let imm5 = match (op, *v) {
                (ShiftOp::Lsl, 0..=31) => *v as u8,
                (ShiftOp::Lsr | ShiftOp::Asr, 32) => 0,
                (ShiftOp::Lsr | ShiftOp::Asr, 1..=31) => *v as u8,
                _ => return Err(err(format!("shift amount {v} out of range"))),
            };
            instr(Instr::ShiftImm { op, rd: low_reg(line, d)?, rm: low_reg(line, m)?, imm5 })
        }
        ("lsls", [_, _]) => alu(AluOp::Lsl),
        ("lsrs", [_, _]) => alu(AluOp::Lsr),
        ("asrs", [_, _]) => alu(AluOp::Asr),
        ("ands", _) => alu(AluOp::And),
        ("eors", _) => alu(AluOp::Eor),
        ("adcs", _) => alu(AluOp::Adc),
        ("sbcs", _) => alu(AluOp::Sbc),
        ("rors", _) => alu(AluOp::Ror),
        ("tst", _) => alu(AluOp::Tst),
        ("rsbs", [d, m]) => alu_pair(line, AluOp::Rsb, d, m),
        ("rsbs", [d, m, O::Imm(0)]) => alu_pair(line, AluOp::Rsb, d, m),
        ("negs", [d, m]) => alu_pair(line, AluOp::Rsb, d, m),
        ("cmn", _) => alu(AluOp::Cmn),
        ("orrs", _) => alu(AluOp::Orr),
        ("muls", [d, m]) => alu_pair(line, AluOp::Mul, d, m),
        ("muls", [d, m, d2]) if d == d2 => alu_pair(line, AluOp::Mul, d, m),
        ("bics", _) => alu(AluOp::Bic),
        ("mvns", _) => alu(AluOp::Mvn),
        ("sxth", [d, m]) => instr(Instr::Sxth { rd: low_reg(line, d)?, rm: low_reg(line, m)? }),
        ("sxtb", [d, m]) => instr(Instr::Sxtb { rd: low_reg(line, d)?, rm: low_reg(line, m)? }),
        ("uxth", [d, m]) => instr(Instr::Uxth { rd: low_reg(line, d)?, rm: low_reg(line, m)? }),
        ("uxtb", [d, m]) => instr(Instr::Uxtb { rd: low_reg(line, d)?, rm: low_reg(line, m)? }),
        ("rev", [d, m]) => instr(Instr::Rev { rd: low_reg(line, d)?, rm: low_reg(line, m)? }),
        ("rev16", [d, m]) => instr(Instr::Rev16 { rd: low_reg(line, d)?, rm: low_reg(line, m)? }),
        ("revsh", [d, m]) => instr(Instr::Revsh { rd: low_reg(line, d)?, rm: low_reg(line, m)? }),
        ("push", [O::RegList { rlist, special }]) => {
            instr(Instr::Push { rlist: *rlist, lr: *special })
        }
        ("pop", [O::RegList { rlist, special }]) => {
            instr(Instr::Pop { rlist: *rlist, pc: *special })
        }
        ("stmia" | "stm", [n, O::RegList { rlist, special: false }]) => {
            instr(Instr::Stm { rn: low_reg(line, n)?, rlist: *rlist })
        }
        ("ldmia" | "ldm", [n, O::RegList { rlist, special: false }]) => {
            instr(Instr::Ldm { rn: low_reg(line, n)?, rlist: *rlist })
        }
        ("bkpt", [O::Imm(v)]) => instr(Instr::Bkpt { imm8: *v as u8 }),
        ("udf", [O::Imm(v)]) => instr(Instr::Udf { imm8: *v as u8 }),
        ("svc", [O::Imm(v)]) => instr(Instr::Svc { imm8: *v as u8 }),
        ("nop", []) => instr(Instr::NOP),
        ("yield", []) => instr(Instr::Hint { hint: Hint::Yield }),
        ("wfe", []) => instr(Instr::Hint { hint: Hint::Wfe }),
        ("wfi", []) => instr(Instr::Hint { hint: Hint::Wfi }),
        ("sev", []) => instr(Instr::Hint { hint: Hint::Sev }),
        ("cpsie", _) => instr(Instr::Cps { disable: false }),
        ("cpsid", _) => instr(Instr::Cps { disable: true }),
        ("ldr", [t, O::Lit(value)]) => {
            let rt = low_reg(line, t)?;
            let slot = asm.literals.len();
            asm.literals.push(PendingLiteral { value: value.clone(), addr: None });
            asm.unflushed.push(slot);
            Ok(Item::LitLoad { rt, slot })
        }
        ("ldr" | "ldrb" | "ldrh" | "str" | "strb" | "strh", [t, O::Mem { base, imm, index }]) => {
            let rt = low_reg(line, t)?;
            let load = mnemonic.starts_with("ldr");
            let width = match mnemonic.as_bytes()[3..].first() {
                Some(b'b') => Width::Byte,
                Some(b'h') => Width::Half,
                _ => Width::Word,
            };
            if let Some(rm) = index {
                let i = if load {
                    Instr::LoadReg { width, rt, rn: *base, rm: *rm }
                } else {
                    Instr::StoreReg { width, rt, rn: *base, rm: *rm }
                };
                return instr(i);
            }
            let offset = imm.unwrap_or(0);
            if *base == Reg::SP {
                if width != Width::Word {
                    return Err(err("sp-relative access must be word-sized".into()));
                }
                let imm8 = scaled(line, offset, 4, 255, "sp-relative")?;
                return instr(if load {
                    Instr::LdrSp { rt, imm8 }
                } else {
                    Instr::StrSp { rt, imm8 }
                });
            }
            if *base == Reg::PC {
                if !load || width != Width::Word {
                    return Err(err("pc-relative access must be `ldr`".into()));
                }
                let imm8 = scaled(line, offset, 4, 255, "pc-relative")?;
                return instr(Instr::LdrLit { rt, imm8 });
            }
            let scale = i64::from(width.bytes());
            let imm5 = scaled(line, offset, scale, 31, "load/store")?;
            instr(if load {
                Instr::LoadImm { width, rt, rn: *base, imm5 }
            } else {
                Instr::StoreImm { width, rt, rn: *base, imm5 }
            })
        }
        ("ldrsb", [t, O::Mem { base, index: Some(rm), .. }]) => {
            instr(Instr::LdrsbReg { rt: low_reg(line, t)?, rn: *base, rm: *rm })
        }
        ("ldrsh", [t, O::Mem { base, index: Some(rm), .. }]) => {
            instr(Instr::LdrshReg { rt: low_reg(line, t)?, rn: *base, rm: *rm })
        }
        _ => Err(err(format!("cannot assemble `{mnemonic}` with operands {ops:?}"))),
    }
}

fn alu_pair(line: usize, op: AluOp, d: &Operand, m: &Operand) -> Result<Item, AsmError> {
    Ok(Item::Instr(Instr::Alu { op, rdn: low_reg(line, d)?, rm: low_reg(line, m)? }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode16;

    fn one(src: &str) -> Instr {
        let prog = assemble(src, 0).unwrap();
        assert_eq!(prog.code.len(), 2, "{src}");
        decode16(u16::from_le_bytes([prog.code[0], prog.code[1]])).unwrap()
    }

    #[test]
    fn basic_instructions() {
        assert_eq!(one("movs r0, #0xAA"), Instr::MovImm { rd: Reg::R0, imm8: 0xAA });
        assert_eq!(one("mov r3, sp"), Instr::MovHi { rd: Reg::R3, rm: Reg::SP });
        assert_eq!(one("adds r3, #7"), Instr::AddImm8 { rdn: Reg::R3, imm8: 7 });
        assert_eq!(
            one("ldrb r3, [r3]"),
            Instr::LoadImm { width: Width::Byte, rt: Reg::R3, rn: Reg::R3, imm5: 0 }
        );
        assert_eq!(one("cmp r3, #0"), Instr::CmpImm { rn: Reg::R3, imm8: 0 });
        assert_eq!(one("cmp r2, r3"), Instr::Alu { op: AluOp::Cmp, rdn: Reg::R2, rm: Reg::R3 });
        assert_eq!(one("cmp r8, r3"), Instr::CmpHi { rn: Reg::R8, rm: Reg::R3 });
        assert_eq!(one("bx lr"), Instr::Bx { rm: Reg::LR });
        assert_eq!(one("push {r4-r6, lr}"), Instr::Push { rlist: 0b0111_0000, lr: true });
        assert_eq!(one("add sp, #8"), Instr::AddSp { imm7: 2 });
        assert_eq!(one("sub sp, sp, #8"), Instr::SubSp { imm7: 2 });
        assert_eq!(one("add r1, sp, #8"), Instr::AddSpImm { rd: Reg::R1, imm8: 2 });
        assert_eq!(one("str r0, [sp, #4]"), Instr::StrSp { rt: Reg::R0, imm8: 1 });
        assert_eq!(
            one("ldr r2, [r1, r0]"),
            Instr::LoadReg { width: Width::Word, rt: Reg::R2, rn: Reg::R1, rm: Reg::R0 }
        );
        assert_eq!(
            one("strh r2, [r1, #4]"),
            Instr::StoreImm { width: Width::Half, rt: Reg::R2, rn: Reg::R1, imm5: 2 }
        );
        assert_eq!(one("movs r1, r2"), one("lsls r1, r2, #0"));
        assert_eq!(one("negs r0, r1"), Instr::Alu { op: AluOp::Rsb, rdn: Reg::R0, rm: Reg::R1 });
    }

    #[test]
    fn labels_and_branches() {
        let src = "
        loop:
            cmp r3, #0
            beq loop
            b done
        done:
            bkpt #0
        ";
        let prog = assemble(src, 0x1000).unwrap();
        assert_eq!(prog.symbols["loop"], 0x1000);
        assert_eq!(prog.symbols["done"], 0x1006);
        // beq loop: at 0x1002, PC 0x1006, target 0x1000 → offset −6.
        let beq = decode16(u16::from_le_bytes([prog.code[2], prog.code[3]])).unwrap();
        assert_eq!(beq, Instr::BCond { cond: Cond::Eq, offset: -6 });
        // b done: at 0x1004, PC 0x1008, target 0x1006 → offset −2.
        let b = decode16(u16::from_le_bytes([prog.code[4], prog.code[5]])).unwrap();
        assert_eq!(b, Instr::B { offset: -2 });
    }

    #[test]
    fn relative_targets() {
        assert_eq!(one("beq .+6"), Instr::BCond { cond: Cond::Eq, offset: 6 });
        assert_eq!(one("b .-4"), Instr::B { offset: -4 });
    }

    #[test]
    fn literal_pool_load() {
        let src = "
            ldr r3, =0xD3B9AEC6
            bkpt #0
        ";
        let prog = assemble(src, 0).unwrap();
        // ldr(2) + bkpt(2) + pool(4) = 8 bytes.
        assert_eq!(prog.code.len(), 8);
        assert_eq!(&prog.code[4..8], &0xD3B9_AEC6u32.to_le_bytes());
        let ldr = decode16(u16::from_le_bytes([prog.code[0], prog.code[1]])).unwrap();
        // Load at 0, PC base (0+4)&!3 = 4, pool at 4 → imm8 = 0.
        assert_eq!(ldr, Instr::LdrLit { rt: Reg::R3, imm8: 0 });
    }

    #[test]
    fn literal_pool_alignment_padding() {
        let src = "
            ldr r0, =0x11223344
            nop
            nop
        ";
        let prog = assemble(src, 0).unwrap();
        // 3 halfwords then 2 bytes padding then the word.
        assert_eq!(prog.code.len(), 12);
        assert_eq!(&prog.code[8..12], &0x1122_3344u32.to_le_bytes());
    }

    #[test]
    fn literal_label_reference() {
        let src = "
            ldr r0, =target
            bkpt #0
        target:
            nop
        ";
        let prog = assemble(src, 0x2000).unwrap();
        let target = prog.symbols["target"];
        let pool_bytes: [u8; 4] = prog.code[prog.code.len() - 4..].try_into().unwrap();
        assert_eq!(u32::from_le_bytes(pool_bytes), target);
    }

    #[test]
    fn data_directives() {
        let prog = assemble(".hword 0x1234\n.word 0xAABBCCDD\n.byte 1, 2\n", 0).unwrap();
        assert_eq!(prog.code[..2], [0x34, 0x12]);
        // .word aligns to 4 first.
        assert_eq!(&prog.code[4..8], &0xAABB_CCDDu32.to_le_bytes());
        assert_eq!(&prog.code[8..10], &[1, 2]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus r1\n", 0).unwrap_err();
        assert_eq!(err.line, 2);
        let err = assemble("movs r0, #300\n", 0).unwrap_err();
        assert_eq!(err.line, 1);
        let err = assemble("b nowhere\n", 0).unwrap_err();
        assert!(err.msg.contains("undefined label"));
        let err = assemble("x: nop\nx: nop\n", 0).unwrap_err();
        assert!(err.msg.contains("duplicate label"));
    }

    #[test]
    fn comments_are_ignored() {
        let prog = assemble("nop ; trailing\n// full line\n@ gas style\nnop\n", 0).unwrap();
        assert_eq!(prog.code.len(), 4);
    }

    #[test]
    fn bl_assembles_to_four_bytes() {
        let src = "
            bl func
            bkpt #0
        func:
            bx lr
        ";
        let prog = assemble(src, 0).unwrap();
        assert_eq!(prog.code.len(), 8);
        let (instr, size) = crate::decode::decode_bytes(&prog.code).unwrap();
        // bl at 0, PC 4, target 6 → offset +2.
        assert_eq!((instr, size), (Instr::Bl { offset: 2 }, 4));
    }
}
