//! # gd-cc — a C-subset frontend for the GlitchResistor IR
//!
//! The Clang substitute of the *Glitching Demystified* reproduction:
//! GlitchResistor's users write C firmware, and its ENUM rewriter operates
//! at the source/AST level where enum provenance still exists. This crate
//! compiles a deliberately small C subset — exactly the idioms the paper's
//! evaluation firmware uses — into [`gd_ir`] modules that the defense
//! passes and the Thumb backend consume.
//!
//! Supported: `int`/`char`/`short`/`void`, `volatile`, C-style enums,
//! globals, functions, `if`/`else`, `while`, `do`-`while`, `for`
//! (desugared), `break`/`continue`, `return`, the usual operators with C
//! precedence (including short-circuit `&&`/`||`), compound assignment,
//! `++`/`--`, calls, and MMIO access via `*(volatile int *)ADDR`. The
//! non-standard `__sensitive` qualifier marks a global for the
//! data-integrity defense; [`Options::sensitive`] plays the role of the
//! paper's configuration file.
//!
//! ```
//! use gd_cc::compile_c;
//!
//! let module = compile_c(
//!     "int triple(int x) { return 3 * x; }
//!      int main(void) { return triple(14); }",
//! )?;
//! gd_ir::verify_module(&module)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ast;
mod lex;
mod lower;

pub use ast::{parse, CFunc, CGlobal, CProgram, CType, Expr, LValue, Stmt};
pub use lex::CcError;
pub use lower::{compile_c, compile_c_with, Options};
