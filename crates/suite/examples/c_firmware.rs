//! The whole GlitchResistor workflow starting from C source — the way the
//! paper's users drive the tool: write firmware in C, mark the sensitive
//! variable, compile with the defense passes, attack the result.
//!
//! ```text
//! cargo run --release --example c_firmware
//! ```

use glitching_demystified::prelude::*;

const FIRMWARE_C: &str = r#"
/* A debug-unlock handler: the vendor password is checked before the
 * debug interface is re-enabled (cf. the JTAG re-enable attack the paper
 * cites against ASIL-D automotive MCUs). */

enum Access { LOCKED, UNLOCKED };

__sensitive int failures = 0;
volatile int mailbox = 0;      /* attacker-supplied password appears here */

int password_ok(int guess) {
    if (guess == 0x5EC12E7) { return 1; }
    return 0;
}

int main(void) {
    *(volatile int *)0x48000014 = 1;   /* observable activity: the trigger */
    int guess = mailbox;
    failures = failures + 1;
    if (password_ok(guess)) {
        return 0xACCE55;               /* debug port unlocked */
    }
    while (1) { }                      /* locked forever */
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // C → IR.
    let mut module = compile_c(FIRMWARE_C)?;
    println!(
        "compiled C firmware: {} functions, {} globals",
        module.funcs.len(),
        module.globals.len()
    );

    // Harden (every defense) and lower to Thumb-1.
    let report = harden(&mut module, &Config::new(Defenses::ALL));
    verify_module(&module)?;
    println!(
        "hardened: {} branch checks, {} loop checks, {} shadowed stores, {} RS-coded functions, {} RS-coded enums",
        report.branches_instrumented,
        report.loops_instrumented,
        report.stores_shadowed,
        report.returns_rewritten,
        report.enums_rewritten
    );
    let unlocked = module.enum_def("Access").expect("enum kept").value_of(1);
    println!("enum UNLOCKED is now {unlocked:#010x} (was 1)");

    let image = compile(&module, "main")?;
    println!("firmware image: {} bytes of .text\n", image.sizes.text);

    // Attack it: the password is wrong, so only a glitch opens the port.
    let device = Device::from_image(&image);
    let model = FaultModel::default();
    let spec = AttackSpec { success: SuccessCheck::HaltWithR0(0xACCE55), max_cycles: 300_000 };
    let mut outcomes = std::collections::BTreeMap::<&str, u32>::new();
    let mut boot = 0u64;
    for cycle in 0..60u32 {
        for (w, o) in [(12i8, -18i8), (11, -19), (13, -17), (-34, 22), (-35, 21)] {
            boot += 1;
            let attempt =
                run_attack(&device, &model, GlitchParams::single(cycle, w, o), boot, &spec, None);
            let key = match attempt.outcome {
                AttackOutcome::Success => "unlocked (attack won)",
                AttackOutcome::Detected => "detected",
                AttackOutcome::Crash => "crashed",
                AttackOutcome::Reset => "brown-out",
                AttackOutcome::NoEffect => "no effect",
            };
            *outcomes.entry(key).or_default() += 1;
        }
    }
    println!("300 tuned single-glitch attempts against the hardened unlock:");
    for (k, v) in outcomes {
        println!("  {k:<22} {v}");
    }
    Ok(())
}
