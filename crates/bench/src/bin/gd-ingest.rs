//! The third-party-firmware ingestion driver over the committed demo
//! image (`testdata/ingest_demo.bin`).
//!
//! - no arguments: the ingestion report (extents, spec JSON, ELF
//!   cross-check) — the `results/ingest_demo.txt` artifact.
//! - `--lint`: the `GL02xx` glitch-surface report over the ingested
//!   image — `results/lint_ingest.txt`.
//! - `--faultsim`: first-order xor1.t / xor2.t divergence campaigns over
//!   the ingested image — `results/multifault_ingest.txt`. Output is
//!   bit-identical at any `GD_THREADS`: the class list is chunked at a
//!   fixed size and tallies merge in chunk order.
//! - `--check`: diff all three regenerated artifacts against their
//!   committed goldens.

use std::process::ExitCode;

use gd_emu::Config;
use gd_faultsim::{halfword_slots, prune_model, sites, DivergenceRunner, FaultClass, Registry};
use gd_glitch_emu::{Outcome, Tally};
use gd_ingest::testimg::{demo_elf, DEMO_WATCH};
use gd_ingest::{IngestSpec, Ingested};
use gd_lint::{LintReport, Severity, Suppressions};

/// Registry indices the ingested campaign sweeps (xor1.t, xor2.t).
const MODELS: [usize; 2] = [0, 2];

/// Fixed chunk size for the trial fan-out. The partition depends only on
/// the class list, never on the worker count, so tallies merge to the
/// same bytes at any `GD_THREADS`.
const CHUNK: usize = 64;

fn demo_blob() -> Vec<u8> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../testdata/ingest_demo.bin");
    std::fs::read(path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn ingest_demo() -> Ingested {
    gd_ingest::ingest_bin(&demo_blob(), gd_ingest::testimg::DEMO_BASE).expect("demo blob ingests")
}

/// The emulator configuration every ingested-image analysis runs under:
/// third-party code is free to use the Thumb-2 wide encodings the
/// workspace compiler's ARMv6-M subset avoids.
fn wide_cfg() -> Config {
    Config { wide: true, ..Config::default() }
}

fn report_one(out: &mut String, label: &str, ing: &Ingested) {
    out.push_str(&format!("== {label} ==\n"));
    out.push_str(&format!("format:   {}\n", ing.format.label()));
    out.push_str(&format!("base:     {:#010x}\n", ing.image.text_base));
    out.push_str(&format!("entry:    {:#010x}\n", ing.image.entry));
    out.push_str(&format!("sp:       {:#010x}\n", ing.sp));
    out.push_str(&format!(
        "text:     {} bytes ({} pool bytes excluded from code)\n",
        ing.image.text.len(),
        ing.pool_bytes(),
    ));
    out.push_str("extents:\n");
    for e in &ing.image.extents {
        out.push_str(&format!(
            "  {:<12} {:#010x}..{:#010x}  code ends {:#010x}\n",
            e.name, e.base, e.end, e.code_end,
        ));
    }
    out.push_str("spec:\n");
    out.push_str(&ing.spec().to_json_text());
    out.push('\n');
}

/// The `results/ingest_demo.txt` report: the committed raw dump, the
/// same image through the ELF path, and the invariants tying them.
fn report() -> String {
    let mut out = String::new();
    out.push_str(&"-".repeat(60));
    out.push('\n');
    out.push_str("Ingestion — testdata/ingest_demo.bin\n");
    out.push_str(&"-".repeat(60));
    out.push('\n');
    let bin = ingest_demo();
    report_one(&mut out, "raw dump", &bin);
    let elf = gd_ingest::ingest_elf(&demo_elf()).expect("demo ELF ingests");
    report_one(&mut out, "ELF cross-check (in-memory wrap of the same bytes)", &elf);
    let spec = bin.spec().to_json().to_string_compact().expect("spec serializes");
    let round = IngestSpec::from_json_text(&spec).expect("spec round-trips");
    out.push_str(&format!(
        "cross-check: text bytes agree: {}; pool bytes agree: {}; spec round-trips: {}\n",
        elf.image.text == bin.image.text,
        elf.pool_bytes() == bin.pool_bytes(),
        round == bin.spec(),
    ));
    out
}

/// The `results/lint_ingest.txt` report: `GL02xx` over both ingestion
/// paths — the raw dump sees one `reset` routine, the ELF's symbols
/// split the same bytes into `reset` + `check`.
fn lint_report() -> String {
    let mut out = String::new();
    for (label, ing) in [
        ("raw dump (vector-table extents)", ingest_demo()),
        ("ELF (symbol extents)", gd_ingest::ingest_elf(&demo_elf()).expect("demo ELF ingests")),
    ] {
        let (findings, sensitivity) = gd_lint::lint_image(&ing.image);
        let report = LintReport::new(findings, &Suppressions::default());
        out.push_str(&format!("== {label} ==\n"));
        out.push_str(&report.render_text(Severity::Warning));
        out.push_str("-- glitch sensitivity --\n");
        for (func, s) in &sensitivity {
            out.push_str(&format!(
                "{func}: {} branches, {} diverting flips \
                 ({} inverted, {} unconditional, {} fall-through)\n",
                s.branches,
                s.diversions(),
                s.inverted,
                s.unconditional,
                s.fall_through,
            ));
        }
    }
    out
}

/// One first-order divergence campaign over the ingested image.
fn order1(ing: &Ingested, model_idx: usize) -> (Tally, u64, u64, u64) {
    let cfg = wide_cfg();
    let funcs: Vec<&str> = ing.image.extents.iter().map(|e| e.name.as_str()).collect();
    let scope_sites = sites(&ing.image, cfg, &funcs);
    let slots = halfword_slots(&ing.image, &funcs);
    let registry = Registry::standard();
    let mc =
        prune_model(model_idx, registry.models()[model_idx].as_ref(), &scope_sites, slots, cfg);
    let ranges: Vec<(u32, u32)> = ing.image.extents.iter().map(|e| (e.base, e.end)).collect();
    let tallies = gd_exec::par_map_chunks(&mc.classes, CHUNK, |chunk| {
        let mut runner = DivergenceRunner::new(&ing.image, cfg, &ranges, Some(DEMO_WATCH));
        let mut tally = Tally::default();
        for class in chunk.items {
            let outcome = match class.outcome {
                Some(o) => o,
                None => runner.run(&[class.rep()]),
            };
            tally.record_n(outcome, class.weight());
        }
        tally
    });
    let mut tally = Tally::default();
    for t in &tallies {
        tally.merge(t);
    }
    // Candidates at halfwords the walk never visits (the pool) never
    // fire with fetch-stage injection: No Effect.
    tally.record_n(
        Outcome::NoEffect,
        mc.enumerated - mc.classes.iter().map(FaultClass::weight).sum::<u64>(),
    );
    debug_assert_eq!(tally.total(), mc.enumerated);
    (tally, mc.enumerated, mc.pruned(), mc.simulated)
}

fn row(out: &mut String, label: &str, tally: &Tally, enumerated: u64, pruned: u64, simulated: u64) {
    out.push_str(&format!("{label:<10} {enumerated:>10} {simulated:>9} {pruned:>10}"));
    for o in Outcome::ALL {
        let w = o.label().len().max(9);
        out.push_str(&format!("  {:>w$}", tally.count(o)));
    }
    out.push('\n');
}

/// The `results/multifault_ingest.txt` report.
fn faultsim_report() -> String {
    let ing = ingest_demo();
    let names = Registry::standard().names();
    let mut out = String::new();
    out.push_str(&"-".repeat(60));
    out.push('\n');
    out.push_str(&format!(
        "Divergence campaigns — ingested testdata/ingest_demo.bin ({})\n",
        ing.image.extents.iter().map(|e| e.name.as_str()).collect::<Vec<_>>().join(", "),
    ));
    out.push_str(&"-".repeat(60));
    out.push('\n');
    out.push_str("Order 1 — one armed fault per trial, baseline-divergence taxonomy\n");
    let mut header =
        format!("{:<10} {:>10} {:>9} {:>10}", "Model", "Enumerated", "Simulated", "Pruned");
    for o in Outcome::ALL {
        header.push_str(&format!("  {:>9}", o.label()));
    }
    header.push('\n');
    out.push_str(&header);
    let (mut enumerated, mut pruned, mut simulated) = (0u64, 0u64, 0u64);
    for model in MODELS {
        let (tally, e, p, s) = order1(&ing, model);
        row(&mut out, names[model], &tally, e, p, s);
        enumerated += e;
        pruned += p;
        simulated += s;
    }
    out.push('\n');
    let milli = if enumerated == 0 { 0 } else { pruned * 1000 / enumerated };
    out.push_str(&format!(
        "Pruned {pruned} of {enumerated} candidate trials ({}.{}% = {milli} milli); \
         simulated {simulated}\n",
        milli / 10,
        milli % 10,
    ));
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            print!("{}", report());
            ExitCode::SUCCESS
        }
        Some("--lint") => {
            print!("{}", lint_report());
            ExitCode::SUCCESS
        }
        Some("--faultsim") => {
            print!("{}", faultsim_report());
            ExitCode::SUCCESS
        }
        Some("--check") => {
            let mut code = ExitCode::SUCCESS;
            for (golden, regen_args) in [
                ("ingest_demo.txt", &[][..]),
                ("lint_ingest.txt", &["--lint"][..]),
                ("multifault_ingest.txt", &["--faultsim"][..]),
            ] {
                if gd_bench::selfcheck::check(golden, regen_args) != ExitCode::SUCCESS {
                    code = ExitCode::FAILURE;
                }
            }
            code
        }
        Some(other) => {
            eprintln!("unknown argument `{other}` (try --lint, --faultsim, --check)");
            ExitCode::FAILURE
        }
    }
}
