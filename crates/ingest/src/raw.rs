//! Raw `.bin` ingestion: a flash dump beginning with a Cortex-M vector
//! table.
//!
//! The only structure a raw dump guarantees is the vector table the boot
//! ROM itself relies on: word 0 is the initial stack pointer, word 1 the
//! reset vector (Thumb bit set), and subsequent words are exception /
//! interrupt handlers. Handler words that point back into the image
//! (Thumb bit set) are treated as routine entries for extent inference;
//! the scan stops at the first word that does not, which is where the
//! table ends and code begins on every image the tooling targets.

use std::collections::BTreeMap;

use gd_backend::{FirmwareImage, SectionSizes};

use crate::extents::infer_extents;
use crate::{metrics, Format, IngestError, Ingested};

/// Longest vector table scanned: 16 system exceptions + 32 IRQs covers
/// every Cortex-M0 part; scanning further only risks misreading code
/// words as handlers.
pub const MAX_VECTORS: usize = 48;

fn word(bytes: &[u8], i: usize) -> Option<u32> {
    let b = bytes.get(i * 4..i * 4 + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Ingests a raw flash dump loaded at `base`.
///
/// # Errors
///
/// Rejects dumps shorter than a two-word vector table, with an
/// implausible initial SP (zero or not 4-aligned), with a reset vector
/// that is not a Thumb-bit address inside the dump, or whose reset
/// handler yields no decodable code.
pub fn ingest_bin(bytes: &[u8], base: u32) -> Result<Ingested, IngestError> {
    if bytes.len() < 8 {
        return Err(IngestError::Truncated { what: "vector table" });
    }
    let end = base + bytes.len() as u32;
    let sp = word(bytes, 0).expect("length checked");
    if sp == 0 || sp % 4 != 0 {
        return Err(IngestError::BadStackPointer { sp });
    }
    let reset = word(bytes, 1).expect("length checked");
    let in_image = |w: u32| w & 1 == 1 && (w & !1) >= base && (w & !1) < end;
    if !in_image(reset) {
        return Err(IngestError::BadResetVector { vector: reset });
    }
    let entry = reset & !1;

    // Handler slots after the reset vector, while they keep looking like
    // Thumb pointers into the image. Slot 0 names the reset handler.
    let mut starts: Vec<(String, u32)> = vec![("reset".to_owned(), entry)];
    for i in 2..MAX_VECTORS {
        match word(bytes, i) {
            Some(w) if in_image(w) => {
                let target = w & !1;
                if !starts.iter().any(|(_, a)| *a == target) {
                    starts.push((format!("handler_{i}"), target));
                }
            }
            _ => break,
        }
    }

    let extents = infer_extents(bytes, base, &starts);
    if extents.iter().all(|e| e.code_end == e.base) {
        return Err(IngestError::NoCode);
    }
    let symbols: BTreeMap<String, u32> = extents.iter().map(|e| (e.name.clone(), e.base)).collect();
    let image = FirmwareImage {
        text: bytes.to_vec(),
        text_base: base,
        data: Vec::new(),
        symbols,
        entry,
        sizes: SectionSizes { text: bytes.len() as u32, ..SectionSizes::default() },
        global_sections: BTreeMap::new(),
        extents,
    };
    let ingested = Ingested { format: Format::Bin, image, sp };
    metrics::record(&ingested);
    Ok(ingested)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testimg;

    #[test]
    fn demo_bin_ingests_with_expected_shape() {
        let (bytes, base) = (testimg::demo_bin(), testimg::DEMO_BASE);
        let ing = ingest_bin(&bytes, base).expect("demo ingests");
        assert_eq!(ing.format, Format::Bin);
        assert_eq!(ing.sp, testimg::DEMO_SP);
        assert_eq!(ing.image.entry, testimg::DEMO_ENTRY);
        assert_eq!(ing.image.text_base, base);
        let reset = ing.image.extent("reset").expect("reset extent");
        assert_eq!(reset.base, testimg::DEMO_ENTRY);
        assert!(reset.code_end > reset.base, "code was inferred");
        assert!(reset.end > reset.code_end, "literal pool was excluded");
    }

    #[test]
    fn truncated_and_malformed_tables_are_rejected() {
        assert_eq!(
            ingest_bin(&[0; 7], 0).unwrap_err(),
            IngestError::Truncated { what: "vector table" }
        );
        // SP of zero.
        let mut v = vec![0u8; 16];
        v[4..8].copy_from_slice(&0x0000_0009u32.to_le_bytes());
        assert_eq!(ingest_bin(&v, 0).unwrap_err(), IngestError::BadStackPointer { sp: 0 });
        // Reset vector without the Thumb bit.
        let mut v = vec![0u8; 16];
        v[0..4].copy_from_slice(&0x2000_0400u32.to_le_bytes());
        v[4..8].copy_from_slice(&0x0000_0008u32.to_le_bytes());
        assert_eq!(ingest_bin(&v, 0).unwrap_err(), IngestError::BadResetVector { vector: 8 });
        // Reset vector pointing outside the dump.
        let mut v = vec![0u8; 16];
        v[0..4].copy_from_slice(&0x2000_0400u32.to_le_bytes());
        v[4..8].copy_from_slice(&0x0000_1001u32.to_le_bytes());
        assert_eq!(ingest_bin(&v, 0).unwrap_err(), IngestError::BadResetVector { vector: 0x1001 });
    }

    #[test]
    fn undecodable_reset_handler_is_no_code() {
        let mut v = Vec::new();
        v.extend_from_slice(&0x2000_0400u32.to_le_bytes());
        v.extend_from_slice(&0x0000_0009u32.to_le_bytes());
        v.extend_from_slice(&[0x01, 0xE8, 0x00, 0x00]); // undefined wide
        assert_eq!(ingest_bin(&v, 0).unwrap_err(), IngestError::NoCode);
    }
}
