//! Named regression tests promoted from the retired
//! `tests/properties.proptest-regressions` seed file.
//!
//! Both halfwords were historical codec round-trip failures found by
//! randomized testing; they stay pinned here as explicit unit tests so
//! the exact encodings are re-checked on every run, with no dependency
//! on a recorded-seed side file.

use gd_thumb::{decode16, Encoding};

/// `hw = 0xA000` (seed "hw = 40960"): `adr r0, …` with a zero word
/// offset — the ADR/ADD-to-PC form whose immediate scaling once broke
/// the decode → encode round trip.
#[test]
fn regression_0xa000_adr_round_trips() {
    let hw: u16 = 0xA000;
    let instr = decode16(hw).expect("0xA000 is a defined ADR encoding");
    assert_eq!(instr.encode(), Encoding::Half(hw), "decode→encode canonicity for {hw:#06x}");

    // The text round trip that failed historically: print, re-assemble,
    // compare bytes.
    let text = instr.to_string();
    let prog = gd_thumb::asm::assemble(&text, 0)
        .unwrap_or_else(|e| panic!("`{text}` failed to re-assemble: {e}"));
    assert_eq!(prog.code, hw.to_le_bytes(), "`{text}` reassembles to {hw:#06x}");
}

/// `hw = 0x0800` (seed "hw = 2048"): shift-immediate with a zero
/// `imm5` — the LSR #32 special case whose immediate once round-tripped
/// to the wrong encoding.
#[test]
fn regression_0x0800_shift_immediate_round_trips() {
    let hw: u16 = 0x0800;
    let instr = decode16(hw).expect("0x0800 is a defined shift-immediate encoding");
    assert_eq!(instr.encode(), Encoding::Half(hw), "decode→encode canonicity for {hw:#06x}");

    let text = instr.to_string();
    let prog = gd_thumb::asm::assemble(&text, 0)
        .unwrap_or_else(|e| panic!("`{text}` failed to re-assemble: {e}"));
    assert_eq!(prog.code, hw.to_le_bytes(), "`{text}` reassembles to {hw:#06x}");
}
