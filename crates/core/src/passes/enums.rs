//! The ENUM rewriter (paper §VI-A-a).
//!
//! Fully-uninitialized enum declarations get Reed–Solomon diversified
//! values, so no two valid variants are within 8 bit flips of each other.
//! Partially or fully initialized enums are left alone — their values may
//! be protocol-mandated. The paper implements this at the Clang AST level
//! because LLVM IR loses enum provenance; our IR keeps provenance on
//! constants ([`gd_ir::EnumRef`]), which plays the same role.

use std::collections::BTreeMap;

use gd_ir::{Module, ValueDef};
use gd_rs_ecc::diversified_constants;

use crate::config::Config;
use crate::pass::{Pass, Report};

/// The enum-rewriting pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct EnumRewriter;

impl Pass for EnumRewriter {
    fn name(&self) -> &'static str {
        "enum-rewriter"
    }

    fn run(&self, module: &mut Module, config: &Config, report: &mut Report) {
        if config.disable_enum_rewriter {
            return;
        }
        // Pick targets and compute their new variant values.
        let mut rewrites: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        for e in &mut module.enums {
            if !e.fully_uninitialized() || e.variants.is_empty() {
                continue;
            }
            let codes = diversified_constants(e.variants.len() as u32);
            let values: Vec<i64> = codes.iter().map(|&c| i64::from(c)).collect();
            for (variant, value) in e.variants.iter_mut().zip(values.iter()) {
                variant.1 = Some(*value);
            }
            rewrites.insert(e.name.clone(), values);
            report.enums_rewritten += 1;
        }
        if rewrites.is_empty() {
            return;
        }
        // Update every constant carrying provenance of a rewritten enum.
        for func in &mut module.funcs {
            for id in func.value_ids().collect::<Vec<_>>() {
                let ValueDef::Const { enum_ref: Some(er), .. } = func.value(id) else {
                    continue;
                };
                let Some(values) = rewrites.get(&er.enum_name) else { continue };
                let new = values[er.variant as usize];
                if let ValueDef::Const { value, .. } = func.value_mut(id) {
                    *value = new;
                }
            }
        }
        // Globals initialized to enum defaults are out of scope, exactly as
        // in the paper (the AST rewriter only touches the declaration and
        // literal uses).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, Defenses};
    use gd_ir::{parse_module, print_module, verify_module, Interpreter, RtVal};

    const SRC: &str = "
enum Status { FAILURE, SUCCESS }
enum Proto { IDLE = 0, RUN = 4 }

fn @check(%s: i32) -> i32 {
entry:
  %c = icmp eq i32 %s, Status::SUCCESS
  br %c, ok, no
ok:
  ret i32 1
no:
  ret i32 0
}

fn @proto(%s: i32) -> i32 {
entry:
  %c = icmp eq i32 %s, Proto::RUN
  br %c, ok, no
ok:
  ret i32 1
no:
  ret i32 0
}
";

    fn harden(src: &str) -> (Module, Report) {
        let mut m = parse_module(src).unwrap();
        let mut report = Report::default();
        EnumRewriter.run(&mut m, &Config::new(Defenses::ENUMS), &mut report);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        (m, report)
    }

    #[test]
    fn uninitialized_enum_rewritten_initialized_kept() {
        let (m, report) = harden(SRC);
        assert_eq!(report.enums_rewritten, 1);
        let status = m.enum_def("Status").unwrap();
        let failure = status.value_of(0);
        let success = status.value_of(1);
        assert_ne!(failure, 0, "FAILURE moved off the default 0");
        assert_ne!(success, 1);
        assert!(
            ((failure ^ success) as u32).count_ones() >= 8,
            "pairwise distance ≥ 8: {failure:#x} vs {success:#x}"
        );
        let proto = m.enum_def("Proto").unwrap();
        assert_eq!(proto.value_of(0), 0, "explicitly-valued enum untouched");
        assert_eq!(proto.value_of(1), 4);
    }

    #[test]
    fn uses_updated_consistently() {
        let (m, _) = harden(SRC);
        let success = m.enum_def("Status").unwrap().value_of(1);
        // Passing the *new* SUCCESS value satisfies the check; old 1 fails.
        let mut interp = Interpreter::new(&m);
        let r = interp.run("check", &[RtVal::Int(success)], &mut |_, _| RtVal::Int(0)).unwrap();
        assert_eq!(r, RtVal::Int(1));
        let mut interp = Interpreter::new(&m);
        let r = interp.run("check", &[RtVal::Int(1)], &mut |_, _| RtVal::Int(0)).unwrap();
        assert_eq!(r, RtVal::Int(0), "the legacy value no longer passes");
    }

    #[test]
    fn disable_flag_honored() {
        let mut m = parse_module(SRC).unwrap();
        let mut cfg = Config::new(Defenses::ENUMS);
        cfg.disable_enum_rewriter = true;
        let mut report = Report::default();
        EnumRewriter.run(&mut m, &cfg, &mut report);
        assert_eq!(report.enums_rewritten, 0);
        assert_eq!(m.enum_def("Status").unwrap().value_of(1), 1);
    }

    #[test]
    fn rewritten_values_avoid_trivially_glitchable_constants() {
        let (m, _) = harden(SRC);
        let status = m.enum_def("Status").unwrap();
        for i in 0..2 {
            let v = status.value_of(i) as u32;
            assert!(v.count_ones() >= 4, "{v:#x} too close to 0");
            assert!(v.count_zeros() >= 4, "{v:#x} too close to ~0");
        }
    }

    #[test]
    fn idempotent() {
        let (mut m, _) = harden(SRC);
        let success = m.enum_def("Status").unwrap().value_of(1);
        let mut report = Report::default();
        EnumRewriter.run(&mut m, &Config::new(Defenses::ENUMS), &mut report);
        assert_eq!(report.enums_rewritten, 0, "already-initialized enums skipped");
        assert_eq!(m.enum_def("Status").unwrap().value_of(1), success);
    }
}
