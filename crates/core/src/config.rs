//! Defense selection and per-function scoping.

use std::collections::BTreeSet;

/// Which defenses to apply (paper §VI). Each can be toggled independently —
/// the evaluation (Tables IV–VI) measures them à la carte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Defenses {
    /// Duplicate the true arm of conditional branches with an inverted
    /// re-check (§VI-B-b).
    pub branches: bool,
    /// Add the same instrumentation to the false (exit) arm of loop guards
    /// (§VI-B-b).
    pub loops: bool,
    /// Shadow sensitive globals with complemented integrity copies
    /// (§VI-B-a).
    pub integrity: bool,
    /// Inject a random busy-wait before every branch (§VI-1).
    pub delay: bool,
    /// Replace constant return codes compared in branches with
    /// Reed–Solomon values (§VI-A-b).
    pub returns: bool,
    /// Rewrite fully-uninitialized enums to Reed–Solomon values (§VI-A-a).
    pub enums: bool,
}

impl Defenses {
    /// No defenses (the baseline).
    pub const NONE: Defenses = Defenses {
        branches: false,
        loops: false,
        integrity: false,
        delay: false,
        returns: false,
        enums: false,
    };

    /// Every defense (the paper's "All" configuration).
    pub const ALL: Defenses = Defenses {
        branches: true,
        loops: true,
        integrity: true,
        delay: true,
        returns: true,
        enums: true,
    };

    /// Every defense except the random delay (the paper's "All\Delay").
    pub const ALL_EXCEPT_DELAY: Defenses = Defenses { delay: false, ..Defenses::ALL };

    /// Only the branch-duplication defense.
    pub const BRANCHES: Defenses = Defenses { branches: true, ..Defenses::NONE };
    /// Only the loop-hardening defense.
    pub const LOOPS: Defenses = Defenses { loops: true, ..Defenses::NONE };
    /// Only the data-integrity defense.
    pub const INTEGRITY: Defenses = Defenses { integrity: true, ..Defenses::NONE };
    /// Only the random-delay defense.
    pub const DELAY: Defenses = Defenses { delay: true, ..Defenses::NONE };
    /// Only the return-code defense.
    pub const RETURNS: Defenses = Defenses { returns: true, ..Defenses::NONE };
    /// Only the enum rewriter.
    pub const ENUMS: Defenses = Defenses { enums: true, ..Defenses::NONE };

    /// Whether any defense is enabled.
    pub fn any(self) -> bool {
        self.branches || self.loops || self.integrity || self.delay || self.returns || self.enums
    }
}

impl Default for Defenses {
    fn default() -> Self {
        Defenses::ALL
    }
}

/// Whether the delay defense applies to all functions unless excluded, or
/// only to explicitly listed functions. Mirrors the tool's opt-out/opt-in
/// modes (§VI-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayScope {
    /// Instrument everything except `config.excluded` functions.
    #[default]
    OptOut,
    /// Instrument only `config.included` functions.
    OptIn,
}

/// Full GlitchResistor configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Which defenses run.
    pub defenses: Defenses,
    /// Delay-defense scoping mode.
    pub delay_scope: DelayScope,
    /// Functions excluded from the delay defense (opt-out mode).
    pub excluded: BTreeSet<String>,
    /// Functions included in the delay defense (opt-in mode).
    pub included: BTreeSet<String>,
    /// Upper bound (exclusive) of NOPs per injected delay; the paper uses
    /// 0–10 iterations.
    pub max_delay_nops: u32,
    /// Disable the ENUM rewriter even when `defenses.enums` is set — the
    /// escape hatch for codebases that assume C default enum values.
    pub disable_enum_rewriter: bool,
}

impl Config {
    /// Configuration with the given defenses and paper-default parameters.
    pub fn new(defenses: Defenses) -> Config {
        Config { defenses, max_delay_nops: 10, ..Config::default() }
    }

    /// Whether the delay defense should instrument `func_name`.
    pub fn delay_applies_to(&self, func_name: &str) -> bool {
        match self.delay_scope {
            DelayScope::OptOut => !self.excluded.contains(func_name),
            DelayScope::OptIn => self.included.contains(func_name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the presets are consts by design
    fn preset_combinations() {
        assert!(!Defenses::NONE.any());
        assert!(Defenses::ALL.any());
        assert!(Defenses::ALL.delay);
        assert!(!Defenses::ALL_EXCEPT_DELAY.delay);
        assert!(Defenses::ALL_EXCEPT_DELAY.branches);
        assert!(Defenses::BRANCHES.branches && !Defenses::BRANCHES.loops);
    }

    #[test]
    fn delay_scoping() {
        let mut cfg = Config::new(Defenses::DELAY);
        assert!(cfg.delay_applies_to("main"));
        cfg.excluded.insert("main".into());
        assert!(!cfg.delay_applies_to("main"));

        cfg.delay_scope = DelayScope::OptIn;
        assert!(!cfg.delay_applies_to("boot"));
        cfg.included.insert("boot".into());
        assert!(cfg.delay_applies_to("boot"));
    }
}
