//! Exhaustive perturbation sweeps and outcome classification (paper §IV,
//! Figure 2).

use core::fmt;

use gd_emu::{Config, Emu, Fault, PredecodedImage, RunOutcome, Snapshot, StepOutcome, StopReason};

use crate::harness::{TestCase, NORMAL_MARKER, NORMAL_REG, SUCCESS_MARKER, SUCCESS_REG};
use crate::masks::ChooseBits;

/// The direction bits are flipped, matching the paper's fault models:
/// glitches tend to be unidirectional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// 1 → 0 flips (`instr AND NOT mask`) — the common effect of voltage
    /// and clock glitches.
    And,
    /// 0 → 1 flips (`instr OR mask`).
    Or,
    /// Bidirectional flips (`instr XOR mask`).
    Xor,
}

impl Direction {
    /// Applies a k-bit selection mask to `hw` in this direction.
    pub fn apply(self, hw: u16, mask: u16) -> u16 {
        match self {
            Direction::And => hw & !mask,
            Direction::Or => hw | mask,
            Direction::Xor => hw ^ mask,
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Direction::And => "AND",
            Direction::Or => "OR",
            Direction::Xor => "XOR",
        }
    }
}

/// Classification of one perturbed execution, mirroring Figure 2's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The instruction after the branch executed (the branch was "skipped").
    Success,
    /// Execution proceeded normally (the flip did not matter).
    NoEffect,
    /// A data access touched unmapped/protected/unaligned memory.
    BadRead,
    /// An instruction was fetched from unmapped memory (e.g. a wild branch).
    BadFetch,
    /// The perturbed pattern does not decode.
    InvalidInstruction,
    /// Anything else (stuck loop, sleep, interworking attempt, odd paths).
    Failed,
}

impl Outcome {
    /// All outcomes in reporting order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Success,
        Outcome::BadRead,
        Outcome::InvalidInstruction,
        Outcome::BadFetch,
        Outcome::Failed,
        Outcome::NoEffect,
    ];

    /// Stable index of this outcome in [`Outcome::ALL`] (reporting
    /// order). Constant-time; the tally hot loop indexes with it instead
    /// of scanning `ALL`.
    pub const fn index(self) -> usize {
        match self {
            Outcome::Success => 0,
            Outcome::BadRead => 1,
            Outcome::InvalidInstruction => 2,
            Outcome::BadFetch => 3,
            Outcome::Failed => 4,
            Outcome::NoEffect => 5,
        }
    }

    /// Maps a hard fault to its outcome class — the fault half of the
    /// paper's taxonomy, shared by the Figure 2 sweeps and the
    /// multi-fault campaigns (`gd-faultsim`) so the two engines cannot
    /// drift: *Bad Fetch* for fetch faults, *Bad Read* for other memory
    /// faults, *Invalid Instruction* for undefined patterns (whatever
    /// their payload), *Failed* for interworking attempts.
    pub fn from_fault(fault: &Fault) -> Outcome {
        match fault {
            Fault::Mem(m) => match m.access {
                gd_emu::Access::Fetch => Outcome::BadFetch,
                _ => Outcome::BadRead,
            },
            Fault::Undefined { .. } => Outcome::InvalidInstruction,
            Fault::InterworkArm { .. } => Outcome::Failed,
        }
    }

    /// The label used in Figure 2.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Success => "Success",
            Outcome::NoEffect => "No Effect",
            Outcome::BadRead => "Bad Read",
            Outcome::BadFetch => "Bad Fetch",
            Outcome::InvalidInstruction => "Invalid Instruction",
            Outcome::Failed => "Failed",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome counts for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    counts: [u64; 6],
}

impl Tally {
    /// Rebuilds a tally from raw per-outcome counts, ordered as
    /// [`Outcome::ALL`]. The inverse of [`Tally::counts`]; used by result
    /// stores that serialize tallies.
    pub fn from_counts(counts: [u64; 6]) -> Tally {
        Tally { counts }
    }

    /// Raw per-outcome counts, ordered as [`Outcome::ALL`].
    pub fn counts(&self) -> [u64; 6] {
        self.counts
    }

    /// Records one outcome.
    pub fn record(&mut self, outcome: Outcome) {
        self.counts[outcome.index()] += 1;
    }

    /// Records one outcome `n` times — the weighted form used by pruned
    /// campaigns, where one simulated representative stands for a whole
    /// equivalence class of faults.
    pub fn record_n(&mut self, outcome: Outcome, n: u64) {
        self.counts[outcome.index()] += n;
    }

    /// Count for one outcome.
    pub fn count(&self, outcome: Outcome) -> u64 {
        self.counts[outcome.index()]
    }

    /// Total executions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Success rate in percent (0 when empty).
    pub fn success_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.count(Outcome::Success) as f64 / self.total() as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// Step budget per perturbed execution: generous for snippets of a dozen
/// instructions, small enough to cut stuck loops off quickly.
const TRIAL_STEPS: u64 = 256;

/// Maps a finished run to its Figure 2 outcome class, reading the marker
/// registers for clean stops. Shared by the interpreter reference path
/// and the predecoded fast path so the classification cannot drift.
fn classify_trial(outcome: RunOutcome, emu: &Emu) -> Outcome {
    match outcome {
        RunOutcome::Stop { reason: StopReason::Bkpt(_), .. } => {
            let success = emu.cpu.reg(SUCCESS_REG) == SUCCESS_MARKER;
            let normal = emu.cpu.reg(NORMAL_REG) == NORMAL_MARKER;
            if success {
                Outcome::Success
            } else if normal {
                Outcome::NoEffect
            } else {
                Outcome::Failed
            }
        }
        RunOutcome::Stop { .. } => Outcome::Failed,
        RunOutcome::StepLimit { .. } => Outcome::Failed,
        RunOutcome::Fault { fault, .. } => Outcome::from_fault(&fault),
    }
}

/// Runs the snippet with `hw` written over the targeted instruction and
/// classifies the result.
///
/// This is the interpreter reference: a fresh emulator per trial, live
/// decode on every step. The sweep engines run [`PerturbRunner`] instead
/// and the differential tests pin the two paths to each other.
pub fn run_perturbed(case: &TestCase, hw: u16, cfg: Config) -> Outcome {
    let mut emu = case.instantiate(hw, cfg);
    let outcome = emu.run(TRIAL_STEPS);
    classify_trial(outcome, &emu)
}

/// The sweep hot path: one booted emulator and one predecoded micro-op
/// table, replayed for every perturbed halfword of a test case.
///
/// The snapshot is taken at the first fetch the perturbation can
/// influence, not at reset: execution up to the target instruction never
/// reads the target halfword, so it is identical for every trial and is
/// paid once at construction instead of 2^16 times. The per-trial step
/// budget shrinks by the same amount, keeping the total cap — and thus
/// every step-limit classification — identical to [`run_perturbed`].
///
/// Per trial it restores that snapshot (region contents are only copied
/// back when the previous trial actually stored to memory), pokes the
/// perturbed halfword over the target, and dispatches from the table —
/// live decode happens only at the two slots whose meaning the
/// perturbation can change ([`PredecodedImage::invalidate`]).
#[derive(Debug)]
pub struct PerturbRunner {
    emu: Emu,
    snap: Snapshot,
    image: PredecodedImage,
    target_addr: u32,
    /// `TRIAL_STEPS` minus the steps already replayed into the snapshot.
    budget: u64,
}

impl PerturbRunner {
    /// Boots `case` once and prepares the snapshot + micro-op table.
    pub fn new(case: &TestCase, cfg: Config) -> PerturbRunner {
        PerturbRunner::with_image(case, cfg, case.predecode(cfg))
    }

    /// Like [`PerturbRunner::new`] with a pre-built (shared) image, as
    /// produced by [`TestCase::predecode`] — the target address is
    /// already invalidated there.
    pub fn with_image(case: &TestCase, cfg: Config, image: PredecodedImage) -> PerturbRunner {
        let target = case.target_addr;
        let mut emu = case.instantiate(case.target_halfword(), cfg);
        // Advance to the target before snapshotting. The stop condition
        // includes `target - 2`: a 32-bit encoding starting there would
        // consume the target halfword as its second half, so that fetch
        // is already perturbable. A stop or fault before the target
        // (no snippet does this, but the harness accepts arbitrary
        // programs) falls back to the reset-state snapshot.
        let mut clean = true;
        while emu.pc() != target && emu.pc() != target.wrapping_sub(2) && emu.steps() < TRIAL_STEPS
        {
            match emu.step() {
                Ok(StepOutcome::Step(_)) => {}
                _ => {
                    clean = false;
                    break;
                }
            }
        }
        if !clean {
            emu = case.instantiate(case.target_halfword(), cfg);
        }
        let budget = TRIAL_STEPS - emu.steps();
        let snap = emu.snapshot();
        PerturbRunner { emu, snap, image, target_addr: target, budget }
    }

    /// Runs one perturbed trial and classifies it. Equivalent to
    /// [`run_perturbed`] on the same inputs, per the differential tests.
    pub fn run(&mut self, hw: u16) -> Outcome {
        self.emu.restore(&self.snap);
        self.emu.mem.load(self.target_addr, &hw.to_le_bytes()).expect("target mapped");
        let outcome = self.emu.run_predecoded(self.budget, &self.image);
        classify_trial(outcome, &self.emu)
    }
}

/// Masks per worker chunk in [`sweep_k`]. Each perturbed execution costs
/// a few microseconds, so chunks of this size amortize dispatch while
/// still splitting C(16, 8) = 12,870 masks into dozens of work units.
const MASK_CHUNK: usize = 256;

/// Sweeps every C(16, k) mask in `direction` over the targeted
/// instruction, fanning the mask space out across [`gd_exec`] workers.
///
/// Each worker chunk replays a snapshot through one [`PerturbRunner`]
/// (predecoded dispatch, no per-trial boot), so trials are independent;
/// per-chunk [`Tally`]s are merged in mask order, and since tally merging
/// is associative the result is identical to the serial interpreter
/// sweep bit for bit (see `parallel_sweep_matches_serial` below).
pub fn sweep_k(case: &TestCase, direction: Direction, k: u32, cfg: Config) -> Tally {
    sweep_k_with(case, &case.predecode(cfg), direction, k, cfg)
}

/// [`sweep_k`] with a caller-provided predecoded image, so a full
/// [`sweep_case`] (and the campaign engine's shards) predecode each test
/// case exactly once instead of once per k.
pub fn sweep_k_with(
    case: &TestCase,
    image: &PredecodedImage,
    direction: Direction,
    k: u32,
    cfg: Config,
) -> Tally {
    let hw = case.target_halfword();
    let masks: Vec<u32> = ChooseBits::new(16, k).collect();
    let partials = gd_exec::par_map_chunks(&masks, MASK_CHUNK, |chunk| {
        let mut runner = PerturbRunner::with_image(case, cfg, image.clone());
        let mut tally = Tally::default();
        for &mask in chunk.items {
            let perturbed = direction.apply(hw, mask as u16);
            tally.record(runner.run(perturbed));
        }
        tally
    });
    let mut tally = Tally::default();
    for partial in &partials {
        tally.merge(partial);
    }
    tally
}

/// The serial reference implementation of [`sweep_k`] — a fresh
/// interpreter-path emulator per trial via [`run_perturbed`], no
/// predecoding, no snapshots. Kept as the differential oracle that pins
/// the parallel predecoded output to it byte for byte.
pub fn sweep_k_serial(case: &TestCase, direction: Direction, k: u32, cfg: Config) -> Tally {
    let hw = case.target_halfword();
    let mut tally = Tally::default();
    for mask in ChooseBits::new(16, k) {
        let perturbed = direction.apply(hw, mask as u16);
        tally.record(run_perturbed(case, perturbed, cfg));
    }
    tally
}

/// One row of a Figure 2 sweep: results per flipped-bit count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepResult {
    /// The test case name (e.g. `"beq"`).
    pub name: String,
    /// `per_k[k]` holds the tally for exactly `k` flipped bits, `k = 0..=16`.
    pub per_k: Vec<Tally>,
}

impl SweepResult {
    /// Tally aggregated over every k ≥ 1 (perturbed executions only).
    pub fn aggregate(&self) -> Tally {
        let mut total = Tally::default();
        for t in self.per_k.iter().skip(1) {
            total.merge(t);
        }
        total
    }

    /// Success rate in percent over all perturbed executions.
    pub fn success_rate(&self) -> f64 {
        self.aggregate().success_rate()
    }
}

/// Full sweep over `k = 0..=16` for one case, predecoding the snippet
/// once and sharing the image across every k.
pub fn sweep_case(case: &TestCase, direction: Direction, cfg: Config) -> SweepResult {
    sweep_case_with(case, &case.predecode(cfg), direction, cfg)
}

/// [`sweep_case`] with a caller-provided predecoded image.
pub fn sweep_case_with(
    case: &TestCase,
    image: &PredecodedImage,
    direction: Direction,
    cfg: Config,
) -> SweepResult {
    let per_k = (0..=16).map(|k| sweep_k_with(case, image, direction, k, cfg)).collect();
    SweepResult { name: case.name.clone(), per_k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::branch_case;
    use gd_thumb::Cond;

    #[test]
    fn unmodified_is_no_effect() {
        let case = branch_case(Cond::Eq);
        let t = sweep_k(&case, Direction::And, 0, Config::default());
        assert_eq!(t.total(), 1);
        assert_eq!(t.count(Outcome::NoEffect), 1);
    }

    #[test]
    fn clearing_all_bits_succeeds_by_default() {
        let case = branch_case(Cond::Eq);
        // k = 16 under AND → 0x0000 → lsls r0, r0, #0 → skip.
        let t = sweep_k(&case, Direction::And, 16, Config::default());
        assert_eq!(t.count(Outcome::Success), 1);
    }

    #[test]
    fn clearing_all_bits_is_invalid_when_hardened() {
        let case = branch_case(Cond::Eq);
        let cfg = Config { zero_is_invalid: true, ..Config::default() };
        let t = sweep_k(&case, Direction::And, 16, cfg);
        assert_eq!(t.count(Outcome::InvalidInstruction), 1);
    }

    #[test]
    fn or_toward_all_ones_consumes_next_halfword() {
        let case = branch_case(Cond::Eq);
        // k = 16 under OR → 0xFFFF → 32-bit prefix + movs → invalid.
        let t = sweep_k(&case, Direction::Or, 16, Config::default());
        assert_eq!(t.count(Outcome::InvalidInstruction), 1);
    }

    #[test]
    fn single_bit_and_sweep_matches_manual_classification() {
        let case = branch_case(Cond::Eq);
        let t = sweep_k(&case, Direction::And, 1, Config::default());
        assert_eq!(t.total(), 16);
        // Flipping a bit that is already zero leaves the branch intact.
        let hw = case.target_halfword();
        let zero_bits = u64::from(16 - hw.count_ones());
        assert!(t.count(Outcome::NoEffect) >= zero_bits);
    }

    /// The tentpole guarantee: the fan-out over the mask space returns
    /// exactly what the serial loop returns, for every k and direction.
    #[test]
    fn parallel_sweep_matches_serial() {
        let case = branch_case(Cond::Ne);
        for direction in [Direction::And, Direction::Or, Direction::Xor] {
            for k in [0u32, 1, 2, 7, 8, 15, 16] {
                let par = sweep_k(&case, direction, k, Config::default());
                let ser = sweep_k_serial(&case, direction, k, Config::default());
                assert_eq!(par, ser, "{direction:?} k={k}");
            }
        }
    }

    /// `Outcome::index` is the tally array layout and the serialization
    /// order of every result store — pin it to `Outcome::ALL`.
    #[test]
    fn outcome_index_matches_all_order() {
        for (i, o) in Outcome::ALL.iter().enumerate() {
            assert_eq!(o.index(), i, "{o:?}");
        }
    }

    #[test]
    fn tally_percentages() {
        let mut t = Tally::default();
        t.record(Outcome::Success);
        t.record(Outcome::Failed);
        t.record(Outcome::Failed);
        t.record(Outcome::NoEffect);
        assert_eq!(t.total(), 4);
        assert!((t.success_rate() - 25.0).abs() < 1e-9);
        let mut u = Tally::default();
        u.record(Outcome::Success);
        t.merge(&u);
        assert_eq!(t.count(Outcome::Success), 2);
        assert_eq!(t.total(), 5);
    }

    /// The paper's headline §IV result, as properties of the sweep shape:
    /// AND (1→0) flips skip branches far more often than OR (0→1) flips —
    /// over 60% at high flip counts — while OR success decays toward zero
    /// as patterns leave the defined encoding space.
    #[test]
    fn and_beats_or_on_beq() {
        let case = branch_case(Cond::Eq);
        let and = sweep_case(&case, Direction::And, Config::default());
        let or = sweep_case(&case, Direction::Or, Config::default());
        assert!(
            and.success_rate() > 1.5 * or.success_rate(),
            "AND {:.1}% should dwarf OR {:.1}%",
            and.success_rate(),
            or.success_rate()
        );
        assert!(
            and.per_k[11].success_rate() > 60.0,
            "AND at k=11 reaches the paper's >60% band, got {:.1}%",
            and.per_k[11].success_rate()
        );
        assert!(
            or.per_k[11].success_rate() < 30.0,
            "OR at k=11 stays under the paper's 30% band, got {:.1}%",
            or.per_k[11].success_rate()
        );
        // Under AND the curve is monotone toward the all-zeros NOP; under
        // OR, invalid instructions take over at high k.
        assert_eq!(and.per_k[16].success_rate(), 100.0);
        assert_eq!(or.per_k[16].success_rate(), 0.0);
    }
}
