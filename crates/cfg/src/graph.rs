//! Machine-level CFG recovery over a [`FirmwareImage`].
//!
//! The walk decodes through the shared [`gd_emu::classify`] path (so the
//! recovered graph and the emulator can never disagree about what a
//! halfword means), splits at leaders, and types every edge. Literal
//! pools are respected two ways: linear flow never crosses an extent's
//! `code_end`, and words referenced by PC-relative loads are never
//! decoded even inside regions discovered past `code_end`.
//!
//! Recovery iterates to a fixpoint with the constant-propagation domain
//! (`crate::dataflow`): each round resolves computed branches whose
//! operand the lattice pins to a single value, which can expose new
//! leaders for the next round's walk.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use gd_backend::FirmwareImage;
use gd_emu::{classify, Config, Slot};
use gd_thumb::{Hint, Instr, Reg};

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// Execution continues at [`Block::end`] (the next leader).
    Fall,
    /// Conditional branch: `taken` on true, [`Block::end`] on false.
    Cond {
        /// Branch target when the condition holds.
        taken: u32,
    },
    /// Unconditional branch.
    Uncond {
        /// Branch target.
        target: u32,
    },
    /// Call; the continuation is [`Block::end`]. `target` is `None` for
    /// a computed call (`BLX Rm`) the dataflow could not resolve.
    Call {
        /// Static callee entry, when known.
        target: Option<u32>,
    },
    /// Function return (`BX LR` / `POP {.., pc}`).
    Ret,
    /// Computed branch (`BX Rm`, `MOV PC, Rm`, `ADD PC, Rm`,
    /// `LDR.W PC, [..]`). `target` is `Some` once resolved.
    Computed {
        /// Resolved target, when the dataflow pinned the operand.
        target: Option<u32>,
    },
    /// Execution stops here (`BKPT`, `UDF`, `SVC`, `WFI`, `WFE`).
    Stop,
}

/// Edge type between two blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Straight-line flow into the next leader.
    Fall,
    /// Conditional branch, condition true.
    CondTaken,
    /// Conditional branch, condition false.
    CondFall,
    /// Unconditional branch.
    Uncond,
    /// Call into a routine entry.
    Call,
    /// Call-site to its continuation (the callee was entered and
    /// returned). Added only when the callee can actually return.
    CallReturn,
    /// Resolved computed branch.
    Computed,
}

/// One recovered basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u32,
    /// Address one past the last instruction.
    pub end: u32,
    /// Instructions as `(address, instr, size)`.
    pub instrs: Vec<(u32, Instr, u32)>,
    /// How the block ends.
    pub term: Term,
}

impl Block {
    /// The terminator's address (the last instruction).
    pub fn term_addr(&self) -> u32 {
        self.instrs.last().expect("blocks are non-empty").0
    }
}

/// A callee-exit edge: `from` (a return block of the callee) transfers
/// to `to` (the continuation of `call`). Traversals gate it on the call
/// site being live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReturnEdge {
    /// Returning block (its terminator is [`Term::Ret`]).
    pub from: usize,
    /// Continuation block after the call.
    pub to: usize,
    /// The calling block.
    pub call: usize,
}

/// The recovered whole-image control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Decode configuration the recovery ran under.
    pub emu_cfg: Config,
    /// Blocks in ascending start order.
    pub blocks: Vec<Block>,
    /// Block start address → block index.
    pub index: BTreeMap<u32, usize>,
    /// Instruction address → `(block, position)`.
    pub instr_blocks: BTreeMap<u32, (usize, usize)>,
    /// Successor lists (no return edges; see [`Cfg::return_edges`]).
    pub succs: Vec<Vec<(usize, EdgeKind)>>,
    /// Predecessor lists, mirroring [`Cfg::succs`].
    pub preds: Vec<Vec<(usize, EdgeKind)>>,
    /// Gated callee-exit edges.
    pub return_edges: Vec<ReturnEdge>,
    /// Computed-branch sites resolved by the dataflow (site → target).
    pub resolved: BTreeMap<u32, u32>,
    /// Computed-branch/call sites the dataflow could not resolve.
    pub unresolved: Vec<u32>,
    /// Outer walk/dataflow rounds until the leader set stabilized.
    pub rounds: u64,
    /// Worklist iterations spent in the constant-propagation fixpoint.
    pub fixpoint_iterations: u64,
}

/// Where one instruction sends control, before block structure exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Falls through to the next instruction.
    Next,
    /// Conditional branch to `target`, falling through otherwise.
    CondBranch {
        /// Taken target.
        target: u32,
    },
    /// Unconditional branch to `target`.
    Branch {
        /// The target.
        target: u32,
    },
    /// Call; `None` when the callee is computed and unresolved.
    Call {
        /// Static callee entry, when known.
        target: Option<u32>,
    },
    /// Function return.
    Ret,
    /// Computed branch; `Some` only for memory-indirect targets readable
    /// straight out of the image.
    Computed {
        /// Statically known target.
        target: Option<u32>,
    },
    /// Execution stops.
    Stop,
}

/// Classifies where `instr` at `addr` sends control. `image` is
/// consulted only for `LDR.W PC, [PC, #imm]`, whose pool word is
/// constant in the image.
pub fn flow_of(instr: Instr, addr: u32, image: &FirmwareImage) -> Flow {
    let pc = addr.wrapping_add(4);
    match instr {
        Instr::BCond { offset, .. } => Flow::CondBranch { target: pc.wrapping_add(offset as u32) },
        Instr::BCondW { offset, .. } => Flow::CondBranch { target: pc.wrapping_add(offset as u32) },
        Instr::B { offset } | Instr::BW { offset } => {
            Flow::Branch { target: pc.wrapping_add(offset as u32) }
        }
        Instr::Bl { offset } => Flow::Call { target: Some(pc.wrapping_add(offset as u32)) },
        Instr::Blx { .. } => Flow::Call { target: None },
        Instr::Bx { rm: Reg::LR } => Flow::Ret,
        Instr::Bx { .. } => Flow::Computed { target: None },
        Instr::MovHi { rd: Reg::PC, .. } | Instr::AddHi { rdn: Reg::PC, .. } => {
            Flow::Computed { target: None }
        }
        Instr::Pop { pc: true, .. } => Flow::Ret,
        Instr::LdrW { rt: Reg::PC, rn, imm12 } => {
            if rn == Reg::PC {
                let slot = (pc & !3).wrapping_add(u32::from(imm12));
                match read_text_word(image, slot) {
                    // Even targets take an interworking fault; execution
                    // never continues, so the site behaves like a stop.
                    Some(v) if v & 1 == 1 => Flow::Computed { target: Some(v & !1) },
                    Some(_) => Flow::Stop,
                    None => Flow::Computed { target: None },
                }
            } else {
                Flow::Computed { target: None }
            }
        }
        Instr::Bkpt { .. }
        | Instr::Udf { .. }
        | Instr::Svc { .. }
        | Instr::Hint { hint: Hint::Wfi }
        | Instr::Hint { hint: Hint::Wfe } => Flow::Stop,
        _ => Flow::Next,
    }
}

/// Reads a little-endian word from the text section.
pub fn read_text_word(image: &FirmwareImage, addr: u32) -> Option<u32> {
    let off = addr.checked_sub(image.text_base)? as usize;
    let bytes = image.text.get(off..off + 4)?;
    Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

/// Words referenced by PC-relative loads of `instr` at `addr` (literal
/// pool slots that must never be decoded as code).
fn pool_ref(instr: Instr, addr: u32) -> Option<u32> {
    let base = addr.wrapping_add(4) & !3;
    match instr {
        Instr::LdrLit { imm8, .. } => Some(base.wrapping_add(u32::from(imm8) * 4)),
        Instr::LdrW { rn: Reg::PC, imm12, .. } => Some(base.wrapping_add(u32::from(imm12)) & !3),
        _ => None,
    }
}

struct Builder<'a> {
    image: &'a FirmwareImage,
    emu_cfg: Config,
    resolved: &'a BTreeMap<u32, u32>,
    /// Decoded instruction starts.
    walked: BTreeMap<u32, (Instr, u32)>,
    /// Block boundaries.
    leaders: BTreeSet<u32>,
    /// Literal-pool words referenced by decoded loads.
    pool: BTreeSet<u32>,
    /// Pending walk starts: `(addr, past_code_end_allowed)`.
    queue: VecDeque<(u32, bool)>,
    queued: BTreeSet<u32>,
}

impl<'a> Builder<'a> {
    fn containing_extent(&self, addr: u32) -> Option<&gd_backend::FuncExtent> {
        let idx = self.image.extents.partition_point(|e| e.base <= addr).checked_sub(1)?;
        let e = &self.image.extents[idx];
        (addr < e.end).then_some(e)
    }

    fn enqueue(&mut self, addr: u32) {
        if self.queued.insert(addr) {
            // Targets landing past their extent's inferred code_end are
            // discovered code (e.g. reached only via computed branches);
            // the walk may continue there, guarded by referenced pool
            // words instead of the code_end boundary.
            let past = self.containing_extent(addr).is_some_and(|e| addr >= e.code_end);
            self.queue.push_back((addr, past));
        }
    }

    fn target(&mut self, addr: u32) {
        self.leaders.insert(addr);
        self.enqueue(addr);
    }

    fn in_pool(&self, addr: u32) -> bool {
        self.pool.contains(&(addr & !3))
    }

    /// Decodes linearly from `start` until a terminator, an already
    /// walked address, a decode failure, or a layout boundary.
    fn walk(&mut self, start: u32, past_code_end: bool) {
        let mut addr = start;
        loop {
            if self.walked.contains_key(&addr) || self.in_pool(addr) {
                return;
            }
            let Some(extent) = self.containing_extent(addr) else { return };
            let limit = if past_code_end { extent.end } else { extent.code_end };
            if addr + 2 > limit {
                return;
            }
            let off = (addr - self.image.text_base) as usize;
            let hw = u16::from_le_bytes([self.image.text[off], self.image.text[off + 1]]);
            let hw2 =
                self.image.text.get(off + 2..off + 4).map(|b| u16::from_le_bytes([b[0], b[1]]));
            let (instr, size) = match classify(hw, hw2, self.emu_cfg) {
                Slot::Instr { instr, size } => (instr, size),
                _ => return,
            };
            if addr + size > limit {
                return;
            }
            self.walked.insert(addr, (instr, size));
            if let Some(slot) = pool_ref(instr, addr) {
                self.pool.insert(slot);
            }
            let next = addr + size;
            match flow_of(instr, addr, self.image) {
                Flow::Next => addr = next,
                Flow::CondBranch { target } => {
                    self.target(target);
                    self.leaders.insert(next);
                    addr = next;
                }
                Flow::Branch { target } => {
                    self.target(target);
                    return;
                }
                Flow::Call { target } => {
                    if let Some(t) = target.or_else(|| self.resolved.get(&addr).copied()) {
                        self.target(t);
                    }
                    self.leaders.insert(next);
                    addr = next;
                }
                Flow::Computed { target } => {
                    if let Some(t) = target.or_else(|| self.resolved.get(&addr).copied()) {
                        self.target(t);
                    }
                    return;
                }
                Flow::Ret | Flow::Stop => return,
            }
        }
    }

    fn run(mut self) -> Cfg {
        while let Some((addr, past)) = self.queue.pop_front() {
            self.walk(addr, past);
        }
        self.assemble()
    }

    /// Splits the walked instructions into blocks and builds the edges.
    fn assemble(&mut self) -> Cfg {
        let mut blocks: Vec<Block> = Vec::new();
        let mut current: Vec<(u32, Instr, u32)> = Vec::new();
        let mut flush = |instrs: &mut Vec<(u32, Instr, u32)>, term: Term| {
            if let (Some(&(first, ..)), Some(&(last, _, size))) = (instrs.first(), instrs.last()) {
                blocks.push(Block {
                    start: first,
                    end: last + size,
                    instrs: std::mem::take(instrs),
                    term,
                });
            }
        };
        let walked = std::mem::take(&mut self.walked);
        let mut iter = walked.iter().peekable();
        while let Some((&addr, &(instr, size))) = iter.next() {
            if let Some(&(prev, _, psize)) = current.last() {
                if prev + psize != addr || self.leaders.contains(&addr) {
                    flush(&mut current, Term::Fall);
                }
            }
            current.push((addr, instr, size));
            let next = addr + size;
            let term = match flow_of(instr, addr, self.image) {
                Flow::Next => {
                    let boundary = self.leaders.contains(&next)
                        || iter.peek().is_none_or(|&(&a, _)| a != next);
                    if boundary {
                        Some(Term::Fall)
                    } else {
                        None
                    }
                }
                Flow::CondBranch { target } => Some(Term::Cond { taken: target }),
                Flow::Branch { target } => Some(Term::Uncond { target }),
                Flow::Call { target } => Some(Term::Call {
                    target: target.or_else(|| self.resolved.get(&addr).copied()),
                }),
                Flow::Ret => Some(Term::Ret),
                Flow::Computed { target } => Some(Term::Computed {
                    target: target.or_else(|| self.resolved.get(&addr).copied()),
                }),
                Flow::Stop => Some(Term::Stop),
            };
            if let Some(term) = term {
                flush(&mut current, term);
            }
        }
        flush(&mut current, Term::Fall);

        let index: BTreeMap<u32, usize> =
            blocks.iter().enumerate().map(|(i, b)| (b.start, i)).collect();
        let mut instr_blocks = BTreeMap::new();
        for (i, b) in blocks.iter().enumerate() {
            for (pos, &(a, ..)) in b.instrs.iter().enumerate() {
                instr_blocks.insert(a, (i, pos));
            }
        }

        let mut succs: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); blocks.len()];
        let mut unresolved = Vec::new();
        let mut calls: Vec<(usize, Option<usize>)> = Vec::new(); // (call block, callee entry)
        for (i, b) in blocks.iter().enumerate() {
            let edge = |to: u32, kind: EdgeKind, succs: &mut Vec<Vec<(usize, EdgeKind)>>| {
                if let Some(&t) = index.get(&to) {
                    succs[i].push((t, kind));
                }
            };
            match b.term {
                Term::Fall => edge(b.end, EdgeKind::Fall, &mut succs),
                Term::Cond { taken } => {
                    edge(taken, EdgeKind::CondTaken, &mut succs);
                    edge(b.end, EdgeKind::CondFall, &mut succs);
                }
                Term::Uncond { target } => edge(target, EdgeKind::Uncond, &mut succs),
                Term::Call { target } => {
                    let callee = target.and_then(|t| index.get(&t).copied());
                    if let Some(c) = callee {
                        succs[i].push((c, EdgeKind::Call));
                    } else {
                        unresolved.push(b.term_addr());
                    }
                    calls.push((i, callee));
                }
                Term::Computed { target: Some(t) } => edge(t, EdgeKind::Computed, &mut succs),
                Term::Computed { target: None } => unresolved.push(b.term_addr()),
                Term::Ret | Term::Stop => {}
            }
        }

        // Call continuations: a `CallReturn` edge models "the callee ran
        // and returned", so it exists only when a return block of the
        // callee is intraprocedurally reachable from its entry. Unknown
        // callees are conservatively assumed to return. The check is a
        // fixpoint because reaching a return may require crossing nested
        // calls' own CallReturn edges.
        let mut pending: Vec<(usize, Option<usize>)> = calls.clone();
        loop {
            let mut changed = false;
            pending.retain(|&(call, callee)| {
                let returns = match callee {
                    None => true,
                    Some(entry) => intra_reach(&blocks, &succs, entry)
                        .iter()
                        .any(|&bi| blocks[bi].term == Term::Ret),
                };
                if returns {
                    if let Some(&cont) = index.get(&blocks[call].end) {
                        succs[call].push((cont, EdgeKind::CallReturn));
                    }
                    changed = true;
                    false
                } else {
                    true
                }
            });
            if !changed {
                break;
            }
        }

        // Callee-exit edges, gated at traversal time on the call site.
        let mut return_edges = BTreeSet::new();
        for &(call, callee) in &calls {
            let Some(entry) = callee else { continue };
            let Some(&cont) = index.get(&blocks[call].end) else { continue };
            for bi in intra_reach(&blocks, &succs, entry) {
                if blocks[bi].term == Term::Ret {
                    return_edges.insert(ReturnEdge { from: bi, to: cont, call });
                }
            }
        }

        let mut preds: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); blocks.len()];
        for (i, out) in succs.iter().enumerate() {
            for &(t, kind) in out {
                preds[t].push((i, kind));
            }
        }

        Cfg {
            emu_cfg: self.emu_cfg,
            blocks,
            index,
            instr_blocks,
            succs,
            preds,
            return_edges: return_edges.into_iter().collect(),
            resolved: self.resolved.clone(),
            unresolved,
            rounds: 0,
            fixpoint_iterations: 0,
        }
    }
}

/// Blocks intraprocedurally reachable from `entry` (no `Call` edges, no
/// return edges; `CallReturn` edges are local flow).
fn intra_reach(blocks: &[Block], succs: &[Vec<(usize, EdgeKind)>], entry: usize) -> Vec<usize> {
    let mut seen = vec![false; blocks.len()];
    let mut queue = vec![entry];
    seen[entry] = true;
    let mut out = Vec::new();
    while let Some(b) = queue.pop() {
        out.push(b);
        for &(t, kind) in &succs[b] {
            if kind != EdgeKind::Call && !seen[t] {
                seen[t] = true;
                queue.push(t);
            }
        }
    }
    out
}

/// One pass of the decode walk with a fixed computed-branch resolution.
pub(crate) fn build(image: &FirmwareImage, emu_cfg: Config, resolved: &BTreeMap<u32, u32>) -> Cfg {
    let mut b = Builder {
        image,
        emu_cfg,
        resolved,
        walked: BTreeMap::new(),
        leaders: BTreeSet::new(),
        pool: BTreeSet::new(),
        queue: VecDeque::new(),
        queued: BTreeSet::new(),
    };
    b.leaders.insert(image.entry);
    b.enqueue(image.entry);
    for e in &image.extents {
        b.leaders.insert(e.base);
        b.enqueue(e.base);
    }
    b.run()
}

impl Cfg {
    /// Whether `(from → to)` is a transition the graph explains: either
    /// consecutive within a block, or an edge (including gated return
    /// edges) out of `from`'s block with `from` as the terminator.
    pub fn has_transition(&self, from: u32, to: u32) -> bool {
        let Some(&(bi, pos)) = self.instr_blocks.get(&from) else { return false };
        let b = &self.blocks[bi];
        if pos + 1 < b.instrs.len() {
            return b.instrs[pos + 1].0 == to;
        }
        if self.succs[bi].iter().any(|&(t, _)| self.blocks[t].start == to) {
            return true;
        }
        self.return_edges.iter().any(|re| re.from == bi && self.blocks[re.to].start == to)
    }

    /// The block whose span contains `addr`, if any.
    pub fn block_at(&self, addr: u32) -> Option<usize> {
        self.instr_blocks.get(&addr).map(|&(b, _)| b)
    }
}
