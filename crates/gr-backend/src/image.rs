//! The firmware image: lowered code plus section layout, symbols, and size
//! accounting (the data behind paper Table V).

use std::collections::BTreeMap;

use crate::layout::{
    Section, FLASH_SIZE, GPIO_BASE, GPIO_SIZE, NVM_BASE, NVM_SIZE, PERIPH_BASE, PERIPH_SIZE,
    SCS_BASE, SCS_SIZE, SHADOW_BASE, SHADOW_SIZE, SRAM_BASE, SRAM_SIZE, STACK_TOP,
};

/// Byte sizes of each output section (paper Table V's columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionSizes {
    /// Code + literal pools + runtime stubs.
    pub text: u32,
    /// Initialized globals.
    pub data: u32,
    /// Zero-initialized globals.
    pub bss: u32,
    /// Integrity shadows.
    pub shadow: u32,
    /// Non-volatile data.
    pub nvm: u32,
}

impl SectionSizes {
    /// Total footprint (text + data + bss, the paper's "total" column;
    /// shadow and nvm are reported separately).
    pub fn total(&self) -> u32 {
        self.text + self.data + self.bss
    }
}

/// Address range of one routine inside the text section.
///
/// `base..code_end` holds instructions; `code_end..end` is the routine's
/// literal pool (data that must not be decoded as code). Static analyses
/// scan `base..code_end` and use [`FirmwareImage::symbolize`] to turn
/// addresses back into `function+offset` diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncExtent {
    /// Routine name (IR function, `_start`, or a `__gr_` helper).
    pub name: String,
    /// First instruction address.
    pub base: u32,
    /// End of the instruction bytes (start of the literal pool, if any).
    pub code_end: u32,
    /// End of the routine including its literal pool.
    pub end: u32,
    /// Lowered basic blocks as `(IR block name, offset from base)`, in
    /// layout order. Empty for hand-assembled stubs (`_start`, `__gr_`
    /// helpers) and for ingested images, whose block structure is
    /// recovered by `gd-cfg` instead of recorded at compile time.
    pub blocks: Vec<(String, u32)>,
}

/// A linked firmware image ready to load into the emulator.
#[derive(Debug, Clone)]
pub struct FirmwareImage {
    /// Code bytes, based at [`FirmwareImage::text_base`].
    pub text: Vec<u8>,
    /// Load address of the first text byte. The compiler places text at
    /// [`FLASH_BASE`]; ingested third-party images carry whatever base
    /// their vector table or ELF program headers named.
    pub text_base: u32,
    /// Initialized data: `(address, bytes)` records across data/shadow/nvm.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Symbol table: functions and globals.
    pub symbols: BTreeMap<String, u32>,
    /// Entry point (the `_start` stub).
    pub entry: u32,
    /// Section size accounting.
    pub sizes: SectionSizes,
    /// Section of each global.
    pub global_sections: BTreeMap<String, Section>,
    /// Routine extents in ascending address order (functions, `_start`,
    /// compiler helpers).
    pub extents: Vec<FuncExtent>,
}

impl FirmwareImage {
    /// Address of a symbol.
    ///
    /// # Panics
    ///
    /// Panics when the symbol does not exist — symbol names come from the
    /// module being compiled, so a miss is a caller bug.
    pub fn symbol(&self, name: &str) -> u32 {
        *self.symbols.get(name).unwrap_or_else(|| panic!("unknown symbol `{name}`"))
    }

    /// Resolves a text address to `(routine name, byte offset)`, or `None`
    /// when `addr` falls outside every routine (alignment padding).
    pub fn symbolize(&self, addr: u32) -> Option<(&str, u32)> {
        let idx = self.extents.partition_point(|e| e.base <= addr).checked_sub(1)?;
        let e = &self.extents[idx];
        (addr < e.end).then(|| (e.name.as_str(), addr - e.base))
    }

    /// The extent of a named routine, if it exists.
    pub fn extent(&self, name: &str) -> Option<&FuncExtent> {
        self.extents.iter().find(|e| e.name == name)
    }

    /// Maps the standard regions and loads the image into `mem`.
    ///
    /// # Errors
    ///
    /// Propagates mapping/load failures (image too large for a region).
    pub fn load_into(&self, mem: &mut gd_emu::Memory) -> Result<(), gd_emu::MapError> {
        use gd_emu::Perms;
        let flash_size = FLASH_SIZE.max((self.text.len() as u32).next_multiple_of(4));
        mem.map("flash", self.text_base, flash_size, Perms::RX)?;
        // NVM is readable and writable (writes are slow; the pipeline model
        // charges them), and never executable.
        mem.map("nvm", NVM_BASE, NVM_SIZE, Perms::RW)?;
        mem.map("sram", SRAM_BASE, SRAM_SIZE, Perms::RW)?;
        mem.map("shadow", SHADOW_BASE, SHADOW_SIZE, Perms::RW)?;
        mem.map("gpio", GPIO_BASE, GPIO_SIZE, Perms::RW)?;
        mem.map("periph", PERIPH_BASE, PERIPH_SIZE, Perms::RW)?;
        mem.map("scs", SCS_BASE, SCS_SIZE, Perms::RW)?;
        let fail =
            |e: gd_emu::MemFault| gd_emu::MapError::other(format!("image overflows region: {e}"));
        mem.load(self.text_base, &self.text).map_err(fail)?;
        for (addr, bytes) in &self.data {
            mem.load(*addr, bytes).map_err(fail)?;
        }
        Ok(())
    }

    /// Builds a fresh emulator with this image loaded, PC at the entry and
    /// SP at the stack top.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit the standard memory map.
    pub fn boot_emu(&self) -> gd_emu::Emu {
        let mut emu = gd_emu::Emu::new();
        self.load_into(&mut emu.mem).expect("image fits the standard memory map");
        emu.set_pc(self.entry);
        emu.cpu.set_sp(STACK_TOP);
        emu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_total() {
        let s = SectionSizes { text: 100, data: 8, bss: 32, shadow: 8, nvm: 4 };
        assert_eq!(s.total(), 140);
    }
}
