//! Microbenchmarks of the substrates: decoder throughput, emulator step
//! rate, and Reed–Solomon constant generation.

use core::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

/// Short, stable sampling so `cargo bench --workspace` stays in CI budget.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
}
use std::hint::black_box;

fn bench_decoder(c: &mut Criterion) {
    c.bench_function("thumb/decode16_full_space", |b| {
        b.iter(|| {
            let mut defined = 0u32;
            for hw in 0..=u16::MAX {
                if gd_thumb::decode16(black_box(hw)).is_ok() {
                    defined += 1;
                }
            }
            black_box(defined)
        })
    });
    c.bench_function("thumb/encode_branch", |b| {
        b.iter(|| {
            let i = gd_thumb::Instr::BCond { cond: gd_thumb::Cond::Eq, offset: black_box(6) };
            black_box(i.encode())
        })
    });
}

fn bench_emulator(c: &mut Criterion) {
    use gd_emu::{Emu, Perms};
    use gd_thumb::asm::assemble;
    let prog = assemble(
        "loop:\n  adds r0, #1\n  cmp r0, #0\n  bne loop\n  bkpt #0\n",
        0,
    )
    .unwrap();
    c.bench_function("emu/step_loop_10k", |b| {
        b.iter(|| {
            let mut emu = Emu::new();
            emu.mem.map("flash", 0, 0x1000, Perms::RX).unwrap();
            emu.mem.load(0, &prog.code).unwrap();
            emu.set_pc(0);
            black_box(emu.run(10_000))
        })
    });
}

fn bench_rs_ecc(c: &mut Criterion) {
    c.bench_function("rs_ecc/diversify_16_constants", |b| {
        b.iter(|| black_box(gd_rs_ecc::diversified_constants(black_box(16))))
    });
    let rs = gd_rs_ecc::RsEncoder::new(4);
    c.bench_function("rs_ecc/encode_2_byte_message", |b| {
        b.iter(|| black_box(rs.encode(black_box(&[0x12, 0x34]))))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_decoder, bench_emulator, bench_rs_ecc
}
criterion_main!(benches);
