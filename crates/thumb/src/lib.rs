//! # gd-thumb — the ARMv6-M Thumb-1 instruction set, modelled completely
//!
//! This crate is the ISA substrate for the *Glitching Demystified* (DSN
//! 2021) reproduction. It provides:
//!
//! - a structural instruction model ([`Instr`]) covering every 16-bit
//!   Thumb-1 instruction plus the 32-bit `BL`, and the Thumb-2 wide
//!   subset reachable by single-bit flips of ARMv6-M code
//!   ([`decode32_wide`]: the `B.W` family, modified-immediate and
//!   `MOVW`/`MOVT` data processing, `LDR.W`/`STR.W`);
//! - a validating [encoder](Instr::try_encode) and a **total**
//!   [decoder](decode::decode16) over the 16-bit space — every halfword
//!   either decodes canonically or is classified as undefined / a 32-bit
//!   prefix, which is exactly what exhaustive bit-flip experiments
//!   (paper §IV, Figure 2) need;
//! - a two-pass text [assembler](asm::assemble) with labels and literal
//!   pools (the Keystone substitute) and a [disassembler](fmt::disassemble)
//!   (the Capstone substitute).
//!
//! ```
//! use gd_thumb::{asm::assemble, decode::decode16, Cond, Instr};
//!
//! let prog = assemble("loop: cmp r3, #0\nbeq loop\n", 0)?;
//! let beq = u16::from_le_bytes([prog.code[2], prog.code[3]]);
//! assert_eq!(decode16(beq)?, Instr::BCond { cond: Cond::Eq, offset: -6 });
//!
//! // Glitch a bit: clearing the top bit of BEQ turns it into a store.
//! let corrupted = decode16(beq & !0x8000)?;
//! assert!(corrupted.is_store());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod asm;
mod cond;
pub mod decode;
mod encode;
pub mod fmt;
mod instr;
mod reg;

pub use cond::{Cond, Flags, ParseCondError};
pub use decode::{
    decode16, decode32, decode32_wide, decode_bytes, decode_bytes_wide, is_32bit_prefix,
    DecodeError,
};
pub use encode::{EncodeError, Encoding};
pub use instr::{
    thumb_expand_imm, thumb_expand_imm_c, AluOp, Hint, Instr, ShiftOp, WideDpOp, Width,
};
pub use reg::{ParseRegError, Reg};
