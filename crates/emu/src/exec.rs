//! The instruction interpreter: fetch, decode, and execute with full
//! ARMv6-M data-path and flag semantics.

use core::fmt;

use gd_thumb::{is_32bit_prefix, thumb_expand_imm_c, AluOp, Instr, Reg, ShiftOp, WideDpOp, Width};

use crate::mem::{Access, MemFault, MemSnapshot, Memory};
use crate::predecode::{classify, PredecodedImage, Slot};
use crate::Cpu;

/// Emulator configuration knobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Config {
    /// Treat the all-zeros halfword as an undefined instruction instead of
    /// `LSLS r0, r0, #0`. This models the ISA hardening experiment of the
    /// paper's Figure 2c.
    pub zero_is_invalid: bool,
    /// Decode the Thumb-2 wide subset
    /// ([`decode32_wide`](gd_thumb::decode32_wide)) instead of the pure
    /// ARMv6-M 32-bit space (`BL` only). Off by default: on a Cortex-M0
    /// every wide encoding except `BL` *is* undefined, and the historical
    /// goldens pin that behavior. Ingested third-party images enable it.
    pub wide: bool,
}

/// A one-shot override applied to the next data load — the hook the clock
/// glitch simulator uses to model bus-level data corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOverride {
    /// Replace the loaded value entirely (bus residue).
    Replace(u32),
    /// AND a mask into the loaded value (1→0 flips).
    And(u32),
    /// OR a mask into the loaded value (0→1 flips).
    Or(u32),
}

impl LoadOverride {
    fn apply(self, value: u32) -> u32 {
        match self {
            LoadOverride::Replace(v) => v,
            LoadOverride::And(m) => value & m,
            LoadOverride::Or(m) => value | m,
        }
    }
}

/// How an injected fault affects the instruction stream at its site.
///
/// All three kinds act at the *fetch* of the first halfword: the faulted
/// site's bytes in memory are never modified, and a second halfword
/// consumed by a 32-bit encoding is always read from real memory. This
/// models corruption on the instruction bus (Moro et al.'s EM fault
/// model) rather than flash rewrites, and it is what makes architectural
/// pruning sound — the effect of a fault at an address never depends on
/// which other faults are active elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectKind {
    /// The fetch returns `hw` instead of the halfword in memory. If `hw`
    /// is a 32-bit prefix, the second halfword is fetched from memory at
    /// `addr + 2` as usual.
    Corrupt {
        /// The halfword seen by the fetch stage.
        hw: u16,
    },
    /// The instruction at the site is fetched but not executed: the PC
    /// advances by the encoding's size (2, or 4 for a 32-bit prefix) and
    /// one step is consumed, as if the instruction were a NOP.
    Skip,
    /// The instruction executes normally but its first data load goes
    /// through the [`LoadOverride`] (data-bus corruption synchronized to
    /// this fetch). Instructions that perform no load are unaffected.
    LoadBus(LoadOverride),
}

/// Whether an injected fault fires once or on every fetch of its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Persistence {
    /// The fault affects the next fetch of the site only, then disarms —
    /// a one-cycle glitch.
    Transient,
    /// The fault affects every fetch of the site for the rest of the run
    /// (an I-bus stuck-at; cleared only by [`Emu::clear_injections`] or
    /// [`Emu::restore`] to a pre-injection snapshot).
    Permanent,
}

/// One armed fault at one fetch address — the multi-fault counterpart of
/// the single-shot [`Emu::load_override`] hook. Applied by [`Emu::step`]
/// when the PC reaches `addr`; see [`InjectKind`] for the semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Injection {
    /// Fetch address the fault is tied to (bit 0 ignored).
    pub addr: u32,
    /// What the fault does to the fetch.
    pub kind: InjectKind,
    /// One-shot or sticky.
    pub persistence: Persistence,
    armed: bool,
}

impl Injection {
    /// A new, armed injection at `addr`.
    pub fn new(addr: u32, kind: InjectKind, persistence: Persistence) -> Injection {
        Injection { addr: addr & !1, kind, persistence, armed: true }
    }

    /// Whether the injection will still fire ([`Persistence::Transient`]
    /// faults disarm after their first fetch).
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

/// Why execution stopped without a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// A `BKPT #imm` was executed.
    Bkpt(u8),
    /// An `SVC #imm` was executed (no supervisor is modelled).
    Svc(u8),
    /// A `WFI` put the core to sleep.
    Wfi,
    /// A `WFE` put the core to sleep.
    Wfe,
}

/// A hard fault: execution cannot continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// A data or fetch memory fault.
    Mem(MemFault),
    /// An undefined instruction was fetched.
    Undefined {
        /// Address of the instruction.
        addr: u32,
        /// First (or only) halfword.
        hw: u16,
        /// Second halfword for 32-bit patterns.
        hw2: Option<u16>,
    },
    /// A branch attempted to enter ARM state (target bit 0 clear).
    InterworkArm {
        /// Address of the branching instruction.
        addr: u32,
        /// The attempted target.
        target: u32,
    },
}

impl Fault {
    /// Whether this is a data-read fault (*Bad Read* in the paper).
    pub fn is_bad_read(&self) -> bool {
        matches!(self, Fault::Mem(MemFault { access: Access::Read, .. }))
    }

    /// Whether this is a fetch fault (*Bad Fetch* in the paper).
    pub fn is_bad_fetch(&self) -> bool {
        matches!(self, Fault::Mem(MemFault { access: Access::Fetch, .. }))
    }

    /// Whether this is an undefined-instruction fault.
    pub fn is_undefined(&self) -> bool {
        matches!(self, Fault::Undefined { .. })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Mem(m) => write!(f, "memory fault: {m}"),
            Fault::Undefined { addr, hw, hw2: None } => {
                write!(f, "undefined instruction {hw:#06x} at {addr:#010x}")
            }
            Fault::Undefined { addr, hw, hw2: Some(h2) } => {
                write!(f, "undefined instruction {hw:#06x} {h2:#06x} at {addr:#010x}")
            }
            Fault::InterworkArm { addr, target } => {
                write!(f, "interworking branch to ARM state ({target:#010x}) at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for Fault {}

impl From<MemFault> for Fault {
    fn from(value: MemFault) -> Self {
        Fault::Mem(value)
    }
}

/// Everything observable about one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Address the instruction was executed from.
    pub addr: u32,
    /// The instruction.
    pub instr: Instr,
    /// Size in bytes.
    pub size: u32,
    /// The PC after this instruction.
    pub next_pc: u32,
    /// Whether control flow was redirected.
    pub branched: bool,
    /// Number of data words/bytes loaded.
    pub loads: u8,
    /// Number of data words/bytes stored.
    pub stores: u8,
    /// The last store performed, as `(address, value)` — used by the
    /// pipeline simulator to spot GPIO trigger writes.
    pub store: Option<(u32, u32)>,
}

/// Result of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction executed; state advanced.
    Step(Step),
    /// Execution stopped (breakpoint, SVC, sleep).
    Stop {
        /// Why.
        reason: StopReason,
        /// Address of the stopping instruction.
        addr: u32,
    },
}

/// Result of a bounded [`Emu::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Execution stopped cleanly.
    Stop {
        /// Why.
        reason: StopReason,
        /// Address of the stopping instruction.
        addr: u32,
        /// Instructions executed (including the stopping one).
        steps: u64,
    },
    /// Execution faulted.
    Fault {
        /// The fault.
        fault: Fault,
        /// Instructions executed before the fault.
        steps: u64,
    },
    /// The step budget ran out (e.g. an infinite loop still looping).
    StepLimit {
        /// Instructions executed.
        steps: u64,
    },
}

/// The architectural emulator: CPU + memory + program counter.
///
/// ```
/// use gd_emu::{Emu, Perms};
/// use gd_thumb::asm::assemble;
///
/// let mut emu = Emu::new();
/// emu.mem.map("flash", 0, 0x1000, Perms::RX)?;
/// let prog = assemble("movs r0, #42\nbkpt #0\n", 0)?;
/// emu.mem.load(0, &prog.code)?;
/// emu.set_pc(0);
/// emu.run(100);
/// assert_eq!(emu.cpu.reg(gd_thumb::Reg::R0), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Emu {
    /// Architectural register/flag state.
    pub cpu: Cpu,
    /// The memory map.
    pub mem: Memory,
    /// Configuration.
    pub cfg: Config,
    /// One-shot override for the next data load (fault-injection hook).
    pub load_override: Option<LoadOverride>,
    pc: u32,
    steps: u64,
    injections: Vec<Injection>,
}

/// A point-in-time copy of an [`Emu`]'s state, created by
/// [`Emu::snapshot`] and consumed by [`Emu::restore`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    cpu: Cpu,
    cfg: Config,
    load_override: Option<LoadOverride>,
    pc: u32,
    steps: u64,
    mem: MemSnapshot,
    injections: Vec<Injection>,
}

impl Emu {
    /// A fresh emulator with an empty memory map.
    pub fn new() -> Emu {
        Emu::default()
    }

    /// A fresh emulator with the given configuration.
    pub fn with_config(cfg: Config) -> Emu {
        Emu { cfg, ..Emu::default() }
    }

    /// Current program counter (address of the next instruction).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter. Bit 0 (the Thumb bit) is cleared.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc & !1;
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Arms an [`Injection`] (see [`InjectKind`] for fault semantics).
    ///
    /// Multiple injections may be armed at once (a multi-fault trial);
    /// at most one fires per fetch — the first armed entry whose address
    /// matches the PC, in arming order. Callers dispatching through
    /// [`Emu::step_predecoded`] must
    /// [`PredecodedImage::invalidate_range`] every injected site so
    /// dispatch falls back to the live path where injections apply.
    pub fn inject(&mut self, injection: Injection) {
        self.injections.push(injection);
    }

    /// Disarms and removes every injection.
    pub fn clear_injections(&mut self) {
        self.injections.clear();
    }

    /// The currently registered injections (armed or spent).
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Fetches, decodes, and executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] for memory faults, undefined instructions, and
    /// ARM-interworking attempts.
    pub fn step(&mut self) -> Result<StepOutcome, Fault> {
        if !self.injections.is_empty() {
            if let Some(i) = self.injections.iter().position(|inj| inj.armed && inj.addr == self.pc)
            {
                return self.step_injected(i);
            }
        }
        let addr = self.pc;
        let hw = self.mem.fetch16(addr)?;
        let (instr, size) = self.decode(addr, hw)?;
        self.exec(instr, addr, size)
    }

    /// Executes one step with `self.injections[idx]` applied to the fetch.
    /// Out of line: trials arm at most a couple of injections and visit
    /// them a handful of times, while the un-injected fast path runs
    /// millions of steps.
    #[cold]
    fn step_injected(&mut self, idx: usize) -> Result<StepOutcome, Fault> {
        let addr = self.pc;
        let inj = self.injections[idx];
        // Disarm before executing: a transient fault happened on this
        // fetch whether or not the corrupted stream then faults.
        if inj.persistence == Persistence::Transient {
            self.injections[idx].armed = false;
        }
        match inj.kind {
            InjectKind::Corrupt { hw } => {
                let (instr, size) = self.decode(addr, hw)?;
                self.exec(instr, addr, size)
            }
            InjectKind::Skip => {
                // The skipped encoding's size comes from the prefix bit
                // alone, so even undecodable patterns skip cleanly; the
                // fetches still happen, so fetch faults are preserved.
                let hw = self.mem.fetch16(addr)?;
                let size = if is_32bit_prefix(hw) {
                    self.mem.fetch16(addr.wrapping_add(2))?;
                    4
                } else {
                    2
                };
                let next_pc = addr.wrapping_add(size);
                self.steps += 1;
                self.pc = next_pc;
                Ok(StepOutcome::Step(Step {
                    addr,
                    instr: Instr::Hint { hint: gd_thumb::Hint::Nop },
                    size,
                    next_pc,
                    branched: false,
                    loads: 0,
                    stores: 0,
                    store: None,
                }))
            }
            InjectKind::LoadBus(ov) => {
                let hw = self.mem.fetch16(addr)?;
                let (instr, size) = self.decode(addr, hw)?;
                self.load_override = Some(ov);
                let out = self.exec(instr, addr, size);
                // The override is synchronized to this fetch only: drop
                // it unconsumed rather than let it leak to a later load.
                self.load_override = None;
                out
            }
        }
    }

    /// Decodes the instruction whose first halfword `hw` was fetched from
    /// `addr`, fetching a second halfword if needed.
    ///
    /// Decode truth lives in [`classify`], shared with
    /// [`PredecodedImage`] so the cached and live paths cannot drift. The
    /// two failure modes of a 32-bit encoding stay distinct: a fetch
    /// fault on the second halfword propagates as [`Fault::Mem`] at
    /// `addr + 2`, while an undefined 32-bit pattern becomes
    /// [`Fault::Undefined`] carrying both halfwords.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] for undefined patterns or a fetch fault on the
    /// second halfword.
    pub fn decode(&mut self, addr: u32, hw: u16) -> Result<(Instr, u32), Fault> {
        let hw2 =
            if is_32bit_prefix(hw) { Some(self.mem.fetch16(addr.wrapping_add(2))?) } else { None };
        match classify(hw, hw2, self.cfg) {
            Slot::Instr { instr, size } => Ok((instr, size)),
            Slot::Undefined { hw, hw2 } => Err(Fault::Undefined { addr, hw, hw2 }),
            // classify only defers when a prefix's second halfword is
            // unknown, and we always fetched it above.
            Slot::Incomplete { .. } | Slot::Live => {
                unreachable!("second halfword fetched for 32-bit prefix")
            }
        }
    }

    /// Like [`Emu::step`], but dispatching from a predecoded micro-op
    /// table instead of decoding the fetched halfword.
    ///
    /// Addresses outside the image, slots the image marks [`Slot::Live`]
    /// (perturbed halfwords), and [`Slot::Incomplete`] prefixes at the
    /// image edge fall back to the ordinary fetch/decode path — this is
    /// the perturbed-address fallback rule the glitch sweeps rely on, and
    /// what turns an image-edge prefix with nothing mapped after it into
    /// a fetch fault at `addr + 2` rather than an undefined instruction.
    ///
    /// The caller must ensure the image was built from this emulator's
    /// current memory under the same [`Config`] (perturbed addresses
    /// excepted, via [`PredecodedImage::invalidate`]); the cached path
    /// skips the architectural fetch, so stale slots would silently
    /// diverge from [`Emu::step`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`Emu::step`].
    pub fn step_predecoded(&mut self, image: &PredecodedImage) -> Result<StepOutcome, Fault> {
        debug_assert_eq!(image.cfg(), self.cfg, "image decoded under a different Config");
        let addr = self.pc;
        match image.slot(addr) {
            Some(Slot::Instr { instr, size }) => self.exec(instr, addr, size),
            // Live decode reports undefined patterns before `exec` runs,
            // so the cached arm must not touch the step counter either.
            Some(Slot::Undefined { hw, hw2 }) => Err(Fault::Undefined { addr, hw, hw2 }),
            Some(Slot::Incomplete { .. }) | Some(Slot::Live) | None => self.step(),
        }
    }

    /// Runs until a stop, fault, or the step budget is exhausted.
    pub fn run(&mut self, max_steps: u64) -> RunOutcome {
        for _ in 0..max_steps {
            match self.step() {
                Ok(StepOutcome::Step(_)) => {}
                Ok(StepOutcome::Stop { reason, addr }) => {
                    return RunOutcome::Stop { reason, addr, steps: self.steps }
                }
                Err(fault) => return RunOutcome::Fault { fault, steps: self.steps },
            }
        }
        RunOutcome::StepLimit { steps: self.steps }
    }

    /// [`Emu::run`] over the predecoded dispatch path of
    /// [`Emu::step_predecoded`].
    pub fn run_predecoded(&mut self, max_steps: u64, image: &PredecodedImage) -> RunOutcome {
        for _ in 0..max_steps {
            match self.step_predecoded(image) {
                Ok(StepOutcome::Step(_)) => {}
                Ok(StepOutcome::Stop { reason, addr }) => {
                    return RunOutcome::Stop { reason, addr, steps: self.steps }
                }
                Err(fault) => return RunOutcome::Fault { fault, steps: self.steps },
            }
        }
        RunOutcome::StepLimit { steps: self.steps }
    }

    /// Captures the full emulator state for later [`Emu::restore`].
    ///
    /// Snapshot/restore is the sweep hot loop's alternative to booting a
    /// fresh emulator per trial: boot once, snapshot, then restore before
    /// each perturbed run.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cpu: self.cpu.clone(),
            cfg: self.cfg,
            load_override: self.load_override,
            pc: self.pc,
            steps: self.steps,
            mem: self.mem.snapshot(),
            injections: self.injections.clone(),
        }
    }

    /// Restores a [`Snapshot`] taken from this emulator.
    ///
    /// Register state is always restored; region contents are only copied
    /// back when the emulated program stored to memory since the snapshot
    /// (tracked by [`Memory::write_epoch`]). Loader-style writes via
    /// [`Memory::load`] are deliberately *not* tracked — the sweep loop
    /// exploits this by re-poking the same target halfword every trial.
    ///
    /// # Panics
    ///
    /// Panics if the memory map changed shape since the snapshot (regions
    /// mapped or unmapped); restore only rolls back contents.
    pub fn restore(&mut self, snap: &Snapshot) {
        self.cpu = snap.cpu.clone();
        self.cfg = snap.cfg;
        self.load_override = snap.load_override;
        self.pc = snap.pc;
        self.steps = snap.steps;
        self.mem.restore(&snap.mem);
        self.injections.clear();
        self.injections.extend_from_slice(&snap.injections);
    }

    fn read_reg(&self, r: Reg, addr: u32) -> u32 {
        if r == Reg::PC {
            addr.wrapping_add(4)
        } else {
            self.cpu.reg(r)
        }
    }

    fn set_nz(&mut self, value: u32) {
        self.cpu.flags.n = value & 0x8000_0000 != 0;
        self.cpu.flags.z = value == 0;
    }

    fn load(&mut self, addr: u32, width: Width) -> Result<u32, Fault> {
        let raw = match width {
            Width::Byte => u32::from(self.mem.read8(addr)?),
            Width::Half => u32::from(self.mem.read16(addr)?),
            Width::Word => self.mem.read32(addr)?,
        };
        let value = match self.load_override.take() {
            Some(ov) => {
                let mask = match width {
                    Width::Byte => 0xFF,
                    Width::Half => 0xFFFF,
                    Width::Word => u32::MAX,
                };
                ov.apply(raw) & mask
            }
            None => raw,
        };
        Ok(value)
    }

    /// Executes an already-decoded instruction at `addr`, advancing the PC.
    ///
    /// This is the entry point used by the pipeline simulator, which does
    /// its own (possibly glitch-corrupted) fetching.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] for memory faults and interworking attempts.
    #[allow(clippy::too_many_lines)]
    pub fn exec(&mut self, instr: Instr, addr: u32, size: u32) -> Result<StepOutcome, Fault> {
        self.steps += 1;
        let mut step = Step {
            addr,
            instr,
            size,
            next_pc: addr.wrapping_add(size),
            branched: false,
            loads: 0,
            stores: 0,
            store: None,
        };
        match instr {
            Instr::ShiftImm { op, rd, rm, imm5 } => {
                let x = self.read_reg(rm, addr);
                let (result, carry) = shift_imm(op, x, imm5, self.cpu.flags.c);
                self.cpu.set_reg(rd, result);
                self.set_nz(result);
                self.cpu.flags.c = carry;
            }
            Instr::AddReg3 { rd, rn, rm } => {
                let (r, c, v) =
                    add_with_carry(self.read_reg(rn, addr), self.read_reg(rm, addr), false);
                self.cpu.set_reg(rd, r);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            Instr::SubReg3 { rd, rn, rm } => {
                let (r, c, v) =
                    add_with_carry(self.read_reg(rn, addr), !self.read_reg(rm, addr), true);
                self.cpu.set_reg(rd, r);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            Instr::AddImm3 { rd, rn, imm3 } => {
                let (r, c, v) = add_with_carry(self.read_reg(rn, addr), u32::from(imm3), false);
                self.cpu.set_reg(rd, r);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            Instr::SubImm3 { rd, rn, imm3 } => {
                let (r, c, v) = add_with_carry(self.read_reg(rn, addr), !u32::from(imm3), true);
                self.cpu.set_reg(rd, r);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            Instr::MovImm { rd, imm8 } => {
                let v = u32::from(imm8);
                self.cpu.set_reg(rd, v);
                self.set_nz(v);
            }
            Instr::CmpImm { rn, imm8 } => {
                let (r, c, v) = add_with_carry(self.read_reg(rn, addr), !u32::from(imm8), true);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            Instr::AddImm8 { rdn, imm8 } => {
                let (r, c, v) = add_with_carry(self.read_reg(rdn, addr), u32::from(imm8), false);
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            Instr::SubImm8 { rdn, imm8 } => {
                let (r, c, v) = add_with_carry(self.read_reg(rdn, addr), !u32::from(imm8), true);
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            Instr::Alu { op, rdn, rm } => self.exec_alu(op, rdn, rm, addr),
            Instr::AddHi { rdn, rm } => {
                let r = self.read_reg(rdn, addr).wrapping_add(self.read_reg(rm, addr));
                if rdn == Reg::PC {
                    step.next_pc = r & !1;
                    step.branched = true;
                } else {
                    self.cpu.set_reg(rdn, r);
                }
            }
            Instr::CmpHi { rn, rm } => {
                let (r, c, v) =
                    add_with_carry(self.read_reg(rn, addr), !self.read_reg(rm, addr), true);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            Instr::MovHi { rd, rm } => {
                let v = self.read_reg(rm, addr);
                if rd == Reg::PC {
                    step.next_pc = v & !1;
                    step.branched = true;
                } else {
                    self.cpu.set_reg(rd, v);
                }
            }
            Instr::Bx { rm } | Instr::Blx { rm } => {
                let target = self.read_reg(rm, addr);
                if target & 1 == 0 {
                    return Err(Fault::InterworkArm { addr, target });
                }
                if matches!(instr, Instr::Blx { .. }) {
                    self.cpu.set_reg(Reg::LR, addr.wrapping_add(2) | 1);
                }
                step.next_pc = target & !1;
                step.branched = true;
            }
            Instr::LdrLit { rt, imm8 } => {
                let base = addr.wrapping_add(4) & !3;
                let v = self.load(base.wrapping_add(u32::from(imm8) * 4), Width::Word)?;
                self.cpu.set_reg(rt, v);
                step.loads = 1;
            }
            Instr::StoreReg { width, rt, rn, rm } => {
                let a = self.read_reg(rn, addr).wrapping_add(self.read_reg(rm, addr));
                let v = self.read_reg(rt, addr);
                self.store(a, v, width)?;
                step.stores = 1;
                step.store = Some((a, v));
            }
            Instr::LoadReg { width, rt, rn, rm } => {
                let a = self.read_reg(rn, addr).wrapping_add(self.read_reg(rm, addr));
                let v = self.load(a, width)?;
                self.cpu.set_reg(rt, v);
                step.loads = 1;
            }
            Instr::LdrsbReg { rt, rn, rm } => {
                let a = self.read_reg(rn, addr).wrapping_add(self.read_reg(rm, addr));
                let v = self.load(a, Width::Byte)? as i8;
                self.cpu.set_reg(rt, v as i32 as u32);
                step.loads = 1;
            }
            Instr::LdrshReg { rt, rn, rm } => {
                let a = self.read_reg(rn, addr).wrapping_add(self.read_reg(rm, addr));
                let v = self.load(a, Width::Half)? as u16 as i16;
                self.cpu.set_reg(rt, v as i32 as u32);
                step.loads = 1;
            }
            Instr::StoreImm { width, rt, rn, imm5 } => {
                let a = self.read_reg(rn, addr).wrapping_add(u32::from(imm5) * width.bytes());
                let v = self.read_reg(rt, addr);
                self.store(a, v, width)?;
                step.stores = 1;
                step.store = Some((a, v));
            }
            Instr::LoadImm { width, rt, rn, imm5 } => {
                let a = self.read_reg(rn, addr).wrapping_add(u32::from(imm5) * width.bytes());
                let v = self.load(a, width)?;
                self.cpu.set_reg(rt, v);
                step.loads = 1;
            }
            Instr::StrSp { rt, imm8 } => {
                let a = self.cpu.sp().wrapping_add(u32::from(imm8) * 4);
                let v = self.read_reg(rt, addr);
                self.store(a, v, Width::Word)?;
                step.stores = 1;
                step.store = Some((a, v));
            }
            Instr::LdrSp { rt, imm8 } => {
                let a = self.cpu.sp().wrapping_add(u32::from(imm8) * 4);
                let v = self.load(a, Width::Word)?;
                self.cpu.set_reg(rt, v);
                step.loads = 1;
            }
            Instr::Adr { rd, imm8 } => {
                let base = addr.wrapping_add(4) & !3;
                self.cpu.set_reg(rd, base.wrapping_add(u32::from(imm8) * 4));
            }
            Instr::AddSpImm { rd, imm8 } => {
                let v = self.cpu.sp().wrapping_add(u32::from(imm8) * 4);
                self.cpu.set_reg(rd, v);
            }
            Instr::AddSp { imm7 } => {
                let v = self.cpu.sp().wrapping_add(u32::from(imm7) * 4);
                self.cpu.set_sp(v);
            }
            Instr::SubSp { imm7 } => {
                let v = self.cpu.sp().wrapping_sub(u32::from(imm7) * 4);
                self.cpu.set_sp(v);
            }
            Instr::Sxth { rd, rm } => {
                let v = self.read_reg(rm, addr) as u16 as i16 as i32 as u32;
                self.cpu.set_reg(rd, v);
            }
            Instr::Sxtb { rd, rm } => {
                let v = self.read_reg(rm, addr) as u8 as i8 as i32 as u32;
                self.cpu.set_reg(rd, v);
            }
            Instr::Uxth { rd, rm } => {
                self.cpu.set_reg(rd, self.read_reg(rm, addr) & 0xFFFF);
            }
            Instr::Uxtb { rd, rm } => {
                self.cpu.set_reg(rd, self.read_reg(rm, addr) & 0xFF);
            }
            Instr::Rev { rd, rm } => {
                self.cpu.set_reg(rd, self.read_reg(rm, addr).swap_bytes());
            }
            Instr::Rev16 { rd, rm } => {
                let x = self.read_reg(rm, addr);
                let v = (x & 0x00FF_00FF) << 8 | (x & 0xFF00_FF00) >> 8;
                self.cpu.set_reg(rd, v);
            }
            Instr::Revsh { rd, rm } => {
                let x = self.read_reg(rm, addr);
                let swapped = ((x & 0xFF) << 8 | (x >> 8) & 0xFF) as u16;
                self.cpu.set_reg(rd, swapped as i16 as i32 as u32);
            }
            Instr::Push { rlist, lr } => {
                let count = rlist.count_ones() + u32::from(lr);
                let base = self.cpu.sp().wrapping_sub(4 * count);
                let mut a = base;
                for i in 0..8 {
                    if rlist & (1 << i) != 0 {
                        let v = self.cpu.reg(Reg::new(i).expect("list index < 8"));
                        self.store(a, v, Width::Word)?;
                        step.store = Some((a, v));
                        a += 4;
                    }
                }
                if lr {
                    let v = self.cpu.lr();
                    self.store(a, v, Width::Word)?;
                    step.store = Some((a, v));
                }
                self.cpu.set_sp(base);
                step.stores = count as u8;
            }
            Instr::Pop { rlist, pc } => {
                let count = rlist.count_ones() + u32::from(pc);
                let mut a = self.cpu.sp();
                for i in 0..8 {
                    if rlist & (1 << i) != 0 {
                        let v = self.load(a, Width::Word)?;
                        self.cpu.set_reg(Reg::new(i).expect("list index < 8"), v);
                        a += 4;
                    }
                }
                if pc {
                    let target = self.load(a, Width::Word)?;
                    if target & 1 == 0 {
                        return Err(Fault::InterworkArm { addr, target });
                    }
                    step.next_pc = target & !1;
                    step.branched = true;
                    a += 4;
                }
                self.cpu.set_sp(a);
                step.loads = count as u8;
            }
            Instr::Bkpt { imm8 } => {
                return Ok(StepOutcome::Stop { reason: StopReason::Bkpt(imm8), addr })
            }
            Instr::Hint { hint } => match hint {
                gd_thumb::Hint::Wfi => {
                    return Ok(StepOutcome::Stop { reason: StopReason::Wfi, addr })
                }
                gd_thumb::Hint::Wfe => {
                    return Ok(StepOutcome::Stop { reason: StopReason::Wfe, addr })
                }
                _ => {}
            },
            Instr::Cps { disable } => self.cpu.primask = disable,
            Instr::Stm { rn, rlist } => {
                let mut a = self.read_reg(rn, addr);
                let count = rlist.count_ones();
                for i in 0..8 {
                    if rlist & (1 << i) != 0 {
                        let v = self.cpu.reg(Reg::new(i).expect("list index < 8"));
                        self.store(a, v, Width::Word)?;
                        step.store = Some((a, v));
                        a += 4;
                    }
                }
                self.cpu.set_reg(rn, a);
                step.stores = count as u8;
            }
            Instr::Ldm { rn, rlist } => {
                let mut a = self.read_reg(rn, addr);
                let count = rlist.count_ones();
                for i in 0..8 {
                    if rlist & (1 << i) != 0 {
                        let v = self.load(a, Width::Word)?;
                        self.cpu.set_reg(Reg::new(i).expect("list index < 8"), v);
                        a += 4;
                    }
                }
                // Writeback unless rn is in the transfer list.
                if rlist & (1 << rn.index()) == 0 {
                    self.cpu.set_reg(rn, a);
                }
                step.loads = count as u8;
            }
            Instr::BCond { cond, offset } => {
                if cond.holds(self.cpu.flags) {
                    step.next_pc = addr.wrapping_add(4).wrapping_add(offset as u32);
                    step.branched = true;
                }
            }
            Instr::Udf { imm8: _ } => return Err(Fault::Undefined { addr, hw: 0xDE00, hw2: None }),
            Instr::Svc { imm8 } => {
                return Ok(StepOutcome::Stop { reason: StopReason::Svc(imm8), addr })
            }
            Instr::B { offset } => {
                step.next_pc = addr.wrapping_add(4).wrapping_add(offset as u32);
                step.branched = true;
            }
            Instr::Bl { offset } => {
                self.cpu.set_reg(Reg::LR, addr.wrapping_add(4) | 1);
                step.next_pc = addr.wrapping_add(4).wrapping_add(offset as u32);
                step.branched = true;
            }
            Instr::BW { offset } => {
                step.next_pc = addr.wrapping_add(4).wrapping_add(offset as u32);
                step.branched = true;
            }
            Instr::BCondW { cond, offset } => {
                if cond.holds(self.cpu.flags) {
                    step.next_pc = addr.wrapping_add(4).wrapping_add(offset as u32);
                    step.branched = true;
                }
            }
            Instr::DpImm { op, s, rn, rd, imm12 } => {
                let c_in = self.cpu.flags.c;
                let (imm, imm_c) = thumb_expand_imm_c(imm12, c_in);
                // The MOV/MVN forms (rn == PC) never read their operand.
                let a = if rn == Reg::PC { 0 } else { self.read_reg(rn, addr) };
                // Logical ops take C from the immediate expansion and
                // leave V alone; arithmetic ops take both from the adder.
                let (r, c, v) = match op {
                    WideDpOp::And => (a & imm, imm_c, None),
                    WideDpOp::Bic => (a & !imm, imm_c, None),
                    WideDpOp::Orr => (if rn == Reg::PC { imm } else { a | imm }, imm_c, None),
                    WideDpOp::Orn => (if rn == Reg::PC { !imm } else { a | !imm }, imm_c, None),
                    WideDpOp::Eor => (a ^ imm, imm_c, None),
                    WideDpOp::Add => map3(add_with_carry(a, imm, false)),
                    WideDpOp::Adc => map3(add_with_carry(a, imm, c_in)),
                    WideDpOp::Sbc => map3(add_with_carry(a, !imm, c_in)),
                    WideDpOp::Sub => map3(add_with_carry(a, !imm, true)),
                    WideDpOp::Rsb => map3(add_with_carry(!a, imm, true)),
                };
                // rd == PC encodes the compare/test form: flags only.
                if rd != Reg::PC {
                    self.cpu.set_reg(rd, r);
                }
                if s {
                    self.set_nz(r);
                    self.cpu.flags.c = c;
                    if let Some(v) = v {
                        self.cpu.flags.v = v;
                    }
                }
            }
            Instr::MovW { rd, imm16 } => {
                self.cpu.set_reg(rd, u32::from(imm16));
            }
            Instr::MovT { rd, imm16 } => {
                let r = self.cpu.reg(rd) & 0xFFFF | u32::from(imm16) << 16;
                self.cpu.set_reg(rd, r);
            }
            Instr::LdrW { rt, rn, imm12 } => {
                let base =
                    if rn == Reg::PC { addr.wrapping_add(4) & !3 } else { self.read_reg(rn, addr) };
                let v = self.load(base.wrapping_add(u32::from(imm12)), Width::Word)?;
                step.loads = 1;
                if rt == Reg::PC {
                    // A load into PC is an interworking branch: bit 0
                    // must select Thumb state, exactly as BX.
                    if v & 1 == 0 {
                        return Err(Fault::InterworkArm { addr, target: v });
                    }
                    step.next_pc = v & !1;
                    step.branched = true;
                } else {
                    self.cpu.set_reg(rt, v);
                }
            }
            Instr::StrW { rt, rn, imm12 } => {
                let a = self.read_reg(rn, addr).wrapping_add(u32::from(imm12));
                let v = self.read_reg(rt, addr);
                self.store(a, v, Width::Word)?;
                step.stores = 1;
                step.store = Some((a, v));
            }
        }
        self.pc = step.next_pc;
        Ok(StepOutcome::Step(step))
    }

    fn store(&mut self, addr: u32, value: u32, width: Width) -> Result<(), Fault> {
        match width {
            Width::Byte => self.mem.write8(addr, value as u8)?,
            Width::Half => self.mem.write16(addr, value as u16)?,
            Width::Word => self.mem.write32(addr, value)?,
        }
        Ok(())
    }

    fn exec_alu(&mut self, op: AluOp, rdn: Reg, rm: Reg, addr: u32) {
        let a = self.read_reg(rdn, addr);
        let b = self.read_reg(rm, addr);
        let c_in = self.cpu.flags.c;
        match op {
            AluOp::And | AluOp::Tst => {
                let r = a & b;
                if op == AluOp::And {
                    self.cpu.set_reg(rdn, r);
                }
                self.set_nz(r);
            }
            AluOp::Eor => {
                let r = a ^ b;
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
            }
            AluOp::Orr => {
                let r = a | b;
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
            }
            AluOp::Bic => {
                let r = a & !b;
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
            }
            AluOp::Mvn => {
                let r = !b;
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
            }
            AluOp::Mul => {
                let r = a.wrapping_mul(b);
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
            }
            AluOp::Lsl | AluOp::Lsr | AluOp::Asr | AluOp::Ror => {
                let (r, carry) = shift_reg(op, a, b & 0xFF, c_in);
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
                self.cpu.flags.c = carry;
            }
            AluOp::Adc => {
                let (r, c, v) = add_with_carry(a, b, c_in);
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            AluOp::Sbc => {
                let (r, c, v) = add_with_carry(a, !b, c_in);
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            AluOp::Rsb => {
                let (r, c, v) = add_with_carry(!b, 0, true);
                self.cpu.set_reg(rdn, r);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            AluOp::Cmp => {
                let (r, c, v) = add_with_carry(a, !b, true);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
            AluOp::Cmn => {
                let (r, c, v) = add_with_carry(a, b, false);
                self.set_nz(r);
                self.cpu.flags.c = c;
                self.cpu.flags.v = v;
            }
        }
    }
}

/// `AddWithCarry` from the ARM ARM pseudocode: returns (result, carry,
/// overflow).
pub fn add_with_carry(a: u32, b: u32, carry_in: bool) -> (u32, bool, bool) {
    let unsigned = u64::from(a) + u64::from(b) + u64::from(carry_in);
    let result = unsigned as u32;
    let carry = unsigned >> 32 != 0;
    let signed = i64::from(a as i32) + i64::from(b as i32) + i64::from(carry_in);
    let overflow = signed != i64::from(result as i32);
    (result, carry, overflow)
}

/// Tags an [`add_with_carry`] result so it slots into the wide
/// data-processing arm, where logical ops carry `None` for V.
fn map3((r, c, v): (u32, bool, bool)) -> (u32, bool, Option<bool>) {
    (r, c, Some(v))
}

fn shift_imm(op: ShiftOp, x: u32, imm5: u8, c_in: bool) -> (u32, bool) {
    let n = u32::from(imm5);
    match op {
        ShiftOp::Lsl => {
            if n == 0 {
                (x, c_in)
            } else {
                ((x << n), (x >> (32 - n)) & 1 != 0)
            }
        }
        ShiftOp::Lsr => {
            if n == 0 {
                (0, x >> 31 != 0)
            } else {
                (x >> n, (x >> (n - 1)) & 1 != 0)
            }
        }
        ShiftOp::Asr => {
            if n == 0 {
                let sign = x >> 31 != 0;
                (if sign { u32::MAX } else { 0 }, sign)
            } else {
                (((x as i32) >> n) as u32, ((x as i32) >> (n - 1)) & 1 != 0)
            }
        }
    }
}

fn shift_reg(op: AluOp, x: u32, amount: u32, c_in: bool) -> (u32, bool) {
    if amount == 0 {
        return (x, c_in);
    }
    match op {
        AluOp::Lsl => match amount {
            1..=31 => (x << amount, (x >> (32 - amount)) & 1 != 0),
            32 => (0, x & 1 != 0),
            _ => (0, false),
        },
        AluOp::Lsr => match amount {
            1..=31 => (x >> amount, (x >> (amount - 1)) & 1 != 0),
            32 => (0, x >> 31 != 0),
            _ => (0, false),
        },
        AluOp::Asr => {
            if amount < 32 {
                (((x as i32) >> amount) as u32, ((x as i32) >> (amount - 1)) & 1 != 0)
            } else {
                let sign = x >> 31 != 0;
                (if sign { u32::MAX } else { 0 }, sign)
            }
        }
        AluOp::Ror => {
            let r = amount % 32;
            if r == 0 {
                (x, x >> 31 != 0)
            } else {
                let v = x.rotate_right(r);
                (v, v >> 31 != 0)
            }
        }
        _ => unreachable!("shift_reg only handles shift ops"),
    }
}
