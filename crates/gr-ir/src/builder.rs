//! Ergonomic construction of IR functions.

use crate::core::{BinOp, BlockId, Function, Instr, Pred, Terminator, Ty, ValueId};

/// A cursor appending instructions to the end of a block.
///
/// ```
/// use gd_ir::{Builder, Function, Pred, Ty};
///
/// let mut f = Function::new("is_zero", vec![Ty::I32], Ty::I32);
/// let entry = f.add_block("entry");
/// let (then_bb, else_bb) = {
///     let t = f.add_block("then");
///     let e = f.add_block("else");
///     (t, e)
/// };
/// let mut b = Builder::new(&mut f, entry);
/// let zero = b.const_i32(0);
/// let p0 = b.func().param(0);
/// let c = b.icmp(Pred::Eq, p0, zero);
/// b.cond_br(c, then_bb, else_bb);
/// let mut b = Builder::new(&mut f, then_bb);
/// let one = b.const_i32(1);
/// b.ret(Some(one));
/// let mut b = Builder::new(&mut f, else_bb);
/// let zero = b.const_i32(0);
/// b.ret(Some(zero));
/// assert_eq!(f.block_count(), 3);
/// ```
#[derive(Debug)]
pub struct Builder<'f> {
    func: &'f mut Function,
    block: BlockId,
}

impl<'f> Builder<'f> {
    /// Positions a builder at the end of `block`.
    pub fn new(func: &'f mut Function, block: BlockId) -> Builder<'f> {
        Builder { func, block }
    }

    /// The function under construction.
    pub fn func(&mut self) -> &mut Function {
        self.func
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.block
    }

    /// Moves the insertion point to another block.
    pub fn switch_to(&mut self, block: BlockId) {
        self.block = block;
    }

    /// Appends `instr` with result type `ty` and returns its value.
    pub fn insert(&mut self, instr: Instr, ty: Ty) -> ValueId {
        let id = self.func.create_instr(instr, ty);
        self.func.block_mut(self.block).instrs.push(id);
        id
    }

    /// An `i32` constant.
    pub fn const_i32(&mut self, value: i64) -> ValueId {
        self.func.const_int(Ty::I32, value)
    }

    /// A constant of arbitrary integer type.
    pub fn const_ty(&mut self, ty: Ty, value: i64) -> ValueId {
        self.func.const_int(ty, value)
    }

    /// Binary operation (result type = lhs type).
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.func.ty(lhs);
        self.insert(Instr::Bin { op, lhs, rhs }, ty)
    }

    /// `add`.
    pub fn add(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// `sub`.
    pub fn sub(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// `xor`.
    pub fn xor(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Xor, lhs, rhs)
    }

    /// Bitwise complement.
    pub fn not(&mut self, arg: ValueId) -> ValueId {
        let ty = self.func.ty(arg);
        self.insert(Instr::Not { arg }, ty)
    }

    /// Comparison.
    pub fn icmp(&mut self, pred: Pred, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.insert(Instr::Icmp { pred, lhs, rhs }, Ty::I1)
    }

    /// Width cast.
    pub fn cast(&mut self, arg: ValueId, to: Ty) -> ValueId {
        self.insert(Instr::Cast { arg, to }, to)
    }

    /// Stack allocation.
    pub fn alloca(&mut self, ty: Ty) -> ValueId {
        self.insert(Instr::Alloca { ty }, Ty::Ptr)
    }

    /// Non-volatile load.
    pub fn load(&mut self, ptr: ValueId, ty: Ty) -> ValueId {
        self.insert(Instr::Load { ptr, ty, volatile: false }, ty)
    }

    /// Volatile load.
    pub fn load_volatile(&mut self, ptr: ValueId, ty: Ty) -> ValueId {
        self.insert(Instr::Load { ptr, ty, volatile: true }, ty)
    }

    /// Non-volatile store.
    pub fn store(&mut self, ptr: ValueId, value: ValueId) {
        self.insert(Instr::Store { ptr, value, volatile: false }, Ty::Void);
    }

    /// Volatile store.
    pub fn store_volatile(&mut self, ptr: ValueId, value: ValueId) {
        self.insert(Instr::Store { ptr, value, volatile: true }, Ty::Void);
    }

    /// Address of a global.
    pub fn global_addr(&mut self, name: &str) -> ValueId {
        self.insert(Instr::GlobalAddr { name: name.to_owned() }, Ty::Ptr)
    }

    /// Call; `ret_ty` must match the callee's signature.
    pub fn call(&mut self, callee: &str, args: Vec<ValueId>, ret_ty: Ty) -> ValueId {
        self.insert(Instr::Call { callee: callee.to_owned(), args }, ret_ty)
    }

    /// Phi node at the head of the current block.
    pub fn phi(&mut self, ty: Ty, incomings: Vec<(BlockId, ValueId)>) -> ValueId {
        let id = self.func.create_instr(Instr::Phi { incomings }, ty);
        self.func.block_mut(self.block).instrs.insert(0, id);
        id
    }

    /// Terminates with an unconditional branch.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br { target });
    }

    /// Terminates with a conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::CondBr { cond, then_bb, else_bb });
    }

    /// Terminates with a return.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.terminate(Terminator::Ret { value });
    }

    fn terminate(&mut self, term: Terminator) {
        let block = self.func.block_mut(self.block);
        assert!(block.term.is_none(), "block `{}` already terminated", block.name);
        block.term = Some(term);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop() {
        // while (*p != 0) {}  — the paper's guard shape.
        let mut f = Function::new("spin", vec![Ty::Ptr], Ty::Void);
        let entry = f.add_block("entry");
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let p = f.param(0);

        let mut b = Builder::new(&mut f, entry);
        b.br(header);
        b.switch_to(header);
        let v = b.load_volatile(p, Ty::I32);
        let zero = b.const_i32(0);
        let c = b.icmp(Pred::Ne, v, zero);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);

        assert_eq!(f.block_count(), 4);
        assert_eq!(f.block(header).instrs.len(), 2, "load + icmp (const is not an instr)");
        assert!(matches!(f.block(header).term, Some(Terminator::CondBr { .. })));
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_termination_panics() {
        let mut f = Function::new("f", vec![], Ty::Void);
        let bb = f.add_block("entry");
        let mut b = Builder::new(&mut f, bb);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    fn phi_goes_to_block_head() {
        let mut f = Function::new("f", vec![Ty::I32], Ty::I32);
        let bb = f.add_block("entry");
        let p = f.param(0);
        let mut b = Builder::new(&mut f, bb);
        let one = b.const_i32(1);
        let x = b.add(p, one);
        let phi = b.phi(Ty::I32, vec![(bb, x)]);
        assert_eq!(f.block(bb).instrs[0], phi);
        assert_eq!(f.block(bb).instrs.len(), 2);
    }
}
