//! Small helpers for rendering experiment tables.
//!
//! Every table renderer in this crate builds a `String` (so results can
//! be served over HTTP, cached, and diffed against golden files); the
//! `print_*` siblings used by the CLI binaries just print the rendered
//! text. Formatting is pinned by the committed `results/*.txt` files —
//! change nothing here without regenerating them.

/// Formats a rate as a percentage with the paper's precision.
pub fn pct(num: u64, denom: u64) -> String {
    if denom == 0 {
        "-".to_owned()
    } else {
        format!("{:.3}%", 100.0 * num as f64 / denom as f64)
    }
}

/// A horizontal rule sized to `width`, with trailing newline.
pub fn rule_str(width: usize) -> String {
    format!("{}\n", "-".repeat(width))
}

/// A heading with rules, exactly as the legacy binaries printed it: a
/// blank line, a rule, the text, a rule.
pub fn heading_str(text: &str) -> String {
    let r = rule_str(text.len().max(60));
    format!("\n{r}{text}\n{r}")
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    print!("{}", rule_str(width));
}

/// Prints a heading with rules.
pub fn heading(text: &str) {
    print!("{}", heading_str(text));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(585, 78_408), "0.746%");
        assert_eq!(pct(0, 0), "-");
        assert_eq!(pct(1, 4), "25.000%");
    }

    #[test]
    fn heading_matches_the_legacy_print_sequence() {
        let h = heading_str("Table I — x");
        assert_eq!(h, format!("\n{0}\nTable I — x\n{0}\n", "-".repeat(60)));
        let long = "y".repeat(70);
        assert!(heading_str(&long).contains(&"-".repeat(70)));
    }
}
