//! The IR verifier: structural and type well-formedness, plus SSA dominance.
//!
//! Passes run the verifier after every transformation in tests, so a defense
//! pass that produces malformed IR fails loudly instead of miscompiling.

use core::fmt;
use std::collections::HashMap;

use crate::analysis::{Cfg, DomTree};
use crate::core::{Function, Instr, Module, Terminator, Ty, ValueDef, ValueId};

/// A verification failure, with the function and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// What is wrong.
    pub msg: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification of @{} failed: {}", self.func, self.msg)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in a module, plus cross-references (globals,
/// call signatures, enum refs).
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in &module.funcs {
        verify_function(func, Some(module))?;
    }
    Ok(())
}

/// Verifies a single function; `module` enables cross-reference checks.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
#[allow(clippy::too_many_lines)]
pub fn verify_function(func: &Function, module: Option<&Module>) -> Result<(), VerifyError> {
    let fail = |msg: String| Err(VerifyError { func: func.name.clone(), msg });

    if func.block_count() == 0 {
        return fail("function has no blocks".into());
    }

    // Every block terminated; block names unique.
    let mut names = HashMap::new();
    for bb in func.block_ids() {
        let block = func.block(bb);
        if block.term.is_none() {
            return fail(format!("block `{}` lacks a terminator", block.name));
        }
        if names.insert(block.name.clone(), bb).is_some() {
            return fail(format!("duplicate block name `{}`", block.name));
        }
    }

    // Map: instruction value → (block, position); ensure single placement.
    let mut placement: HashMap<ValueId, (crate::core::BlockId, usize)> = HashMap::new();
    for bb in func.block_ids() {
        for (pos, &id) in func.block(bb).instrs.iter().enumerate() {
            if !matches!(func.value(id), ValueDef::Instr(_)) {
                return fail(format!(
                    "block `{}` lists non-instruction %{}",
                    func.block(bb).name,
                    id.index()
                ));
            }
            if placement.insert(id, (bb, pos)).is_some() {
                return fail(format!("%{} placed twice", id.index()));
            }
        }
    }

    let cfg = Cfg::compute(func);
    let dom = DomTree::compute(func, &cfg);

    // Type and dominance checks per instruction.
    for bb in func.block_ids() {
        let block = func.block(bb);
        for (pos, &id) in block.instrs.iter().enumerate() {
            let ValueDef::Instr(instr) = func.value(id) else { unreachable!() };
            let ty = func.ty(id);
            let check_int_same = |a: ValueId, b: ValueId| -> Result<(), VerifyError> {
                if !func.ty(a).is_int() || func.ty(a) != func.ty(b) {
                    return Err(VerifyError {
                        func: func.name.clone(),
                        msg: format!(
                            "%{}: operands %{}:{} and %{}:{} must be same-typed integers",
                            id.index(),
                            a.index(),
                            func.ty(a),
                            b.index(),
                            func.ty(b)
                        ),
                    });
                }
                Ok(())
            };
            match instr {
                Instr::Bin { lhs, rhs, .. } => {
                    check_int_same(*lhs, *rhs)?;
                    if ty != func.ty(*lhs) {
                        return fail(format!("%{}: result type mismatch", id.index()));
                    }
                }
                Instr::Icmp { lhs, rhs, .. } => {
                    check_int_same(*lhs, *rhs)?;
                    if ty != Ty::I1 {
                        return fail(format!("%{}: icmp must yield i1", id.index()));
                    }
                }
                Instr::Not { arg } => {
                    if !func.ty(*arg).is_int() || ty != func.ty(*arg) {
                        return fail(format!("%{}: not needs matching int types", id.index()));
                    }
                }
                Instr::IntToPtr { arg } => {
                    if func.ty(*arg) != Ty::I32 || ty != Ty::Ptr {
                        return fail(format!("%{}: inttoptr needs i32 → ptr", id.index()));
                    }
                }
                Instr::Cast { arg, to } => {
                    if !func.ty(*arg).is_int() || !to.is_int() || ty != *to {
                        return fail(format!("%{}: cast needs int→int", id.index()));
                    }
                }
                Instr::Alloca { ty: pointee } => {
                    if ty != Ty::Ptr || *pointee == Ty::Void {
                        return fail(format!("%{}: alloca yields ptr to a sized type", id.index()));
                    }
                }
                Instr::Load { ptr, ty: loaded, .. } => {
                    if func.ty(*ptr) != Ty::Ptr {
                        return fail(format!("%{}: load pointer must be ptr", id.index()));
                    }
                    if ty != *loaded || !loaded.is_int() {
                        return fail(format!("%{}: load type mismatch", id.index()));
                    }
                }
                Instr::Store { ptr, value, .. } => {
                    if func.ty(*ptr) != Ty::Ptr {
                        return fail(format!("%{}: store pointer must be ptr", id.index()));
                    }
                    if !func.ty(*value).is_int() {
                        return fail(format!("%{}: stored value must be integer", id.index()));
                    }
                    if ty != Ty::Void {
                        return fail(format!("%{}: store has no result", id.index()));
                    }
                }
                Instr::GlobalAddr { name } => {
                    if ty != Ty::Ptr {
                        return fail(format!("%{}: globaladdr yields ptr", id.index()));
                    }
                    if let Some(m) = module {
                        if m.global(name).is_none() {
                            return fail(format!("%{}: unknown global @{name}", id.index()));
                        }
                    }
                }
                Instr::Call { callee, args } => {
                    if let Some(m) = module {
                        let Some((params, ret)) = m.signature(callee) else {
                            return fail(format!("%{}: unknown callee @{callee}", id.index()));
                        };
                        if params.len() != args.len() {
                            return fail(format!(
                                "%{}: @{callee} takes {} args, got {}",
                                id.index(),
                                params.len(),
                                args.len()
                            ));
                        }
                        for (a, p) in args.iter().zip(params.iter()) {
                            if func.ty(*a) != *p {
                                return fail(format!(
                                    "%{}: argument type {} ≠ parameter type {p}",
                                    id.index(),
                                    func.ty(*a)
                                ));
                            }
                        }
                        if ty != ret {
                            return fail(format!("%{}: call result type mismatch", id.index()));
                        }
                    }
                }
                Instr::Phi { incomings } => {
                    // Phis live at the head of the block (possibly several).
                    let head = block.instrs[..pos].iter().all(|&prev| {
                        matches!(func.value(prev), ValueDef::Instr(Instr::Phi { .. }))
                    });
                    if !head {
                        return fail(format!("%{}: phi not at block head", id.index()));
                    }
                    let mut preds: Vec<_> = cfg.preds(bb).to_vec();
                    preds.sort_unstable();
                    preds.dedup();
                    let mut inc: Vec<_> = incomings.iter().map(|(b, _)| *b).collect();
                    inc.sort_unstable();
                    inc.dedup();
                    if inc != preds {
                        return fail(format!(
                            "%{}: phi incomings do not match predecessors of `{}`",
                            id.index(),
                            block.name
                        ));
                    }
                    for (_, v) in incomings {
                        if func.ty(*v) != ty {
                            return fail(format!("%{}: phi incoming type mismatch", id.index()));
                        }
                    }
                }
            }

            // Dominance: each instruction operand must be defined before
            // use. Unreachable blocks (dead code after returns) are exempt,
            // as in LLVM.
            if !matches!(instr, Instr::Phi { .. }) && cfg.reachable(bb) {
                for op in instr.operands() {
                    if let Some(err) = check_dominance(func, &placement, &dom, op, bb, pos) {
                        return fail(err);
                    }
                }
            }
        }

        // Terminator checks.
        match func.block(bb).term.as_ref().expect("checked above") {
            Terminator::CondBr { cond, .. } => {
                if func.ty(*cond) != Ty::I1 {
                    return fail(format!("condbr condition in `{}` must be i1", block.name));
                }
                let pos = func.block(bb).instrs.len();
                if cfg.reachable(bb) {
                    if let Some(err) = check_dominance(func, &placement, &dom, *cond, bb, pos) {
                        return fail(err);
                    }
                }
            }
            Terminator::Ret { value } => match (value, func.ret) {
                (None, Ty::Void) => {}
                (Some(v), ret) if func.ty(*v) == ret => {
                    let pos = func.block(bb).instrs.len();
                    if cfg.reachable(bb) {
                        if let Some(err) = check_dominance(func, &placement, &dom, *v, bb, pos) {
                            return fail(err);
                        }
                    }
                }
                _ => return fail(format!("return type mismatch in `{}`", block.name)),
            },
            Terminator::Br { .. } => {}
        }
    }
    Ok(())
}

fn check_dominance(
    func: &Function,
    placement: &HashMap<ValueId, (crate::core::BlockId, usize)>,
    dom: &DomTree,
    op: ValueId,
    use_bb: crate::core::BlockId,
    use_pos: usize,
) -> Option<String> {
    match func.value(op) {
        ValueDef::Param { .. } | ValueDef::Const { .. } => None,
        ValueDef::Instr(_) => {
            let Some(&(def_bb, def_pos)) = placement.get(&op) else {
                return Some(format!("%{} used but not placed in any block", op.index()));
            };
            let ok =
                if def_bb == use_bb { def_pos < use_pos } else { dom.dominates(def_bb, use_bb) };
            if ok {
                None
            } else {
                Some(format!(
                    "%{} does not dominate its use in `{}`",
                    op.index(),
                    func.block(use_bb).name
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::core::{BinOp, Global, Pred};
    use crate::parse::parse_module;

    #[test]
    fn valid_module_passes() {
        let m = parse_module(
            "
global @g : i32 = 5
declare @ext(i32) -> void

fn @f(%a: i32) -> i32 {
entry:
  %1 = globaladdr @g
  %2 = load i32, %1
  %3 = add i32 %a, %2
  call void @ext(%3)
  ret i32 %3
}
",
        )
        .unwrap();
        verify_module(&m).unwrap();
    }

    #[test]
    fn missing_terminator_rejected() {
        let mut f = Function::new("f", vec![], Ty::Void);
        f.add_block("entry");
        let err = verify_function(&f, None).unwrap_err();
        assert!(err.msg.contains("lacks a terminator"));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut f = Function::new("f", vec![Ty::I32, Ty::I8], Ty::Void);
        let bb = f.add_block("entry");
        let a = f.param(0);
        let b = f.param(1);
        let mut builder = Builder::new(&mut f, bb);
        builder.bin(BinOp::Add, a, b);
        builder.ret(None);
        let err = verify_function(&f, None).unwrap_err();
        assert!(err.msg.contains("same-typed"));
    }

    #[test]
    fn use_before_def_rejected() {
        // %2 uses %1 but appears before it in the block.
        let mut f = Function::new("f", vec![Ty::I32], Ty::I32);
        let bb = f.add_block("entry");
        let a = f.param(0);
        let one = f.const_int(Ty::I32, 1);
        let v1 =
            f.create_instr(crate::core::Instr::Bin { op: BinOp::Add, lhs: a, rhs: one }, Ty::I32);
        let v2 =
            f.create_instr(crate::core::Instr::Bin { op: BinOp::Add, lhs: v1, rhs: one }, Ty::I32);
        f.block_mut(bb).instrs.push(v2);
        f.block_mut(bb).instrs.push(v1);
        f.block_mut(bb).term = Some(Terminator::Ret { value: Some(v2) });
        let err = verify_function(&f, None).unwrap_err();
        assert!(err.msg.contains("dominate"), "{}", err.msg);
    }

    #[test]
    fn cross_block_dominance_enforced() {
        // Value defined in the `then` arm used in the join block.
        let mut f = Function::new("f", vec![Ty::I32], Ty::I32);
        let entry = f.add_block("entry");
        let then_bb = f.add_block("then");
        let join = f.add_block("join");
        let a = f.param(0);
        let mut b = Builder::new(&mut f, entry);
        let zero = b.const_i32(0);
        let c = b.icmp(Pred::Eq, a, zero);
        b.cond_br(c, then_bb, join);
        b.switch_to(then_bb);
        let one = b.const_i32(1);
        let x = b.add(a, one);
        b.br(join);
        b.switch_to(join);
        b.ret(Some(x));
        let err = verify_function(&f, None).unwrap_err();
        assert!(err.msg.contains("dominate"), "{}", err.msg);
    }

    #[test]
    fn phi_incomings_must_match_preds() {
        let src = "
fn @f(%c: i1) -> i32 {
entry:
  br %c, a, b
a:
  br join
b:
  br join
join:
  %1 = phi i32 [ 1, a ]
  ret i32 %1
}
";
        let m = parse_module(src).unwrap();
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("predecessors"), "{}", err.msg);
    }

    #[test]
    fn unknown_global_and_callee_rejected() {
        let mut m = crate::core::Module::new("t");
        let mut f = Function::new("f", vec![], Ty::Void);
        let bb = f.add_block("entry");
        let mut b = Builder::new(&mut f, bb);
        b.global_addr("nope");
        b.ret(None);
        m.funcs.push(f);
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("unknown global"));

        let mut m = crate::core::Module::new("t");
        m.add_global(Global { name: "g".into(), ty: Ty::I32, init: 0, sensitive: false });
        let mut f = Function::new("f", vec![], Ty::Void);
        let bb = f.add_block("entry");
        let mut b = Builder::new(&mut f, bb);
        b.call("missing", vec![], Ty::Void);
        b.ret(None);
        m.funcs.push(f);
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("unknown callee"));
    }

    #[test]
    fn call_arity_checked() {
        let src = "
declare @ext(i32, i32) -> void
fn @f() -> void {
entry:
  call void @ext(1)
  ret void
}
";
        let m = parse_module(src).unwrap();
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("takes 2 args"));
    }

    #[test]
    fn condbr_needs_i1() {
        let src = "
fn @f(%x: i32) -> void {
entry:
  br %x, a, b
a:
  ret void
b:
  ret void
}
";
        let m = parse_module(src).unwrap();
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("must be i1"));
    }
}
