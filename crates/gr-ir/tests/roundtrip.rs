//! Property test: the text format round-trips. For generated modules,
//! `parse(print(m))` verifies and prints back byte-identically — the
//! parser and printer agree on every construct the builder can emit.

use gd_exec::check::{cases, Rng};
use gd_ir::{
    parse_module, print_module, verify_module, BinOp, Builder, EnumDef, Function, Global, Module,
    Pred, Ty,
};

const BIN_OPS: &[BinOp] = &[BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::And, BinOp::Or];
const PREDS: &[Pred] = &[Pred::Eq, Pred::Ne, Pred::Ult, Pred::Sge];

/// Appends `count` straight-line instructions, returning the i32 values
/// produced so far (params included).
fn gen_straightline(b: &mut Builder<'_>, pool: &mut Vec<gd_ir::ValueId>, rng: &mut Rng) {
    for _ in 0..rng.usize(1, 4) {
        match rng.usize(0, 4) {
            0 => {
                let v = b.const_i32(rng.i64() as i32 as i64);
                pool.push(v);
            }
            1 if pool.len() >= 2 => {
                let (x, y) = (*rng.choose(pool), *rng.choose(pool));
                let v = b.bin(*rng.choose(BIN_OPS), x, y);
                pool.push(v);
            }
            2 => {
                let slot = b.alloca(Ty::I32);
                let val = *rng.choose(pool);
                if rng.bool() {
                    b.store(slot, val);
                } else {
                    b.store_volatile(slot, val);
                }
                let v = b.load(slot, Ty::I32);
                pool.push(v);
            }
            _ => {
                let v = b.const_i32(i64::from(rng.u8()));
                pool.push(v);
            }
        }
    }
}

fn gen_function(index: usize, prior: &[(String, usize)], rng: &mut Rng) -> Function {
    let n_params = rng.usize(1, 4);
    let mut func = Function::new(&format!("f{index}"), vec![Ty::I32; n_params], Ty::I32);
    let entry = func.add_block("entry");
    let mut pool: Vec<gd_ir::ValueId> = (0..n_params).map(|i| func.param(i)).collect();
    let mut b = Builder::new(&mut func, entry);
    gen_straightline(&mut b, &mut pool, rng);

    // Sometimes call an earlier function (keeps the call graph acyclic).
    if !prior.is_empty() && rng.bool() {
        let (callee, arity) = rng.choose(prior).clone();
        let args: Vec<_> = (0..arity).map(|_| *rng.choose(&pool)).collect();
        let v = b.call(&callee, args, Ty::I32);
        pool.push(v);
    }

    match rng.usize(0, 3) {
        // Straight return.
        0 => b.ret(Some(*rng.choose(&pool))),
        // Unconditional branch into a second block.
        1 => {
            let next = b.func().add_block("next");
            b.br(next);
            b.switch_to(next);
            gen_straightline(&mut b, &mut pool, rng);
            b.ret(Some(*rng.choose(&pool)));
        }
        // Diamondless conditional: both arms return.
        _ => {
            let (x, y) = (*rng.choose(&pool), *rng.choose(&pool));
            let c = b.icmp(*rng.choose(PREDS), x, y);
            let yes = b.func().add_block("yes");
            let no = b.func().add_block("no");
            b.cond_br(c, yes, no);
            // Each arm may only use entry-dominated values, so the `no`
            // arm draws from the pool as it stood at the branch.
            let at_branch = pool.clone();
            b.switch_to(yes);
            gen_straightline(&mut b, &mut pool, rng);
            b.ret(Some(*rng.choose(&pool)));
            b.switch_to(no);
            b.ret(Some(*rng.choose(&at_branch)));
        }
    }
    func
}

fn gen_module(rng: &mut Rng) -> Module {
    let mut m = Module::default();
    for i in 0..rng.usize(0, 3) {
        let variants = (0..rng.usize(1, 5))
            .map(|v| (format!("V{v}"), rng.bool().then(|| i64::from(rng.u8()))))
            .collect();
        m.enums.push(EnumDef { name: format!("E{i}"), variants });
    }
    for i in 0..rng.usize(0, 4) {
        m.globals.push(Global {
            name: format!("g{i}"),
            ty: *rng.choose(&[Ty::I32, Ty::I8]),
            init: i64::from(rng.u8()),
            sensitive: rng.bool(),
        });
    }
    let mut prior: Vec<(String, usize)> = Vec::new();
    for i in 0..rng.usize(1, 4) {
        let f = gen_function(i, &prior, rng);
        prior.push((f.name.clone(), f.params.len()));
        m.funcs.push(f);
    }
    m
}

#[test]
fn print_parse_roundtrips_generated_modules() {
    cases(128, "parse(print(m)) round-trips", |rng| {
        let m = gen_module(rng);
        verify_module(&m).expect("generated module verifies");
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        verify_module(&m2).unwrap_or_else(|e| panic!("reparsed verify: {e}\n{text}"));

        // Structure survives.
        assert_eq!(m2.funcs.len(), m.funcs.len());
        assert_eq!(m2.enums, m.enums, "enum defs survive verbatim");
        assert_eq!(m2.globals, m.globals, "globals survive verbatim");

        // Semantics survive: every function computes the same result.
        // (Value *numbering* may densify — inline constants occupy ids the
        // printer never names — so the texts are compared one parse later.)
        for f in &m.funcs {
            let args: Vec<gd_ir::RtVal> =
                (0..f.params.len()).map(|i| gd_ir::RtVal::Int(7 * i as i64 + 3)).collect();
            let run = |module: &Module| {
                gd_ir::Interpreter::new(module)
                    .run(&f.name, &args, &mut |_, _| gd_ir::RtVal::Int(0))
                    .unwrap_or_else(|e| panic!("{}: {e}\n{text}", f.name))
            };
            assert_eq!(run(&m), run(&m2), "{} diverges after reparse\n{text}", f.name);
        }

        // After one normalization the text format is a true fixed point.
        let text2 = print_module(&m2);
        let m3 = parse_module(&text2).unwrap_or_else(|e| panic!("{e}\n{text2}"));
        assert_eq!(print_module(&m3), text2, "parse∘print not idempotent\n{text2}");
    });
}
