//! Regenerates Table VI: hardened-firmware effectiveness under single,
//! long, and windowed glitch campaigns (107,811 / 98,010 attempts each).

use gd_chipwhisperer::FaultModel;

fn main() {
    let model = FaultModel::default();
    let blocks = gd_bench::defense::table6(&model);
    gd_bench::defense::print_table6(&blocks);
}
