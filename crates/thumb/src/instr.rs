//! The instruction model: every 16-bit Thumb-1 (ARMv6-M) instruction, plus
//! the 32-bit `BL`.
//!
//! The model is deliberately *structural*: each variant corresponds to one
//! encoding, so [`encode`](crate::encode) and [`decode`](crate::decode)
//! round-trip exactly. Branch offsets are stored as **byte offsets relative
//! to the PC value seen by the instruction** (the instruction address plus
//! four), exactly as the hardware computes targets.

use crate::{Cond, Reg};

/// A data-processing operation from the Thumb "format 4" ALU group
/// (`010000 op₄ Rm Rdn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// Bitwise AND, flag-setting.
    And = 0b0000,
    /// Bitwise exclusive OR, flag-setting.
    Eor = 0b0001,
    /// Logical shift left by register.
    Lsl = 0b0010,
    /// Logical shift right by register.
    Lsr = 0b0011,
    /// Arithmetic shift right by register.
    Asr = 0b0100,
    /// Add with carry.
    Adc = 0b0101,
    /// Subtract with carry (borrow).
    Sbc = 0b0110,
    /// Rotate right by register.
    Ror = 0b0111,
    /// Bitwise test (`AND` discarding the result).
    Tst = 0b1000,
    /// Reverse subtract from zero (`NEG`).
    Rsb = 0b1001,
    /// Compare (`SUB` discarding the result).
    Cmp = 0b1010,
    /// Compare negative (`ADD` discarding the result).
    Cmn = 0b1011,
    /// Bitwise inclusive OR, flag-setting.
    Orr = 0b1100,
    /// Multiply, flag-setting (N and Z only).
    Mul = 0b1101,
    /// Bit clear (`AND NOT`), flag-setting.
    Bic = 0b1110,
    /// Bitwise NOT, flag-setting.
    Mvn = 0b1111,
}

impl AluOp {
    /// All sixteen ALU operations in encoding order.
    pub const ALL: [AluOp; 16] = [
        AluOp::And,
        AluOp::Eor,
        AluOp::Lsl,
        AluOp::Lsr,
        AluOp::Asr,
        AluOp::Adc,
        AluOp::Sbc,
        AluOp::Ror,
        AluOp::Tst,
        AluOp::Rsb,
        AluOp::Cmp,
        AluOp::Cmn,
        AluOp::Orr,
        AluOp::Mul,
        AluOp::Bic,
        AluOp::Mvn,
    ];

    /// Decodes the 4-bit opcode field.
    pub const fn from_bits(bits: u8) -> AluOp {
        Self::ALL[(bits & 0xF) as usize]
    }

    /// The 4-bit opcode of this operation.
    pub const fn bits(self) -> u8 {
        self as u8
    }

    /// The assembly mnemonic (`"ands"`, `"cmp"`, …).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::And => "ands",
            AluOp::Eor => "eors",
            AluOp::Lsl => "lsls",
            AluOp::Lsr => "lsrs",
            AluOp::Asr => "asrs",
            AluOp::Adc => "adcs",
            AluOp::Sbc => "sbcs",
            AluOp::Ror => "rors",
            AluOp::Tst => "tst",
            AluOp::Rsb => "rsbs",
            AluOp::Cmp => "cmp",
            AluOp::Cmn => "cmn",
            AluOp::Orr => "orrs",
            AluOp::Mul => "muls",
            AluOp::Bic => "bics",
            AluOp::Mvn => "mvns",
        }
    }

    /// Whether the operation discards its result (compare/test family).
    pub const fn discards_result(self) -> bool {
        matches!(self, AluOp::Tst | AluOp::Cmp | AluOp::Cmn)
    }
}

/// An immediate-shift opcode (`000 op₂ imm5 Rm Rd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ShiftOp {
    /// Logical shift left.
    Lsl = 0b00,
    /// Logical shift right.
    Lsr = 0b01,
    /// Arithmetic shift right.
    Asr = 0b10,
}

impl ShiftOp {
    /// The assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Lsl => "lsls",
            ShiftOp::Lsr => "lsrs",
            ShiftOp::Asr => "asrs",
        }
    }
}

/// Memory access width for load/store instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte.
    Byte,
    /// Two bytes.
    Half,
    /// Four bytes.
    Word,
}

impl Width {
    /// Access size in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }
}

/// A data-processing operation from the Thumb-2 wide modified-immediate
/// group (`11110 i 0 op₄ S Rn | 0 imm3 Rd imm8`). Only the opcodes with a
/// register-immediate form exist here; the four-bit encodings left out are
/// undefined in the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WideDpOp {
    /// Bitwise AND (`TST` when the result is discarded).
    And = 0b0000,
    /// Bit clear (`AND NOT`).
    Bic = 0b0001,
    /// Bitwise inclusive OR (`MOV` when `Rn` is PC).
    Orr = 0b0010,
    /// Bitwise OR NOT (`MVN` when `Rn` is PC).
    Orn = 0b0011,
    /// Bitwise exclusive OR (`TEQ` when the result is discarded).
    Eor = 0b0100,
    /// Add (`CMN` when the result is discarded).
    Add = 0b1000,
    /// Add with carry.
    Adc = 0b1010,
    /// Subtract with carry (borrow).
    Sbc = 0b1011,
    /// Subtract (`CMP` when the result is discarded).
    Sub = 0b1101,
    /// Reverse subtract.
    Rsb = 0b1110,
}

impl WideDpOp {
    /// The ten defined operations in encoding order.
    pub const ALL: [WideDpOp; 10] = [
        WideDpOp::And,
        WideDpOp::Bic,
        WideDpOp::Orr,
        WideDpOp::Orn,
        WideDpOp::Eor,
        WideDpOp::Add,
        WideDpOp::Adc,
        WideDpOp::Sbc,
        WideDpOp::Sub,
        WideDpOp::Rsb,
    ];

    /// Decodes the 4-bit opcode field; `None` for the six undefined codes.
    pub const fn from_bits(bits: u8) -> Option<WideDpOp> {
        Some(match bits & 0xF {
            0b0000 => WideDpOp::And,
            0b0001 => WideDpOp::Bic,
            0b0010 => WideDpOp::Orr,
            0b0011 => WideDpOp::Orn,
            0b0100 => WideDpOp::Eor,
            0b1000 => WideDpOp::Add,
            0b1010 => WideDpOp::Adc,
            0b1011 => WideDpOp::Sbc,
            0b1101 => WideDpOp::Sub,
            0b1110 => WideDpOp::Rsb,
            _ => return None,
        })
    }

    /// The 4-bit opcode of this operation.
    pub const fn bits(self) -> u8 {
        self as u8
    }

    /// The base assembly mnemonic (without the `s` suffix).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            WideDpOp::And => "and",
            WideDpOp::Bic => "bic",
            WideDpOp::Orr => "orr",
            WideDpOp::Orn => "orn",
            WideDpOp::Eor => "eor",
            WideDpOp::Add => "add",
            WideDpOp::Adc => "adc",
            WideDpOp::Sbc => "sbc",
            WideDpOp::Sub => "sub",
            WideDpOp::Rsb => "rsb",
        }
    }

    /// Whether the operation is logical (carry comes from the immediate
    /// expansion) rather than arithmetic (carry comes from the adder).
    pub const fn is_logical(self) -> bool {
        matches!(
            self,
            WideDpOp::And | WideDpOp::Bic | WideDpOp::Orr | WideDpOp::Orn | WideDpOp::Eor
        )
    }

    /// Whether `Rd == PC` encodes the result-discarding compare/test form
    /// (`TST`/`TEQ`/`CMN`/`CMP`) of this operation.
    pub const fn has_discard_form(self) -> bool {
        matches!(self, WideDpOp::And | WideDpOp::Eor | WideDpOp::Add | WideDpOp::Sub)
    }

    /// The mnemonic of the result-discarding form, when one exists.
    pub const fn discard_mnemonic(self) -> Option<&'static str> {
        match self {
            WideDpOp::And => Some("tst"),
            WideDpOp::Eor => Some("teq"),
            WideDpOp::Add => Some("cmn"),
            WideDpOp::Sub => Some("cmp"),
            _ => None,
        }
    }
}

/// Expands a Thumb-2 modified 12-bit immediate (`i:imm3:imm8`) with the
/// carry-out the logical operations consume (`ThumbExpandImm_C`).
///
/// For the four replication patterns (`imm12<11:10> == 00`) the carry out
/// is the carry in; for rotated immediates it is bit 31 of the result.
pub const fn thumb_expand_imm_c(imm12: u16, carry_in: bool) -> (u32, bool) {
    let imm8 = (imm12 & 0xFF) as u32;
    if imm12 >> 10 == 0 {
        let value = match (imm12 >> 8) & 3 {
            0b00 => imm8,
            0b01 => imm8 << 16 | imm8,
            0b10 => imm8 << 24 | imm8 << 8,
            _ => imm8 << 24 | imm8 << 16 | imm8 << 8 | imm8,
        };
        (value, carry_in)
    } else {
        let unrotated = 0x80 | (imm8 & 0x7F);
        let rot = (imm12 >> 7) as u32 & 0x1F;
        let value = unrotated.rotate_right(rot);
        (value, value >> 31 != 0)
    }
}

/// Expands a Thumb-2 modified 12-bit immediate, discarding the carry.
pub const fn thumb_expand_imm(imm12: u16) -> u32 {
    thumb_expand_imm_c(imm12, false).0
}

/// A hint instruction from the `1011 1111 opA 0000` space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Hint {
    /// No operation.
    Nop = 0,
    /// Yield to other hardware threads.
    Yield = 1,
    /// Wait for event.
    Wfe = 2,
    /// Wait for interrupt.
    Wfi = 3,
    /// Send event.
    Sev = 4,
}

impl Hint {
    /// The assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Hint::Nop => "nop",
            Hint::Yield => "yield",
            Hint::Wfe => "wfe",
            Hint::Wfi => "wfi",
            Hint::Sev => "sev",
        }
    }
}

/// A decoded Thumb instruction.
///
/// Every variant maps to exactly one canonical encoding; see
/// [`Instr::encode`](crate::encode) for the bit layouts. Offsets in branch
/// variants are byte offsets from the PC (instruction address + 4).
///
/// ```
/// use gd_thumb::{Instr, Reg};
/// let add = Instr::AddImm8 { rdn: Reg::R3, imm8: 7 };
/// assert_eq!(add.encode().halfword(), 0x3307);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant fields are named after the architectural fields
pub enum Instr {
    // ----- Format 1: shift by immediate -----
    /// `LSLS/LSRS/ASRS Rd, Rm, #imm5`.
    ShiftImm { op: ShiftOp, rd: Reg, rm: Reg, imm5: u8 },

    // ----- Format 2: three-register / small-immediate add & subtract -----
    /// `ADDS Rd, Rn, Rm`.
    AddReg3 { rd: Reg, rn: Reg, rm: Reg },
    /// `SUBS Rd, Rn, Rm`.
    SubReg3 { rd: Reg, rn: Reg, rm: Reg },
    /// `ADDS Rd, Rn, #imm3`.
    AddImm3 { rd: Reg, rn: Reg, imm3: u8 },
    /// `SUBS Rd, Rn, #imm3`.
    SubImm3 { rd: Reg, rn: Reg, imm3: u8 },

    // ----- Format 3: move/compare/add/subtract 8-bit immediate -----
    /// `MOVS Rd, #imm8`.
    MovImm { rd: Reg, imm8: u8 },
    /// `CMP Rn, #imm8`.
    CmpImm { rn: Reg, imm8: u8 },
    /// `ADDS Rdn, #imm8`.
    AddImm8 { rdn: Reg, imm8: u8 },
    /// `SUBS Rdn, #imm8`.
    SubImm8 { rdn: Reg, imm8: u8 },

    // ----- Format 4: register-to-register ALU -----
    /// One of the sixteen `010000`-group operations on low registers.
    Alu { op: AluOp, rdn: Reg, rm: Reg },

    // ----- Format 5: high-register operations and branch-exchange -----
    /// `ADD Rdn, Rm` (high registers allowed, flags unaffected).
    AddHi { rdn: Reg, rm: Reg },
    /// `CMP Rn, Rm` (high registers allowed).
    CmpHi { rn: Reg, rm: Reg },
    /// `MOV Rd, Rm` (high registers allowed, flags unaffected).
    MovHi { rd: Reg, rm: Reg },
    /// `BX Rm`: branch and exchange instruction set.
    Bx { rm: Reg },
    /// `BLX Rm`: branch with link and exchange.
    Blx { rm: Reg },

    // ----- Format 6: PC-relative load -----
    /// `LDR Rt, [PC, #imm8*4]` (literal-pool load).
    LdrLit { rt: Reg, imm8: u8 },

    // ----- Formats 7/8: load/store with register offset -----
    /// `STR/STRH/STRB Rt, [Rn, Rm]`.
    StoreReg { width: Width, rt: Reg, rn: Reg, rm: Reg },
    /// `LDR/LDRH/LDRB Rt, [Rn, Rm]`.
    LoadReg { width: Width, rt: Reg, rn: Reg, rm: Reg },
    /// `LDRSB Rt, [Rn, Rm]` (load signed byte).
    LdrsbReg { rt: Reg, rn: Reg, rm: Reg },
    /// `LDRSH Rt, [Rn, Rm]` (load signed halfword).
    LdrshReg { rt: Reg, rn: Reg, rm: Reg },

    // ----- Formats 9/10: load/store with immediate offset -----
    /// `STR/STRH/STRB Rt, [Rn, #imm5*scale]` — scale is the access width.
    StoreImm { width: Width, rt: Reg, rn: Reg, imm5: u8 },
    /// `LDR/LDRH/LDRB Rt, [Rn, #imm5*scale]`.
    LoadImm { width: Width, rt: Reg, rn: Reg, imm5: u8 },

    // ----- Format 11: SP-relative load/store -----
    /// `STR Rt, [SP, #imm8*4]`.
    StrSp { rt: Reg, imm8: u8 },
    /// `LDR Rt, [SP, #imm8*4]`.
    LdrSp { rt: Reg, imm8: u8 },

    // ----- Format 12: load address -----
    /// `ADR Rd, #imm8*4` (`ADD Rd, PC, #imm`).
    Adr { rd: Reg, imm8: u8 },
    /// `ADD Rd, SP, #imm8*4`.
    AddSpImm { rd: Reg, imm8: u8 },

    // ----- Format 13: adjust stack pointer -----
    /// `ADD SP, #imm7*4`.
    AddSp { imm7: u8 },
    /// `SUB SP, #imm7*4`.
    SubSp { imm7: u8 },

    // ----- Sign/zero extension (ARMv6-M) -----
    /// `SXTH Rd, Rm`.
    Sxth { rd: Reg, rm: Reg },
    /// `SXTB Rd, Rm`.
    Sxtb { rd: Reg, rm: Reg },
    /// `UXTH Rd, Rm`.
    Uxth { rd: Reg, rm: Reg },
    /// `UXTB Rd, Rm`.
    Uxtb { rd: Reg, rm: Reg },

    // ----- Byte-reversal (ARMv6-M) -----
    /// `REV Rd, Rm`: byte-reverse word.
    Rev { rd: Reg, rm: Reg },
    /// `REV16 Rd, Rm`: byte-reverse each halfword.
    Rev16 { rd: Reg, rm: Reg },
    /// `REVSH Rd, Rm`: byte-reverse low halfword, sign-extend.
    Revsh { rd: Reg, rm: Reg },

    // ----- Format 14: push/pop -----
    /// `PUSH {rlist[, lr]}` — bit *i* of `rlist` selects `r<i>`.
    Push { rlist: u8, lr: bool },
    /// `POP {rlist[, pc]}`.
    Pop { rlist: u8, pc: bool },

    // ----- Miscellaneous -----
    /// `BKPT #imm8`: software breakpoint.
    Bkpt { imm8: u8 },
    /// A hint (`NOP`, `WFI`, …).
    Hint { hint: Hint },
    /// `CPSIE i` / `CPSID i`: interrupt enable/disable.
    Cps { disable: bool },

    // ----- Format 15: multiple load/store -----
    /// `STMIA Rn!, {rlist}`.
    Stm { rn: Reg, rlist: u8 },
    /// `LDMIA Rn!, {rlist}` (writeback unless `rn` is in the list).
    Ldm { rn: Reg, rlist: u8 },

    // ----- Format 16/17: conditional branch, UDF, SVC -----
    /// `B<cond> <label>` — `offset` is in bytes from PC, even, −256..=254.
    BCond { cond: Cond, offset: i32 },
    /// Permanently undefined (`cond == 0b1110`).
    Udf { imm8: u8 },
    /// `SVC #imm8`: supervisor call (`cond == 0b1111`).
    Svc { imm8: u8 },

    // ----- Format 18: unconditional branch -----
    /// `B <label>` — `offset` is in bytes from PC, even, −2048..=2046.
    B { offset: i32 },

    // ----- 32-bit branch-with-link (ARMv6-M T1) -----
    /// `BL <label>` — `offset` is in bytes from PC, even, ±16 MiB.
    Bl { offset: i32 },

    // ----- Thumb-2 wide encodings (single-bit-flip reachable from
    // ARMv6-M code; decoded only when [`wide`] decode is selected) -----
    /// `B.W <label>` (T4) — `offset` is in bytes from PC, even, ±16 MiB.
    BW { offset: i32 },
    /// `B<cond>.W <label>` (T3) — `offset` is in bytes from PC, even,
    /// ±1 MiB.
    BCondW { cond: Cond, offset: i32 },
    /// Wide data-processing with a modified 12-bit immediate; `imm12` is
    /// the raw `i:imm3:imm8` field, expanded by
    /// [`thumb_expand_imm_c`] at execution time. `rd == PC` encodes the
    /// compare/test form, `rn == PC` the `MOV`/`MVN` form.
    DpImm { op: WideDpOp, s: bool, rn: Reg, rd: Reg, imm12: u16 },
    /// `MOVW Rd, #imm16` (zero-extending 16-bit move, T3).
    MovW { rd: Reg, imm16: u16 },
    /// `MOVT Rd, #imm16` (move into the top halfword, T1).
    MovT { rd: Reg, imm16: u16 },
    /// `LDR.W Rt, [Rn, #imm12]` (T3) — `rn == PC` is the wide literal
    /// load, `rt == PC` a memory-indirect branch.
    LdrW { rt: Reg, rn: Reg, imm12: u16 },
    /// `STR.W Rt, [Rn, #imm12]` (T3).
    StrW { rt: Reg, rn: Reg, imm12: u16 },
}

impl Instr {
    /// Convenience constructor for the canonical NOP.
    pub const NOP: Instr = Instr::Hint { hint: Hint::Nop };

    /// Size of the instruction in bytes (2, or 4 for the wide encodings).
    pub const fn size(self) -> u32 {
        match self {
            Instr::Bl { .. }
            | Instr::BW { .. }
            | Instr::BCondW { .. }
            | Instr::DpImm { .. }
            | Instr::MovW { .. }
            | Instr::MovT { .. }
            | Instr::LdrW { .. }
            | Instr::StrW { .. } => 4,
            _ => 2,
        }
    }

    /// Whether this instruction can redirect control flow.
    pub const fn is_branch(self) -> bool {
        matches!(
            self,
            Instr::BCond { .. }
                | Instr::B { .. }
                | Instr::Bl { .. }
                | Instr::Bx { .. }
                | Instr::Blx { .. }
                | Instr::Pop { pc: true, .. }
                | Instr::BW { .. }
                | Instr::BCondW { .. }
                | Instr::LdrW { rt: Reg::PC, .. }
        )
    }

    /// Whether this instruction reads from memory.
    pub const fn is_load(self) -> bool {
        matches!(
            self,
            Instr::LdrLit { .. }
                | Instr::LoadReg { .. }
                | Instr::LdrsbReg { .. }
                | Instr::LdrshReg { .. }
                | Instr::LoadImm { .. }
                | Instr::LdrSp { .. }
                | Instr::Pop { .. }
                | Instr::Ldm { .. }
                | Instr::LdrW { .. }
        )
    }

    /// Whether this instruction writes to memory.
    pub const fn is_store(self) -> bool {
        matches!(
            self,
            Instr::StoreReg { .. }
                | Instr::StoreImm { .. }
                | Instr::StrSp { .. }
                | Instr::Push { .. }
                | Instr::Stm { .. }
                | Instr::StrW { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_op_round_trip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_bits(op.bits()), op);
        }
    }

    #[test]
    fn alu_discard_set() {
        let discarding: Vec<_> = AluOp::ALL.iter().filter(|o| o.discards_result()).collect();
        assert_eq!(discarding, [&AluOp::Tst, &AluOp::Cmp, &AluOp::Cmn]);
    }

    #[test]
    fn widths() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Half.bytes(), 2);
        assert_eq!(Width::Word.bytes(), 4);
    }

    #[test]
    fn sizes() {
        assert_eq!(Instr::NOP.size(), 2);
        assert_eq!(Instr::Bl { offset: 0 }.size(), 4);
        assert_eq!(Instr::BW { offset: 0 }.size(), 4);
        assert_eq!(Instr::MovW { rd: Reg::R0, imm16: 0 }.size(), 4);
    }

    #[test]
    fn wide_dp_op_round_trip() {
        for op in WideDpOp::ALL {
            assert_eq!(WideDpOp::from_bits(op.bits()), Some(op));
        }
        for bits in [0b0101u8, 0b0110, 0b0111, 0b1001, 0b1100, 0b1111] {
            assert_eq!(WideDpOp::from_bits(bits), None);
        }
    }

    #[test]
    fn modified_immediate_expansion() {
        // The four replication patterns pass the carry through.
        assert_eq!(thumb_expand_imm_c(0x0AB, true), (0xAB, true));
        assert_eq!(thumb_expand_imm_c(0x1AB, false), (0x00AB_00AB, false));
        assert_eq!(thumb_expand_imm_c(0x2AB, false), (0xAB00_AB00, false));
        assert_eq!(thumb_expand_imm_c(0x3AB, false), (0xABAB_ABAB, false));
        // Rotated immediates: 0x80|imm8<6:0> rotated right, carry = bit 31.
        assert_eq!(thumb_expand_imm_c(0x400, false), (0x8000_0000, true));
        assert_eq!(thumb_expand_imm_c(0x4FF, true), (0x7F80_0000, false));
        assert_eq!(thumb_expand_imm(0xFFF), 0x1FE);
    }

    #[test]
    fn classification() {
        assert!(Instr::B { offset: 0 }.is_branch());
        assert!(Instr::Pop { rlist: 1, pc: true }.is_branch());
        assert!(!Instr::Pop { rlist: 1, pc: false }.is_branch());
        assert!(Instr::LdrSp { rt: Reg::R0, imm8: 0 }.is_load());
        assert!(Instr::Push { rlist: 0xFF, lr: true }.is_store());
        assert!(!Instr::NOP.is_load());
        assert!(Instr::BW { offset: 0 }.is_branch());
        assert!(Instr::BCondW { cond: Cond::Eq, offset: 0 }.is_branch());
        assert!(Instr::LdrW { rt: Reg::PC, rn: Reg::R0, imm12: 0 }.is_branch());
        assert!(!Instr::LdrW { rt: Reg::R0, rn: Reg::R0, imm12: 0 }.is_branch());
        assert!(Instr::LdrW { rt: Reg::R0, rn: Reg::PC, imm12: 0 }.is_load());
        assert!(Instr::StrW { rt: Reg::R0, rn: Reg::R1, imm12: 0 }.is_store());
    }
}
