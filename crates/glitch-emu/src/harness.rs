//! Test-case construction: tiny assembly snippets that expose whether a
//! perturbed instruction was effectively "skipped".
//!
//! Exactly as in the paper (§IV): a successful glitch places `0xdead` in a
//! known register (`r2`), a normal execution places `0xaaaa` in another
//! (`r3`). The snippet sets the flags so the targeted conditional branch is
//! *taken* under normal execution; only a corrupted branch falls through to
//! the success marker.

use gd_emu::{Config, Emu, Perms, PredecodedImage};
use gd_thumb::asm::{assemble, Program};
use gd_thumb::{Cond, Reg};

/// Marker written by the glitch-success path.
pub const SUCCESS_MARKER: u32 = 0xdead;
/// Marker written by the normal (branch taken) path.
pub const NORMAL_MARKER: u32 = 0xaaaa;
/// Register holding [`SUCCESS_MARKER`] on success.
pub const SUCCESS_REG: Reg = Reg::R2;
/// Register holding [`NORMAL_MARKER`] on normal execution.
pub const NORMAL_REG: Reg = Reg::R3;

/// Flash base used for snippets.
pub const FLASH_BASE: u32 = 0x0800_0000;
/// SRAM base used for snippets.
pub const SRAM_BASE: u32 = 0x2000_0000;
const SRAM_SIZE: u32 = 0x4000;

/// A prepared test case: an assembled snippet plus the address of the
/// instruction under perturbation.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Human-readable name (e.g. `"beq"`).
    pub name: String,
    /// The assembled program.
    pub program: Program,
    /// Absolute address of the targeted (to-be-corrupted) instruction.
    pub target_addr: u32,
}

impl TestCase {
    /// The original (uncorrupted) halfword of the targeted instruction.
    pub fn target_halfword(&self) -> u16 {
        let off = (self.target_addr - self.program.origin) as usize;
        u16::from_le_bytes([self.program.code[off], self.program.code[off + 1]])
    }

    /// Predecodes the snippet's whole flash region (original, unperturbed
    /// bytes) into a micro-op table for the sweep fast path, with the
    /// targeted instruction already invalidated so every trial decodes
    /// the perturbed halfword — and its possible 32-bit predecessor —
    /// live from memory.
    pub fn predecode(&self, cfg: Config) -> PredecodedImage {
        let emu = self.instantiate(self.target_halfword(), cfg);
        let flash = emu.mem.region_at(self.target_addr).expect("target mapped");
        let mut image = PredecodedImage::from_region(flash, cfg);
        image.invalidate(self.target_addr);
        image
    }

    /// Builds a fresh emulator with this snippet loaded and `hw` written
    /// over the targeted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the snippet does not fit the memory map (snippets are a few
    /// dozen bytes; this cannot happen for cases built by this crate).
    pub fn instantiate(&self, hw: u16, cfg: Config) -> Emu {
        let mut emu = Emu::with_config(cfg);
        emu.mem.map("flash", FLASH_BASE, 0x1000, Perms::RX).expect("fresh memory map");
        emu.mem.map("sram", SRAM_BASE, SRAM_SIZE, Perms::RW).expect("fresh memory map");
        emu.mem.load(self.program.origin, &self.program.code).expect("snippet fits flash");
        emu.mem.load(self.target_addr, &hw.to_le_bytes()).expect("target inside snippet");
        emu.set_pc(self.program.origin);
        emu.cpu.set_sp(SRAM_BASE + SRAM_SIZE);
        emu
    }
}

/// Assembly that makes `cond` hold, so the branch is taken normally.
///
/// Each setup uses only `r0` and leaves the flags in a state where `cond`
/// is true (see the per-condition comments).
pub fn flag_setup(cond: Cond) -> &'static str {
    match cond {
        // Z=1.
        Cond::Eq => "movs r0, #0",
        // Z=0.
        Cond::Ne => "movs r0, #1",
        // C=1 (no borrow from 0-0).
        Cond::Cs => "movs r0, #0\ncmp r0, #0",
        // C=0 (borrow from 0-1).
        Cond::Cc => "movs r0, #0\ncmp r0, #1",
        // N=1.
        Cond::Mi => "movs r0, #0\nsubs r0, #1",
        // N=0 (movs also sets Z, irrelevant here).
        Cond::Pl => "movs r0, #0",
        // V=1: 0x80000000 - 1 overflows.
        Cond::Vs => "movs r0, #1\nlsls r0, r0, #31\nsubs r0, #1",
        // V=0.
        Cond::Vc => "movs r0, #0\nadds r0, #1",
        // C=1 && Z=0 (2-1).
        Cond::Hi => "movs r0, #2\ncmp r0, #1",
        // C=0 || Z=1 (0-0 gives Z=1).
        Cond::Ls => "movs r0, #0\ncmp r0, #0",
        // N==V (1-0).
        Cond::Ge => "movs r0, #1\ncmp r0, #0",
        // N!=V (0-1).
        Cond::Lt => "movs r0, #0\ncmp r0, #1",
        // Z=0 && N==V (2-1).
        Cond::Gt => "movs r0, #2\ncmp r0, #1",
        // Z=1 || N!=V (0-0).
        Cond::Le => "movs r0, #0\ncmp r0, #0",
    }
}

/// Builds the standard conditional-branch test case for `cond`.
///
/// Layout (the branch is always taken when unperturbed):
///
/// ```text
///     <flag setup so that cond holds>
/// target:
///     b<cond> normal
///     movs r2, #0xde ; success path (fallthrough = "skipped" branch)
///     lsls r2, r2, #8
///     adds r2, #0xad
///     bkpt #1
/// normal:
///     movs r3, #0xaa
///     lsls r3, r3, #8
///     adds r3, #0xaa
///     bkpt #2
/// ```
///
/// # Panics
///
/// Panics only if the internal snippet fails to assemble, which would be a
/// bug in this crate.
pub fn branch_case(cond: Cond) -> TestCase {
    let src = format!(
        "{setup}\n\
         target:\n\
         b{cond} normal\n\
         movs r2, #0xde\n\
         lsls r2, r2, #8\n\
         adds r2, #0xad\n\
         bkpt #1\n\
         normal:\n\
         movs r3, #0xaa\n\
         lsls r3, r3, #8\n\
         adds r3, #0xaa\n\
         bkpt #2\n",
        setup = flag_setup(cond),
    );
    let program = assemble(&src, FLASH_BASE).expect("snippet assembles");
    let target_addr = program.symbols["target"];
    TestCase { name: format!("b{cond}"), program, target_addr }
}

/// All fourteen conditional-branch cases, in encoding order.
pub fn all_branch_cases() -> Vec<TestCase> {
    Cond::ALL.iter().map(|&c| branch_case(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_emu::{RunOutcome, StopReason};

    #[test]
    fn unperturbed_branch_is_always_taken() {
        for cond in Cond::ALL {
            let case = branch_case(cond);
            let hw = case.target_halfword();
            let mut emu = case.instantiate(hw, Config::default());
            match emu.run(100) {
                RunOutcome::Stop { reason: StopReason::Bkpt(2), .. } => {}
                other => panic!("b{cond}: expected normal path, got {other:?}"),
            }
            assert_eq!(emu.cpu.reg(NORMAL_REG), NORMAL_MARKER, "b{cond}");
            assert_ne!(emu.cpu.reg(SUCCESS_REG), SUCCESS_MARKER, "b{cond}");
        }
    }

    #[test]
    fn skipped_branch_reaches_success_marker() {
        // Replacing the branch with a NOP models the canonical skip.
        for cond in Cond::ALL {
            let case = branch_case(cond);
            let mut emu = case.instantiate(0xBF00, Config::default());
            match emu.run(100) {
                RunOutcome::Stop { reason: StopReason::Bkpt(1), .. } => {}
                other => panic!("b{cond}: expected success path, got {other:?}"),
            }
            assert_eq!(emu.cpu.reg(SUCCESS_REG), SUCCESS_MARKER, "b{cond}");
        }
    }

    #[test]
    fn target_halfword_is_the_branch() {
        let case = branch_case(Cond::Eq);
        // beq with some positive offset: 0xD0xx.
        assert_eq!(case.target_halfword() & 0xFF00, 0xD000);
        let case = branch_case(Cond::Ne);
        assert_eq!(case.target_halfword() & 0xFF00, 0xD100);
    }

    #[test]
    fn branch_to_all_zeros_is_mov_like_by_default() {
        let case = branch_case(Cond::Eq);
        let mut emu = case.instantiate(0x0000, Config::default());
        // 0x0000 = lsls r0, r0, #0 → falls through → success path.
        assert!(matches!(emu.run(100), RunOutcome::Stop { reason: StopReason::Bkpt(1), .. }));
    }
}
