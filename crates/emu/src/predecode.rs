//! Predecoded micro-op tables: decode every halfword of an image once,
//! dispatch from the table forever after.
//!
//! Exhaustive glitch sweeps execute the same few dozen instructions
//! millions of times; re-running `decode16`/`decode32` on every step is
//! the dominant avoidable cost (the bottleneck ARMORY identifies for
//! exhaustive fault simulation). A [`PredecodedImage`] caches, per
//! halfword address, either the decoded instruction, the fact that the
//! pattern is undefined, or a marker that the slot must be decoded live.
//!
//! The table mirrors live decode-by-address exactly: each halfword
//! address gets an *independent* decode, because a glitched control flow
//! can land in the middle of what was laid out as a 32-bit instruction.
//! There is deliberately no notion of instruction boundaries.
//!
//! The fallback rule: dispatch from the table is only valid while memory
//! under the image is unchanged. Callers that perturb a halfword (the
//! sweep's target, a campaign's flip site) must [`PredecodedImage::invalidate`]
//! that address, which downgrades the affected slots to [`Slot::Live`] so
//! [`Emu::step_predecoded`](crate::Emu::step_predecoded) decodes them from
//! memory on every visit.

use gd_thumb::{decode16, decode32, decode32_wide, is_32bit_prefix, DecodeError, Instr};

use crate::exec::Config;
use crate::mem::Region;

/// The predecode of one halfword address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The address decodes to `instr`, `size` bytes long (2 or 4).
    Instr {
        /// The decoded instruction.
        instr: Instr,
        /// Encoding size in bytes.
        size: u32,
    },
    /// The address holds an undefined pattern; `hw2` carries the second
    /// halfword for undefined 32-bit encodings.
    Undefined {
        /// First (or only) halfword.
        hw: u16,
        /// Second halfword for 32-bit patterns.
        hw2: Option<u16>,
    },
    /// A 32-bit prefix in the image's final halfword: the encoding is
    /// incomplete, not undefined. Dispatch performs the second-halfword
    /// fetch live, so an unmapped `addr + 2` reports a *fetch fault at
    /// `addr + 2`* (the fetch-fault/undefined split of
    /// [`Emu::decode`](crate::Emu::decode)) rather than an undefined
    /// instruction at `addr`. Kept distinct from [`Slot::Live`] so static
    /// consumers can tell "image ends mid-encoding" from "slot was
    /// invalidated by a perturbation".
    Incomplete {
        /// The prefix halfword.
        hw: u16,
    },
    /// Undecidable from the table alone — dispatch must decode live. Used
    /// for slots invalidated by a perturbation.
    Live,
}

/// Classifies the halfword `hw` under `cfg`, given the following halfword
/// `hw2` when one exists in the image.
///
/// This is the single source of decode truth shared by
/// [`Emu::decode`](crate::Emu::decode) and [`PredecodedImage`]: both paths
/// call it, so the table cannot drift from the interpreter.
///
/// `hw2` is only consulted when `hw` is a 32-bit prefix; passing `None`
/// there yields [`Slot::Incomplete`] (the image ends mid-encoding and
/// only a live fetch can tell a fetch fault at `addr + 2` from an
/// undefined pattern — the two cases [`Emu::decode`](crate::Emu::decode)
/// keeps distinct).
///
/// The 32-bit space decodes through [`decode32`] (ARMv6-M: `BL` only) or,
/// when [`Config::wide`] is set, [`decode32_wide`].
pub fn classify(hw: u16, hw2: Option<u16>, cfg: Config) -> Slot {
    if hw == 0 && cfg.zero_is_invalid {
        return Slot::Undefined { hw, hw2: None };
    }
    if is_32bit_prefix(hw) {
        let decode = if cfg.wide { decode32_wide } else { decode32 };
        return match hw2 {
            None => Slot::Incomplete { hw },
            Some(h2) => match decode(hw, h2) {
                Ok(instr) => Slot::Instr { instr, size: 4 },
                Err(_) => Slot::Undefined { hw, hw2: Some(h2) },
            },
        };
    }
    match decode16(hw) {
        Ok(instr) => Slot::Instr { instr, size: 2 },
        // decode16 reports non-prefix halfwords only as Undefined16; any
        // other variant here would be a decoder bug.
        Err(DecodeError::Undefined16(_)) => Slot::Undefined { hw, hw2: None },
        Err(e) => unreachable!("decode16({hw:#06x}) returned {e:?}"),
    }
}

/// A micro-op table covering one contiguous image: one [`Slot`] per
/// halfword address.
///
/// Built once per firmware/snippet, then shared by every trial of a sweep
/// (clone it per worker; it is plain data). Dispatch through
/// [`Emu::step_predecoded`](crate::Emu::step_predecoded) is only correct
/// while the emulator's memory under the image matches the bytes the
/// table was built from and the emulator runs the same [`Config`] —
/// perturbed addresses must be [`invalidate`](PredecodedImage::invalidate)d.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredecodedImage {
    base: u32,
    cfg: Config,
    slots: Vec<Slot>,
}

impl PredecodedImage {
    /// Predecodes `bytes` as they would appear at `base` (2-aligned; bit 0
    /// is ignored). A trailing odd byte is not decodable and is dropped.
    pub fn from_bytes(base: u32, bytes: &[u8], cfg: Config) -> PredecodedImage {
        let n = bytes.len() / 2;
        let hw_at =
            |i: usize| (i < n).then(|| u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]));
        let slots = (0..n).map(|i| classify(hw_at(i).expect("i < n"), hw_at(i + 1), cfg)).collect();
        PredecodedImage { base: base & !1, cfg, slots }
    }

    /// Predecodes a mapped region's current contents.
    pub fn from_region(region: &Region, cfg: Config) -> PredecodedImage {
        PredecodedImage::from_bytes(region.base(), region.data(), cfg)
    }

    /// First address covered by the table.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The configuration the table was decoded under.
    pub fn cfg(&self) -> Config {
        self.cfg
    }

    /// Number of halfword slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot for `addr`, or `None` when `addr` is odd or outside the
    /// image (dispatch then falls back to the live path).
    #[inline]
    pub fn slot(&self, addr: u32) -> Option<Slot> {
        if addr & 1 != 0 || addr < self.base {
            return None;
        }
        self.slots.get(((addr - self.base) >> 1) as usize).copied()
    }

    /// Invalidates every slot whose decode depends on the halfword at
    /// `addr`: the slot at `addr` itself and the one at `addr - 2`, whose
    /// cached decode may have consumed `addr`'s halfword as the second
    /// half of a 32-bit encoding. Both become [`Slot::Live`].
    pub fn invalidate(&mut self, addr: u32) {
        self.invalidate_range(addr, 2);
    }

    /// Invalidates every slot whose decode depends on any byte of
    /// `[addr, addr + len)`: each halfword the range touches plus each
    /// one's 32-bit-prefix predecessor — so the downgraded span is
    /// `[addr - 2, addr + len)`. This is the multi-halfword form of
    /// [`invalidate`](PredecodedImage::invalidate) that two-fault and
    /// permanent-corruption trials need: invalidating only one site of a
    /// wide perturbation would let stale cached micro-ops dispatch over
    /// the rest.
    pub fn invalidate_range(&mut self, addr: u32, len: u32) {
        for slot in self.range_slots(addr, len) {
            *slot = Slot::Live;
        }
    }

    /// Restores the slots downgraded by an
    /// [`invalidate_range`](PredecodedImage::invalidate_range) of the
    /// same `addr`/`len` from `pristine` — a table built from the
    /// unperturbed image. Trial loops that invalidate a few sites per
    /// trial heal them afterwards instead of cloning the whole table.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `pristine` covers a different span or
    /// was decoded under a different [`Config`].
    pub fn heal_range(&mut self, pristine: &PredecodedImage, addr: u32, len: u32) {
        debug_assert_eq!(self.base, pristine.base, "heal source covers a different span");
        debug_assert_eq!(self.slots.len(), pristine.slots.len());
        debug_assert_eq!(self.cfg, pristine.cfg, "heal source decoded under a different Config");
        let (lo, hi) = self.range_indices(addr, len);
        self.slots[lo..hi].copy_from_slice(&pristine.slots[lo..hi]);
    }

    /// Slot index bounds `[lo, hi)` covering `[addr - 2, addr + len)`,
    /// clamped to the table.
    fn range_indices(&self, addr: u32, len: u32) -> (usize, usize) {
        if len == 0 {
            return (0, 0);
        }
        let addr = addr & !1;
        // Exclusive byte end in u64 (addr + len may overflow u32); any
        // halfword containing a touched byte is included.
        let end = u64::from(addr) + u64::from(len);
        if end <= u64::from(self.base) {
            // The whole range lies below the table. Bail out before the
            // saturating arithmetic below: on a zero-base table with
            // addr < 2 it would otherwise rediscover slot 0 through the
            // clamped "prefix predecessor" and downgrade it for a range
            // that never touched the image.
            return (0, 0);
        }
        let start = addr.saturating_sub(2).max(self.base);
        let lo = ((start - self.base) >> 1) as usize;
        let hi = ((end - u64::from(self.base) + 1) >> 1) as usize;
        (lo.min(self.slots.len()), hi.min(self.slots.len()))
    }

    fn range_slots(&mut self, addr: u32, len: u32) -> impl Iterator<Item = &mut Slot> {
        let (lo, hi) = self.range_indices(addr, len);
        self.slots[lo..hi].iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_thumb::Reg;

    const CFG: Config = Config { zero_is_invalid: false, wide: false };

    #[test]
    fn caches_both_encoding_sizes() {
        // movs r0, #1 ; bl <somewhere> (32-bit: 0xF000 0xF800)
        let bytes = [0x01, 0x20, 0x00, 0xF0, 0x00, 0xF8];
        let img = PredecodedImage::from_bytes(0x100, &bytes, CFG);
        assert_eq!(img.len(), 3);
        assert!(matches!(
            img.slot(0x100),
            Some(Slot::Instr { instr: Instr::MovImm { rd: Reg::R0, imm8: 1 }, size: 2 })
        ));
        assert!(matches!(img.slot(0x102), Some(Slot::Instr { size: 4, .. })));
        // The trailing halfword of the bl decodes independently too.
        assert!(img.slot(0x104).is_some());
        assert_eq!(img.slot(0x106), None);
        assert_eq!(img.slot(0x101), None, "odd addresses have no slot");
        assert_eq!(img.slot(0x0FE), None, "below base");
    }

    #[test]
    fn prefix_at_image_end_is_incomplete_not_undefined() {
        // A lone 32-bit prefix: the second halfword is out of the image.
        // The slot records the incomplete encoding (dispatch fetches the
        // second halfword live and faults at addr + 2 when it is
        // unmapped) instead of conflating it with an undefined pattern.
        let bytes = 0xF000u16.to_le_bytes();
        let img = PredecodedImage::from_bytes(0, &bytes, CFG);
        assert_eq!(img.slot(0), Some(Slot::Incomplete { hw: 0xF000 }));
    }

    #[test]
    fn wide_config_decodes_thumb2_pairs() {
        // b.w .+0 → F000 B800: undefined under the ARMv6-M decode, a
        // 4-byte instruction once cfg.wide selects the Thumb-2 subset.
        let bytes = [0x00, 0xF0, 0x00, 0xB8];
        let img = PredecodedImage::from_bytes(0x100, &bytes, CFG);
        assert_eq!(img.slot(0x100), Some(Slot::Undefined { hw: 0xF000, hw2: Some(0xB800) }));
        let wide = Config { wide: true, ..CFG };
        let img = PredecodedImage::from_bytes(0x100, &bytes, wide);
        assert_eq!(img.slot(0x100), Some(Slot::Instr { instr: Instr::BW { offset: 0 }, size: 4 }));
    }

    #[test]
    fn zero_halfword_honors_config() {
        let bytes = [0u8; 2];
        let img = PredecodedImage::from_bytes(0, &bytes, CFG);
        assert!(matches!(img.slot(0), Some(Slot::Instr { size: 2, .. })));
        let img = PredecodedImage::from_bytes(0, &bytes, Config { zero_is_invalid: true, ..CFG });
        assert_eq!(img.slot(0), Some(Slot::Undefined { hw: 0, hw2: None }));
    }

    #[test]
    fn invalidate_downgrades_dependent_slots() {
        let bytes = [0x01, 0x20, 0x02, 0x20, 0x03, 0x20];
        let mut img = PredecodedImage::from_bytes(0x100, &bytes, CFG);
        img.invalidate(0x102);
        assert_eq!(img.slot(0x100), Some(Slot::Live), "predecessor may embed the halfword");
        assert_eq!(img.slot(0x102), Some(Slot::Live));
        assert!(matches!(img.slot(0x104), Some(Slot::Instr { .. })), "successor unaffected");
    }

    #[test]
    fn invalidate_at_base_does_not_underflow() {
        let bytes = [0x01, 0x20];
        let mut img = PredecodedImage::from_bytes(0, &bytes, CFG);
        img.invalidate(0);
        assert_eq!(img.slot(0), Some(Slot::Live));
    }

    #[test]
    fn invalidate_range_at_zero_base_does_not_underflow() {
        let bytes = [0x01, 0x20, 0x02, 0x20];
        let pristine = PredecodedImage::from_bytes(0, &bytes, CFG);
        // A range touching byte 0 downgrades exactly slot 0.
        let mut img = pristine.clone();
        img.invalidate_range(0, 2);
        assert_eq!(img.slot(0), Some(Slot::Live));
        assert!(matches!(img.slot(2), Some(Slot::Instr { .. })));
        // addr < 2 with a zero length never reaches slot 0 through the
        // saturating prefix-predecessor arithmetic.
        let mut img = pristine.clone();
        img.invalidate_range(1, 0);
        assert_eq!(img, pristine);
        // Healing the same underflow-prone range is a no-op too.
        let mut img = pristine.clone();
        img.invalidate_range(0, 2);
        img.heal_range(&pristine, 0, 2);
        assert_eq!(img, pristine);
    }

    #[test]
    fn odd_trailing_byte_is_dropped() {
        let img = PredecodedImage::from_bytes(0, &[0x01, 0x20, 0xFF], CFG);
        assert_eq!(img.len(), 1);
    }

    // movs r0,#1 ; movs r0,#2 ; bl (32-bit F000 F800) ; movs r0,#3
    const RANGE_BYTES: [u8; 10] = [0x01, 0x20, 0x02, 0x20, 0x00, 0xF0, 0x00, 0xF8, 0x03, 0x20];

    #[test]
    fn invalidate_range_covers_every_touched_halfword_and_the_prefix_predecessor() {
        let mut img = PredecodedImage::from_bytes(0x100, &RANGE_BYTES, CFG);
        // Two faults straddling the wide bl: its prefix (0x104) and its
        // suffix (0x106), invalidated as one 4-byte range.
        img.invalidate_range(0x104, 4);
        assert_eq!(img.slot(0x102), Some(Slot::Live), "prefix predecessor downgraded");
        assert_eq!(img.slot(0x104), Some(Slot::Live));
        assert_eq!(img.slot(0x106), Some(Slot::Live));
        assert!(matches!(img.slot(0x100), Some(Slot::Instr { .. })), "before range untouched");
        assert!(matches!(img.slot(0x108), Some(Slot::Instr { .. })), "after range untouched");
    }

    #[test]
    fn invalidate_range_with_odd_length_still_covers_the_last_byte() {
        let mut img = PredecodedImage::from_bytes(0x100, &RANGE_BYTES, CFG);
        // Bytes [0x102, 0x105): halfwords 0x102 and 0x104, plus 0x100.
        img.invalidate_range(0x102, 3);
        assert_eq!(img.slot(0x100), Some(Slot::Live));
        assert_eq!(img.slot(0x102), Some(Slot::Live));
        assert_eq!(img.slot(0x104), Some(Slot::Live));
        assert_ne!(img.slot(0x106), Some(Slot::Live), "beyond the range stays cached");
    }

    #[test]
    fn invalidate_range_of_zero_length_is_a_no_op() {
        let pristine = PredecodedImage::from_bytes(0x100, &RANGE_BYTES, CFG);
        let mut img = pristine.clone();
        img.invalidate_range(0x104, 0);
        assert_eq!(img, pristine);
    }

    #[test]
    fn invalidate_range_clamps_to_the_table() {
        let mut img = PredecodedImage::from_bytes(0x100, &RANGE_BYTES, CFG);
        img.invalidate_range(0x0, 0x40); // entirely below base
        assert!(matches!(img.slot(0x100), Some(Slot::Instr { .. })));
        img.invalidate_range(0x108, 0x1000); // runs past the end
        assert_eq!(img.slot(0x108), Some(Slot::Live));
        img.invalidate_range(u32::MAX - 1, 8); // would overflow u32
        assert!(matches!(img.slot(0x100), Some(Slot::Instr { .. })));
    }

    #[test]
    fn heal_range_restores_exactly_the_invalidated_slots() {
        let pristine = PredecodedImage::from_bytes(0x100, &RANGE_BYTES, CFG);
        let mut img = pristine.clone();
        img.invalidate_range(0x104, 4);
        img.invalidate_range(0x108, 2);
        assert_ne!(img, pristine);
        img.heal_range(&pristine, 0x104, 4);
        img.heal_range(&pristine, 0x108, 2);
        assert_eq!(img, pristine, "healing undoes the downgrade slot for slot");
    }
}
