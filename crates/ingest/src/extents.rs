//! Code-vs-literal-pool extent inference over ingested text.
//!
//! Third-party images carry no extent table, but the analyses downstream
//! (`GL02xx` lints, fault-site walks) must not decode literal pools as
//! instructions. This module reconstructs
//! [`FuncExtent`](gd_backend::FuncExtent)s from the only ground truth the
//! bytes offer: PC-relative load targets. A linear walk from each known
//! routine start decodes with the Thumb-2 wide decoder and records every
//! address a `ldr rt, [pc, …]` (narrow or wide) references; the walk's
//! code region ends at the first referenced pool word, at the next
//! routine start, or at the first undecodable halfword.
//!
//! This is an inference, not a proof: a pool word that happens to decode
//! and is never PC-referenced (e.g. a jump-table entry) extends the code
//! region. The committed demo image and the ELF symbol path pin the
//! cases the experiments rely on.

use std::collections::BTreeSet;

use gd_backend::FuncExtent;
use gd_thumb::{decode_bytes_wide, Instr, Reg};

/// Pool addresses referenced by `instr` at `addr` (absolute).
fn pool_refs(instr: &Instr, addr: u32) -> Option<u32> {
    match *instr {
        Instr::LdrLit { imm8, .. } => {
            Some((addr.wrapping_add(4) & !3).wrapping_add(u32::from(imm8) * 4))
        }
        Instr::LdrW { rn: Reg::PC, imm12, .. } => {
            Some((addr.wrapping_add(4) & !3).wrapping_add(u32::from(imm12)))
        }
        _ => None,
    }
}

/// Infers routine extents for `text` based at `base`.
///
/// `starts` are the known routine entries as `(name, address)` pairs —
/// from ELF `STT_FUNC` symbols, or from the vector table for raw dumps.
/// They need not be sorted; addresses outside `text` are ignored. Each
/// extent spans from its start to the next start (or the end of text);
/// its `code_end` is where the decode walk stopped.
pub fn infer_extents(text: &[u8], base: u32, starts: &[(String, u32)]) -> Vec<FuncExtent> {
    let end = base + text.len() as u32;
    let mut sorted: Vec<(String, u32)> = starts
        .iter()
        .filter(|(_, a)| *a >= base && *a < end)
        .map(|(n, a)| (n.clone(), *a & !1))
        .collect();
    sorted.sort_by_key(|&(_, a)| a);
    sorted.dedup_by_key(|&mut (_, a)| a);

    // Pool addresses accumulate across routines: a pool referenced by an
    // early routine also terminates a later walk that runs into it.
    let mut pool: BTreeSet<u32> = BTreeSet::new();
    let mut extents = Vec::new();
    for (i, (name, start)) in sorted.iter().enumerate() {
        let extent_end = sorted.get(i + 1).map_or(end, |&(_, a)| a);
        let mut addr = *start;
        while addr + 2 <= extent_end {
            // Pool words are 4-aligned; the walk stops before any
            // instruction whose bytes would overlap one.
            if pool.contains(&(addr & !3)) {
                break;
            }
            let off = (addr - base) as usize;
            let Ok((instr, size)) = decode_bytes_wide(&text[off..]) else {
                break;
            };
            if addr + size > extent_end {
                break;
            }
            if size == 4 && pool.contains(&(addr.wrapping_add(2) & !3)) {
                break;
            }
            if let Some(target) = pool_refs(&instr, addr) {
                pool.insert(target & !3);
            }
            addr += size;
        }
        extents.push(FuncExtent {
            name: name.clone(),
            base: *start,
            code_end: addr,
            end: extent_end,
            blocks: Vec::new(),
        });
    }
    extents
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_thumb::asm::assemble;

    const BASE: u32 = 0x0800_0000;

    #[test]
    fn literal_pool_terminates_the_code_region() {
        // `ldr r0, =imm` emits a pool word after the code; 0x0000F04F in
        // the pool *would* decode as (lsls ; wide prefix) if walked.
        let prog = assemble("entry:\nldr r0, =0xF04F0000\nbx lr\n", BASE).unwrap();
        let ex = infer_extents(&prog.code, BASE, &[("entry".into(), BASE)]);
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].base, BASE);
        assert_eq!(ex[0].end, BASE + prog.code.len() as u32);
        assert!(ex[0].code_end < ex[0].end, "pool excluded");
        assert_eq!(ex[0].end - ex[0].code_end, 4, "one pool word");
    }

    #[test]
    fn starts_split_contiguous_text_and_clamp_to_text() {
        let prog = assemble("a:\nnop\nnop\nb:\nnop\nbx lr\n", BASE).unwrap();
        let starts = vec![
            ("a".into(), BASE),
            ("b".into(), BASE + 4),
            ("ghost".into(), BASE + 0x1000), // outside: ignored
        ];
        let ex = infer_extents(&prog.code, BASE, &starts);
        assert_eq!(ex.len(), 2);
        assert_eq!((ex[0].base, ex[0].code_end, ex[0].end), (BASE, BASE + 4, BASE + 4));
        assert_eq!(ex[1].base, BASE + 4);
        assert_eq!(ex[1].end, BASE + prog.code.len() as u32);
    }

    #[test]
    fn undecodable_bytes_stop_the_walk() {
        // 0xE801 is a 32-bit prefix in the all-undefined 0b11101 group.
        let mut code = assemble("nop\n", BASE).unwrap().code;
        code.extend_from_slice(&[0x01, 0xE8, 0x00, 0x00]);
        let ex = infer_extents(&code, BASE, &[("f".into(), BASE)]);
        assert_eq!(ex[0].code_end, BASE + 2);
        assert_eq!(ex[0].end, BASE + 6);
    }

    #[test]
    fn thumb_bit_on_starts_is_stripped() {
        let prog = assemble("nop\nbx lr\n", BASE).unwrap();
        let ex = infer_extents(&prog.code, BASE, &[("f".into(), BASE | 1)]);
        assert_eq!(ex[0].base, BASE);
    }
}
