//! `gd_ingest_*` metric families: ingestion volume counters labelled by
//! container format.

use std::sync::Arc;

use gd_obs::Counter;

use crate::{Format, Ingested};

fn format_counter(name: &str, help: &str, format: &str) -> Arc<Counter> {
    gd_obs::counter(name, help, &[("format", format)])
}

/// Images successfully ingested from `format` containers.
pub fn images(format: &str) -> Arc<Counter> {
    format_counter(
        "gd_ingest_images_total",
        "firmware images successfully ingested, by container format",
        format,
    )
}

/// Text bytes loaded from `format` containers.
pub fn text_bytes(format: &str) -> Arc<Counter> {
    format_counter(
        "gd_ingest_text_bytes_total",
        "text bytes loaded from ingested images, by container format",
        format,
    )
}

/// Routine extents inferred over `format` images.
pub fn extents(format: &str) -> Arc<Counter> {
    format_counter(
        "gd_ingest_extents_total",
        "routine extents inferred over ingested images, by container format",
        format,
    )
}

/// Literal-pool bytes excluded from code regions of `format` images.
pub fn pool_bytes(format: &str) -> Arc<Counter> {
    format_counter(
        "gd_ingest_pool_bytes_total",
        "literal-pool bytes excluded from code regions by extent inference, by container format",
        format,
    )
}

/// Records one successful ingestion into every family.
pub fn record(ing: &Ingested) {
    let f = ing.format.label();
    images(f).add(1);
    text_bytes(f).add(ing.image.text.len() as u64);
    extents(f).add(ing.image.extents.len() as u64);
    pool_bytes(f).add(u64::from(ing.pool_bytes()));
}

/// Registers every `gd_ingest_*` family at zero for both container
/// formats, so `/metrics` shows the full inventory before any image is
/// ingested.
pub fn register_metrics() {
    for format in [Format::Bin, Format::Elf] {
        let f = format.label();
        let _ = images(f);
        let _ = text_bytes(f);
        let _ = extents(f);
        let _ = pool_bytes(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testimg;

    #[test]
    fn register_exposes_every_family_for_both_formats() {
        register_metrics();
        let text = gd_obs::global().render_prometheus();
        for family in [
            "# TYPE gd_ingest_images_total counter",
            "# TYPE gd_ingest_text_bytes_total counter",
            "# TYPE gd_ingest_extents_total counter",
            "# TYPE gd_ingest_pool_bytes_total counter",
        ] {
            assert!(text.contains(family), "missing {family:?}");
        }
        assert!(text.contains(r#"gd_ingest_images_total{format="bin"}"#));
        assert!(text.contains(r#"gd_ingest_pool_bytes_total{format="elf"}"#));
    }

    #[test]
    fn ingestion_moves_the_counters() {
        let before = images("bin").get();
        let ing = crate::ingest_bin(&testimg::demo_bin(), testimg::DEMO_BASE).unwrap();
        assert_eq!(images("bin").get(), before + 1);
        assert!(text_bytes("bin").get() >= u64::from(ing.spec().text_len));
        assert!(pool_bytes("bin").get() >= u64::from(ing.pool_bytes()));
    }
}
