//! Arithmetic over GF(2⁸) with the conventional primitive polynomial
//! x⁸ + x⁴ + x³ + x² + 1 (0x11D), as used by standard Reed–Solomon codes.

/// The field, exposing arithmetic through table-driven operations.
///
/// Tables are built once at construction; the type is cheap to share.
///
/// ```
/// use gd_rs_ecc::Gf256;
/// let gf = Gf256::new();
/// let a = 0x57;
/// let b = 0x83;
/// let p = gf.mul(a, b);
/// assert_eq!(gf.div(p, b), a);
/// ```
#[derive(Debug, Clone)]
pub struct Gf256 {
    exp: [u8; 512],
    log: [u8; 256],
}

impl Default for Gf256 {
    fn default() -> Self {
        Gf256::new()
    }
}

impl Gf256 {
    /// The primitive polynomial (without the x⁸ term overflow bit kept).
    pub const PRIMITIVE: u16 = 0x11D;

    /// Builds the exp/log tables for the generator α = 2.
    pub fn new() -> Gf256 {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, slot) in exp.iter_mut().enumerate().take(255) {
            *slot = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= Self::PRIMITIVE;
            }
        }
        // Duplicate so that exp[a + b] works without modular reduction.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Gf256 { exp, log }
    }

    /// Addition (and subtraction): XOR in characteristic 2.
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Multiplication.
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[usize::from(self.log[a as usize]) + usize::from(self.log[b as usize])]
        }
    }

    /// Division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            let diff = 255 + usize::from(self.log[a as usize]) - usize::from(self.log[b as usize]);
            self.exp[diff % 255]
        }
    }

    /// α raised to `power` (mod 255 exponent arithmetic).
    pub fn alpha_pow(&self, power: u32) -> u8 {
        self.exp[(power % 255) as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u8) -> u8 {
        self.div(1, a)
    }

    /// Evaluates a polynomial (highest-degree coefficient first) at `x`
    /// using Horner's rule.
    pub fn poly_eval(&self, poly: &[u8], x: u8) -> u8 {
        poly.iter().fold(0, |acc, &c| self.mul(acc, x) ^ c)
    }

    /// Multiplies two polynomials (highest-degree first).
    pub fn poly_mul(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; a.len() + b.len() - 1];
        for (i, &ca) in a.iter().enumerate() {
            for (j, &cb) in b.iter().enumerate() {
                out[i + j] ^= self.mul(ca, cb);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_agrees_with_carryless_reference() {
        // Slow bitwise reference multiply-and-reduce.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut p: u16 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= Gf256::PRIMITIVE;
                }
                b >>= 1;
            }
            p as u8
        }
        let gf = Gf256::new();
        for a in (0u16..256).step_by(7) {
            for b in (0u16..256).step_by(5) {
                assert_eq!(gf.mul(a as u8, b as u8), slow_mul(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn field_axioms_hold_on_samples() {
        let gf = Gf256::new();
        for a in [1u8, 2, 7, 0x53, 0xFF] {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a * a⁻¹ = 1 for {a}");
            assert_eq!(gf.mul(a, 1), a);
            assert_eq!(gf.mul(a, 0), 0);
        }
        // Distributivity samples.
        for (a, b, c) in [(3u8, 5u8, 250u8), (0x80, 0x1D, 0x42)] {
            assert_eq!(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
        }
    }

    #[test]
    fn alpha_powers_cycle_with_period_255() {
        let gf = Gf256::new();
        assert_eq!(gf.alpha_pow(0), 1);
        assert_eq!(gf.alpha_pow(1), 2);
        assert_eq!(gf.alpha_pow(255), 1);
        assert_eq!(gf.alpha_pow(256), 2);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        Gf256::new().div(1, 0);
    }

    #[test]
    fn poly_eval_horner() {
        let gf = Gf256::new();
        // p(x) = x² + 1 at x = 2 → 4 ^ 1 = 5 (carryless).
        assert_eq!(gf.poly_eval(&[1, 0, 1], 2), 5);
        assert_eq!(gf.poly_eval(&[1], 0x42), 1);
        assert_eq!(gf.poly_eval(&[], 7), 0);
    }

    #[test]
    fn poly_mul_matches_eval() {
        let gf = Gf256::new();
        let a = [3u8, 0, 7];
        let b = [1u8, 5];
        let prod = gf.poly_mul(&a, &b);
        for x in [0u8, 1, 2, 0x35, 0xEE] {
            assert_eq!(
                gf.poly_eval(&prod, x),
                gf.mul(gf.poly_eval(&a, x), gf.poly_eval(&b, x)),
                "evaluation homomorphism at {x}"
            );
        }
    }
}
