//! Generic forward-dataflow worklist engine and the register
//! constant-propagation domain used to resolve computed branches.
//!
//! The lattice per register is `Const(v) ⊑ Top`; an unreached block has
//! no state at all (`None`). The engine propagates over intraprocedural
//! edges plus `CallReturn` (through [`Dataflow::across_call`], which for
//! constants clobbers everything — the ABI saves nothing). `Call` edges
//! do not propagate: routine entries start from
//! [`Dataflow::entry_state`], which keeps the analysis sound for any
//! caller.

use std::collections::BTreeMap;

use gd_backend::FirmwareImage;
use gd_thumb::{thumb_expand_imm, AluOp, Instr, Reg, ShiftOp, WideDpOp};

use crate::graph::{read_text_word, Block, Cfg, EdgeKind};

/// A forward dataflow problem over the recovered CFG.
pub trait Dataflow {
    /// Per-block abstract state.
    type State: Clone + PartialEq;

    /// State at routine entries.
    fn entry_state(&self) -> Self::State;

    /// Transfer function over a whole block.
    fn transfer(&self, block: &Block, input: &Self::State) -> Self::State;

    /// Joins `other` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::State, other: &Self::State) -> bool;

    /// State surviving across a call (applied on `CallReturn` edges).
    fn across_call(&self, after_call: &Self::State) -> Self::State;
}

/// Runs `d` to fixpoint from the given entry blocks. Returns the state
/// at each block *entry* (`None` = unreached) and the number of
/// worklist iterations (block transfers applied).
pub fn fixpoint<D: Dataflow>(g: &Cfg, entries: &[usize], d: &D) -> (Vec<Option<D::State>>, u64) {
    let n = g.blocks.len();
    let mut input: Vec<Option<D::State>> = vec![None; n];
    let mut work: Vec<usize> = Vec::new();
    let mut queued = vec![false; n];
    for &e in entries {
        input[e] = Some(d.entry_state());
        if !queued[e] {
            queued[e] = true;
            work.push(e);
        }
    }
    let mut iterations = 0u64;
    while let Some(b) = work.pop() {
        queued[b] = false;
        iterations += 1;
        let out = d.transfer(&g.blocks[b], input[b].as_ref().expect("queued blocks have state"));
        for &(t, kind) in &g.succs[b] {
            let flowed = match kind {
                EdgeKind::Call => continue,
                EdgeKind::CallReturn => d.across_call(&out),
                _ => out.clone(),
            };
            let changed = match &mut input[t] {
                Some(s) => d.join(s, &flowed),
                slot @ None => {
                    *slot = Some(flowed);
                    true
                }
            };
            if changed && !queued[t] {
                queued[t] = true;
                work.push(t);
            }
        }
    }
    (input, iterations)
}

/// One register's abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Val {
    /// Exactly this value on every path.
    Const(u32),
    /// Unknown.
    Top,
}

impl Val {
    fn known(self) -> Option<u32> {
        match self {
            Val::Const(v) => Some(v),
            Val::Top => None,
        }
    }

    fn map2(a: Val, b: Val, f: impl FnOnce(u32, u32) -> u32) -> Val {
        match (a, b) {
            (Val::Const(x), Val::Const(y)) => Val::Const(f(x, y)),
            _ => Val::Top,
        }
    }

    fn map1(self, f: impl FnOnce(u32) -> u32) -> Val {
        match self {
            Val::Const(x) => Val::Const(f(x)),
            Val::Top => Val::Top,
        }
    }
}

/// Register file lattice (r0–r12, sp, lr; pc is never tracked).
pub type Regs = [Val; 16];

/// The constant-propagation problem.
pub struct ConstProp<'a> {
    /// The image, for PC-relative pool reads.
    pub image: &'a FirmwareImage,
}

impl ConstProp<'_> {
    fn read(&self, regs: &Regs, r: Reg, addr: u32) -> Val {
        if r == Reg::PC {
            Val::Const(addr.wrapping_add(4))
        } else {
            regs[r.index() as usize]
        }
    }

    /// Applies one instruction to the register lattice. Every register
    /// an instruction may write must be clobbered here — the match is
    /// exhaustive so new encodings fail the build instead of silently
    /// keeping stale constants.
    pub fn step(&self, regs: &mut Regs, instr: Instr, addr: u32) {
        let set = |regs: &mut Regs, r: Reg, v: Val| {
            if r != Reg::PC {
                regs[r.index() as usize] = v;
            }
        };
        match instr {
            Instr::ShiftImm { op, rd, rm, imm5 } => {
                let a = self.read(regs, rm, addr);
                let v = match (op, imm5) {
                    (ShiftOp::Lsl, _) => a.map1(|x| x << imm5),
                    // LSR/ASR with imm5 == 0 encode a shift by 32.
                    (ShiftOp::Lsr, 0) => Val::Const(0),
                    (ShiftOp::Lsr, _) => a.map1(|x| x >> imm5),
                    (ShiftOp::Asr, 0) => a.map1(|x| (x as i32 >> 31) as u32),
                    (ShiftOp::Asr, _) => a.map1(|x| (x as i32 >> imm5) as u32),
                };
                set(regs, rd, v);
            }
            Instr::AddReg3 { rd, rn, rm } => {
                let v = Val::map2(self.read(regs, rn, addr), self.read(regs, rm, addr), |a, b| {
                    a.wrapping_add(b)
                });
                set(regs, rd, v);
            }
            Instr::SubReg3 { rd, rn, rm } => {
                let v = Val::map2(self.read(regs, rn, addr), self.read(regs, rm, addr), |a, b| {
                    a.wrapping_sub(b)
                });
                set(regs, rd, v);
            }
            Instr::AddImm3 { rd, rn, imm3 } => {
                let v = self.read(regs, rn, addr).map1(|a| a.wrapping_add(u32::from(imm3)));
                set(regs, rd, v);
            }
            Instr::SubImm3 { rd, rn, imm3 } => {
                let v = self.read(regs, rn, addr).map1(|a| a.wrapping_sub(u32::from(imm3)));
                set(regs, rd, v);
            }
            Instr::MovImm { rd, imm8 } => set(regs, rd, Val::Const(u32::from(imm8))),
            Instr::CmpImm { .. } => {}
            Instr::AddImm8 { rdn, imm8 } => {
                let v = self.read(regs, rdn, addr).map1(|a| a.wrapping_add(u32::from(imm8)));
                set(regs, rdn, v);
            }
            Instr::SubImm8 { rdn, imm8 } => {
                let v = self.read(regs, rdn, addr).map1(|a| a.wrapping_sub(u32::from(imm8)));
                set(regs, rdn, v);
            }
            Instr::Alu { op, rdn, rm } => {
                let a = self.read(regs, rdn, addr);
                let b = self.read(regs, rm, addr);
                let v = match op {
                    AluOp::And => Val::map2(a, b, |x, y| x & y),
                    AluOp::Eor => Val::map2(a, b, |x, y| x ^ y),
                    AluOp::Orr => Val::map2(a, b, |x, y| x | y),
                    AluOp::Bic => Val::map2(a, b, |x, y| x & !y),
                    AluOp::Mvn => b.map1(|y| !y),
                    AluOp::Mul => Val::map2(a, b, u32::wrapping_mul),
                    AluOp::Rsb => b.map1(|y| 0u32.wrapping_sub(y)),
                    AluOp::Tst | AluOp::Cmp | AluOp::Cmn => return,
                    // Flag- or amount-dependent: give up on the value.
                    AluOp::Lsl | AluOp::Lsr | AluOp::Asr | AluOp::Adc | AluOp::Sbc | AluOp::Ror => {
                        Val::Top
                    }
                };
                set(regs, rdn, v);
            }
            Instr::AddHi { rdn, rm } => {
                let v = Val::map2(self.read(regs, rdn, addr), self.read(regs, rm, addr), |a, b| {
                    a.wrapping_add(b)
                });
                set(regs, rdn, v);
            }
            Instr::CmpHi { .. } => {}
            Instr::MovHi { rd, rm } => {
                let v = self.read(regs, rm, addr);
                set(regs, rd, v);
            }
            Instr::Bx { .. } | Instr::Blx { .. } => set(regs, Reg::LR, Val::Top),
            Instr::LdrLit { rt, imm8 } => {
                let slot = (addr.wrapping_add(4) & !3).wrapping_add(u32::from(imm8) * 4);
                let v = read_text_word(self.image, slot).map_or(Val::Top, Val::Const);
                set(regs, rt, v);
            }
            Instr::LoadReg { rt, .. }
            | Instr::LdrsbReg { rt, .. }
            | Instr::LdrshReg { rt, .. }
            | Instr::LoadImm { rt, .. }
            | Instr::LdrSp { rt, .. } => set(regs, rt, Val::Top),
            Instr::StoreReg { .. } | Instr::StoreImm { .. } | Instr::StrSp { .. } => {}
            Instr::Adr { rd, imm8 } => {
                let v = (addr.wrapping_add(4) & !3).wrapping_add(u32::from(imm8) * 4);
                set(regs, rd, Val::Const(v));
            }
            Instr::AddSpImm { rd, imm8 } => {
                let v =
                    regs[Reg::SP.index() as usize].map1(|s| s.wrapping_add(u32::from(imm8) * 4));
                set(regs, rd, v);
            }
            Instr::AddSp { imm7 } => {
                let v =
                    regs[Reg::SP.index() as usize].map1(|s| s.wrapping_add(u32::from(imm7) * 4));
                set(regs, Reg::SP, v);
            }
            Instr::SubSp { imm7 } => {
                let v =
                    regs[Reg::SP.index() as usize].map1(|s| s.wrapping_sub(u32::from(imm7) * 4));
                set(regs, Reg::SP, v);
            }
            Instr::Sxth { rd, rm } => {
                let v = self.read(regs, rm, addr).map1(|x| x as u16 as i16 as i32 as u32);
                set(regs, rd, v);
            }
            Instr::Sxtb { rd, rm } => {
                let v = self.read(regs, rm, addr).map1(|x| x as u8 as i8 as i32 as u32);
                set(regs, rd, v);
            }
            Instr::Uxth { rd, rm } => {
                let v = self.read(regs, rm, addr).map1(|x| x & 0xFFFF);
                set(regs, rd, v);
            }
            Instr::Uxtb { rd, rm } => {
                let v = self.read(regs, rm, addr).map1(|x| x & 0xFF);
                set(regs, rd, v);
            }
            Instr::Rev { rd, rm } => {
                let v = self.read(regs, rm, addr).map1(u32::swap_bytes);
                set(regs, rd, v);
            }
            Instr::Rev16 { rd, rm } => {
                let v = self
                    .read(regs, rm, addr)
                    .map1(|x| (x & 0xFF00FF00) >> 8 | (x & 0x00FF00FF) << 8);
                set(regs, rd, v);
            }
            Instr::Revsh { rd, rm } => {
                let v = self
                    .read(regs, rm, addr)
                    .map1(|x| ((x as u16).swap_bytes() as i16) as i32 as u32);
                set(regs, rd, v);
            }
            Instr::Push { .. } => set(regs, Reg::SP, Val::Top),
            Instr::Pop { rlist, pc: _ } => {
                for i in 0..8 {
                    if rlist & (1 << i) != 0 {
                        regs[i as usize] = Val::Top;
                    }
                }
                set(regs, Reg::SP, Val::Top);
            }
            Instr::Bkpt { .. } | Instr::Hint { .. } | Instr::Cps { .. } => {}
            Instr::Stm { rn, .. } => set(regs, rn, Val::Top),
            Instr::Ldm { rn, rlist } => {
                for i in 0..8 {
                    if rlist & (1 << i) != 0 {
                        regs[i as usize] = Val::Top;
                    }
                }
                set(regs, rn, Val::Top);
            }
            Instr::BCond { .. }
            | Instr::Udf { .. }
            | Instr::Svc { .. }
            | Instr::B { .. }
            | Instr::BW { .. }
            | Instr::BCondW { .. } => {}
            Instr::Bl { .. } => set(regs, Reg::LR, Val::Top),
            Instr::DpImm { op, rn, rd, .. } if rd == Reg::PC => {
                // Compare/test form: flags only.
                let _ = (op, rn);
            }
            Instr::DpImm { op, s: _, rn, rd, imm12 } => {
                let imm = thumb_expand_imm(imm12);
                let a = if rn == Reg::PC { Val::Const(0) } else { regs[rn.index() as usize] };
                let v = match op {
                    WideDpOp::And => a.map1(|x| x & imm),
                    WideDpOp::Bic => a.map1(|x| x & !imm),
                    WideDpOp::Orr if rn == Reg::PC => Val::Const(imm),
                    WideDpOp::Orr => a.map1(|x| x | imm),
                    WideDpOp::Orn if rn == Reg::PC => Val::Const(!imm),
                    WideDpOp::Orn => a.map1(|x| x | !imm),
                    WideDpOp::Eor => a.map1(|x| x ^ imm),
                    WideDpOp::Add => a.map1(|x| x.wrapping_add(imm)),
                    WideDpOp::Sub => a.map1(|x| x.wrapping_sub(imm)),
                    WideDpOp::Rsb => a.map1(|x| imm.wrapping_sub(x)),
                    // Carry-dependent.
                    WideDpOp::Adc | WideDpOp::Sbc => Val::Top,
                };
                set(regs, rd, v);
            }
            Instr::MovW { rd, imm16 } => set(regs, rd, Val::Const(u32::from(imm16))),
            Instr::MovT { rd, imm16 } => {
                let v = regs[rd.index() as usize].map1(|x| x & 0xFFFF | u32::from(imm16) << 16);
                set(regs, rd, v);
            }
            Instr::LdrW { rt, rn, imm12 } => {
                let v = if rn == Reg::PC {
                    let slot = (addr.wrapping_add(4) & !3).wrapping_add(u32::from(imm12));
                    read_text_word(self.image, slot).map_or(Val::Top, Val::Const)
                } else {
                    Val::Top
                };
                set(regs, rt, v);
            }
            Instr::StrW { .. } => {}
        }
    }
}

impl Dataflow for ConstProp<'_> {
    type State = Regs;

    fn entry_state(&self) -> Regs {
        [Val::Top; 16]
    }

    fn transfer(&self, block: &Block, input: &Regs) -> Regs {
        let mut regs = *input;
        for &(addr, instr, _) in &block.instrs {
            self.step(&mut regs, instr, addr);
        }
        regs
    }

    fn join(&self, into: &mut Regs, other: &Regs) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(other) {
            if a != b && *a != Val::Top {
                *a = Val::Top;
                changed = true;
            }
        }
        changed
    }

    fn across_call(&self, _after_call: &Regs) -> Regs {
        [Val::Top; 16]
    }
}

/// Runs constant propagation and resolves every unresolved computed
/// branch whose operand the lattice pins to one value. Returns
/// `(site → target)` plus the fixpoint iteration count.
pub fn resolve_computed(g: &Cfg, image: &FirmwareImage) -> (BTreeMap<u32, u32>, u64) {
    let cp = ConstProp { image };
    let entries: Vec<usize> = image
        .extents
        .iter()
        .filter_map(|e| g.index.get(&e.base).copied())
        .chain(g.index.get(&image.entry).copied())
        .collect();
    let (states, iterations) = fixpoint(g, &entries, &cp);
    let mut resolved = BTreeMap::new();
    for &site in &g.unresolved {
        let Some(&(bi, pos)) = g.instr_blocks.get(&site) else { continue };
        let Some(state) = &states[bi] else { continue };
        let mut regs = *state;
        for &(addr, instr, _) in &g.blocks[bi].instrs[..pos] {
            cp.step(&mut regs, instr, addr);
        }
        let (_, instr, _) = g.blocks[bi].instrs[pos];
        let target = match instr {
            Instr::Bx { rm } | Instr::Blx { rm } => {
                regs[rm.index() as usize].known().filter(|v| v & 1 == 1).map(|v| v & !1)
            }
            Instr::MovHi { rd: Reg::PC, rm } => cp.read(&regs, rm, site).known().map(|v| v & !1),
            Instr::AddHi { rdn: Reg::PC, rm } => {
                cp.read(&regs, rm, site).known().map(|v| site.wrapping_add(4).wrapping_add(v) & !1)
            }
            Instr::LdrW { rt: Reg::PC, rn, imm12 } if rn != Reg::PC => regs[rn.index() as usize]
                .known()
                .and_then(|base| read_text_word(image, base.wrapping_add(u32::from(imm12))))
                .filter(|v| v & 1 == 1)
                .map(|v| v & !1),
            _ => None,
        };
        if let Some(t) = target {
            resolved.insert(site, t);
        }
    }
    (resolved, iterations)
}
