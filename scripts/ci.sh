#!/usr/bin/env sh
# Tier-1 gate: formatting, a warnings-denied release build, the full
# workspace test suite, and experiment self-checks, all offline. The
# workspace has zero external dependencies, so this runs on a machine
# with no network and no registry cache.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline (RUSTFLAGS=-Dwarnings)"
RUSTFLAGS=-Dwarnings cargo build --release --offline

echo "==> cargo test --offline (workspace)"
cargo test --offline -q

# Experiment binaries must regenerate their committed golden outputs
# byte for byte. table1 goes through the campaign engine (and therefore
# the sharded path); fig2 covers the emulation-side sweeps.
echo "==> table1 --check"
./target/release/table1 --check

echo "==> fig2 --check"
./target/release/fig2 --check

# Static glitch-surface analysis: the report over all Table IV defense
# configurations must match the committed golden byte for byte, stay
# byte-identical across worker counts, and the fully hardened boot image
# must survive --deny (zero missing-defense findings).
echo "==> gd-lint --check"
./target/release/gd-lint --check

echo "==> gd-lint determinism across GD_THREADS=1/2/8"
GD_THREADS=1 ./target/release/gd-lint > target/lint_boot.t1.txt
GD_THREADS=2 ./target/release/gd-lint > target/lint_boot.t2.txt
GD_THREADS=8 ./target/release/gd-lint > target/lint_boot.t8.txt
cmp target/lint_boot.t1.txt target/lint_boot.t2.txt
cmp target/lint_boot.t1.txt target/lint_boot.t8.txt
cmp target/lint_boot.t1.txt results/lint_boot.txt
rm -f target/lint_boot.t1.txt target/lint_boot.t2.txt target/lint_boot.t8.txt

echo "==> gd-lint --deny on the fully hardened boot image"
./target/release/gd-lint --deny --config All > /dev/null

# Exhaustive multi-fault campaign over firmware::boot, through the
# campaign engine's sharded path: the report (first-order sweeps of
# every registry fault model plus the second-order pair buckets, with
# the pruning ledger) must match the committed golden byte for byte and
# stay byte-identical across worker counts.
echo "==> gd-multifault --check"
./target/release/gd-multifault --check

echo "==> gd-multifault determinism across GD_THREADS=1/2/8"
GD_THREADS=1 ./target/release/gd-multifault > target/multifault_boot.t1.txt
GD_THREADS=2 ./target/release/gd-multifault > target/multifault_boot.t2.txt
GD_THREADS=8 ./target/release/gd-multifault > target/multifault_boot.t8.txt
cmp target/multifault_boot.t1.txt target/multifault_boot.t2.txt
cmp target/multifault_boot.t1.txt target/multifault_boot.t8.txt
cmp target/multifault_boot.t1.txt results/multifault_boot.txt
rm -f target/multifault_boot.t1.txt target/multifault_boot.t2.txt target/multifault_boot.t8.txt

# Third-party firmware ingestion: the committed demo dump must ingest,
# lint, and fault-sim to the committed goldens byte for byte, and the
# lint + divergence-campaign reports must stay byte-identical across
# worker counts (fixed-size chunk partition, order-preserving merge).
echo "==> gd-ingest --check (ingest report + GL02xx lints + divergence campaigns)"
./target/release/gd-ingest --check

echo "==> gd-ingest determinism across GD_THREADS=1/2/8"
for t in 1 2 8; do
    GD_THREADS=$t ./target/release/gd-ingest --lint > "target/lint_ingest.t$t.txt"
    GD_THREADS=$t ./target/release/gd-ingest --faultsim > "target/multifault_ingest.t$t.txt"
done
cmp target/lint_ingest.t1.txt target/lint_ingest.t2.txt
cmp target/lint_ingest.t1.txt target/lint_ingest.t8.txt
cmp target/lint_ingest.t1.txt results/lint_ingest.txt
cmp target/multifault_ingest.t1.txt target/multifault_ingest.t2.txt
cmp target/multifault_ingest.t1.txt target/multifault_ingest.t8.txt
cmp target/multifault_ingest.t1.txt results/multifault_ingest.txt
rm -f target/lint_ingest.t?.txt target/multifault_ingest.t?.txt

# CFG recovery + glitch reachability: both reports must match their
# committed goldens byte for byte and stay byte-identical across worker
# counts; the guard-domination gate (GL0302) must be clean on the fully
# hardened image; and the agreement sweep must stay sound — no fault the
# simulator proves Successful may be classified statically safe. The
# agreement tables committed to EXPERIMENTS.md must equal the regions
# inside the goldens, so the document cannot drift from the artifacts.
echo "==> gd-cfg --check (CFG recovery + GL03xx lints + agreement tables)"
./target/release/gd-cfg --check

echo "==> gd-cfg determinism across GD_THREADS=1/2/8"
for t in 1 2 8; do
    GD_THREADS=$t ./target/release/gd-cfg > "target/cfg_boot.t$t.txt"
    GD_THREADS=$t ./target/release/gd-cfg --ingest > "target/cfg_ingest.t$t.txt"
done
cmp target/cfg_boot.t1.txt target/cfg_boot.t2.txt
cmp target/cfg_boot.t1.txt target/cfg_boot.t8.txt
cmp target/cfg_boot.t1.txt results/cfg_boot.txt
cmp target/cfg_ingest.t1.txt target/cfg_ingest.t2.txt
cmp target/cfg_ingest.t1.txt target/cfg_ingest.t8.txt
cmp target/cfg_ingest.t1.txt results/cfg_ingest.txt
rm -f target/cfg_boot.t?.txt target/cfg_ingest.t?.txt

echo "==> gd-cfg --deny GL0302 on the fully hardened boot image"
./target/release/gd-cfg --deny GL0302 --config All > /dev/null

echo "==> gd-cfg --gate (soundness: statically safe implies simulated non-Success)"
./target/release/gd-cfg --gate > /dev/null

echo "==> EXPERIMENTS.md agreement tables match the committed goldens"
sed -n '/^---- agreement/,/^---- end agreement/p' \
    results/cfg_boot.txt results/cfg_ingest.txt > target/agree.golden.txt
sed -n '/^---- agreement/,/^---- end agreement/p' EXPERIMENTS.md > target/agree.doc.txt
cmp target/agree.golden.txt target/agree.doc.txt
rm -f target/agree.golden.txt target/agree.doc.txt

# Benchmark trajectory smoke: re-measure the fig2 sweep, table1 scan,
# and multifault campaign hot paths (few samples — this is a
# structure/regression gate, not a baseline regeneration) and compare
# against the committed BENCH_*.json: same stage set, fresh medians
# within GD_BENCH_TOLERANCE of the committed ones, the predecoded fig2
# sweep holding its committed >= 5x speedup floor, and the multifault
# pruning rates reproducing their committed milli-values exactly.
echo "==> gd-bench --check (benchmark trajectory)"
GD_BENCH_SAMPLES=5 ./target/release/gd-bench --check

# End-to-end smoke test of the campaign service: boot the HTTP server on
# an ephemeral port, submit Table I, require the bytes served back to
# equal results/table1.txt exactly, then scrape GET /metrics and assert
# the gd-obs metric families (http requests by route/status, the
# per-shard wall-time histogram, the engine cache counters, and the
# linter's gd_lint_findings_total{lint} series) are present.
echo "==> campaign service e2e (Table I over HTTP + /metrics scrape)"
cargo test --release --offline -q -p gd-campaign --test e2e_http

# Failure-path regressions in release: slowloris dribble -> 408 under
# the overall read deadline, failed campaign -> 409 (404 stays unknown-
# id only), and the cache/shard/duration metric families on /metrics.
echo "==> service failure paths + metrics families"
cargo test --release --offline -q -p gd-campaign --test service_failures

# Self-healing smoke test: Table I under a fixed deterministic fault
# schedule (shard panics, torn/dropped/corrupted store I/O, a whisper of
# worker-level panics — those compound across every nested sweep chunk,
# so their rate stays tiny). Every surviving run must be byte-identical
# to the committed golden. The chaos subcommand exits nonzero on any
# divergence or if no run survives.
echo "==> chaos smoke (Table I under a fault schedule, diffed against the golden)"
rm -rf target/chaos-smoke-store
./target/release/gd-campaign chaos table1 \
    --schedule '7:engine.shard_panic=0.1,store.torn_write=0.3,store.read_err=0.3,store.corrupt=0.3,exec.worker_panic=0.0005' \
    --runs 2 --store target/chaos-smoke-store --golden results/table1.txt
rm -rf target/chaos-smoke-store

# Fleet smoke: Table I through a 2-worker loopback fleet must reproduce
# the committed golden byte for byte — fault-free first, then with
# dispatcher-side worker-boundary faults (dropped connections, corrupted
# results caught by the seal), then against workers whose own processes
# hang and crash mid-shard under GD_CHAOS. The dispatcher's retry /
# hedge / quarantine / local-fallback ladder absorbs all of it.
echo "==> fleet smoke (Table I through 2 loopback workers, then under worker chaos)"
./target/release/gd-campaign worker --addr 127.0.0.1:0 > target/fleet_worker1.log 2>&1 &
FLEET_W1_PID=$!
./target/release/gd-campaign worker --addr 127.0.0.1:0 > target/fleet_worker2.log 2>&1 &
FLEET_W2_PID=$!
for _ in $(seq 50); do
    grep -q 'worker on' target/fleet_worker1.log 2>/dev/null \
        && grep -q 'worker on' target/fleet_worker2.log 2>/dev/null && break
    sleep 0.1
done
FLEET_W1=$(sed -n 's|.*worker on http://||p' target/fleet_worker1.log | head -1)
FLEET_W2=$(sed -n 's|.*worker on http://||p' target/fleet_worker2.log | head -1)
./target/release/gd-campaign run table1 --workers "$FLEET_W1,$FLEET_W2" \
    > target/fleet_table1.txt
cmp target/fleet_table1.txt results/table1.txt
GD_CHAOS='31:fleet.conn_drop=0.2,fleet.corrupt_result=0.2' \
    ./target/release/gd-campaign run table1 --workers "$FLEET_W1,$FLEET_W2" \
    > target/fleet_table1_chaos.txt
cmp target/fleet_table1_chaos.txt results/table1.txt
kill "$FLEET_W1_PID" "$FLEET_W2_PID"
wait "$FLEET_W1_PID" "$FLEET_W2_PID" 2>/dev/null || true

GD_CHAOS='32:fleet.hang=0.2,fleet.worker_crash=0.2' \
    ./target/release/gd-campaign worker --addr 127.0.0.1:0 > target/fleet_worker3.log 2>&1 &
FLEET_W3_PID=$!
GD_CHAOS='33:fleet.hang=0.2,fleet.worker_crash=0.2' \
    ./target/release/gd-campaign worker --addr 127.0.0.1:0 > target/fleet_worker4.log 2>&1 &
FLEET_W4_PID=$!
for _ in $(seq 50); do
    grep -q 'worker on' target/fleet_worker3.log 2>/dev/null \
        && grep -q 'worker on' target/fleet_worker4.log 2>/dev/null && break
    sleep 0.1
done
FLEET_W3=$(sed -n 's|.*worker on http://||p' target/fleet_worker3.log | head -1)
FLEET_W4=$(sed -n 's|.*worker on http://||p' target/fleet_worker4.log | head -1)
./target/release/gd-campaign run table1 --workers "$FLEET_W3,$FLEET_W4" \
    > target/fleet_table1_sick.txt
cmp target/fleet_table1_sick.txt results/table1.txt
kill "$FLEET_W3_PID" "$FLEET_W4_PID"
wait "$FLEET_W3_PID" "$FLEET_W4_PID" 2>/dev/null || true
rm -f target/fleet_worker?.log target/fleet_table1*.txt

# Synthetic load with SLO assertions: concurrent clients against an
# in-process server fed by a 2-worker fleet. gd-load exits nonzero when
# p99 control-plane latency or sustained throughput miss the SLOs, when
# any campaign fails, or when /metrics lacks the gd_fleet_*/gd_http_*
# families that prove the fleet path served the load.
echo "==> gd-load SLO run (4 clients x 3 rounds over a 2-worker fleet)"
./target/release/gd-load --clients 4 --rounds 3 --spawn-workers 2 \
    --p99-ms 250 --min-rps 50 --require-fleet-metrics

echo "==> OK"
