//! Extension of the §IV methodology beyond conditional branches:
//! how "skippable" are whole instruction *classes* under unidirectional
//! bit flips?
//!
//! The paper's real-hardware experiments observe that "load and store
//! instructions appear to be more susceptible to glitching" while
//! "instructions which simply manipulate registers (e.g., addition) appear
//! to be exceptionally difficult to glitch" (§I, §V-A). This module runs
//! the same exhaustive encoding-level sweep as Figure 2 on representative
//! members of each class, asking: what fraction of bit-flip corruptions
//! leaves execution running but with the instruction's effect missing?

use gd_emu::{Config, Emu, Perms, RunOutcome, StopReason};
use gd_thumb::asm::assemble;
use gd_thumb::Reg;

use crate::masks::ChooseBits;
use crate::sweep::{Direction, Outcome, Tally};

/// A skip-oriented test case: corrupting `target:` counts as a *skip* when
/// execution completes but the instruction's architectural effect is
/// missing.
#[derive(Debug, Clone)]
pub struct SkipCase {
    /// Class label (e.g. `"alu"`).
    pub name: &'static str,
    /// The targeted instruction, as printed.
    pub text: &'static str,
    program: gd_thumb::asm::Program,
    target_addr: u32,
    effect: Effect,
}

#[derive(Debug, Clone, Copy)]
enum Effect {
    /// Register must equal `normal` after execution; `skipped` when missing.
    Reg { reg: Reg, normal: u32, skipped: u32 },
    /// Word at the probe address must equal `normal`.
    Mem { addr: u32, normal: u32, skipped: u32 },
}

const FLASH: u32 = 0x0800_0000;
const SRAM: u32 = 0x2000_0000;
const PROBE: u32 = SRAM + 0x100;

fn build(name: &'static str, text: &'static str, src: &str, effect: Effect) -> SkipCase {
    let program = assemble(src, FLASH).expect("skip case assembles");
    let target_addr = program.symbols["target"];
    SkipCase { name, text, program, target_addr, effect }
}

/// Representative cases, one per instruction class the paper discusses.
pub fn instruction_classes() -> Vec<SkipCase> {
    vec![
        // Pure register manipulation.
        build(
            "alu-add",
            "adds r2, #1",
            "
    movs r2, #5
target:
    adds r2, #1
    bkpt #1
",
            Effect::Reg { reg: Reg::R2, normal: 6, skipped: 5 },
        ),
        build(
            "alu-mov",
            "movs r2, #9",
            "
    movs r2, #5
target:
    movs r2, #9
    bkpt #1
",
            Effect::Reg { reg: Reg::R2, normal: 9, skipped: 5 },
        ),
        // Compare: effect is the flags, observed through a branch.
        build(
            "compare",
            "cmp r2, #0",
            "
    movs r2, #0
    movs r3, #0
    subs r3, #1          ; N=1 so a skipped cmp leaves 'lt'
target:
    cmp r2, #0
    bge ok
    movs r4, #1          ; reached only if flags kept the old state
ok:
    bkpt #1
",
            Effect::Reg { reg: Reg::R4, normal: 0, skipped: 1 },
        ),
        // Load.
        build(
            "load",
            "ldr r2, [r1]",
            "
    ldr r1, =0x20000100
    ldr r0, =0x77
    str r0, [r1]
    movs r2, #0
target:
    ldr r2, [r1]
    bkpt #1
",
            Effect::Reg { reg: Reg::R2, normal: 0x77, skipped: 0 },
        ),
        // Store.
        build(
            "store",
            "str r2, [r1]",
            "
    ldr r1, =0x20000100
    ldr r2, =0x55
target:
    str r2, [r1]
    bkpt #1
",
            Effect::Mem { addr: PROBE, normal: 0x55, skipped: 0 },
        ),
    ]
}

impl SkipCase {
    /// Runs the case with `hw` over the target and classifies the result.
    pub fn run(&self, hw: u16, cfg: Config) -> Outcome {
        let mut emu = Emu::with_config(cfg);
        emu.mem.map("flash", FLASH, 0x1000, Perms::RX).expect("fresh map");
        emu.mem.map("sram", SRAM, 0x1000, Perms::RW).expect("fresh map");
        emu.mem.load(self.program.origin, &self.program.code).expect("snippet fits");
        emu.mem.load(self.target_addr, &hw.to_le_bytes()).expect("target in snippet");
        emu.set_pc(self.program.origin);
        emu.cpu.set_sp(SRAM + 0x1000);
        match emu.run(256) {
            RunOutcome::Stop { reason: StopReason::Bkpt(1), .. } => {
                let observed = match self.effect {
                    Effect::Reg { reg, .. } => emu.cpu.reg(reg),
                    Effect::Mem { addr, .. } => emu.mem.read32(addr).unwrap_or(0xFFFF_FFFF),
                };
                match self.effect {
                    Effect::Reg { normal, skipped, .. } | Effect::Mem { normal, skipped, .. } => {
                        if observed == skipped {
                            Outcome::Success
                        } else if observed == normal {
                            Outcome::NoEffect
                        } else {
                            Outcome::Failed
                        }
                    }
                }
            }
            RunOutcome::Stop { .. } | RunOutcome::StepLimit { .. } => Outcome::Failed,
            RunOutcome::Fault { fault, .. } => match fault {
                gd_emu::Fault::Mem(m) if m.access == gd_emu::Access::Fetch => Outcome::BadFetch,
                gd_emu::Fault::Mem(_) => Outcome::BadRead,
                gd_emu::Fault::Undefined { .. } => Outcome::InvalidInstruction,
                gd_emu::Fault::InterworkArm { .. } => Outcome::Failed,
            },
        }
    }

    /// The original halfword of the target.
    pub fn target_halfword(&self) -> u16 {
        let off = (self.target_addr - self.program.origin) as usize;
        u16::from_le_bytes([self.program.code[off], self.program.code[off + 1]])
    }

    /// Sweeps every C(16, k) mask for `k = 1..=16`, fanned out across
    /// [`gd_exec`] workers (the full 2¹⁶ − 1 perturbed executions per
    /// case make this the hot loop of the `fig2_ext` driver).
    pub fn sweep(&self, direction: Direction, cfg: Config) -> Tally {
        let hw = self.target_halfword();
        let masks: Vec<u32> = (1..=16u32).flat_map(|k| ChooseBits::new(16, k)).collect();
        let partials = gd_exec::par_map_chunks(&masks, 256, |chunk| {
            let mut tally = Tally::default();
            for &mask in chunk.items {
                let perturbed = direction.apply(hw, mask as u16);
                tally.record(self.run(perturbed, cfg));
            }
            tally
        });
        let mut tally = Tally::default();
        for partial in &partials {
            tally.merge(partial);
        }
        tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unperturbed_cases_behave_normally() {
        for case in instruction_classes() {
            let outcome = case.run(case.target_halfword(), Config::default());
            assert_eq!(outcome, Outcome::NoEffect, "{}", case.name);
        }
    }

    #[test]
    fn nop_replacement_skips_every_case() {
        for case in instruction_classes() {
            let outcome = case.run(0xBF00, Config::default());
            assert_eq!(outcome, Outcome::Success, "{} should skip cleanly", case.name);
        }
    }

    #[test]
    fn memory_classes_fault_more_than_alu() {
        // The §V observation at the encoding level: corrupted memory ops
        // hit unmapped addresses; corrupted ALU ops rarely fault.
        let cases = instruction_classes();
        let tally_of = |name: &str| -> Tally {
            cases
                .iter()
                .find(|c| c.name == name)
                .expect("case exists")
                .sweep(Direction::And, Config::default())
        };
        let alu = tally_of("alu-add");
        let load = tally_of("load");
        let alu_faults = alu.count(Outcome::BadRead) + alu.count(Outcome::BadFetch);
        let load_faults = load.count(Outcome::BadRead) + load.count(Outcome::BadFetch);
        assert!(
            load_faults > alu_faults,
            "loads fault more when corrupted: {load_faults} vs {alu_faults}"
        );
    }
}
