//! The `gd-cfg` report: whole-image CFG recovery summaries and `GL03xx`
//! glitch-reachability findings, cross-validated against exhaustive
//! fault simulation — the *agreement harness*.
//!
//! Two artifacts:
//!
//! - `results/cfg_boot.txt` — the boot firmware at every Table IV
//!   defense configuration: graph shape, per-routine dominator/
//!   post-dominator summaries, the `GL03xx` findings, and (for the
//!   `None` and `All` endpoints) a per-routine confusion table between
//!   the static verdicts and simulated xor1.t/skip.t campaigns.
//! - `results/cfg_ingest.txt` — the same analysis over the committed
//!   third-party demo dump, with divergence-based dynamic truth.
//!
//! The confusion cells use `s`/`d` for the static and dynamic sides:
//! `s+` means the static analysis classified the fault instance
//! dangerous, `d+` means the simulator proved it *Successful* (the
//! compromise store fired). The soundness contract is one-directional —
//! the `s-d+` cell must be zero — and `gd-cfg --gate` turns that into a
//! CI exit code. The `s+d-` cell is the measured over-approximation the
//! module-level docs of `gd-cfg` promise to report rather than hide.
//!
//! Everything here is byte-deterministic at any `GD_THREADS`: parallel
//! fan-outs use fixed-size chunks whose results merge in input order.

use gd_backend::{compile, FirmwareImage};
use gd_cfg::lints::{bit_masks, compiled_sink, lint_cfg, FaultCtx, GuardChecks, Sink, SiteDesc};
use gd_cfg::refine::divergences;
use gd_cfg::{dom, recover, Cfg};
use gd_emu::{Config, InjectKind, Persistence};
use gd_faultsim::{
    sites, DivergenceRunner, FaultInstance, MultiFaultRunner, SiteInfo, SCOPE_FUNCS,
};
use gd_glitch_emu::Outcome;
use gd_ingest::testimg::{DEMO_BASE, DEMO_WATCH};
use gd_ingest::Ingested;
use gd_lint::Finding;
use glitch_resistor::Defenses;

use crate::overhead::{boot_module, configurations};

/// Sites per parallel chunk of an agreement sweep. Each chunk pays one
/// runner construction (a snapshot replay); the partition depends only
/// on the site list, never the worker count.
const AGREE_CHUNK: usize = 8;

/// The demo's impossible region `[bad, good)` — the compromise store and
/// its setup, per the layout documented on
/// [`gd_ingest::testimg::demo_bin`].
const DEMO_BAD: (u32, u32) = (DEMO_BASE + 0x1a, DEMO_BASE + 0x28);

/// One fully analyzed image: graph, sink, and guard metadata — the
/// owned state a [`FaultCtx`] borrows.
pub struct Analysis {
    /// The image under analysis.
    pub image: FirmwareImage,
    /// Its recovered graph.
    pub g: Cfg,
    /// The sensitive sink faults must not reach.
    pub sink: Sink,
    /// Guard metadata (compiled or pattern-matched).
    pub guards: GuardChecks,
    /// Emulator configuration recovery ran under.
    pub cfg: Config,
}

impl Analysis {
    /// The fault-classification context over this analysis.
    pub fn ctx(&self) -> FaultCtx<'_> {
        FaultCtx::new(&self.g, &self.image, &self.sink, &self.guards)
    }
}

/// Analyzes the boot firmware under one defense configuration: the sink
/// is `main`'s impossible block through its `report(0xC0DE)` call, and
/// guards come from the hardening pass's own metadata.
///
/// # Panics
///
/// Panics if the boot fixture fails to harden or lower.
pub fn analyze_boot(defenses: Defenses) -> Analysis {
    let module = boot_module(defenses);
    let image = compile(&module, "main").expect("boot firmware lowers");
    let cfg = Config::default();
    let g = recover(&image, cfg);
    let sink = compiled_sink(&g, &image, "main", "impossible", "report(0xC0DE)")
        .expect("boot sink block lowers");
    let guards = GuardChecks::from_module(&module, &image);
    Analysis { image, g, sink, guards, cfg }
}

/// Analyzes the ingested demo image: the sink is the impossible `bad`
/// region, and guards are pattern-matched (no compiler metadata).
pub fn analyze_ingest(ing: &Ingested) -> Analysis {
    let image = ing.image.clone();
    let cfg = Config { wide: true, ..Config::default() };
    let g = recover(&image, cfg);
    let sink = Sink { label: "the bad region".to_owned(), spans: vec![DEMO_BAD] };
    let guards = GuardChecks::pattern_rechecks(&g, &image);
    Analysis { image, g, sink, guards, cfg }
}

/// The committed demo dump, ingested.
///
/// # Panics
///
/// Panics if `testdata/ingest_demo.bin` is missing or malformed.
pub fn ingest_demo() -> Ingested {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../testdata/ingest_demo.bin");
    let blob = std::fs::read(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    gd_ingest::ingest_bin(&blob, DEMO_BASE).expect("demo blob ingests")
}

fn graph_summary(out: &mut String, a: &Analysis) {
    let g = &a.g;
    let edges: usize = g.succs.iter().map(Vec::len).sum();
    out.push_str(&format!(
        "graph: {} blocks, {} edges, {} return edges; {} round(s), \
         {} constprop iterations\n",
        g.blocks.len(),
        edges,
        g.return_edges.len(),
        g.rounds,
        g.fixpoint_iterations,
    ));
    out.push_str(&format!(
        "computed: {} resolved, {} unresolved\n",
        g.resolved.len(),
        g.unresolved.len(),
    ));
    let spans: Vec<String> =
        a.sink.spans.iter().map(|&(s, e)| format!("[{s:#010x},{e:#010x})")).collect();
    out.push_str(&format!("sink: {} {}\n", a.sink.label, spans.join(" ")));
    out.push_str(&format!(
        "guards: {} re-check(s), {} detect block(s)\n",
        a.guards.checks.len(),
        a.guards.detect_spans.len(),
    ));
    out.push_str("-- routines --\n");
    for r in dom::routines(g, &a.image) {
        let dom_h = r.dominators().map_or(0, |d| d.height());
        out.push_str(&format!(
            "{:<12} {:>3} blocks {:>3} edges {:>2} back  dom height {:>2}  \
             postdom height {:>2}\n",
            r.name,
            r.blocks.len(),
            r.edge_count(),
            r.back_edges(),
            dom_h,
            r.post_dominators().height(),
        ));
    }
}

fn findings_section(out: &mut String, findings: &[Finding]) {
    out.push_str("-- GL03xx --\n");
    for id in ["GL0301", "GL0302", "GL0303", "GL0304"] {
        let n = findings.iter().filter(|f| f.lint == id).count();
        out.push_str(&format!("{id} {n}\n"));
    }
    for f in findings {
        out.push_str(&f.render());
        out.push('\n');
    }
}

/// Analyzes and renders one boot configuration section, returning the
/// findings for gating.
pub fn cfg_boot(name: &str, defenses: Defenses) -> (Vec<Finding>, String) {
    let a = analyze_boot(defenses);
    let findings = lint_cfg(&a.ctx());
    let mut out = format!("== {name} ==\n");
    graph_summary(&mut out, &a);
    findings_section(&mut out, &findings);
    (findings, out)
}

/// One cell-per-instance confusion tally between the static verdicts
/// (`s`) and the simulated outcomes (`d`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Statically dangerous, dynamically Successful — true positives.
    pub hit: u64,
    /// Statically dangerous, dynamically harmless — the measured
    /// over-approximation.
    pub over: u64,
    /// Statically safe, dynamically Successful — a soundness violation;
    /// the gate requires zero.
    pub unsound: u64,
    /// Statically safe, dynamically harmless — true negatives.
    pub agree_safe: u64,
}

impl Confusion {
    fn record(&mut self, s_dangerous: bool, d_success: bool) {
        match (s_dangerous, d_success) {
            (true, true) => self.hit += 1,
            (true, false) => self.over += 1,
            (false, true) => self.unsound += 1,
            (false, false) => self.agree_safe += 1,
        }
    }

    /// Instances in this tally.
    pub fn total(&self) -> u64 {
        self.hit + self.over + self.unsound + self.agree_safe
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, o: &Confusion) {
        self.hit += o.hit;
        self.over += o.over;
        self.unsound += o.unsound;
        self.agree_safe += o.agree_safe;
    }
}

/// One agreement sweep: per-routine confusion rows (scope order) and
/// their merged total.
pub struct Agreement {
    /// Per-routine rows.
    pub rows: Vec<(String, Confusion)>,
    /// All rows merged.
    pub total: Confusion,
    /// The rendered table.
    pub rendered: String,
}

/// The fault instances the agreement sweep enumerates at one site: the
/// sixteen single-bit transient flips (xor1.t) plus the transient skip
/// (skip.t) — the models the `GL03xx` verdicts cover exactly.
fn instances(site: &SiteInfo) -> Vec<FaultInstance> {
    let mut out: Vec<FaultInstance> = bit_masks()
        .map(|m| FaultInstance {
            site: site.addr,
            kind: InjectKind::Corrupt { hw: site.hw ^ m },
            persistence: Persistence::Transient,
        })
        .collect();
    out.push(FaultInstance {
        site: site.addr,
        kind: InjectKind::Skip,
        persistence: Persistence::Transient,
    });
    out
}

fn static_dangerous(ctx: &FaultCtx<'_>, site: &SiteInfo, inst: &FaultInstance) -> bool {
    let sd = SiteDesc { addr: site.addr, hw: site.hw, hw2: site.hw2, size: site.size };
    match inst.kind {
        InjectKind::Corrupt { hw } => ctx.classify_flip(&sd, hw ^ site.hw).dangerous(),
        InjectKind::Skip => ctx.classify_skip(&sd).dangerous(),
        // The sweep never arms bus faults; treat any future extension
        // conservatively.
        _ => true,
    }
}

/// Classifies every instance at every site, both ways. `mk_runner`
/// builds one simulator per chunk; per-site tallies merge in site order.
fn classify_sites<R, F>(a: &Analysis, scope_sites: &[SiteInfo], mk_runner: F) -> Vec<Confusion>
where
    R: FnMut(FaultInstance) -> Outcome,
    F: Fn() -> R + Sync,
{
    let ctx = a.ctx();
    gd_exec::par_map_chunks(scope_sites, AGREE_CHUNK, |chunk| {
        let mut run = mk_runner();
        chunk
            .items
            .iter()
            .map(|site| {
                let mut c = Confusion::default();
                for inst in instances(site) {
                    let s = static_dangerous(&ctx, site, &inst);
                    let d = run(inst) == Outcome::Success;
                    c.record(s, d);
                }
                c
            })
            .collect::<Vec<_>>()
    })
    .concat()
}

/// Folds per-site tallies into per-routine rows, in `order`.
fn fold_rows(
    image: &FirmwareImage,
    order: &[&str],
    scope_sites: &[SiteInfo],
    per_site: &[Confusion],
) -> Agreement {
    let mut rows: Vec<(String, Confusion)> =
        order.iter().map(|n| ((*n).to_owned(), Confusion::default())).collect();
    for (site, c) in scope_sites.iter().zip(per_site) {
        let (name, _) = image.symbolize(site.addr).expect("scoped site has a routine");
        let row = rows.iter_mut().find(|(n, _)| n == name).expect("site routine is scoped");
        row.1.merge(c);
    }
    let mut total = Confusion::default();
    for (_, c) in &rows {
        total.merge(c);
    }
    Agreement { rows, total, rendered: String::new() }
}

fn render_agreement(name: &str, agreement: &mut Agreement) {
    let mut out = format!("== {name} ==\n");
    out.push_str(&format!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>7}\n",
        "routine", "s+d+", "s+d-", "s-d+", "s-d-", "total",
    ));
    let line = |out: &mut String, label: &str, c: &Confusion| {
        out.push_str(&format!(
            "{:<12} {:>6} {:>6} {:>6} {:>6} {:>7}\n",
            label,
            c.hit,
            c.over,
            c.unsound,
            c.agree_safe,
            c.total(),
        ));
    };
    for (n, c) in &agreement.rows {
        line(&mut out, n, c);
    }
    line(&mut out, "total", &agreement.total);
    out.push_str(&format!(
        "unsound (statically safe, dynamically Successful): {}\n",
        agreement.total.unsound,
    ));
    agreement.rendered = out;
}

/// The boot agreement sweep for one configuration: static verdicts over
/// the [`SCOPE_FUNCS`] instruction walk vs one [`MultiFaultRunner`]
/// trial per instance.
pub fn boot_agreement(name: &str, defenses: Defenses) -> Agreement {
    let a = analyze_boot(defenses);
    let scope_sites = sites(&a.image, a.cfg, &SCOPE_FUNCS);
    let ranges: Vec<(u32, u32)> = SCOPE_FUNCS
        .iter()
        .map(|n| {
            let e = a.image.extent(n).expect("scoped routine exists");
            (e.base, e.end)
        })
        .collect();
    let per_site = classify_sites(&a, &scope_sites, || {
        let mut runner = MultiFaultRunner::new(&a.image, a.cfg, &ranges);
        move |inst: FaultInstance| runner.run(&[inst])
    });
    let mut agreement = fold_rows(&a.image, &SCOPE_FUNCS, &scope_sites, &per_site);
    render_agreement(name, &mut agreement);
    agreement
}

/// The ingest agreement sweep: static verdicts over the demo's full
/// instruction walk vs [`DivergenceRunner`] trials watching the
/// compromise store.
pub fn ingest_agreement() -> Agreement {
    let ing = ingest_demo();
    let a = analyze_ingest(&ing);
    let funcs: Vec<&str> = a.image.extents.iter().map(|e| e.name.as_str()).collect();
    let scope_sites = sites(&a.image, a.cfg, &funcs);
    let ranges: Vec<(u32, u32)> = a.image.extents.iter().map(|e| (e.base, e.end)).collect();
    let per_site = classify_sites(&a, &scope_sites, || {
        let mut runner = DivergenceRunner::new(&a.image, a.cfg, &ranges, Some(DEMO_WATCH));
        move |inst: FaultInstance| runner.run(&[inst])
    });
    let mut agreement = fold_rows(&a.image, &funcs, &scope_sites, &per_site);
    render_agreement("ingest demo", &mut agreement);
    agreement
}

/// Start marker of the agreement region inside `results/cfg_boot.txt`
/// (`scripts/ci.sh` extracts the region and compares it against the
/// copy committed in `EXPERIMENTS.md`).
pub const AGREE_BEGIN: &str =
    "---- agreement: static GL03xx verdicts vs simulated xor1.t + skip.t ----";

/// End marker of the agreement region.
pub const AGREE_END: &str = "---- end agreement ----";

/// The full `results/cfg_boot.txt` artifact: one recovery/lint section
/// per Table IV configuration, then the agreement tables for the `None`
/// and `All` endpoints.
pub fn full_report() -> String {
    let configs = configurations();
    let mut out = String::new();
    out.push_str(&"-".repeat(60));
    out.push('\n');
    out.push_str("CFG recovery + GL03xx glitch reachability — firmware::boot\n");
    out.push_str(&"-".repeat(60));
    out.push('\n');
    let sections = gd_exec::par_map_chunks(&configs, 1, |chunk| {
        chunk.items.iter().map(|&(name, d)| cfg_boot(name, d).1).collect::<String>()
    });
    out.push_str(&sections.concat());
    out.push_str(AGREE_BEGIN);
    out.push('\n');
    out.push_str("legend: s+ statically dangerous / d+ simulator-proved Successful;\n");
    out.push_str("        soundness requires the s-d+ cell be zero on every row\n");
    for (name, defenses) in [("None", Defenses::NONE), ("All", Defenses::ALL)] {
        out.push_str(&boot_agreement(name, defenses).rendered);
    }
    out.push_str(AGREE_END);
    out.push('\n');
    out
}

/// The full `results/cfg_ingest.txt` artifact: recovery summary,
/// extent divergences, `GL03xx` findings, and the divergence-based
/// agreement table over the committed demo dump.
pub fn ingest_report() -> String {
    let ing = ingest_demo();
    let a = analyze_ingest(&ing);
    let mut out = String::new();
    out.push_str(&"-".repeat(60));
    out.push('\n');
    out.push_str("CFG recovery + GL03xx glitch reachability — testdata/ingest_demo.bin\n");
    out.push_str(&"-".repeat(60));
    out.push('\n');
    out.push_str("== ingest demo ==\n");
    graph_summary(&mut out, &a);
    let divs = divergences(&a.g, &a.image);
    if divs.is_empty() {
        out.push_str(
            "divergences: none (every walked instruction is inside an inferred code span)\n",
        );
    } else {
        for d in &divs {
            out.push_str(&format!(
                "divergence: {} code_end {:#010x} -> {:#010x} (+{} instrs)\n",
                d.name, d.code_end, d.refined, d.extra_instrs,
            ));
        }
    }
    let findings = lint_cfg(&a.ctx());
    findings_section(&mut out, &findings);
    out.push_str(AGREE_BEGIN);
    out.push('\n');
    out.push_str(&ingest_agreement().rendered);
    out.push_str(AGREE_END);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_agreement_is_sound_at_both_endpoints() {
        for (name, d) in [("None", Defenses::NONE), ("All", Defenses::ALL)] {
            let a = boot_agreement(name, d);
            assert_eq!(a.total.unsound, 0, "unsound instances on {name}:\n{}", a.rendered);
            assert!(a.total.hit > 0 || name == "All", "{name} finds true positives");
        }
    }

    #[test]
    fn ingest_agreement_is_sound() {
        let a = ingest_agreement();
        assert_eq!(a.total.unsound, 0, "unsound instances on the demo:\n{}", a.rendered);
        assert!(a.total.total() > 0);
    }

    #[test]
    fn boot_sections_are_deterministic() {
        let (_, a) = cfg_boot("Loops", Defenses::LOOPS);
        let (_, b) = cfg_boot("Loops", Defenses::LOOPS);
        assert_eq!(a, b);
    }

    #[test]
    fn fully_hardened_boot_has_no_structural_guard_findings() {
        let (findings, _) = cfg_boot("All", Defenses::ALL);
        // Every emitted guard dominates what it protects: GL0302 (the
        // `--deny GL0302` CI gate) must be clean on the All config.
        let broken: Vec<_> = findings.iter().filter(|f| f.lint == "GL0302").collect();
        assert!(broken.is_empty(), "non-dominating guards on All: {broken:?}");
        // GL0303 may fire — but only for guards in HAL filler routines
        // that really are dead code in the boot image, never on the
        // live main/crc_mix/check_tick spine.
        let live = ["main", "crc_mix", "check_tick", "report", "hal_init"];
        let dead_guard_misfires: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == "GL0303" && live.contains(&f.function.as_str()))
            .collect();
        assert!(dead_guard_misfires.is_empty(), "GL0303 on live routines: {dead_guard_misfires:?}");
    }
}
