//! The clock-glitch fault physics, calibrated against the paper's measured
//! behavior (§V).
//!
//! A clock glitch is parameterized exactly like the ChipWhisperer's: the
//! *ext offset* (which clock cycle after the trigger), the glitch *width*
//! and *offset* within the cycle, both scanned over ±49% (§V-A: "9,801
//! glitching attempts per clock cycle"). Whether an inserted edge actually
//! violates timing depends on where it lands relative to the target's
//! setup/hold windows — physically, a narrow *violation region* in
//! (width, offset) space. Inside the region, the dominant observable
//! effects on this class of core are (paper §IV/§V, [48], [4]):
//!
//! - corrupted instruction encodings, biased strongly toward 1→0 flips;
//! - data-bus corruption on loads (stale "residue" values — the paper's
//!   post-mortems show 0x08, 0x55, 0x68, 0xFF and address fragments);
//! - outright instruction skips;
//! - brown-outs that reset the chip.
//!
//! Everything is a deterministic function of `(seed, width, offset, cycle,
//! boot)`, so scans are reproducible landscapes, like real silicon.

use gd_emu::LoadOverride;
use gd_pipeline::{StageFault, Window};

use crate::rng::{hash_words, Rng};

/// One glitch configuration (the knobs of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlitchParams {
    /// Clock cycles after the trigger where the glitch starts.
    pub ext_offset: u32,
    /// Number of consecutive cycles glitched (1 = single glitch; the long
    /// glitch of §V-D uses 10–20; §VII uses up to 100).
    pub repeat: u32,
    /// Glitch width, −49..=49 (% of a clock period).
    pub width: i8,
    /// Glitch offset into the cycle, −49..=49 (%).
    pub offset: i8,
}

impl GlitchParams {
    /// A single-cycle glitch.
    pub fn single(ext_offset: u32, width: i8, offset: i8) -> GlitchParams {
        GlitchParams { ext_offset, repeat: 1, width, offset }
    }

    /// The glitched relative-cycle range.
    pub fn cycles(&self) -> core::ops::Range<u64> {
        u64::from(self.ext_offset)..u64::from(self.ext_offset) + u64::from(self.repeat)
    }
}

/// Tunable fault-model constants. The defaults reproduce the paper's
/// observed magnitudes (single-glitch success in the 0.3–0.8% band on
/// unprotected loop guards).
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Landscape seed (a different chip/bench setup).
    pub seed: u64,
    /// Peak probability that an in-region glitch produces any fault.
    pub peak_fault_rate: f64,
    /// Minimum per-bit 1→0 clear probability for encoding corruption.
    pub bit_clear_min: f64,
    /// Maximum additional per-bit clear probability at full severity.
    pub bit_clear_span: f64,
}

impl Default for FaultModel {
    fn default() -> FaultModel {
        FaultModel {
            seed: 0x00DF_AA17,
            peak_fault_rate: 0.45,
            bit_clear_min: 0.08,
            bit_clear_span: 0.35,
        }
    }
}

/// Bus residue values observed in the paper's Table I post-mortems: stale
/// prefetch bytes and bus noise.
pub const RESIDUE_POOL: [u32; 6] = [0x08, 0x55, 0x68, 0x21, 0xFF, 0x00];

impl FaultModel {
    /// The violation-region severity at `(width, offset)` ∈ [0, 1]:
    /// zero almost everywhere, with two narrow lobes where the inserted
    /// edge lands near a timing boundary.
    pub fn severity(&self, width: i8, offset: i8) -> f64 {
        let w = f64::from(width);
        let o = f64::from(offset);
        // Lobe 1: short positive widths with early offsets.
        let l1 = gauss(w, 12.0, 4.0) * gauss(o, -18.0, 9.0);
        // Lobe 2: wide negative widths with late offsets.
        let l2 = gauss(w, -34.0, 5.0) * gauss(o, 22.0, 11.0);
        let s = l1 + 0.8 * l2;
        if s < 0.05 {
            0.0
        } else {
            s.min(1.0)
        }
    }

    /// The faults induced at relative glitch cycle `g` for the pipeline
    /// window `w` (which covers `g`). `boot` distinguishes repeated
    /// attempts with identical parameters (mask noise), mirroring the
    /// shot-to-shot variation of real glitching.
    pub fn faults_at(
        &self,
        params: &GlitchParams,
        g: u64,
        w: &Window,
        boot: u64,
    ) -> Vec<StageFault> {
        let severity = self.severity(params.width, params.offset);
        if severity == 0.0 {
            return Vec::new();
        }
        // Fault occurrence is parameter-deterministic: the same (w, o, g)
        // point behaves consistently across attempts (a real "sweet spot").
        let occur =
            hash_words(&[self.seed, params.width as u64 & 0xFF, params.offset as u64 & 0xFF, g]);
        let occur_roll = (occur >> 8) as f64 / (1u64 << 56) as f64;
        if occur_roll >= severity * self.peak_fault_rate {
            return Vec::new();
        }
        // The fault *type* depends on the spot and on which instruction
        // (address) is in flight — two glitches with identical parameters
        // hitting different code decorrelate, which is what makes
        // multi-glitches so much harder than single glitches (§V-C).
        let kind_roll = hash_words(&[occur, w.addr.into()]) % 1000;
        let mut rng = Rng::new(hash_words(&[occur, boot, w.addr.into()]));
        let clear_p = self.bit_clear_min + self.bit_clear_span * severity;
        let is_load = w.instr.is_load();
        // Sustained (long) glitching starves the memory interface: loads
        // systematically fail to zero rather than returning residue — the
        // effect the paper credits for while(a)'s 10x long-glitch jump and
        // while(!a)'s collapse (SV-D).
        let long_burst = params.repeat >= 5;
        if long_burst {
            // Loads fail to zero; everything else compounds destructively —
            // heavier bit loss, more skips, and frequent brown-outs. This is
            // why the paper finds long glitches *help* against while(a) but
            // *hurt* against while(!a) and wide comparisons.
            if is_load && kind_roll < 500 {
                let ov = if rng.next_f64() < 0.75 {
                    LoadOverride::Replace(0)
                } else {
                    LoadOverride::And(rng.and_mask32(0.6))
                };
                return vec![StageFault::CorruptLoad(ov)];
            }
            // A sustained glitch never corrupts one stage in isolation: the
            // instruction in flight *and* the one being fetched are mangled
            // together, so a lucky branch skip rarely has a clean aftermath.
            let heavy = (clear_p * 2.5).min(0.9);
            return match kind_roll {
                0..=399 => vec![
                    StageFault::CorruptExec { and_mask: rng.and_mask16(heavy) },
                    StageFault::CorruptFetch { and_mask: rng.and_mask16(heavy) },
                ],
                400..=549 => vec![StageFault::CorruptFetch { and_mask: rng.and_mask16(heavy) }],
                550..=649 => vec![
                    StageFault::Skip,
                    StageFault::CorruptFetch { and_mask: rng.and_mask16(heavy) },
                ],
                _ => vec![StageFault::Reset],
            };
        }
        match kind_roll {
            // 55%: the halfword in decode/execute loses bits.
            0..=549 => vec![StageFault::CorruptExec { and_mask: rng.and_mask16(clear_p) }],
            // 15%: the halfword being fetched (lands FETCH_DEPTH later).
            550..=699 => vec![StageFault::CorruptFetch { and_mask: rng.and_mask16(clear_p) }],
            // 15%: data-bus corruption — only meaningful on loads; glitches
            // hitting a non-load data phase corrupt the encoding instead.
            700..=849 => {
                if is_load {
                    let ov = if rng.next_f64() < 0.5 {
                        LoadOverride::Replace(*rng.pick(&RESIDUE_POOL))
                    } else {
                        LoadOverride::And(rng.and_mask32(clear_p))
                    };
                    vec![StageFault::CorruptLoad(ov)]
                } else {
                    vec![StageFault::CorruptExec { and_mask: rng.and_mask16(clear_p) }]
                }
            }
            // 10%: hard skip (the classic "instruction skip" fault).
            850..=949 => vec![StageFault::Skip],
            // 5%: brown-out.
            _ => vec![StageFault::Reset],
        }
    }

    /// The injector closure for one attempt: applies `params` relative to
    /// the **most recent** trigger (a re-armed glitcher, as in §V-C's
    /// multi-glitch rig).
    pub fn injector(
        &self,
        params: GlitchParams,
        boot: u64,
    ) -> impl FnMut(&Window) -> Vec<StageFault> + '_ {
        self.injector_with_mode(params, boot, TriggerMode::Latest)
    }

    /// Like [`FaultModel::injector`] with an explicit trigger reference.
    pub fn injector_with_mode(
        &self,
        params: GlitchParams,
        boot: u64,
        mode: TriggerMode,
    ) -> impl FnMut(&Window) -> Vec<StageFault> + '_ {
        move |w: &Window| {
            let since = match mode {
                TriggerMode::Latest => w.since_trigger,
                TriggerMode::First => w.since_first_trigger,
            };
            let Some(since) = since else { return Vec::new() };
            let w_range = since..since + u64::from(w.cycles.max(1));
            let mut faults = Vec::new();
            for g in params.cycles() {
                if w_range.contains(&g) {
                    faults.extend(self.faults_at(&params, g, w, boot));
                }
            }
            faults
        }
    }
}

/// Which trigger event glitch cycles are measured from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerMode {
    /// The most recent trigger (a re-armed glitcher; §V-C multi-glitch).
    Latest,
    /// The first trigger (one contiguous burst; §V-D long glitch).
    First,
}

fn gauss(x: f64, mu: f64, sigma: f64) -> f64 {
    let d = (x - mu) / sigma;
    (-0.5 * d * d).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_sparse_and_bounded() {
        let m = FaultModel::default();
        let mut nonzero = 0u32;
        for w in -49i8..=49 {
            for o in -49i8..=49 {
                let s = m.severity(w, o);
                assert!((0.0..=1.0).contains(&s));
                if s > 0.0 {
                    nonzero += 1;
                }
            }
        }
        let frac = f64::from(nonzero) / 9801.0;
        assert!(
            (0.01..0.20).contains(&frac),
            "violation region covers a few percent of the grid, got {frac:.3}"
        );
    }

    #[test]
    fn severity_peaks_inside_the_lobes() {
        let m = FaultModel::default();
        assert!(m.severity(12, -18) > 0.9);
        assert!(m.severity(-34, 22) > 0.7);
        assert_eq!(m.severity(0, 0), 0.0);
        assert_eq!(m.severity(49, 49), 0.0);
    }

    #[test]
    fn fault_occurrence_is_parameter_deterministic() {
        let m = FaultModel::default();
        let w = dummy_window();
        for boot in 0..4 {
            let a = m.faults_at(&GlitchParams::single(3, 12, -18), 3, &w, boot);
            let b = m.faults_at(&GlitchParams::single(3, 12, -18), 3, &w, boot);
            assert_eq!(a, b, "same spot, same boot → same faults");
        }
        // Whether a fault happens at all must not depend on the boot nonce.
        let occurs: Vec<bool> = (0..8)
            .map(|boot| !m.faults_at(&GlitchParams::single(3, 12, -18), 3, &w, boot).is_empty())
            .collect();
        assert!(occurs.windows(2).all(|p| p[0] == p[1]), "{occurs:?}");
    }

    #[test]
    fn out_of_region_points_never_fault() {
        let m = FaultModel::default();
        let w = dummy_window();
        for g in 0..50 {
            assert!(m.faults_at(&GlitchParams::single(g as u32, 0, 0), g, &w, 0).is_empty());
        }
    }

    #[test]
    fn in_region_grid_fault_rate_is_plausible() {
        let m = FaultModel::default();
        let w = dummy_window();
        let mut faults = 0u32;
        for width in -49i8..=49 {
            for offset in -49i8..=49 {
                let p = GlitchParams::single(2, width, offset);
                if !m.faults_at(&p, 2, &w, 0).is_empty() {
                    faults += 1;
                }
            }
        }
        let rate = f64::from(faults) / 9801.0;
        assert!((0.005..0.10).contains(&rate), "a few percent of the grid faults, got {rate:.4}");
    }

    #[test]
    fn injector_applies_only_inside_the_window() {
        let m = FaultModel::default();
        let params = GlitchParams::single(5, 12, -18);
        let mut inj = m.injector(params, 0);
        // Window before the trigger: nothing.
        let mut w = dummy_window();
        w.since_trigger = None;
        assert!(inj(&w).is_empty());
        // Window covering relative cycles 0..2 — glitch at 5 missed.
        w.since_trigger = Some(0);
        w.cycles = 2;
        assert!(inj(&w).is_empty());
        // Window covering 4..7 — glitch at 5 hits.
        w.since_trigger = Some(4);
        w.cycles = 3;
        assert!(!inj(&w).is_empty(), "spot (12,-18) is in-region and should fault");
    }

    fn dummy_window() -> Window {
        Window {
            start: 100,
            cycles: 1,
            addr: 0x0800_0000,
            instr: gd_thumb::Instr::NOP,
            raw: 0xBF00,
            since_trigger: Some(0),
            since_first_trigger: Some(0),
        }
    }
}
