//! Regenerates Table III: long glitches (0..10 through 0..20 cycles)
//! against the doubled loop guards.

use gd_chipwhisperer::FaultModel;

fn main() {
    let model = FaultModel::default();
    let rows = gd_bench::glitch_tables::table3(&model);
    gd_bench::glitch_tables::print_table3(&rows);
}
