#!/usr/bin/env sh
# Tier-1 gate: formatting, a release build, and the full workspace test
# suite, all offline. The workspace has zero external dependencies, so
# this runs on a machine with no network and no registry cache.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --offline (workspace)"
cargo test --offline -q

echo "==> OK"
