//! # glitching-demystified — reproduction of *Glitching Demystified* (DSN 2021)
//!
//! A from-scratch Rust implementation of the paper's three systems:
//!
//! 1. **Glitch emulation framework** ([`glitch_emu`], paper §IV): exhaustive
//!    bit-flip sweeps over the ARM Thumb instruction encoding, quantifying
//!    how likely random unidirectional flips are to "skip" a control-flow
//!    instruction (Figure 2). Built on a complete Thumb-1 codec and
//!    assembler ([`thumb`]) and an architectural emulator ([`emu`]) with the
//!    paper's fault taxonomy.
//!
//! 2. **Real-world glitching testbed** ([`chipwhisperer`], §V): a
//!    ChipWhisperer-style clock glitcher simulated over a cycle-accounted
//!    3-stage pipeline ([`pipeline`]), with the paper's three loop-guard
//!    targets, 99×99 parameter scans, multi-/long-glitch drivers, and the
//!    §V-B automatic parameter-tuning search (Tables I–III).
//!
//! 3. **GlitchResistor** ([`resist`], §VI–VII): the automated software-only
//!    defense tool, implemented as compiler passes over a small typed SSA
//!    IR ([`ir`]) with a Thumb-1 backend ([`backend`]) — branch/loop
//!    duplication with complemented re-checks, complement shadow variables,
//!    LCG random delays, and Reed–Solomon ([`rs_ecc`]) constant
//!    diversification — evaluated for overhead and attack resistance
//!    (Tables IV–VI).
//!
//! ```
//! use glitching_demystified::prelude::*;
//!
//! // Harden a guard, compile it, and boot it on the simulated board.
//! let mut module = parse_module(
//!     "fn @main() -> i32 {\nentry:\n  %c = icmp eq i32 7, 7\n  br %c, a, b\n\
//!      a:\n  ret i32 1\nb:\n  ret i32 0\n}\n",
//! )?;
//! harden(&mut module, &Config::new(Defenses::ALL));
//! let image = compile(&module, "main")?;
//! let mut emu = image.boot_emu();
//! emu.run(1_000_000);
//! assert_eq!(emu.cpu.reg(Reg::R0), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `gd-bench` crate regenerates every table and figure of the paper;
//! see `EXPERIMENTS.md` at the repository root for paper-vs-measured
//! results. The `gd-campaign` crate (re-exported as [`campaign`]) runs
//! the same workloads as sharded, checkpointed campaigns with a
//! content-addressed result cache, behind an HTTP service.

#![warn(missing_docs)]
#![warn(clippy::all)]

/// The ARMv6-M Thumb-1 ISA: instruction model, codec, assembler.
pub use gd_thumb as thumb;

/// Architectural emulator with the paper's fault taxonomy.
pub use gd_emu as emu;

/// The §IV glitch emulation framework (Figure 2).
pub use gd_glitch_emu as glitch_emu;

/// Cycle-accounted 3-stage pipeline with fault-injection windows.
pub use gd_pipeline as pipeline;

/// The simulated ChipWhisperer clock-glitching rig (§V).
pub use gd_chipwhisperer as chipwhisperer;

/// GF(2⁸) Reed–Solomon codes for constant diversification.
pub use gd_rs_ecc as rs_ecc;

/// The compiler IR GlitchResistor's passes run on.
pub use gd_ir as ir;

/// GlitchResistor: the automated defense tool (§VI).
pub use glitch_resistor as resist;

/// Thumb-1 code generation and firmware-image layout.
pub use gd_backend as backend;

/// The evaluation firmware (§VII targets).
pub use gd_firmware as firmware;

/// The C-subset frontend (the Clang substitute).
pub use gd_cc as cc;

/// The sharded campaign engine, result store, and HTTP service.
pub use gd_campaign as campaign;

/// The most common imports in one place.
pub mod prelude {
    pub use gd_backend::compile;
    pub use gd_cc::compile_c;
    pub use gd_chipwhisperer::{
        run_attack, AttackOutcome, AttackSpec, Device, FaultModel, GlitchParams, SuccessCheck,
    };
    pub use gd_ir::{parse_module, print_module, verify_module};
    pub use gd_thumb::{Cond, Instr, Reg};
    pub use glitch_resistor::{harden, Config, Defenses, Report};
}
