//! Differential tests pinning the sweep fast path ([`PerturbRunner`]:
//! predecoded dispatch + snapshot replay) to the interpreter reference
//! ([`run_perturbed`]: fresh emulator + live decode per trial), across
//! every Figure 2 test case, direction, and panel configuration.

use gd_emu::Config;
use gd_glitch_emu::masks::ChooseBits;
use gd_glitch_emu::{all_branch_cases, run_perturbed, Direction, PerturbRunner};

/// The (direction, config) pairs of the four Figure 2 panels.
fn panels() -> [(Direction, Config); 4] {
    [
        (Direction::And, Config::default()),
        (Direction::Or, Config::default()),
        (Direction::And, Config { zero_is_invalid: true, ..Config::default() }),
        (Direction::Xor, Config::default()),
    ]
}

/// Every case × panel, on a spread of masks: the fast path classifies
/// each trial exactly as the interpreter does. Full 2^16 coverage per
/// combination would take minutes in debug builds; k ∈ {1, 8, 16} plus a
/// stride through C(16, 8) covers single flips, the densest mask band,
/// and the all-bits edge for all 56 combinations.
#[test]
fn fast_path_matches_interpreter_across_figure2() {
    for case in all_branch_cases() {
        let hw = case.target_halfword();
        for (direction, cfg) in panels() {
            let mut runner = PerturbRunner::new(&case, cfg);
            let mut check = |mask: u16| {
                let perturbed = direction.apply(hw, mask);
                assert_eq!(
                    runner.run(perturbed),
                    run_perturbed(&case, perturbed, cfg),
                    "{} {direction:?} {cfg:?} mask={mask:#06x}",
                    case.name,
                );
            };
            for mask in ChooseBits::new(16, 1) {
                check(mask as u16);
            }
            for mask in ChooseBits::new(16, 8).step_by(97) {
                check(mask as u16);
            }
            check(0xFFFF);
            check(0x0000);
        }
    }
}

/// Back-to-back trials through one runner are independent: replaying a
/// mask after an unrelated trial (which may have dirtied SRAM or halted
/// mid-program) reproduces the first classification.
#[test]
fn runner_trials_are_independent() {
    let case = &all_branch_cases()[0];
    let cfg = Config::default();
    let hw = case.target_halfword();
    let mut runner = PerturbRunner::new(case, cfg);
    let masks: Vec<u16> = ChooseBits::new(16, 3).step_by(41).map(|m| m as u16).collect();
    let first: Vec<_> = masks.iter().map(|&m| runner.run(direction_and(hw, m))).collect();
    let replay: Vec<_> = masks.iter().map(|&m| runner.run(direction_and(hw, m))).collect();
    assert_eq!(first, replay);
}

fn direction_and(hw: u16, mask: u16) -> u16 {
    Direction::And.apply(hw, mask)
}
