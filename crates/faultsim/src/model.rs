//! Typed fault spaces: concrete fault instances, the model trait, and
//! the fixed registry of models a campaign enumerates.

use gd_emu::{InjectKind, Injection, LoadOverride, Persistence};
use gd_glitch_emu::masks::ChooseBits;
use gd_thumb::Instr;

/// One concrete candidate fault: an [`InjectKind`] armed at one fetch
/// site with a persistence. The unit the pruning layer canonicalizes and
/// the runner simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultInstance {
    /// Fetch address the fault is tied to.
    pub site: u32,
    /// The fetch-stage effect.
    pub kind: InjectKind,
    /// One fetch or every fetch.
    pub persistence: Persistence,
}

impl FaultInstance {
    /// The armed emulator injection for this instance.
    pub fn injection(&self) -> Injection {
        Injection::new(self.site, self.kind, self.persistence)
    }
}

/// One instruction-start site of the straight-line walk over a routine:
/// the enumeration domain of every fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteInfo {
    /// Address of the instruction's first halfword.
    pub addr: u32,
    /// That first halfword, as laid out in the image.
    pub hw: u16,
    /// The following halfword in the image, when one exists — what a
    /// 32-bit encoding fetched at `addr` would consume.
    pub hw2: Option<u16>,
    /// The decoded instruction at the site.
    pub instr: Instr,
    /// Encoding size in bytes (2 or 4).
    pub size: u32,
}

/// A typed fault space: everything the campaign knows about one way of
/// glitching a fetch.
pub trait FaultModel: Send + Sync {
    /// Stable short name (appears in results, metrics, and specs),
    /// e.g. `"xor1.t"`.
    fn name(&self) -> &'static str;

    /// Number of candidate faults this model defines at *any* halfword
    /// address — the raw combinatorial space per site, before any
    /// reachability or decode pruning.
    fn candidates_per_site(&self) -> u64;

    /// The concrete candidates at one instruction-start site.
    fn candidates_at(&self, site: &SiteInfo) -> Vec<FaultInstance>;
}

/// Bidirectional k-bit halfword flips: every XOR mask with exactly
/// `bits` bits set, applied to the fetched first halfword.
#[derive(Debug, Clone, Copy)]
pub struct FlipModel {
    name: &'static str,
    bits: u32,
    persistence: Persistence,
}

impl FaultModel for FlipModel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn candidates_per_site(&self) -> u64 {
        ChooseBits::new(16, self.bits).count() as u64
    }

    fn candidates_at(&self, site: &SiteInfo) -> Vec<FaultInstance> {
        ChooseBits::new(16, self.bits)
            .map(|mask| FaultInstance {
                site: site.addr,
                kind: InjectKind::Corrupt { hw: site.hw ^ mask as u16 },
                persistence: self.persistence,
            })
            .collect()
    }
}

/// Instruction skip: the fetch happens but the instruction does not
/// execute (Moro et al.'s canonical EM effect).
#[derive(Debug, Clone, Copy)]
pub struct SkipModel {
    name: &'static str,
    persistence: Persistence,
}

impl FaultModel for SkipModel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn candidates_per_site(&self) -> u64 {
        1
    }

    fn candidates_at(&self, site: &SiteInfo) -> Vec<FaultInstance> {
        vec![FaultInstance {
            site: site.addr,
            kind: InjectKind::Skip,
            persistence: self.persistence,
        }]
    }
}

/// Data-bus corruption synchronized to one fetch: the instruction's
/// first load goes through a [`LoadOverride`].
#[derive(Debug, Clone, Copy)]
pub struct BusModel {
    name: &'static str,
    over: LoadOverride,
    persistence: Persistence,
}

impl FaultModel for BusModel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn candidates_per_site(&self) -> u64 {
        1
    }

    fn candidates_at(&self, site: &SiteInfo) -> Vec<FaultInstance> {
        vec![FaultInstance {
            site: site.addr,
            kind: InjectKind::LoadBus(self.over),
            persistence: self.persistence,
        }]
    }
}

/// The fixed, ordered set of fault models a campaign enumerates. Order
/// is part of every golden artifact and cache key — append, never
/// reorder.
pub struct Registry {
    models: Vec<Box<dyn FaultModel>>,
}

impl Registry {
    /// The standard registry: single- and double-bit bidirectional
    /// flips, instruction skip, and an all-ones data-bus residue, each
    /// in the persistences the paper's taxonomy distinguishes
    /// (`.t` = transient/one fetch, `.p` = permanent/every fetch).
    pub fn standard() -> Registry {
        Registry {
            models: vec![
                Box::new(FlipModel {
                    name: "xor1.t",
                    bits: 1,
                    persistence: Persistence::Transient,
                }),
                Box::new(FlipModel {
                    name: "xor1.p",
                    bits: 1,
                    persistence: Persistence::Permanent,
                }),
                Box::new(FlipModel {
                    name: "xor2.t",
                    bits: 2,
                    persistence: Persistence::Transient,
                }),
                Box::new(SkipModel { name: "skip.t", persistence: Persistence::Transient }),
                Box::new(SkipModel { name: "skip.p", persistence: Persistence::Permanent }),
                Box::new(BusModel {
                    name: "bus.hi.t",
                    over: LoadOverride::Replace(u32::MAX),
                    persistence: Persistence::Transient,
                }),
            ],
        }
    }

    /// The models in registry order.
    pub fn models(&self) -> &[Box<dyn FaultModel>] {
        &self.models
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty (the standard one never is).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The model names in registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.models.iter().map(|m| m.name()).collect()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("models", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> SiteInfo {
        SiteInfo {
            addr: 0x100,
            hw: 0x2001,
            hw2: Some(0x2002),
            instr: Instr::MovImm { rd: gd_thumb::Reg::R0, imm8: 1 },
            size: 2,
        }
    }

    #[test]
    fn standard_registry_order_is_stable() {
        let reg = Registry::standard();
        assert_eq!(reg.names(), ["xor1.t", "xor1.p", "xor2.t", "skip.t", "skip.p", "bus.hi.t"]);
    }

    #[test]
    fn flip_model_enumerates_choose_k_masks() {
        let reg = Registry::standard();
        let s = site();
        let one = reg.models()[0].candidates_at(&s);
        assert_eq!(one.len(), 16);
        assert_eq!(reg.models()[0].candidates_per_site(), 16);
        let two = reg.models()[2].candidates_at(&s);
        assert_eq!(two.len(), 120, "C(16, 2)");
        // Every flip is bidirectional and never the identity.
        for c in &one {
            match c.kind {
                InjectKind::Corrupt { hw } => {
                    assert_ne!(hw, s.hw);
                    assert_eq!((hw ^ s.hw).count_ones(), 1);
                }
                other => panic!("unexpected kind {other:?}"),
            }
        }
    }

    #[test]
    fn skip_and_bus_emit_one_candidate_per_site() {
        let reg = Registry::standard();
        let s = site();
        for idx in [3usize, 4, 5] {
            let c = reg.models()[idx].candidates_at(&s);
            assert_eq!(c.len(), 1, "{}", reg.models()[idx].name());
            assert_eq!(c[0].site, s.addr);
        }
    }
}
