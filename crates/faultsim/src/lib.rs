//! # gd-faultsim — exhaustive multi-fault campaigns with redundancy pruning
//!
//! The Figure 2 sweeps (`gd-glitch-emu`) explore unidirectional
//! single-bit flips at a single point in time. This crate scales the
//! same emulation machinery to the richer spaces ARMORY shows become
//! tractable once redundant faults are pruned before simulation:
//!
//! - a [`FaultModel`](model::FaultModel) trait and fixed
//!   [`Registry`](model::Registry) enumerating typed fault spaces over a
//!   compiled [`FirmwareImage`](gd_backend::FirmwareImage) —
//!   bidirectional (XOR) single- and multi-bit halfword flips,
//!   instruction skip, and data-bus (load-value) corruption, each
//!   transient (one fetch) or permanent (every fetch);
//! - an architectural-effect pruning layer ([`prune`]) canonicalizing
//!   every candidate through the shared
//!   [`classify`](gd_emu::classify) decode path: faults that decode to
//!   the same instruction at the same site collapse into one class,
//!   undefined patterns at a site merge (the outcome taxonomy ignores
//!   their payload), faults that decode identically to the original
//!   instruction — and bus faults on instructions that perform no load —
//!   are statically *No Effect*, and sites outside the straight-line
//!   instruction walk (literal pools, padding, mid-instruction
//!   halfwords) are dropped using the image's
//!   [`FuncExtent`](gd_backend::FuncExtent)s;
//! - first- and second-order exhaustive campaign executors over
//!   `firmware::boot` ([`boot`]), designed to run as shards of the
//!   `gd-campaign` engine: per-class outcomes are weighted by class
//!   size, so the reported tallies equal what the unpruned space would
//!   produce, while only one trial per class is simulated.
//!
//! Fault effects are *fetch-stage* injections ([`gd_emu::Injection`]):
//! the image bytes are never modified and a 32-bit encoding's second
//! halfword is always read from memory. That models corruption on the
//! instruction bus (Moro et al.'s EM fault model) and is what makes
//! per-site canonicalization sound — a fault's architectural effect
//! never depends on which other faults are armed elsewhere.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod boot;
pub mod metrics;
pub mod model;
pub mod prune;
pub mod runner;

pub use boot::{boot_campaign, order1_shard, order2_shard, MfStats, O2_BUCKETS, SCOPE_FUNCS};
pub use metrics::register_metrics;
pub use model::{FaultInstance, FaultModel, Registry, SiteInfo};
pub use prune::{halfword_slots, prune_model, sites, FaultClass, ModelClasses};
pub use runner::{DivergenceRunner, MultiFaultRunner, MF_TRIAL_STEPS};
