//! The representative multi-fault campaign over `firmware::boot`:
//! shared enumeration/pruning state and the first/second-order shard
//! executors the campaign engine dispatches.

use std::sync::OnceLock;

use gd_backend::FirmwareImage;
use gd_emu::Config;
use gd_glitch_emu::{Outcome, Tally};

use crate::metrics;
use crate::model::{FaultInstance, Registry, SiteInfo};
use crate::prune::{halfword_slots, prune_model, sites, FaultClass, ModelClasses};
use crate::runner::MultiFaultRunner;

/// The scoped routines: everything `main` runs after `hal_init`, so the
/// per-trial snapshot replays the whole HAL bring-up exactly once.
pub const SCOPE_FUNCS: [&str; 3] = ["crc_mix", "check_tick", "report"];

/// Registry indices whose pruned representatives form the second-order
/// pair space (single-bit transient flips × transient skips).
pub const O2_MODELS: [usize; 2] = [0, 3];

/// Fixed bucket count for second-order shards: pair `i` belongs to
/// bucket `i % O2_BUCKETS`, so the shard plan needs no enumeration and
/// the bucket partition is independent of worker count.
pub const O2_BUCKETS: u32 = 8;

/// Pruning and simulation counters for one shard or campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MfStats {
    /// Raw candidates (or candidate pairs) in the unpruned space.
    pub enumerated: u64,
    /// Candidates removed before simulation.
    pub pruned: u64,
    /// Trials actually simulated.
    pub simulated: u64,
}

impl MfStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &MfStats) {
        self.enumerated += other.enumerated;
        self.pruned += other.pruned;
        self.simulated += other.simulated;
    }

    /// Pruned fraction of the enumerated space, in milli-units
    /// (0..=1000) — integral so goldens and trajectories stay exact.
    pub fn pruned_ratio_milli(&self) -> u64 {
        if self.enumerated == 0 {
            0
        } else {
            self.pruned * 1000 / self.enumerated
        }
    }
}

/// The shared, immutable campaign state: compiled image, instruction
/// walk, and pruned classes per registry model. Built once per process.
#[derive(Debug)]
pub struct BootCampaign {
    /// The compiled (unhardened) boot image.
    pub image: FirmwareImage,
    /// Emulator configuration the campaign runs under.
    pub cfg: Config,
    /// Instruction-start sites of [`SCOPE_FUNCS`].
    pub sites: Vec<SiteInfo>,
    /// Pruned classes, aligned with [`Registry::standard`] order.
    pub per_model: Vec<ModelClasses>,
}

impl BootCampaign {
    fn build() -> BootCampaign {
        let image = gd_backend::compile(&gd_firmware::boot(), "main").expect("boot compiles");
        let cfg = Config::default();
        let scope_sites = sites(&image, cfg, &SCOPE_FUNCS);
        let slots = halfword_slots(&image, &SCOPE_FUNCS);
        let registry = Registry::standard();
        let per_model = registry
            .models()
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mc = prune_model(i, m.as_ref(), &scope_sites, slots, cfg);
                metrics::candidates(mc.name).add(mc.enumerated);
                metrics::pruned(mc.name).add(mc.pruned());
                mc
            })
            .collect();
        BootCampaign { image, cfg, sites: scope_sites, per_model }
    }

    /// Scoped address ranges for the runner's snapshot point.
    pub fn scope_ranges(&self) -> Vec<(u32, u32)> {
        SCOPE_FUNCS
            .iter()
            .map(|name| {
                let e = self.image.extent(name).expect("scoped routine exists");
                (e.base, e.end)
            })
            .collect()
    }

    /// A trial runner over this campaign's image and scope.
    pub fn runner(&self) -> MultiFaultRunner {
        MultiFaultRunner::new(&self.image, self.cfg, &self.scope_ranges())
    }

    /// First-order stats for one model.
    pub fn order1_stats(&self, model: usize) -> MfStats {
        let mc = &self.per_model[model];
        MfStats { enumerated: mc.enumerated, pruned: mc.pruned(), simulated: mc.simulated }
    }
}

/// The process-wide campaign state (enumeration and pruning run once;
/// every shard of every engine worker reuses it).
pub fn boot_campaign() -> &'static BootCampaign {
    static CAMPAIGN: OnceLock<BootCampaign> = OnceLock::new();
    CAMPAIGN.get_or_init(BootCampaign::build)
}

/// Executes the first-order campaign for one registry model: one
/// simulated trial per canonical class, tally weighted by class size —
/// identical, by the pruning equivalence, to simulating the whole space.
pub fn order1_shard(model: usize) -> (Tally, MfStats) {
    let campaign = boot_campaign();
    let mc = &campaign.per_model[model];
    let mut runner = campaign.runner();
    let mut tally = Tally::default();
    let mut simulated = 0u64;
    for class in &mc.classes {
        let outcome = match class.outcome {
            Some(o) => o,
            None => {
                simulated += 1;
                runner.run(&[class.rep()])
            }
        };
        tally.record_n(outcome, class.weight());
    }
    // Candidates the walk never visited (pools, padding, mid-instruction
    // halfwords) never fire with fetch-stage injection: No Effect.
    tally.record_n(
        Outcome::NoEffect,
        mc.enumerated - mc.classes.iter().map(FaultClass::weight).sum::<u64>(),
    );
    debug_assert_eq!(tally.total(), mc.enumerated);
    metrics::simulated(mc.name).add(simulated);
    metrics::record_tally(mc.name, &tally);
    (tally, MfStats { enumerated: mc.enumerated, pruned: mc.pruned(), simulated })
}

/// One second-order pair-space member: a canonical representative with
/// its class weight and its first-order outcome.
#[derive(Debug, Clone, Copy)]
struct O2Rep {
    fault: FaultInstance,
    weight: u64,
    /// First-order outcome of the representative. For statically-pruned
    /// classes this doubles as the pair shortcut: pairing a No-Effect
    /// fault with `g` yields `g`'s own first-order outcome.
    o1: Outcome,
    is_static: bool,
}

/// The second-order representative list: pruned classes of
/// [`O2_MODELS`], each annotated with its first-order outcome (computed
/// once; pairs with a statically No-Effect member resolve to the other
/// member's outcome without simulation).
fn order2_reps() -> &'static Vec<O2Rep> {
    static REPS: OnceLock<Vec<O2Rep>> = OnceLock::new();
    REPS.get_or_init(|| {
        let campaign = boot_campaign();
        let mut runner = campaign.runner();
        let mut reps = Vec::new();
        for &model in &O2_MODELS {
            for class in &campaign.per_model[model].classes {
                let (o1, is_static) = match class.outcome {
                    Some(o) => (o, true),
                    None => (runner.run(&[class.rep()]), false),
                };
                reps.push(O2Rep { fault: class.rep(), weight: class.weight(), o1, is_static });
            }
        }
        reps
    })
}

/// Executes one bucket of the second-order campaign: every unordered
/// pair of distinct-site representatives whose linear index falls in
/// `bucket` (mod [`O2_BUCKETS`]).
///
/// Pair outcomes: both members No Effect → No Effect; one member No
/// Effect → the other member's first-order outcome (a No-Effect fault
/// is indistinguishable from no fault at all); otherwise both faults
/// are armed in one simulated trial. Weights multiply, so the tallies
/// equal the unpruned pair space's.
pub fn order2_shard(bucket: u32) -> (Tally, MfStats) {
    let campaign = boot_campaign();
    let reps = order2_reps();
    let mut runner = campaign.runner();
    let mut tally = Tally::default();
    let mut stats = MfStats::default();
    let mut index = 0u64;
    for a in 0..reps.len() {
        for b in (a + 1)..reps.len() {
            let (ra, rb) = (reps[a], reps[b]);
            if ra.fault.site == rb.fault.site {
                continue; // one fetch, one fault: same-site pairs are undefined
            }
            let mine = index % u64::from(O2_BUCKETS) == u64::from(bucket);
            index += 1;
            if !mine {
                continue;
            }
            let weight = ra.weight * rb.weight;
            stats.enumerated += weight;
            let outcome = match (ra.is_static, rb.is_static) {
                (true, true) => Outcome::NoEffect,
                (true, false) => rb.o1,
                (false, true) => ra.o1,
                (false, false) => {
                    stats.simulated += 1;
                    runner.run(&[ra.fault, rb.fault])
                }
            };
            tally.record_n(outcome, weight);
        }
    }
    stats.pruned = stats.enumerated - stats.simulated;
    metrics::simulated(metrics::PAIRS_LABEL).add(stats.simulated);
    metrics::candidates(metrics::PAIRS_LABEL).add(stats.enumerated);
    metrics::pruned(metrics::PAIRS_LABEL).add(stats.pruned);
    metrics::record_tally(metrics::PAIRS_LABEL, &tally);
    (tally, stats)
}
