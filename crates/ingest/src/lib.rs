//! # gd-ingest — third-party firmware ingestion
//!
//! The rest of the workspace analyzes firmware *it compiled itself*
//! (`gd-backend` lowering `gd-firmware` IR). This crate closes the loop
//! the paper's tooling has with real targets: it loads firmware the
//! compiler never saw — a raw flash dump (`.bin`) or a minimal ELF32
//! executable — into the same [`gd_backend::FirmwareImage`] the lints
//! and fault campaigns consume.
//!
//! Ingestion has three stages:
//!
//! 1. **Container parsing** — [`ingest_bin`] reads a Cortex-M vector
//!    table (initial SP, Thumb-bit reset vector, handler slots) from a
//!    raw dump; [`ingest_elf`] is a from-scratch ELF32 reader (no
//!    external dependencies): little-endian, `EM_ARM`, `PT_LOAD`
//!    segments, and an optional `SHT_SYMTAB` whose `STT_FUNC` symbols
//!    name the routines.
//! 2. **Extent inference** — [`extents::infer_extents`] walks the text
//!    with the Thumb-2 *wide* decoder ([`gd_thumb::decode32_wide`]) from
//!    each discovered entry, classifying bytes into code and literal
//!    pools, so downstream analyses never decode data as instructions.
//! 3. **Image assembly** — the result is a [`FirmwareImage`] with
//!    `text_base`, entry point, symbols, and extents filled in, ready
//!    for `gd-lint`'s `GL02xx` surface lints and `gd-faultsim`'s
//!    divergence campaigns (which run under
//!    `Config { wide: true, .. }` because third-party images are free
//!    to use Thumb-2 encodings the compiler's ARMv6-M subset avoids).
//!
//! Trust boundary: ingested bytes are *untrusted input*. Every parser
//! here returns a typed [`IngestError`] instead of panicking, bounds
//! every loop by the input length, and never allocates proportional to
//! anything but the input size.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod elf;
pub mod extents;
pub mod metrics;
pub mod raw;
pub mod spec;
pub mod testimg;

use std::fmt;

use gd_backend::FirmwareImage;

pub use elf::ingest_elf;
pub use metrics::register_metrics;
pub use raw::ingest_bin;
pub use spec::IngestSpec;

/// Which container format an image was ingested from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Raw flash dump with a leading vector table.
    Bin,
    /// ELF32 executable.
    Elf,
}

impl Format {
    /// Lower-case label used in specs and metric labels.
    pub fn label(self) -> &'static str {
        match self {
            Format::Bin => "bin",
            Format::Elf => "elf",
        }
    }
}

/// A successfully ingested firmware image.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// The container it came from.
    pub format: Format,
    /// The assembled image: `text_base`, entry, symbols, extents.
    pub image: FirmwareImage,
    /// Initial stack pointer (vector-table word 0; [`ingest_elf`] images
    /// without a vector table fall back to the standard stack top).
    pub sp: u32,
}

impl Ingested {
    /// Total literal-pool bytes across all extents.
    pub fn pool_bytes(&self) -> u32 {
        self.image.extents.iter().map(|e| e.end - e.code_end).sum()
    }

    /// Replaces the extent table, keeping everything else.
    ///
    /// This is the refinement hook for analyses that discover code the
    /// linear inference sweep could not see (e.g. `gd-cfg` resolving a
    /// computed branch into what inference classified as pool filler):
    /// they rebuild the table and re-ingest their improved view.
    pub fn with_extents(mut self, extents: Vec<gd_backend::FuncExtent>) -> Ingested {
        self.image.extents = extents;
        self
    }

    /// The typed spec describing this ingestion (strict-JSON
    /// serializable; see [`spec`]).
    pub fn spec(&self) -> IngestSpec {
        IngestSpec {
            version: spec::SPEC_VERSION,
            format: self.format,
            base: self.image.text_base,
            entry: self.image.entry,
            sp: self.sp,
            text_len: self.image.text.len() as u32,
            extents: self
                .image
                .extents
                .iter()
                .map(|e| spec::ExtentSpec {
                    name: e.name.clone(),
                    base: e.base,
                    code_end: e.code_end,
                    end: e.end,
                })
                .collect(),
        }
    }
}

/// Why ingestion rejected an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The input is shorter than the structure it must contain.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// The vector table's initial-SP word is not a plausible stack
    /// pointer (zero or unaligned).
    BadStackPointer {
        /// The rejected word.
        sp: u32,
    },
    /// The reset vector is not a Thumb-bit address into the image.
    BadResetVector {
        /// The rejected word.
        vector: u32,
    },
    /// An ELF structural check failed.
    BadElf {
        /// Which check.
        what: &'static str,
    },
    /// No code bytes survived extent inference.
    NoCode,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Truncated { what } => write!(f, "input truncated while reading {what}"),
            IngestError::BadStackPointer { sp } => {
                write!(f, "vector table word 0 ({sp:#010x}) is not a stack pointer")
            }
            IngestError::BadResetVector { vector } => {
                write!(f, "reset vector {vector:#010x} is not a Thumb address inside the image")
            }
            IngestError::BadElf { what } => write!(f, "not a loadable ARM ELF32: {what}"),
            IngestError::NoCode => write!(f, "no decodable code found in the image"),
        }
    }
}

impl std::error::Error for IngestError {}
