//! Regenerates Table IV: boot-time overhead (clock cycles) per defense.
//! `--check` diffs the output against `results/table4.txt`.

use std::process::ExitCode;

fn main() -> ExitCode {
    gd_bench::selfcheck::main("table4.txt", &[], || {
        let rows = gd_bench::overhead::table4();
        gd_bench::overhead::print_table4(&rows);
    })
}
