//! `--check` self-verification for the experiment binaries: re-run the
//! binary, capture its stdout, and diff it against the committed golden
//! file under `results/`. A clean diff exits 0; drift (or a failed
//! regeneration) exits non-zero with the first mismatching line named,
//! which makes every binary its own regression gate — `scripts/ci.sh`
//! wires `table1 --check` and `fig2 --check` into the tier-1 run.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

/// The committed golden file for one artifact (`results/<name>`).
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results")).join(name)
}

/// The standard experiment-binary entry point: with `--check` among the
/// arguments, verify against `results/<golden>` (re-running the binary
/// itself with `regen_args`); otherwise run `regenerate`, which prints
/// the artifact to stdout.
pub fn main(golden: &str, regen_args: &[&str], regenerate: impl FnOnce()) -> ExitCode {
    if std::env::args().skip(1).any(|a| a == "--check") {
        check(golden, regen_args)
    } else {
        regenerate();
        ExitCode::SUCCESS
    }
}

/// Re-executes the current binary with `regen_args` and diffs its stdout
/// against `results/<golden>`. Returns success only on a byte-identical
/// match.
pub fn check(golden: &str, regen_args: &[&str]) -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("--check: cannot locate the current binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let output = match Command::new(&exe).args(regen_args).output() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("--check: re-running {} failed: {e}", exe.display());
            return ExitCode::FAILURE;
        }
    };
    if !output.status.success() {
        eprintln!("--check: regeneration exited with {}", output.status);
        return ExitCode::FAILURE;
    }
    let path = golden_path(golden);
    let expected = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("--check: cannot read golden file {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    match diff(&expected, &output.stdout) {
        None => {
            println!("--check OK: output matches {} ({} bytes)", path.display(), expected.len());
            ExitCode::SUCCESS
        }
        Some(report) => {
            eprintln!("--check FAILED: output drifted from {}", path.display());
            eprintln!("{report}");
            ExitCode::FAILURE
        }
    }
}

/// First point of divergence between two outputs, as a human-readable
/// report; `None` when byte-identical.
pub fn diff(expected: &[u8], actual: &[u8]) -> Option<String> {
    if expected == actual {
        return None;
    }
    let expected = String::from_utf8_lossy(expected);
    let actual = String::from_utf8_lossy(actual);
    let mut want = expected.lines();
    let mut got = actual.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (want.next(), got.next()) {
            (Some(w), Some(g)) if w == g => continue,
            (Some(w), Some(g)) => {
                return Some(format!("line {line}:\n  expected: {w}\n  actual:   {g}"));
            }
            (Some(w), None) => {
                return Some(format!("line {line}: output ends early\n  expected: {w}"));
            }
            (None, Some(g)) => {
                return Some(format!("line {line}: unexpected trailing output\n  actual:   {g}"));
            }
            // Same lines, different bytes: a trailing-newline or CR issue.
            (None, None) => {
                return Some(format!(
                    "outputs differ only in line endings or a trailing newline \
                     ({} vs {} bytes)",
                    expected.len(),
                    actual.len()
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_outputs_have_no_diff() {
        assert_eq!(diff(b"a\nb\n", b"a\nb\n"), None);
    }

    #[test]
    fn diff_names_the_first_divergent_line() {
        let report = diff(b"a\nb\nc\n", b"a\nX\nc\n").unwrap();
        assert!(report.contains("line 2") && report.contains("X"), "{report}");
        let report = diff(b"a\nb\n", b"a\n").unwrap();
        assert!(report.contains("ends early"), "{report}");
        let report = diff(b"a\n", b"a\nb\n").unwrap();
        assert!(report.contains("trailing"), "{report}");
        let report = diff(b"a\nb\n", b"a\nb").unwrap();
        assert!(report.contains("line endings"), "{report}");
    }

    #[test]
    fn golden_paths_point_into_results() {
        let p = golden_path("table1.txt");
        assert!(p.ends_with("results/table1.txt"), "{}", p.display());
        assert!(p.exists(), "committed golden file present at {}", p.display());
    }
}
