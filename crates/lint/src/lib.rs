//! # gd-lint — a glitch-surface static analyzer
//!
//! Two lint families over the GlitchResistor toolchain's artifacts:
//!
//! - **`GL01xx` (IR)**: missing-defense lints over hardened [`gd_ir`]
//!   modules. They read the guard annotations the passes record
//!   ([`gd_ir::GuardInfo`]) and the passes' own candidate predicates, so
//!   the analyzer and the transforms cannot drift apart. A module
//!   hardened with every defense lints clean; each disabled defense
//!   surfaces as findings.
//! - **`GL02xx` (image)**: glitch-surface measurements over lowered
//!   [`gd_backend::FirmwareImage`]s — for every conditional branch, the
//!   sixteen unidirectional single-bit flips of its encoding are
//!   classified per the paper's §IV taxonomy (inverted / unconditional /
//!   fall-through), plus a per-routine sensitivity report.
//!
//! The engine gives findings stable IDs and a total order, renders fixed
//! text and strict JSON (the campaign codec), supports per-function
//! suppressions, and exports `gd_lint_findings_total{lint}` counters.
//!
//! ```
//! use gd_ir::parse_module;
//! use glitch_resistor::{harden, Config, Defenses};
//! use gd_lint::{lint_module, LintReport, Suppressions};
//!
//! let mut m = parse_module(
//!     "fn @guard(%a: i32) -> i32 {\n\
//!      entry:\n  %c = icmp eq i32 %a, 0\n  br %c, ok, no\n\
//!      ok:\n  ret i32 1\n\
//!      no:\n  ret i32 0\n}\n",
//! )?;
//! let bare = LintReport::new(lint_module(&m), &Suppressions::default());
//! assert!(bare.deny(), "unhardened branch is flagged");
//!
//! harden(&mut m, &Config::new(Defenses::ALL));
//! let hardened = LintReport::new(lint_module(&m), &Suppressions::default());
//! assert!(!hardened.deny(), "fully hardened module lints clean");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod engine;
pub mod image_lints;
pub mod ir_lints;

pub use engine::{spec, Finding, LintReport, LintSpec, Severity, Suppressions, CATALOG};
pub use image_lints::{lint_image, FnSensitivity};
pub use ir_lints::{lint_module, MIN_HAMMING, MIN_POPCOUNT};
