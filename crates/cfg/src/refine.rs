//! Feeding CFG-discovered code back into the extent table.
//!
//! Ingested images infer each routine's `code_end` by a linear decode
//! sweep, which stops at the first literal pool — code reached only
//! through computed branches or tail calls past the pool is invisible to
//! it and gets misclassified as pool filler. The recovered CFG *does*
//! see that code (the walk follows resolved computed targets), so this
//! module compares the two views, reports every divergence, and rebuilds
//! the extent table with the discovered code classified as code.
//!
//! Refinement never grows a code span across a literal word: a
//! discovered run that starts exactly at `code_end` raises the boundary
//! in place, while a run past intervening pool words is *split* into its
//! own extent (named `<routine>+<offset>`), leaving the pool classified
//! as pool.

use gd_backend::{FirmwareImage, FuncExtent};

use crate::graph::Cfg;

/// One extent whose CFG-walked code extends past the inferred
/// `code_end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Routine name.
    pub name: String,
    /// The extent's inferred `code_end`.
    pub code_end: u32,
    /// End of the last walked instruction inside `[code_end, end)`.
    pub refined: u32,
    /// Instructions the walk decoded past `code_end`.
    pub extra_instrs: usize,
}

/// Maximal contiguous walked-instruction runs inside `[lo, hi)`, as
/// `[start, end)` address spans.
fn instr_runs(g: &Cfg, lo: u32, hi: u32) -> Vec<(u32, u32)> {
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for (&addr, &(bi, pos)) in g.instr_blocks.range(lo..hi) {
        let (_, _, size) = g.blocks[bi].instrs[pos];
        match runs.last_mut() {
            Some((_, end)) if *end == addr => *end = addr + size,
            _ => runs.push((addr, addr + size)),
        }
    }
    runs
}

/// Compares the recovered graph against the image's extent table.
pub fn divergences(g: &Cfg, image: &FirmwareImage) -> Vec<Divergence> {
    let mut out = Vec::new();
    for e in &image.extents {
        let runs = instr_runs(g, e.code_end, e.end);
        let Some(&(_, refined)) = runs.last() else { continue };
        let extra = g.instr_blocks.range(e.code_end..e.end).count();
        out.push(Divergence {
            name: e.name.clone(),
            code_end: e.code_end,
            refined,
            extra_instrs: extra,
        });
    }
    out
}

/// Rebuilds the extent table with every CFG-discovered code run
/// reclassified as code. A run flush against an extent's `code_end`
/// raises the boundary; a run separated from it by pool words becomes a
/// split extent named `<routine>+<offset>` so the intervening pool stays
/// pool.
pub fn refined_extents(g: &Cfg, image: &FirmwareImage) -> Vec<FuncExtent> {
    let mut out = Vec::new();
    for e in &image.extents {
        let mut cur = e.clone();
        for (start, run_end) in instr_runs(g, e.code_end, e.end) {
            if start <= cur.code_end {
                cur.code_end = run_end;
            } else {
                let tail = cur.end;
                cur.end = start;
                out.push(cur);
                cur = FuncExtent {
                    name: format!("{}+{:#x}", e.name, start - e.base),
                    base: start,
                    code_end: run_end,
                    end: tail,
                    blocks: Vec::new(),
                };
            }
        }
        out.push(cur);
    }
    out
}
