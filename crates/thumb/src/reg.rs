//! Core register file names for the ARMv6-M (Thumb-1) register set.

use core::fmt;
use core::str::FromStr;

/// One of the sixteen core registers `r0`–`r15`.
///
/// `r13`/`r14`/`r15` carry their architectural aliases `sp`, `lr` and `pc`.
/// The type is a thin validated wrapper so that instruction constructors can
/// never name a register outside the file.
///
/// ```
/// use gd_thumb::Reg;
/// assert_eq!(Reg::SP.index(), 13);
/// assert_eq!("r3".parse::<Reg>()?, Reg::R3);
/// # Ok::<(), gd_thumb::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

#[allow(missing_docs)] // the sixteen architectural register names
impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    /// Stack pointer (`r13`).
    pub const SP: Reg = Reg(13);
    /// Link register (`r14`).
    pub const LR: Reg = Reg(14);
    /// Program counter (`r15`).
    pub const PC: Reg = Reg(15);

    /// Builds a register from its index.
    ///
    /// Returns `None` when `index > 15`.
    pub const fn new(index: u8) -> Option<Reg> {
        if index < 16 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// Builds a low register (`r0`–`r7`) from a 3-bit field.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 7`; callers pass masked instruction fields.
    pub(crate) const fn low(bits: u16) -> Reg {
        assert!(bits < 8, "low register field wider than 3 bits");
        Reg(bits as u8)
    }

    /// Builds any register from a 4-bit field.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 15`; callers pass masked instruction fields.
    pub(crate) const fn any(bits: u16) -> Reg {
        assert!(bits < 16, "register field wider than 4 bits");
        Reg(bits as u8)
    }

    /// The register index, `0..=15`.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is a low register (`r0`–`r7`), encodable in 3 bits.
    pub const fn is_low(self) -> bool {
        self.0 < 8
    }

    /// Iterates over all sixteen registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }

    /// Iterates over the eight low registers in index order.
    pub fn lows() -> impl Iterator<Item = Reg> {
        (0..8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => f.write_str("sp"),
            14 => f.write_str("lr"),
            15 => f.write_str("pc"),
            n => write!(f, "r{n}"),
        }
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        let err = || ParseRegError { text: s.to_owned() };
        match lower.as_str() {
            "sp" | "r13" => Ok(Reg::SP),
            "lr" | "r14" => Ok(Reg::LR),
            "pc" | "r15" => Ok(Reg::PC),
            _ => {
                let digits = lower.strip_prefix('r').ok_or_else(err)?;
                let index: u8 = digits.parse().map_err(|_| err())?;
                Reg::new(index).ok_or_else(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_resolve_to_indices() {
        assert_eq!(Reg::SP.index(), 13);
        assert_eq!(Reg::LR.index(), 14);
        assert_eq!(Reg::PC.index(), 15);
    }

    #[test]
    fn display_uses_aliases() {
        assert_eq!(Reg::R4.to_string(), "r4");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
        assert_eq!(Reg::PC.to_string(), "pc");
    }

    #[test]
    fn parse_round_trips_display() {
        for reg in Reg::all() {
            assert_eq!(reg.to_string().parse::<Reg>().unwrap(), reg);
        }
    }

    #[test]
    fn parse_numeric_aliases() {
        assert_eq!("r13".parse::<Reg>().unwrap(), Reg::SP);
        assert_eq!("R2".parse::<Reg>().unwrap(), Reg::R2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("r16".parse::<Reg>().is_err());
        assert!("x1".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
    }

    #[test]
    fn low_register_predicate() {
        assert!(Reg::R7.is_low());
        assert!(!Reg::R8.is_low());
        assert!(!Reg::SP.is_low());
        assert_eq!(Reg::lows().count(), 8);
        assert_eq!(Reg::all().count(), 16);
    }

    #[test]
    fn new_bounds() {
        assert_eq!(Reg::new(15), Some(Reg::PC));
        assert_eq!(Reg::new(16), None);
    }
}
