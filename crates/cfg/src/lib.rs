//! `gd-cfg`: whole-image control-flow-graph recovery plus the `GL03xx`
//! glitch-reachability lints.
//!
//! The crate answers one question the per-site `GL02xx` surface lints
//! cannot: *does a given fault matter?* It recovers a machine-level CFG
//! over any [`gd_backend::FirmwareImage`] — compiled or ingested — with
//! typed edges, literal-pool awareness, dominator/post-dominator trees,
//! and a constant-propagation dataflow that resolves computed branches.
//! On top of the graph, `lints` classifies every single-bit flip and
//! instruction skip by whether it can steer execution into a sensitive
//! sink, and `gd-bench`'s agreement harness cross-validates those
//! verdicts against exhaustive fault-simulation campaigns.
//!
//! The analysis is sound in one stated direction: a fault the simulator
//! proves *Successful* must never be classified statically safe. The
//! converse (statically dangerous, dynamically harmless) is expected —
//! that gap is the measured over-approximation, reported per routine in
//! the agreement tables.

pub mod dataflow;
pub mod dom;
pub mod graph;
pub mod lints;
pub mod metrics;
pub mod reach;
pub mod refine;

pub use graph::{Block, Cfg, EdgeKind, Flow, ReturnEdge, Term};

use std::collections::BTreeMap;

/// Maximum walk/dataflow rounds before recovery gives up on resolving
/// further computed branches (each round must resolve at least one new
/// site to continue, so this bound is rarely approached).
const MAX_ROUNDS: u64 = 8;

/// Recovers the CFG of `image` under decode configuration `cfg`.
///
/// Recovery alternates a decode walk with constant propagation: the walk
/// discovers code from the entry point and every extent base, then the
/// dataflow tries to pin unresolved computed branches to single targets,
/// which seeds the next walk with new leaders. Iterates until no new
/// site resolves (or [`MAX_ROUNDS`]).
pub fn recover(image: &gd_backend::FirmwareImage, cfg: gd_emu::Config) -> Cfg {
    let mut resolved: BTreeMap<u32, u32> = BTreeMap::new();
    let mut rounds = 0u64;
    let mut fixpoint_iterations = 0u64;
    loop {
        let mut g = graph::build(image, cfg, &resolved);
        rounds += 1;
        let progress = if g.unresolved.is_empty() || rounds >= MAX_ROUNDS {
            false
        } else {
            let (newly, iters) = dataflow::resolve_computed(&g, image);
            fixpoint_iterations += iters;
            let before = resolved.len();
            resolved.extend(newly);
            resolved.len() > before
        };
        if !progress {
            g.rounds = rounds;
            g.fixpoint_iterations = fixpoint_iterations;
            return g;
        }
    }
}
