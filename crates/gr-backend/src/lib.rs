//! # gd-backend — Thumb-1 code generation for the GlitchResistor IR
//!
//! Lowers [`gd_ir`] modules to ARMv6-M machine code and links them into a
//! [`FirmwareImage`] with an STM32F0-style section layout. This closes the
//! evaluation loop of the *Glitching Demystified* reproduction: the same
//! hardened module is measured for size (paper Table V), timed on the
//! pipeline simulator (Table IV), and attacked by the clock-glitch
//! simulator (Table VI).
//!
//! ```
//! use gd_backend::compile;
//! use gd_ir::parse_module;
//!
//! let m = parse_module(
//!     "fn @main() -> i32 {\nentry:\n  %1 = add i32 40, 2\n  ret i32 %1\n}\n",
//! )?;
//! let image = compile(&m, "main")?;
//! let mut emu = image.boot_emu();
//! emu.run(10_000);
//! assert_eq!(emu.cpu.reg(gd_thumb::Reg::R0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod image;
pub mod layout;
mod lower;

pub use image::{FirmwareImage, FuncExtent, SectionSizes};
pub use layout::{Section, GPIO_ODR, STACK_TOP};
pub use lower::{compile, LowerError};
