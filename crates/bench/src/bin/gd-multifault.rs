//! Regenerates the exhaustive multi-fault campaign over `firmware::boot`:
//! first-order sweeps of every registry fault model plus the second-order
//! distinct-site pair space, with architectural-effect pruning. A thin
//! client of the campaign engine; `--check` diffs the output against
//! `results/multifault_boot.txt`.

use std::process::ExitCode;

fn main() -> ExitCode {
    gd_bench::selfcheck::main("multifault_boot.txt", &[], || {
        let result = gd_campaign::Engine::ephemeral()
            .run(&gd_campaign::CampaignSpec::multifault())
            .expect("campaign runs");
        print!("{}", result.text);
    })
}
