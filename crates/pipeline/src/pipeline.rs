//! The cycle-accounted pipeline wrapper around the architectural emulator,
//! with per-window fault-injection hooks and GPIO trigger detection.
//!
//! The ChipWhisperer-style clock-glitch simulator (`gd-chipwhisperer`)
//! drives this: before each instruction executes, the injector sees the
//! cycle window the instruction will occupy and may corrupt the in-flight
//! encoding (execute/decode stage), poison a *later* fetch (fetch stage),
//! corrupt the data bus of a load, force a skip, or brown the core out.

use std::collections::VecDeque;
use std::sync::Arc;

use gd_emu::{Emu, Fault, LoadOverride, PredecodedImage, Slot, StepOutcome, StopReason};
use gd_thumb::Instr;

use crate::timing::Timing;

/// Address range treated as the trigger port (GPIO output register).
pub const TRIGGER_ADDR: u32 = 0x4800_0014;
/// Address range treated as slow NVM (flash data page).
pub const NVM_RANGE: core::ops::Range<u32> = 0x0800_F000..0x0801_0000;

/// A fault the injector can apply to the instruction window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageFault {
    /// AND a mask into the halfword currently in decode/execute.
    CorruptExec {
        /// Mask of bits to keep (1→0 flips where zero).
        and_mask: u16,
    },
    /// AND a mask into the halfword the fetch stage is pulling now; it
    /// takes effect `FETCH_DEPTH` instructions later.
    CorruptFetch {
        /// Mask of bits to keep.
        and_mask: u16,
    },
    /// Corrupt the data returned by a load in this window.
    CorruptLoad(LoadOverride),
    /// Suppress the instruction entirely (hard skip).
    Skip,
    /// Brown-out: the core resets (the attempt is over).
    Reset,
}

/// How many instructions ahead the fetch stage runs in this 3-stage model.
pub const FETCH_DEPTH: usize = 2;

/// What the injector sees before an instruction executes.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// First cycle this instruction occupies.
    pub start: u64,
    /// Estimated cycle count (branch penalties included pessimistically).
    pub cycles: u32,
    /// Instruction address.
    pub addr: u32,
    /// The decoded instruction (pre-corruption).
    pub instr: Instr,
    /// The raw first halfword (pre-corruption).
    pub raw: u16,
    /// Cycles since the most recent trigger fired (`None` before any).
    pub since_trigger: Option<u64>,
    /// Cycles since the *first* trigger fired (`None` before any).
    pub since_first_trigger: Option<u64>,
}

/// Why a pipeline run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// A breakpoint or sleep stopped the core.
    Stop {
        /// The stop reason.
        reason: StopReason,
        /// Stop address.
        addr: u32,
    },
    /// A hard fault.
    Fault(Fault),
    /// The injector requested a reset (brown-out).
    Reset,
    /// The cycle budget ran out (still spinning).
    CycleLimit,
}

/// The pipelined core.
#[derive(Debug)]
pub struct Pipeline {
    /// The architectural emulator.
    pub emu: Emu,
    /// The cycle cost model.
    pub timing: Timing,
    cycle: u64,
    trigger_cycles: Vec<u64>,
    pending_fetch: VecDeque<(usize, u16)>,
    retired: u64,
    predecode: Option<Arc<PredecodedImage>>,
}

impl Pipeline {
    /// Wraps an emulator (PC and SP already set) with default timing.
    pub fn new(emu: Emu) -> Pipeline {
        Pipeline {
            emu,
            timing: Timing::default(),
            cycle: 0,
            trigger_cycles: Vec::new(),
            pending_fetch: VecDeque::new(),
            retired: 0,
            predecode: None,
        }
    }

    /// Attaches a predecoded micro-op table for the firmware image.
    ///
    /// Decode is then served from the table whenever the in-flight
    /// halfword is pristine; any glitch-corrupted halfword (a ripened
    /// fetch mask, an exec-stage mask) is still decoded live, so injected
    /// faults see exactly the interpreter semantics. The image must be
    /// built from this emulator's executable region under its [`Config`]
    /// (flash is read-only to the emulated program, so it cannot go
    /// stale at run time).
    ///
    /// [`Config`]: gd_emu::Config
    pub fn set_predecode(&mut self, image: Arc<PredecodedImage>) {
        debug_assert_eq!(image.cfg(), self.emu.cfg, "image decoded under a different Config");
        self.predecode = Some(image);
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Instructions retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Cycle at which the most recent trigger store was observed, if any.
    pub fn trigger_cycle(&self) -> Option<u64> {
        self.trigger_cycles.last().copied()
    }

    /// Every trigger event so far (multi-glitch firmware raises several).
    pub fn trigger_cycles(&self) -> &[u64] {
        &self.trigger_cycles
    }

    /// Runs without fault injection until stop/fault or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> RunEnd {
        self.run_with(max_cycles, |_| Vec::new())
    }

    /// Runs with an injector consulted before every instruction.
    pub fn run_with(
        &mut self,
        max_cycles: u64,
        mut injector: impl FnMut(&Window) -> Vec<StageFault>,
    ) -> RunEnd {
        while self.cycle < max_cycles {
            match self.step_with(&mut injector) {
                Ok(Some(end)) => return end,
                Ok(None) => {}
                Err(fault) => return RunEnd::Fault(fault),
            }
        }
        RunEnd::CycleLimit
    }

    /// Executes one instruction under the injector. `Ok(None)` means the
    /// core keeps running.
    ///
    /// # Errors
    ///
    /// Returns the architectural [`Fault`] if execution faults (including
    /// faults provoked by injected corruption).
    pub fn step_with(
        &mut self,
        injector: &mut impl FnMut(&Window) -> Vec<StageFault>,
    ) -> Result<Option<RunEnd>, Fault> {
        let addr = self.emu.pc();
        let mut hw = self.emu.mem.fetch16(addr)?;

        // Apply any fetch-stage corruption that has ripened.
        let mut ripe_mask: u16 = 0xFFFF;
        self.pending_fetch.retain_mut(|(delay, mask)| {
            if *delay == 0 {
                ripe_mask &= *mask;
                false
            } else {
                *delay -= 1;
                true
            }
        });
        hw &= ripe_mask;

        // Pristine halfwords dispatch from the micro-op table when one is
        // attached; corrupted fetches always decode live.
        let cached = match &self.predecode {
            Some(image) if ripe_mask == 0xFFFF => image.slot(addr),
            _ => None,
        };
        let (instr, size) = match cached {
            Some(Slot::Instr { instr, size }) => (instr, size),
            // Same fault, at the same pre-window point, as a live decode
            // failure would raise.
            Some(Slot::Undefined { hw, hw2 }) => return Err(Fault::Undefined { addr, hw, hw2 }),
            Some(Slot::Incomplete { .. } | Slot::Live) | None => self.emu.decode(addr, hw)?,
        };
        let est = self.timing.base_cycles(instr)
            + if instr.is_branch() { self.timing.taken_branch_penalty } else { 0 };
        let window = Window {
            start: self.cycle,
            cycles: est,
            addr,
            instr,
            raw: hw,
            since_trigger: self.trigger_cycles.last().map(|t| self.cycle.saturating_sub(*t)),
            since_first_trigger: self.trigger_cycles.first().map(|t| self.cycle.saturating_sub(*t)),
        };

        let mut exec_hw = hw;
        let mut skip = false;
        for fault in injector(&window) {
            match fault {
                StageFault::CorruptExec { and_mask } => exec_hw &= and_mask,
                StageFault::CorruptFetch { and_mask } => {
                    // Ripens when the poisoned halfword reaches decode:
                    // FETCH_DEPTH instructions after this window.
                    self.pending_fetch.push_back((FETCH_DEPTH - 1, and_mask));
                }
                StageFault::CorruptLoad(ov) => self.emu.load_override = Some(ov),
                StageFault::Skip => skip = true,
                StageFault::Reset => return Ok(Some(RunEnd::Reset)),
            }
        }

        // Re-decode if the in-flight encoding changed.
        let (instr, size) =
            if exec_hw == hw { (instr, size) } else { self.emu.decode(addr, exec_hw)? };

        self.retired += 1;
        if skip {
            self.emu.load_override = None;
            self.emu.set_pc(addr.wrapping_add(size));
            self.cycle += 1;
            return Ok(None);
        }

        let outcome = self.emu.exec(instr, addr, size)?;
        let mut cycles = self.timing.base_cycles(instr);
        match &outcome {
            StepOutcome::Step(step) => {
                if step.branched {
                    cycles += self.timing.taken_branch_penalty;
                }
                if let Some((dest, _)) = step.store {
                    if NVM_RANGE.contains(&dest) {
                        cycles += self.timing.nvm_write;
                    }
                    if dest == TRIGGER_ADDR {
                        // The trigger becomes observable when the store
                        // completes: the next instruction starts at the
                        // recorded cycle.
                        self.trigger_cycles.push(self.cycle + u64::from(cycles));
                    }
                }
                self.cycle += u64::from(cycles);
                Ok(None)
            }
            StepOutcome::Stop { reason, addr } => {
                self.cycle += u64::from(cycles);
                Ok(Some(RunEnd::Stop { reason: *reason, addr: *addr }))
            }
        }
    }

    /// Forgets past trigger events.
    pub fn clear_trigger(&mut self) {
        self.trigger_cycles.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_emu::Perms;
    use gd_thumb::asm::assemble;

    const FLASH: u32 = 0x0800_0000;

    fn boot(src: &str) -> Pipeline {
        let mut emu = Emu::new();
        emu.mem.map("flash", FLASH, 0x4000, Perms::RX).unwrap();
        emu.mem.map("sram", 0x2000_0000, 0x4000, Perms::RW).unwrap();
        emu.mem.map("gpio", 0x4800_0000, 0x400, Perms::RW).unwrap();
        emu.mem.map("nvm", 0x0800_F000, 0x1000, Perms::RW).unwrap();
        let prog = assemble(src, FLASH).unwrap_or_else(|e| panic!("{e}"));
        emu.mem.load(FLASH, &prog.code).unwrap();
        emu.set_pc(FLASH);
        emu.cpu.set_sp(0x2000_3000);
        Pipeline::new(emu)
    }

    #[test]
    fn straight_line_cycle_counting() {
        // movs(1) + adds(1) + ldr-lit(2) + bkpt(1).
        let mut p = boot("movs r0, #1\nadds r0, #2\nldr r1, =0x11223344\nbkpt #0");
        let end = p.run(100);
        assert!(matches!(end, RunEnd::Stop { reason: StopReason::Bkpt(0), .. }));
        assert_eq!(p.cycle(), 5);
        assert_eq!(p.retired(), 4);
    }

    #[test]
    fn taken_branches_cost_three() {
        // b(3) + bkpt(1).
        let mut p = boot("b over\nnop\nover: bkpt #0");
        p.run(100);
        assert_eq!(p.cycle(), 4);
    }

    #[test]
    fn untaken_conditional_costs_one() {
        let mut p = boot("movs r0, #1\nbeq nope\nbkpt #0\nnope: bkpt #1");
        let end = p.run(100);
        assert!(matches!(end, RunEnd::Stop { reason: StopReason::Bkpt(0), .. }));
        // movs(1) + beq untaken(1) + bkpt(1).
        assert_eq!(p.cycle(), 3);
    }

    #[test]
    fn paper_loop_is_eight_cycles_per_iteration() {
        // The Table I guard: mov(1) adds(1) ldrb(2) cmp(1) beq taken(3).
        let src = "
        loop:
            mov r3, sp
            adds r3, #7
            ldrb r3, [r3]
            cmp r3, #0
            beq loop
            bkpt #0
        ";
        let mut p = boot(src);
        let end = p.run(80); // exactly 10 iterations
        assert!(matches!(end, RunEnd::CycleLimit));
        assert_eq!(p.cycle(), 80);
        assert_eq!(p.retired(), 50);
    }

    #[test]
    fn trigger_store_is_detected() {
        let src = "
            ldr r0, =0x48000014
            movs r1, #1
            str r1, [r0]
        target:
            nop
            bkpt #0
        ";
        let mut p = boot(src);
        let mut windows = Vec::new();
        p.run_with(100, |w| {
            windows.push((w.addr, w.since_trigger));
            Vec::new()
        });
        let t = p.trigger_cycle().expect("trigger seen");
        // ldr(2) + movs(1) + str(2) = 5.
        assert_eq!(t, 5);
        // The instruction after the store starts exactly at the trigger.
        let target = windows.iter().find(|(_, s)| *s == Some(0)).expect("cycle-0 window");
        assert_eq!(target.1, Some(0));
    }

    #[test]
    fn nvm_stores_stall() {
        let src = "
            ldr r0, =0x0800F000
            movs r1, #7
            str r1, [r0]
            bkpt #0
        ";
        let mut p = boot(src);
        p.run(1_000_000);
        assert!(p.cycle() > 170_000, "flash write dominates: {}", p.cycle());
    }

    #[test]
    fn exec_corruption_changes_the_instruction() {
        // Clearing the top bit of `beq` (0xD0xx) yields a store — here we
        // clear everything: 0x0000 = lsls r0, r0, #0 → branch skipped.
        let src = "
            movs r0, #0
            beq taken
            bkpt #1
        taken:
            bkpt #2
        ";
        let mut p = boot(src);
        let end = p.run_with(100, |w| {
            if matches!(w.instr, Instr::BCond { .. }) {
                vec![StageFault::CorruptExec { and_mask: 0x0000 }]
            } else {
                Vec::new()
            }
        });
        match end {
            RunEnd::Stop { reason: StopReason::Bkpt(1), .. } => {}
            other => panic!("branch should be skipped, got {other:?}"),
        }
    }

    #[test]
    fn fetch_corruption_lands_two_instructions_later() {
        let src = "
            movs r0, #0
            movs r1, #1
            movs r2, #2
            movs r3, #3
            bkpt #0
        ";
        let mut p = boot(src);
        let mut armed = false;
        p.run_with(100, |w| {
            if !armed && w.addr == FLASH {
                armed = true;
                // 0xFF00 mask clears the immediate byte of a movs.
                return vec![StageFault::CorruptFetch { and_mask: 0xFF00 }];
            }
            Vec::new()
        });
        // Injected at instruction 0 → lands on instruction 2 (movs r2, #2).
        assert_eq!(p.emu.cpu.reg(gd_thumb::Reg::R0), 0);
        assert_eq!(p.emu.cpu.reg(gd_thumb::Reg::R1), 1);
        assert_eq!(p.emu.cpu.reg(gd_thumb::Reg::R2), 0, "immediate cleared in flight");
        assert_eq!(p.emu.cpu.reg(gd_thumb::Reg::R3), 3);
    }

    #[test]
    fn load_corruption_and_skip() {
        let src = "
            ldr r0, =0x20000000
            movs r1, #0x55
            str r1, [r0]
            ldr r2, [r0]
            movs r4, #9
            bkpt #0
        ";
        let mut p = boot(src);
        p.run_with(100, |w| {
            let mut faults = Vec::new();
            if matches!(w.instr, Instr::LoadImm { .. }) {
                faults.push(StageFault::CorruptLoad(LoadOverride::Replace(0x08)));
            }
            if matches!(w.instr, Instr::MovImm { rd, .. } if rd == gd_thumb::Reg::R4) {
                faults.push(StageFault::Skip);
            }
            faults
        });
        assert_eq!(p.emu.cpu.reg(gd_thumb::Reg::R2), 0x08, "bus residue");
        assert_eq!(p.emu.cpu.reg(gd_thumb::Reg::R4), 0, "skipped write-back");
    }

    #[test]
    fn reset_fault_ends_the_run() {
        let mut p = boot("loop: b loop");
        let end =
            p.run_with(1_000, |w| if w.start >= 30 { vec![StageFault::Reset] } else { Vec::new() });
        assert_eq!(end, RunEnd::Reset);
    }
}
