//! A from-scratch minimal ELF32 reader — no external dependencies, no
//! unsafe, every offset bounds-checked against the input length.
//!
//! The subset is exactly what Cortex-M firmware executables need:
//! little-endian `ET_EXEC` for `EM_ARM`, `PT_LOAD` program headers
//! (gathered into one contiguous text span), `e_entry` as the entry
//! point, and — when present — a `SHT_SYMTAB` section whose `STT_FUNC`
//! symbols seed extent inference with real routine boundaries. Shared
//! objects, relocations, dynamic linking, big-endian, and ELF64 are out
//! of scope and rejected with a typed [`IngestError::BadElf`].

use std::collections::BTreeMap;

use gd_backend::layout::STACK_TOP;
use gd_backend::{FirmwareImage, SectionSizes};

use crate::extents::infer_extents;
use crate::{metrics, Format, IngestError, Ingested};

/// Largest text span assembled from `PT_LOAD` segments (1 MiB): firmware
/// images are tiny, and the cap keeps a hostile header from asking for a
/// 4 GiB allocation.
pub const MAX_SPAN: u32 = 1 << 20;

fn bad(what: &'static str) -> IngestError {
    IngestError::BadElf { what }
}

/// A bounds-checked little-endian field reader.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn bytes(&self, off: u32, len: u32) -> Result<&[u8], IngestError> {
        let off = off as usize;
        let len = len as usize;
        off.checked_add(len)
            .and_then(|end| self.0.get(off..end))
            .ok_or(IngestError::Truncated { what: "ELF structure" })
    }

    fn u16(&self, off: u32) -> Result<u16, IngestError> {
        let b = self.bytes(off, 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&self, off: u32) -> Result<u32, IngestError> {
        let b = self.bytes(off, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Ingests a little-endian ARM ELF32 executable.
///
/// The text span is the union of all `PT_LOAD` segments, based at the
/// lowest segment address and zero-filled between segments. The initial
/// SP comes from a leading vector table when the first loaded word looks
/// like one (word 1 matches `e_entry`); otherwise the standard stack top
/// is assumed, since an ELF entry point replaces the reset vector.
///
/// # Errors
///
/// Rejects inputs failing any structural check: magic, class (ELF32),
/// little-endian data, `ET_EXEC`, `EM_ARM`, no `PT_LOAD` segments, a
/// text span over [`MAX_SPAN`], an entry outside the span, or truncated
/// headers/tables; and [`IngestError::NoCode`] when extent inference
/// finds nothing decodable.
pub fn ingest_elf(bytes: &[u8]) -> Result<Ingested, IngestError> {
    let r = Reader(bytes);
    if bytes.len() < 52 {
        return Err(IngestError::Truncated { what: "ELF header" });
    }
    if &bytes[0..4] != b"\x7FELF" {
        return Err(bad("magic"));
    }
    if bytes[4] != 1 {
        return Err(bad("class (need ELF32)"));
    }
    if bytes[5] != 1 {
        return Err(bad("data encoding (need little-endian)"));
    }
    if r.u16(16)? != 2 {
        return Err(bad("type (need ET_EXEC)"));
    }
    if r.u16(18)? != 40 {
        return Err(bad("machine (need EM_ARM)"));
    }
    let e_entry = r.u32(24)?;
    let e_phoff = r.u32(28)?;
    let e_shoff = r.u32(32)?;
    let e_phentsize = u32::from(r.u16(42)?);
    let e_phnum = u32::from(r.u16(44)?);
    let e_shentsize = u32::from(r.u16(46)?);
    let e_shnum = u32::from(r.u16(48)?);
    if e_phnum > 0 && e_phentsize < 32 {
        return Err(bad("program-header entry size"));
    }

    // Pass 1 over PT_LOAD segments: find the span.
    let mut span: Option<(u32, u32)> = None;
    for i in 0..e_phnum {
        let ph = e_phoff + i * e_phentsize;
        if r.u32(ph)? != 1 {
            continue; // not PT_LOAD
        }
        let vaddr = r.u32(ph + 8)?;
        let filesz = r.u32(ph + 16)?;
        let vend = vaddr.checked_add(filesz).ok_or(bad("segment wraps the address space"))?;
        span = Some(match span {
            None => (vaddr, vend),
            Some((lo, hi)) => (lo.min(vaddr), hi.max(vend)),
        });
    }
    let Some((base, end)) = span else {
        return Err(bad("no PT_LOAD segment"));
    };
    if end - base > MAX_SPAN {
        return Err(bad("loaded span too large"));
    }

    // Pass 2: copy segment bytes into the span (gaps stay zero).
    let mut text = vec![0u8; (end - base) as usize];
    for i in 0..e_phnum {
        let ph = e_phoff + i * e_phentsize;
        if r.u32(ph)? != 1 {
            continue;
        }
        let offset = r.u32(ph + 4)?;
        let vaddr = r.u32(ph + 8)?;
        let filesz = r.u32(ph + 16)?;
        let src = r.bytes(offset, filesz)?;
        let dst = (vaddr - base) as usize;
        text[dst..dst + src.len()].copy_from_slice(src);
    }

    let entry = e_entry & !1;
    if entry < base || entry >= end {
        return Err(bad("entry outside the loaded span"));
    }

    // STT_FUNC symbols seed extent inference; images without a symtab
    // fall back to the entry point alone.
    let mut starts: Vec<(String, u32)> = vec![("reset".to_owned(), entry)];
    if e_shnum > 0 && e_shentsize >= 40 {
        for i in 0..e_shnum {
            let sh = e_shoff + i * e_shentsize;
            if r.u32(sh + 4)? != 2 {
                continue; // not SHT_SYMTAB
            }
            let symoff = r.u32(sh + 16)?;
            let symsize = r.u32(sh + 20)?;
            let link = r.u32(sh + 24)?;
            if link >= e_shnum {
                return Err(bad("symtab string-table link"));
            }
            let strsh = e_shoff + link * e_shentsize;
            let stroff = r.u32(strsh + 16)?;
            let strsize = r.u32(strsh + 20)?;
            let strtab = r.bytes(stroff, strsize)?;
            for s in 0..symsize / 16 {
                let sym = symoff + s * 16;
                if r.bytes(sym, 16)?[12] & 0xF != 2 {
                    continue; // not STT_FUNC
                }
                let name_off = r.u32(sym)? as usize;
                let value = r.u32(sym + 4)? & !1;
                let Some(rest) = strtab.get(name_off..) else { continue };
                let name_end = rest.iter().position(|&b| b == 0).unwrap_or(rest.len());
                let name = String::from_utf8_lossy(&rest[..name_end]).into_owned();
                if !name.is_empty() && !starts.iter().any(|(_, a)| *a == value) {
                    starts.push((name, value));
                } else if !name.is_empty() && value == entry {
                    // Prefer the symbol's own name for the entry routine.
                    starts[0].0 = name;
                }
            }
        }
    }

    let extents = infer_extents(&text, base, &starts);
    if extents.iter().all(|e| e.code_end == e.base) {
        return Err(IngestError::NoCode);
    }

    // A leading vector table (word 1 = the entry, Thumb bit set) supplies
    // the initial SP, as on a raw dump; otherwise assume the stack top.
    let sp = match (text.len() >= 8).then(|| {
        (
            u32::from_le_bytes([text[0], text[1], text[2], text[3]]),
            u32::from_le_bytes([text[4], text[5], text[6], text[7]]),
        )
    }) {
        Some((w0, w1)) if w1 == (entry | 1) && w0 != 0 && w0 % 4 == 0 => w0,
        _ => STACK_TOP,
    };

    let symbols: BTreeMap<String, u32> = extents.iter().map(|e| (e.name.clone(), e.base)).collect();
    let sizes = SectionSizes { text: text.len() as u32, ..SectionSizes::default() };
    let image = FirmwareImage {
        text,
        text_base: base,
        data: Vec::new(),
        symbols,
        entry,
        sizes,
        global_sections: BTreeMap::new(),
        extents,
    };
    let ingested = Ingested { format: Format::Elf, image, sp };
    metrics::record(&ingested);
    Ok(ingested)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testimg;

    #[test]
    fn demo_elf_ingests_with_symbol_extents() {
        let ing = ingest_elf(&testimg::demo_elf()).expect("demo ELF ingests");
        assert_eq!(ing.format, Format::Elf);
        assert_eq!(ing.image.entry, testimg::DEMO_ENTRY);
        assert_eq!(ing.image.text_base, testimg::DEMO_BASE);
        // The leading vector table supplied the SP.
        assert_eq!(ing.sp, testimg::DEMO_SP);
        // Symbols split the text into two named extents.
        let reset = ing.image.extent("reset").expect("reset extent");
        let check = ing.image.extent("check").expect("check extent");
        assert_eq!(reset.base, testimg::DEMO_ENTRY);
        assert_eq!(check.base, testimg::DEMO_BASE + 0x2C);
        assert_eq!(reset.end, check.base);
        assert!(check.end > check.code_end, "pool excluded from check");
    }

    #[test]
    fn elf_and_bin_ingestion_agree_on_the_demo_pool() {
        let from_elf = ingest_elf(&testimg::demo_elf()).unwrap();
        let from_bin = crate::ingest_bin(&testimg::demo_bin(), testimg::DEMO_BASE).unwrap();
        assert_eq!(from_elf.image.text, from_bin.image.text);
        assert_eq!(from_elf.pool_bytes(), from_bin.pool_bytes());
    }

    #[test]
    fn structural_checks_reject_malformed_inputs() {
        let good = testimg::demo_elf();
        let check = |mutate: &dyn Fn(&mut Vec<u8>), what: &str| {
            let mut v = good.clone();
            mutate(&mut v);
            let err = ingest_elf(&v).expect_err(what);
            assert!(
                matches!(err, IngestError::BadElf { .. } | IngestError::Truncated { .. }),
                "{what}: {err:?}"
            );
        };
        check(&|v| v.truncate(20), "truncated header");
        check(&|v| v[0] = 0, "bad magic");
        check(&|v| v[4] = 2, "ELF64");
        check(&|v| v[5] = 2, "big-endian");
        check(&|v| v[16] = 3, "ET_DYN");
        check(&|v| v[18] = 62, "not EM_ARM");
        check(&|v| v[44] = 0, "no program headers at all");
        // Entry outside the loaded span.
        check(&|v| v[24..28].copy_from_slice(&0x1234_5678u32.to_le_bytes()), "entry out of span");
        // Hostile filesz: segment data extends past the file.
        check(&|v| v[52 + 16..52 + 20].copy_from_slice(&0x0000_FFFFu32.to_le_bytes()), "filesz");
    }

    #[test]
    fn elf_without_symbols_still_ingests_from_the_entry() {
        let elf = testimg::build_elf(
            &testimg::demo_bin(),
            testimg::DEMO_BASE,
            testimg::DEMO_ENTRY | 1,
            &[],
        );
        let ing = ingest_elf(&elf).expect("symbol-free ELF ingests");
        assert_eq!(ing.image.extents.len(), 1);
        assert_eq!(ing.image.extents[0].name, "reset");
    }
}
