//! Tables IV and V: run-time (boot cycles) and size overhead of each
//! defense on the CubeMX-style boot firmware.

use gd_backend::{compile, SectionSizes};
use gd_chipwhisperer::Device;
use gd_emu::StopReason;
use gd_firmware::BOOT_MARKER;
use gd_pipeline::RunEnd;
use glitch_resistor::{harden, Config, Defenses};

/// The defense configurations measured in Tables IV/V, in the paper's
/// order.
pub fn configurations() -> Vec<(&'static str, Defenses)> {
    vec![
        ("None", Defenses::NONE),
        ("Branches", Defenses::BRANCHES),
        ("Delay", Defenses::DELAY),
        ("Integrity", Defenses::INTEGRITY),
        ("Loops", Defenses::LOOPS),
        ("Returns", Defenses::RETURNS),
        ("All\\Delay", Defenses::ALL_EXCEPT_DELAY),
        ("All", Defenses::ALL),
    ]
}

/// The boot firmware hardened with one configuration, as IR.
pub fn boot_module(defenses: Defenses) -> gd_ir::Module {
    let mut m = gd_firmware::boot();
    harden(&mut m, &Config::new(defenses));
    m
}

/// Builds the hardened boot image for one configuration.
///
/// # Panics
///
/// Panics if hardening or lowering fails — the boot firmware is a fixture.
pub fn boot_image(defenses: Defenses) -> gd_backend::FirmwareImage {
    compile(&boot_module(defenses), "main").expect("boot firmware lowers")
}

/// One Table IV row.
#[derive(Debug, Clone, Copy)]
pub struct Table4Row {
    /// Configuration name.
    pub name: &'static str,
    /// Boot cycles with the full cost model.
    pub cycles: u64,
    /// Cycles attributable to NVM (flash) programming — the paper's
    /// "Constant" column.
    pub constant: u64,
}

impl Table4Row {
    /// Percent increase over `base` cycles.
    pub fn increase(&self, base: u64) -> f64 {
        100.0 * (self.cycles as f64 - base as f64) / base as f64
    }

    /// Percent increase with the flash constant removed ("% Adjusted").
    pub fn adjusted(&self, base: u64) -> f64 {
        100.0 * ((self.cycles - self.constant) as f64 - base as f64) / base as f64
    }
}

/// Boot-cycle measurement for one configuration.
///
/// # Panics
///
/// Panics when the boot image fails to reach its completion marker.
pub fn measure_boot(defenses: Defenses) -> Table4Row {
    let image = boot_image(defenses);
    let dev = Device::from_image(&image);
    let run = |nvm_write: u32| -> u64 {
        let mut pipe = dev.boot();
        pipe.timing.nvm_write = nvm_write;
        match pipe.run(5_000_000) {
            RunEnd::Stop { reason: StopReason::Bkpt(0), .. } => {
                assert_eq!(
                    pipe.emu.cpu.reg(gd_thumb::Reg::R0),
                    BOOT_MARKER,
                    "boot must complete normally"
                );
                pipe.cycle()
            }
            other => panic!("boot did not complete: {other:?}"),
        }
    };
    let cycles = run(gd_pipeline::Timing::default().nvm_write);
    let without_flash = run(0);
    Table4Row { name: "", cycles, constant: cycles - without_flash }
}

/// Runs Table IV for every configuration.
pub fn table4() -> Vec<Table4Row> {
    configurations().into_iter().map(|(name, d)| Table4Row { name, ..measure_boot(d) }).collect()
}

/// Prints Table IV in the paper's layout.
pub fn print_table4(rows: &[Table4Row]) {
    crate::report::heading("Table IV — boot-time overhead (clock cycles)");
    let base = rows[0].cycles;
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "Defense", "Cycles", "% Increase", "Constant", "% Adjusted"
    );
    for r in rows {
        println!(
            "{:<10} {:>12} {:>11.2}% {:>12} {:>11.2}%",
            r.name,
            r.cycles,
            r.increase(base),
            r.constant,
            r.adjusted(base)
        );
    }
}

/// One Table V row.
#[derive(Debug, Clone, Copy)]
pub struct Table5Row {
    /// Configuration name.
    pub name: &'static str,
    /// Section sizes.
    pub sizes: SectionSizes,
}

/// Runs Table V (sizes only; no execution).
pub fn table5() -> Vec<Table5Row> {
    configurations()
        .into_iter()
        .map(|(name, d)| Table5Row { name, sizes: boot_image(d).sizes })
        .collect()
}

/// Prints Table V in the paper's layout (with the reproduction's extra
/// shadow/nvm sections listed explicitly).
pub fn print_table5(rows: &[Table5Row]) {
    crate::report::heading("Table V — size overhead (bytes)");
    let base = rows[0].sizes;
    let pct = |v: u32, b: u32| {
        if b == 0 {
            0.0
        } else {
            100.0 * (f64::from(v) - f64::from(b)) / f64::from(b)
        }
    };
    println!(
        "{:<10} {:>7} {:>8} {:>6} {:>8} {:>6} {:>7} {:>6} {:>7} {:>8}",
        "Defense", "text", "text%", "data", "data%", "bss", "shadow", "nvm", "total", "total%"
    );
    for r in rows {
        let s = r.sizes;
        println!(
            "{:<10} {:>7} {:>7.2}% {:>6} {:>7.2}% {:>6} {:>7} {:>6} {:>7} {:>7.2}%",
            r.name,
            s.text,
            pct(s.text, base.text),
            s.data,
            pct(s.data, base.data),
            s.bss,
            s.shadow,
            s.nvm,
            s.total(),
            pct(s.total(), base.total()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_boot_lands_near_the_papers_magnitude() {
        let row = measure_boot(Defenses::NONE);
        // The paper's CubeMX boot takes 1,736 cycles; ours is shaped to the
        // same order of magnitude.
        assert!(
            (800..6_000).contains(&row.cycles),
            "baseline boot ≈ 10³ cycles, got {}",
            row.cycles
        );
        assert_eq!(row.constant, 0, "no flash writes without the delay defense");
    }

    #[test]
    fn delay_has_a_huge_flash_constant_others_do_not() {
        let base = measure_boot(Defenses::NONE);
        let delay = measure_boot(Defenses::DELAY);
        let branches = measure_boot(Defenses::BRANCHES);
        assert!(delay.constant > 150_000, "seed write dominates: {}", delay.constant);
        assert_eq!(branches.constant, 0);
        // Adjusted overhead is modest once the constant is removed.
        let adj = delay.adjusted(base.cycles);
        assert!(adj > 0.0 && adj < 2_000.0, "adjusted delay overhead sane: {adj:.1}%");
    }

    #[test]
    fn cheap_defenses_stay_cheap() {
        let base = measure_boot(Defenses::NONE);
        for d in [Defenses::INTEGRITY, Defenses::LOOPS, Defenses::RETURNS] {
            let row = measure_boot(d);
            assert!(
                row.increase(base.cycles) < 30.0,
                "{d:?} adds little boot time: {:.2}%",
                row.increase(base.cycles)
            );
        }
        let branches = measure_boot(Defenses::BRANCHES);
        let inc = branches.increase(base.cycles);
        assert!((1.0..80.0).contains(&inc), "branches cost noticeable but small: {inc:.1}%");
    }

    #[test]
    fn sizes_grow_monotonically_toward_all() {
        let rows = table5();
        let base = rows[0].sizes;
        let all = rows.last().unwrap().sizes;
        assert!(all.text > base.text);
        assert!(all.total() > base.total());
        for r in &rows[1..] {
            assert!(r.sizes.text >= base.text, "{} shrank?!", r.name);
        }
    }
}
