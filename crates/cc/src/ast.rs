//! AST and recursive-descent parser for the C subset.
//!
//! Supported surface, chosen to cover the firmware idioms the paper's
//! evaluation uses (`volatile` guards, uninitialized enums, constant-return
//! status functions, MMIO writes):
//!
//! ```c
//! enum Status { FAILURE, SUCCESS };
//! __sensitive int tick = 0;
//! volatile int a = 0;
//!
//! int check(int t) {
//!     if (t == 0) { return 1; }
//!     return 0;
//! }
//!
//! int main(void) {
//!     *(volatile int *)0x48000014 = 1;   /* trigger */
//!     while (!a) { }
//!     return 0xACCE55;
//! }
//! ```

use crate::lex::{lex, CcError, Tok, Token};

/// A C type in the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// `int` / `unsigned int` / enum-typed values.
    Int,
    /// `char` / `unsigned char`.
    Char,
    /// `short` / `unsigned short`.
    Short,
    /// `void` (function returns only).
    Void,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable or enum-constant reference.
    Var(String),
    /// Unary operator: `-`, `~`, `!`.
    Unary(&'static str, Box<Expr>),
    /// Binary operator (C spelling).
    Bin(&'static str, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// MMIO read: `*(volatile int *)addr`.
    Mmio(Box<Expr>),
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A named local, parameter, or global.
    Var(String),
    /// MMIO write target: `*(volatile int *)addr`.
    Mmio(Expr),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: CType,
        /// `volatile` qualifier.
        volatile: bool,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Assignment (`=` or compound `op=`; compound ops are pre-expanded).
    Assign {
        /// Target.
        target: LValue,
        /// Value.
        value: Expr,
    },
    /// `if` / `else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch.
        els: Vec<Stmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `do { } while (…);` loop.
    DoWhile {
        /// Body.
        body: Vec<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body` — kept structured so `continue`
    /// targets the step.
    For {
        /// Optional init statement (decl or assignment).
        init: Option<Box<Stmt>>,
        /// Condition (`1` when omitted).
        cond: Expr,
        /// Optional step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return`.
    Return(Option<Expr>),
    /// Expression evaluated for effect (calls).
    ExprStmt(Expr),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct CGlobal {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: CType,
    /// Constant initializer (0 when omitted).
    pub init: i64,
    /// `volatile` qualifier — accesses lower to volatile loads/stores.
    pub volatile: bool,
    /// `__sensitive` marker (or listed in [`crate::Options::sensitive`]).
    pub sensitive: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CFunc {
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, CType)>,
    /// Return type.
    pub ret: CType,
    /// Body.
    pub body: Vec<Stmt>,
}

/// One enum variant: name plus explicit initializer when present.
pub type EnumVariant = (String, Option<i64>);

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CProgram {
    /// Enum definitions (name, variants with explicit initializers).
    pub enums: Vec<(String, Vec<EnumVariant>)>,
    /// Globals.
    pub globals: Vec<CGlobal>,
    /// Functions.
    pub funcs: Vec<CFunc>,
}

/// Parses a translation unit.
///
/// # Errors
///
/// Returns [`CcError`] with the offending line for lexical and syntactic
/// problems.
pub fn parse(src: &str) -> Result<CProgram, CcError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens.get(self.pos).map_or(0, |t| t.line)
    }

    fn err(&self, msg: impl Into<String>) -> CcError {
        CcError { line: self.line(), msg: msg.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), CcError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {}", self.describe())))
        }
    }

    fn describe(&self) -> String {
        match self.peek() {
            Some(t) => t.to_string(),
            None => "end of input".into(),
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CcError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(CcError {
                line: self.tokens.get(self.pos.saturating_sub(1)).map_or(0, |t| t.line),
                msg: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    // ---------------- top level ----------------

    fn program(&mut self) -> Result<CProgram, CcError> {
        let mut prog = CProgram::default();
        while self.peek().is_some() {
            if self.eat_ident("enum") {
                // enum Name { A, B = 2 }; — or `enum Name var;` (a typed
                // global). Distinguish by the token after the name.
                let name = self.expect_ident()?;
                if self.eat_punct("{") {
                    let mut variants = Vec::new();
                    loop {
                        if self.eat_punct("}") {
                            break;
                        }
                        let vname = self.expect_ident()?;
                        let init = if self.eat_punct("=") { Some(self.const_int()?) } else { None };
                        variants.push((vname, init));
                        if !self.eat_punct(",") {
                            self.expect_punct("}")?;
                            break;
                        }
                    }
                    self.expect_punct(";")?;
                    prog.enums.push((name, variants));
                } else {
                    // enum-typed global: `enum Status state = FAILURE;`
                    let g = self.global_tail(CType::Int, false, false, &prog)?;
                    prog.globals.push(g);
                }
                continue;
            }
            // Qualifiers.
            let mut sensitive = false;
            let mut volatile = false;
            loop {
                if self.eat_ident("__sensitive") {
                    sensitive = true;
                } else if self.eat_ident("volatile") {
                    volatile = true;
                } else if self.eat_ident("static") || self.eat_ident("const") {
                    // accepted and ignored
                } else {
                    break;
                }
            }
            let ty = self.parse_type()?;
            // Function or global? name then `(` → function.
            let name = self.expect_ident()?;
            if self.eat_punct("(") {
                if sensitive || volatile {
                    return Err(self.err("qualifiers are for globals, not functions"));
                }
                let func = self.function_tail(name, ty)?;
                prog.funcs.push(func);
            } else {
                let mut g = self.global_named_tail(name, ty, volatile, sensitive, &prog)?;
                g.volatile = volatile;
                prog.globals.push(g);
            }
        }
        Ok(prog)
    }

    fn parse_type(&mut self) -> Result<CType, CcError> {
        let _unsigned = self.eat_ident("unsigned") || self.eat_ident("signed");
        if self.eat_ident("int") {
            Ok(CType::Int)
        } else if self.eat_ident("char") {
            Ok(CType::Char)
        } else if self.eat_ident("short") {
            let _ = self.eat_ident("int");
            Ok(CType::Short)
        } else if self.eat_ident("void") {
            Ok(CType::Void)
        } else if self.eat_ident("enum") {
            let _name = self.expect_ident()?;
            Ok(CType::Int)
        } else if _unsigned {
            Ok(CType::Int) // bare `unsigned`
        } else {
            Err(self.err(format!("expected a type, found {}", self.describe())))
        }
    }

    fn const_int(&mut self) -> Result<i64, CcError> {
        let neg = self.eat_punct("-");
        match self.bump() {
            Some(Tok::Int(v)) => Ok(if neg { -v } else { v }),
            other => Err(self.err(format!("expected integer constant, found {other:?}"))),
        }
    }

    fn global_tail(
        &mut self,
        ty: CType,
        volatile: bool,
        sensitive: bool,
        prog: &CProgram,
    ) -> Result<CGlobal, CcError> {
        let name = self.expect_ident()?;
        self.global_named_tail(name, ty, volatile, sensitive, prog)
    }

    fn global_named_tail(
        &mut self,
        name: String,
        ty: CType,
        volatile: bool,
        sensitive: bool,
        prog: &CProgram,
    ) -> Result<CGlobal, CcError> {
        let init = if self.eat_punct("=") {
            // Either an integer constant or an enum-constant name.
            match self.peek() {
                Some(Tok::Ident(_)) => {
                    let id = self.expect_ident()?;
                    enum_constant_value(prog, &id)
                        .ok_or_else(|| self.err(format!("unknown enum constant `{id}`")))?
                }
                _ => self.const_int()?,
            }
        } else {
            0
        };
        self.expect_punct(";")?;
        Ok(CGlobal { name, ty, init, volatile, sensitive })
    }

    fn function_tail(&mut self, name: String, ret: CType) -> Result<CFunc, CcError> {
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.eat_ident("void") {
                self.expect_punct(")")?;
            } else {
                loop {
                    let _ = self.eat_ident("volatile");
                    let pty = self.parse_type()?;
                    let pname = self.expect_ident()?;
                    params.push((pname, pty));
                    if !self.eat_punct(",") {
                        self.expect_punct(")")?;
                        break;
                    }
                }
            }
        }
        self.expect_punct("{")?;
        let body = self.block_tail()?;
        Ok(CFunc { name, params, ret, body })
    }

    // ---------------- statements ----------------

    /// Parses statements up to the closing `}` (already consumed `{`).
    fn block_tail(&mut self) -> Result<Vec<Stmt>, CcError> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input inside a block"));
            }
            out.push(self.statement()?);
        }
        Ok(out)
    }

    fn braced_or_single(&mut self) -> Result<Vec<Stmt>, CcError> {
        if self.eat_punct("{") {
            self.block_tail()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    #[allow(clippy::too_many_lines)]
    fn statement(&mut self) -> Result<Stmt, CcError> {
        // Declarations.
        let is_type_word = matches!(
            self.peek(),
            Some(Tok::Ident(s)) if matches!(
                s.as_str(),
                "int" | "char" | "short" | "unsigned" | "signed" | "volatile" | "enum"
            )
        );
        if is_type_word {
            // `enum X { … }` is top-level only; here `enum X v` declares.
            let volatile = self.eat_ident("volatile");
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            let init = if self.eat_punct("=") { Some(self.expression()?) } else { None };
            self.expect_punct(";")?;
            return Ok(Stmt::Decl { name, ty, volatile, init });
        }
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let then = self.braced_or_single()?;
            let els = if self.eat_ident("else") { self.braced_or_single()? } else { Vec::new() };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let body = if self.eat_punct(";") { Vec::new() } else { self.braced_or_single()? };
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_ident("do") {
            let body = self.braced_or_single()?;
            if !self.eat_ident("while") {
                return Err(self.err("expected `while` after `do` body"));
            }
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile { body, cond });
        }
        if self.eat_ident("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") { None } else { Some(Box::new(self.statement()?)) };
            let cond = if self.eat_punct(";") {
                Expr::Int(1)
            } else {
                let c = self.expression()?;
                self.expect_punct(";")?;
                c
            };
            let step = if self.eat_punct(")") {
                None
            } else {
                let s = self.assign_or_expr_stmt(false)?;
                self.expect_punct(")")?;
                Some(Box::new(s))
            };
            let body = self.braced_or_single()?;
            return Ok(Stmt::For { init, cond, step, body });
        }
        if self.eat_ident("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expression()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_ident("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_ident("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        let s = self.assign_or_expr_stmt(true)?;
        Ok(s)
    }

    /// Assignment / compound assignment / increment / call statement.
    /// `want_semi` controls the trailing `;` (for-steps omit it).
    fn assign_or_expr_stmt(&mut self, want_semi: bool) -> Result<Stmt, CcError> {
        let stmt = if self.peek() == Some(&Tok::Punct("*")) {
            // MMIO store: *(volatile int *)ADDR = value;
            let addr = self.mmio_target()?;
            self.expect_punct("=")?;
            let value = self.expression()?;
            Stmt::Assign { target: LValue::Mmio(addr), value }
        } else if let (Some(Tok::Ident(name)), Some(next)) = (self.peek(), self.peek2()) {
            let name = name.clone();
            match next {
                Tok::Punct("=") => {
                    self.pos += 2;
                    let value = self.expression()?;
                    Stmt::Assign { target: LValue::Var(name), value }
                }
                Tok::Punct(
                    op @ ("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>="),
                ) => {
                    let bin: &'static str = &op[..op.len() - 1];
                    self.pos += 2;
                    let rhs = self.expression()?;
                    Stmt::Assign {
                        target: LValue::Var(name.clone()),
                        value: Expr::Bin(bin, Box::new(Expr::Var(name)), Box::new(rhs)),
                    }
                }
                Tok::Punct(op @ ("++" | "--")) => {
                    let bin: &'static str = if *op == "++" { "+" } else { "-" };
                    self.pos += 2;
                    Stmt::Assign {
                        target: LValue::Var(name.clone()),
                        value: Expr::Bin(bin, Box::new(Expr::Var(name)), Box::new(Expr::Int(1))),
                    }
                }
                _ => Stmt::ExprStmt(self.expression()?),
            }
        } else {
            Stmt::ExprStmt(self.expression()?)
        };
        if want_semi {
            self.expect_punct(";")?;
        }
        Ok(stmt)
    }

    /// `*(volatile int *)expr` — consumes through the address expression.
    fn mmio_target(&mut self) -> Result<Expr, CcError> {
        self.expect_punct("*")?;
        self.expect_punct("(")?;
        let _ = self.eat_ident("volatile");
        let _ = self.parse_type()?;
        self.expect_punct("*")?;
        self.expect_punct(")")?;
        self.unary()
    }

    // ---------------- expressions (precedence climbing) ----------------

    fn expression(&mut self) -> Result<Expr, CcError> {
        self.binary(0)
    }

    fn binary(&mut self, min_level: u8) -> Result<Expr, CcError> {
        const LEVELS: [&[&str]; 10] = [
            &["||"],
            &["&&"],
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", "<=", ">", ">="],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if min_level as usize >= LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(min_level + 1)?;
        while let Some(Tok::Punct(p)) = self.peek() {
            let Some(op) = LEVELS[min_level as usize].iter().find(|o| *o == p) else { break };
            let op: &'static str = op;
            self.pos += 1;
            let rhs = self.binary(min_level + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CcError> {
        if self.eat_punct("-") {
            return Ok(Expr::Unary("-", Box::new(self.unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::Unary("~", Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary("!", Box::new(self.unary()?)));
        }
        if self.peek() == Some(&Tok::Punct("*")) {
            let addr = self.mmio_target()?;
            return Ok(Expr::Mmio(Box::new(addr)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CcError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Ident(name)) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expression()?);
                            if !self.eat_punct(",") {
                                self.expect_punct(")")?;
                                break;
                            }
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::Punct("(")) => {
                let e = self.expression()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(CcError {
                line: self.tokens.get(self.pos.saturating_sub(1)).map_or(0, |t| t.line),
                msg: format!("expected expression, found {other:?}"),
            }),
        }
    }
}

/// Resolves an enum-constant name to its C value in `prog`.
pub fn enum_constant_value(prog: &CProgram, name: &str) -> Option<i64> {
    for (_, variants) in &prog.enums {
        let mut value = -1i64;
        for (vname, init) in variants {
            value = init.unwrap_or(value + 1);
            if vname == name {
                return Some(value);
            }
        }
    }
    None
}

/// Finds the enum (name, variant index) of a constant, for provenance.
pub fn enum_constant_ref(prog: &CProgram, name: &str) -> Option<(String, u32)> {
    for (ename, variants) in &prog.enums {
        if let Some(idx) = variants.iter().position(|(v, _)| v == name) {
            return Some((ename.clone(), idx as u32));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_doc_example() {
        let src = r"
enum Status { FAILURE, SUCCESS };
__sensitive int tick = 0;
volatile int a = 0;

int check(int t) {
    if (t == 0) { return 1; }
    return 0;
}

int main(void) {
    *(volatile int *)0x48000014 = 1;
    while (!a) { }
    return 0xACCE55;
}
";
        let prog = parse(src).unwrap();
        assert_eq!(prog.enums.len(), 1);
        assert_eq!(prog.globals.len(), 2);
        assert!(prog.globals[0].sensitive);
        assert!(prog.globals[1].volatile);
        assert_eq!(prog.funcs.len(), 2);
        assert_eq!(prog.funcs[1].name, "main");
    }

    #[test]
    fn precedence() {
        let prog = parse("int f(void) { return 1 + 2 * 3 == 7 && 1; }").unwrap();
        let Stmt::Return(Some(e)) = &prog.funcs[0].body[0] else { panic!() };
        // (&& ((== (+ 1 (* 2 3)) 7) 1))
        let Expr::Bin("&&", lhs, _) = e else { panic!("got {e:?}") };
        let Expr::Bin("==", sum, _) = &**lhs else { panic!("got {lhs:?}") };
        let Expr::Bin("+", _, prod) = &**sum else { panic!("got {sum:?}") };
        assert!(matches!(&**prod, Expr::Bin("*", _, _)));
    }

    #[test]
    fn compound_assignment_expands() {
        let prog = parse("int f(int x) { x += 2; x++; return x; }").unwrap();
        let Stmt::Assign { value, .. } = &prog.funcs[0].body[0] else { panic!() };
        assert!(matches!(value, Expr::Bin("+", _, _)));
        let Stmt::Assign { value, .. } = &prog.funcs[0].body[1] else { panic!() };
        assert!(matches!(value, Expr::Bin("+", _, _)));
    }

    #[test]
    fn for_keeps_its_structure() {
        let prog =
            parse("int f(void) { int s = 0; for (int i = 0; i < 4; i++) { s += i; } return s; }")
                .unwrap();
        let body = &prog.funcs[0].body;
        assert!(matches!(body[0], Stmt::Decl { .. }));
        let Stmt::For { init, step, .. } = &body[1] else { panic!("{body:?}") };
        assert!(matches!(init.as_deref(), Some(Stmt::Decl { .. })));
        assert!(matches!(step.as_deref(), Some(Stmt::Assign { .. })));
    }

    #[test]
    fn enum_initializers_resolve() {
        let prog = parse("enum E { A, B = 5, C };\nenum E s = C;\n").unwrap();
        assert_eq!(prog.globals[0].init, 6);
        assert_eq!(enum_constant_value(&prog, "A"), Some(0));
        assert_eq!(enum_constant_ref(&prog, "C"), Some(("E".into(), 2)));
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse("int f(void) {\n  return @;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("int f(void) { if (1 { } }").unwrap_err();
        assert!(err.msg.contains("expected"));
    }

    #[test]
    fn mmio_read_and_write() {
        let prog = parse(
            "int f(void) { int v = *(volatile int *)0x40000000; *(volatile int *)0x40000004 = v; return v; }",
        )
        .unwrap();
        let Stmt::Decl { init: Some(Expr::Mmio(_)), .. } = &prog.funcs[0].body[0] else { panic!() };
        let Stmt::Assign { target: LValue::Mmio(_), .. } = &prog.funcs[0].body[1] else { panic!() };
    }

    #[test]
    fn do_while_and_break() {
        let prog = parse(
            "int f(void) { int i = 0; do { i++; if (i > 3) { break; } } while (1); return i; }",
        )
        .unwrap();
        assert!(matches!(prog.funcs[0].body[1], Stmt::DoWhile { .. }));
    }
}
