//! The `gd-lint` report over the boot firmware: every Table IV defense
//! configuration is hardened, compiled, and linted at both the IR and the
//! image level. The "All" row is the acceptance gate — a fully hardened
//! boot image must produce **zero** missing-defense (`GL01xx`) findings —
//! while "None" documents the exposed surface the defenses close.

use gd_backend::compile;
use gd_lint::{lint_image, lint_module, LintReport, Severity, Suppressions};
use glitch_resistor::Defenses;

use crate::overhead::{boot_module, configurations};

/// Lints the boot firmware under one defense configuration and returns
/// the `(report, rendered section)` pair.
///
/// # Panics
///
/// Panics if the boot fixture fails to harden or lower.
pub fn lint_boot(name: &str, defenses: Defenses) -> (LintReport, String) {
    let module = boot_module(defenses);
    let image = compile(&module, "main").expect("boot firmware lowers");
    let mut findings = lint_module(&module);
    let (image_findings, sensitivity) = lint_image(&image);
    findings.extend(image_findings);
    let report = LintReport::new(findings, &Suppressions::default());

    let mut out = format!("== {name} ==\n");
    // Counts for every lint, itemized warnings, then the per-routine
    // surface table (GL0201 notes are counted but not itemized — one line
    // per branch would swamp the report without adding review value).
    out.push_str(&report.render_text(Severity::Warning));
    out.push_str("-- glitch sensitivity --\n");
    for (func, s) in &sensitivity {
        out.push_str(&format!(
            "{func}: {} branches, {} diverting flips ({} inverted, {} unconditional, {} fall-through)\n",
            s.branches,
            s.diversions(),
            s.inverted,
            s.unconditional,
            s.fall_through,
        ));
    }
    (report, out)
}

/// The full `results/lint_boot.txt` artifact: one section per Table IV
/// configuration, in paper order. Sections are computed in parallel and
/// concatenated in order, so the output is byte-identical regardless of
/// `GD_THREADS`.
pub fn full_report() -> String {
    let configs = configurations();
    gd_exec::par_map_chunks(&configs, 1, |chunk| {
        chunk.items.iter().map(|&(name, d)| lint_boot(name, d).1).collect::<String>()
    })
    .concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_hardened_boot_has_zero_missing_defense_findings() {
        let (report, _) = lint_boot("All", Defenses::ALL);
        let gl01xx: Vec<_> =
            report.findings().iter().filter(|f| f.lint.starts_with("GL01")).collect();
        assert!(gl01xx.is_empty(), "GL01xx on the All image: {gl01xx:?}");
        assert!(!report.deny(), "--deny passes on the fully hardened boot image");
        // The surface notes remain — hardware flip surface never vanishes.
        assert!(report.counts()["GL0201"] > 0);
    }

    #[test]
    fn unhardened_boot_exposes_every_lint_family() {
        let (report, _) = lint_boot("None", Defenses::NONE);
        let counts = report.counts();
        for lint in ["GL0101", "GL0102", "GL0103", "GL0104", "GL0105", "GL0106"] {
            assert!(counts[lint] > 0, "{lint} expected on the bare boot image: {counts:?}");
        }
        assert!(report.deny(), "--deny fails on the bare boot image");
    }

    #[test]
    fn report_is_deterministic_for_a_fixed_config() {
        let (_, a) = lint_boot("Loops", Defenses::LOOPS);
        let (_, b) = lint_boot("Loops", Defenses::LOOPS);
        assert_eq!(a, b);
    }
}
