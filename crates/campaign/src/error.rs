//! Typed campaign failures — the engine's failure taxonomy.
//!
//! The engine retries transient faults internally (shard panics are
//! quarantined and retried with backoff, torn or corrupt store files
//! are recomputed, an aborted fan-out is resubmitted), so a
//! [`CampaignError`] is what remains *after* self-healing gave up. The
//! taxonomy still matters to callers deciding whether to resubmit:
//! [`CampaignError::retryable`] splits deterministic failures (an
//! invalid spec will never validate) from environmental ones (a full
//! disk may empty, a fault schedule may roll differently).

/// Why a campaign failed. `Display` renders the operator-facing
/// message (the service serves it verbatim in `409` bodies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The spec is unusable: validation failed, the shard range exceeds
    /// the plan, or a target fixture does not build. Deterministic —
    /// resubmitting the same spec fails the same way.
    Invalid(String),
    /// Store I/O the engine could not work around (an uncreatable
    /// checkpoint directory, an unwritable cache).
    Store(String),
    /// The merged shard results could not be rendered into the report.
    Render(String),
    /// One shard exhausted its retry budget: every attempt panicked.
    /// Carries everything an operator needs to triage without a core
    /// dump: which shard, what it was doing, how often it was tried,
    /// and the final panic message.
    ShardFailed {
        /// Plan index of the failing shard.
        shard: u32,
        /// The shard's human-readable work label.
        label: String,
        /// Attempts made before giving up (the configured budget).
        attempts: u32,
        /// Panic message of the last attempt.
        cause: String,
    },
    /// The executor fan-out itself aborted repeatedly without a single
    /// new shard completing — worker-level panics struck faster than
    /// progress could be made.
    FanoutFailed {
        /// Consecutive progress-free fan-out passes before giving up.
        attempts: u32,
        /// Panic message of the last aborted pass.
        cause: String,
    },
}

impl CampaignError {
    /// Whether resubmitting the identical campaign could plausibly
    /// succeed. Spec and render failures are deterministic (fatal);
    /// store and execution failures depend on the environment.
    pub fn retryable(&self) -> bool {
        match self {
            CampaignError::Invalid(_) | CampaignError::Render(_) => false,
            CampaignError::Store(_)
            | CampaignError::ShardFailed { .. }
            | CampaignError::FanoutFailed { .. } => true,
        }
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Invalid(m) | CampaignError::Store(m) | CampaignError::Render(m) => {
                f.write_str(m)
            }
            CampaignError::ShardFailed { shard, label, attempts, cause } => {
                write!(f, "shard {shard} ({label}) failed after {attempts} attempts: {cause}")
            }
            CampaignError::FanoutFailed { attempts, cause } => {
                write!(f, "shard fan-out aborted {attempts} times without progress: {cause}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// The pre-PR-4 engine API returned `Result<_, String>`; existing
/// callers (the CLI, doc examples) keep working through this.
impl From<CampaignError> for String {
    fn from(e: CampaignError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_shard_attempts_and_cause() {
        let e = CampaignError::ShardFailed {
            shard: 17,
            label: "table1 vdd=3 width=5".into(),
            attempts: 5,
            cause: "gd-chaos: injected shard panic".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("shard 17"), "{msg}");
        assert!(msg.contains("after 5 attempts"), "{msg}");
        assert!(msg.contains("injected shard panic"), "{msg}");
        assert!(msg.contains("table1 vdd=3 width=5"), "{msg}");
    }

    #[test]
    fn taxonomy_splits_retryable_from_fatal() {
        assert!(!CampaignError::Invalid("bad spec".into()).retryable());
        assert!(!CampaignError::Render("merge hole".into()).retryable());
        assert!(CampaignError::Store("disk full".into()).retryable());
        assert!(CampaignError::FanoutFailed { attempts: 3, cause: "x".into() }.retryable());
        let shard = CampaignError::ShardFailed {
            shard: 0,
            label: "l".into(),
            attempts: 1,
            cause: "c".into(),
        };
        assert!(shard.retryable());
    }

    #[test]
    fn string_conversion_preserves_the_message() {
        let s: String = CampaignError::Invalid("shard range end 99 exceeds".into()).into();
        assert!(s.contains("exceeds"));
    }
}
