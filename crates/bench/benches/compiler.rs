//! Benchmarks of the GlitchResistor compilation pipeline itself: parse,
//! harden (all defenses), and lower the boot firmware to machine code.

use gd_bench::timing::Harness;
use glitch_resistor::{harden, Config, Defenses};

fn bench_compile(h: &Harness) {
    h.bench("compiler/build_boot_module", gd_firmware::boot);
    let module = gd_firmware::boot();
    h.bench("compiler/harden_all", || {
        let mut m = module.clone();
        harden(&mut m, &Config::new(Defenses::ALL))
    });
    let mut hardened = module.clone();
    harden(&mut hardened, &Config::new(Defenses::ALL));
    h.bench("compiler/lower_hardened_boot", || gd_backend::compile(&hardened, "main").unwrap());
    h.bench("compiler/verify_hardened_boot", || {
        gd_ir::verify_module(&hardened).unwrap();
    });
}

fn main() {
    let h = Harness::from_env();
    bench_compile(&h);
}
