//! Data integrity for sensitive globals (paper §VI-B-a).
//!
//! Every global the developer marked *sensitive* gets a complement shadow
//! (`<name>__integrity`, placed by the backend in a physically separate
//! memory region). Stores also write the bitwise complement to the shadow;
//! loads read both and call `gr_detected()` unless
//! `value XOR shadow == ¬0`.

use gd_ir::{BlockId, Instr, Module, Pred, Terminator, Ty, ValueDef, ValueId};

use crate::config::Config;
use crate::pass::{detect_trampoline, Pass, Report};

/// Suffix appended to shadow globals. The backend places globals with this
/// suffix in the shadow data region, away from their primaries.
pub const INTEGRITY_SUFFIX: &str = "__integrity";

/// The data-integrity pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct DataIntegrity;

fn all_ones(ty: Ty) -> i64 {
    (1i64 << (ty.size() * 8)) - 1
}

impl Pass for DataIntegrity {
    fn name(&self) -> &'static str {
        "data-integrity"
    }

    fn run(&self, module: &mut Module, _config: &Config, report: &mut Report) {
        let sensitive: Vec<(String, Ty, i64)> = module
            .globals
            .iter()
            .filter(|g| g.sensitive && !g.name.ends_with(INTEGRITY_SUFFIX))
            .map(|g| (g.name.clone(), g.ty, g.init))
            .collect();
        if sensitive.is_empty() {
            return;
        }

        // Create the shadow globals (idempotent).
        for (name, ty, init) in &sensitive {
            let shadow = format!("{name}{INTEGRITY_SUFFIX}");
            if module.global(&shadow).is_none() {
                module.add_global(gd_ir::Global {
                    name: shadow,
                    ty: *ty,
                    init: !init & all_ones(*ty),
                    sensitive: false,
                });
            }
        }

        let is_sensitive =
            |name: &str| sensitive.iter().find(|(n, _, _)| n == name).map(|(_, ty, _)| *ty);

        for func in &mut module.funcs {
            // Gather (block, position, access) sites first; rewriting splits
            // blocks, so process back-to-front per block.
            let mut sites: Vec<(BlockId, usize, Site)> = Vec::new();
            for bb in func.block_ids() {
                for (pos, &id) in func.block(bb).instrs.iter().enumerate() {
                    let ValueDef::Instr(instr) = func.value(id) else { continue };
                    match instr {
                        Instr::Load { ptr, ty, .. } => {
                            if let Some(name) = global_of(func, *ptr) {
                                if is_sensitive(&name).is_some() {
                                    sites.push((bb, pos, Site::Load { id, name, ty: *ty }));
                                }
                            }
                        }
                        Instr::Store { ptr, value, .. } => {
                            if let Some(name) = global_of(func, *ptr) {
                                if let Some(ty) = is_sensitive(&name) {
                                    sites.push((
                                        bb,
                                        pos,
                                        Site::Store { id, name, value: *value, ty },
                                    ));
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            // Later sites first so earlier positions stay valid.
            sites.sort_by_key(|(bb, pos, _)| std::cmp::Reverse((*bb, *pos)));
            for (bb, pos, site) in sites {
                match site {
                    Site::Store { id, name, value, ty } => {
                        let shadow = format!("{name}{INTEGRITY_SUFFIX}");
                        let addr = func.create_instr(Instr::GlobalAddr { name: shadow }, Ty::Ptr);
                        let inv = func.create_instr(Instr::Not { arg: value }, ty);
                        let store = func.create_instr(
                            Instr::Store { ptr: addr, value: inv, volatile: true },
                            Ty::Void,
                        );
                        let instrs = &mut func.block_mut(bb).instrs;
                        instrs.splice(pos + 1..pos + 1, [addr, inv, store]);
                        func.guards.shadowed_stores.push(id);
                        report.stores_shadowed += 1;
                    }
                    Site::Load { id, name, ty } => {
                        let detect = split_and_check(func, bb, pos, id, &name, ty);
                        func.guards.checked_loads.push(id);
                        func.guards.guard_blocks.push(detect);
                        report.loads_checked += 1;
                    }
                }
            }
        }
        module.declare_extern(crate::pass::DETECT_FN, vec![], Ty::Void);
    }
}

enum Site {
    Load { id: ValueId, name: String, ty: Ty },
    Store { id: ValueId, name: String, value: ValueId, ty: Ty },
}

fn global_of(func: &gd_ir::Function, ptr: ValueId) -> Option<String> {
    match func.value(ptr) {
        ValueDef::Instr(Instr::GlobalAddr { name }) => Some(name.clone()),
        _ => None,
    }
}

/// After the load at `(bb, pos)`, loads the shadow, verifies
/// `v ^ shadow == ¬0`, and branches to a detect trampoline on mismatch.
/// Returns the trampoline block.
fn split_and_check(
    func: &mut gd_ir::Function,
    bb: BlockId,
    pos: usize,
    loaded: ValueId,
    name: &str,
    ty: Ty,
) -> BlockId {
    // Split: everything after the load moves to a continuation block.
    let cont_name = format!("{}.grint{}", func.block(bb).name, func.block_count());
    let cont = func.add_block(&cont_name);
    let tail: Vec<ValueId> = func.block_mut(bb).instrs.split_off(pos + 1);
    let old_term = func.block_mut(bb).term.take();
    func.block_mut(cont).instrs = tail;
    func.block_mut(cont).term = old_term;
    // Successor phis must now name `cont` as predecessor instead of `bb`.
    let succs: Vec<BlockId> =
        func.block(cont).term.as_ref().map(|t| t.successors()).unwrap_or_default();
    for succ in succs {
        crate::pass::retarget_phis(func, succ, bb, cont);
    }

    // Check sequence at the end of `bb`.
    let shadow = format!("{name}{INTEGRITY_SUFFIX}");
    let addr = func.create_instr(Instr::GlobalAddr { name: shadow }, Ty::Ptr);
    let sv = func.create_instr(Instr::Load { ptr: addr, ty, volatile: true }, ty);
    let xor = func.create_instr(Instr::Bin { op: gd_ir::BinOp::Xor, lhs: loaded, rhs: sv }, ty);
    let ones = func.const_int(ty, all_ones(ty));
    let ok = func.create_instr(Instr::Icmp { pred: Pred::Eq, lhs: xor, rhs: ones }, Ty::I1);
    let block = func.block_mut(bb);
    block.instrs.extend([addr, sv, xor, ok]);
    let detect = detect_trampoline(func, cont);
    func.block_mut(bb).term = Some(Terminator::CondBr { cond: ok, then_bb: cont, else_bb: detect });
    detect
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, Defenses};
    use gd_ir::{parse_module, print_module, verify_module, Interpreter, RtVal};

    const SRC: &str = "
global @tick : i32 = 0 sensitive
global @plain : i32 = 7

fn @bump() -> i32 {
entry:
  %p = globaladdr @tick
  %v = load i32, %p
  %v2 = add i32 %v, 1
  store i32 %v2, %p
  %q = globaladdr @plain
  %w = load i32, %q
  %r = add i32 %v2, %w
  ret i32 %r
}
";

    fn harden(src: &str) -> (Module, Report) {
        let mut m = parse_module(src).unwrap();
        let mut report = Report::default();
        DataIntegrity.run(&mut m, &Config::new(Defenses::INTEGRITY), &mut report);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        (m, report)
    }

    #[test]
    fn shadow_global_created_with_complement_init() {
        let (m, report) = harden(SRC);
        let shadow = m.global("tick__integrity").expect("shadow exists");
        assert_eq!(shadow.init, 0xFFFF_FFFF);
        assert!(m.global("plain__integrity").is_none(), "plain global untouched");
        assert_eq!(report.loads_checked, 1);
        assert_eq!(report.stores_shadowed, 1);
    }

    #[test]
    fn unglitched_execution_unchanged_and_undetected() {
        let (m, _) = harden(SRC);
        let mut interp = Interpreter::new(&m);
        let mut detected = 0;
        let r = interp
            .run("bump", &[], &mut |n, _| {
                if n == "gr_detected" {
                    detected += 1;
                }
                RtVal::Int(0)
            })
            .unwrap();
        assert_eq!(r, RtVal::Int(8), "(0+1) + 7");
        assert_eq!(detected, 0);
        assert_eq!(interp.global("tick"), 1);
        assert_eq!(interp.global("tick__integrity") as u32, !1u32, "shadow tracks");
    }

    #[test]
    fn corrupted_global_is_detected_on_load() {
        let (m, _) = harden(SRC);
        let mut interp = Interpreter::new(&m);
        // Simulate a glitch that flipped bits of the primary copy between
        // boot and the load.
        interp.set_global("tick", 0x40);
        let mut detected = 0;
        interp
            .run("bump", &[], &mut |n, _| {
                if n == "gr_detected" {
                    detected += 1;
                }
                RtVal::Int(0)
            })
            .unwrap();
        assert_eq!(detected, 1, "mismatch between value and shadow fires");
    }

    #[test]
    fn corrupted_shadow_is_detected_too() {
        let (m, _) = harden(SRC);
        let mut interp = Interpreter::new(&m);
        interp.set_global("tick__integrity", 0);
        let mut detected = 0;
        interp
            .run("bump", &[], &mut |n, _| {
                if n == "gr_detected" {
                    detected += 1;
                }
                RtVal::Int(0)
            })
            .unwrap();
        assert_eq!(detected, 1);
    }

    #[test]
    fn store_then_load_round_trip_stays_consistent() {
        let src = "
global @key : i32 = 0x1234 sensitive
fn @update(%v: i32) -> i32 {
entry:
  %p = globaladdr @key
  store i32 %v, %p
  %w = load i32, %p
  ret i32 %w
}
";
        let (m, _) = harden(src);
        let mut interp = Interpreter::new(&m);
        let mut detected = 0;
        let r = interp
            .run("update", &[RtVal::Int(0xBEEF)], &mut |n, _| {
                if n == "gr_detected" {
                    detected += 1;
                }
                RtVal::Int(0)
            })
            .unwrap();
        assert_eq!(r, RtVal::Int(0xBEEF));
        assert_eq!(detected, 0);
    }

    #[test]
    fn idempotent_over_shadows() {
        // Running the pass twice must not shadow the shadows.
        let mut m = parse_module(SRC).unwrap();
        let cfg = Config::new(Defenses::INTEGRITY);
        let mut report = Report::default();
        DataIntegrity.run(&mut m, &cfg, &mut report);
        let globals_after_one = m.globals.len();
        DataIntegrity.run(&mut m, &cfg, &mut report);
        assert_eq!(m.globals.len(), globals_after_one);
    }

    #[test]
    fn i8_globals_use_narrow_complement() {
        let src = "
global @flag : i8 = 1 sensitive
fn @read() -> i8 {
entry:
  %p = globaladdr @flag
  %v = load i8, %p
  ret i8 %v
}
";
        let (m, _) = harden(src);
        assert_eq!(m.global("flag__integrity").unwrap().init, 0xFE);
        let mut interp = Interpreter::new(&m);
        let mut detected = 0;
        let r = interp
            .run("read", &[], &mut |n, _| {
                if n == "gr_detected" {
                    detected += 1;
                }
                RtVal::Int(0)
            })
            .unwrap();
        assert_eq!(r, RtVal::Int(1));
        assert_eq!(detected, 0);
    }
}
