//! Edge-case tests for the defense passes: nested loops, multiple callers,
//! multiple sensitive accesses per block, and pass interaction order.

use gd_ir::{parse_module, print_module, verify_module, Interpreter, RtVal};
use glitch_resistor::{harden, Config, Defenses, Pass, Report};

fn interp_main(m: &gd_ir::Module, detected: &mut u32) -> i64 {
    let mut interp = Interpreter::new(m);
    interp.fuel = 10_000_000;
    let mut hits = 0u32;
    let r = interp
        .run("main", &[], &mut |n, _| {
            if n == "gr_detected" {
                hits += 1;
            }
            RtVal::Int(0)
        })
        .unwrap();
    *detected = hits;
    r.int()
}

#[test]
fn nested_loops_get_hardened_without_breaking() {
    let src = "
fn @main() -> i32 {
entry:
  br outer
outer:
  %i = phi i32 [ 0, entry ], [ %i2, outer.latch ]
  br inner
inner:
  %j = phi i32 [ 0, outer ], [ %j2, inner ]
  %j2 = add i32 %j, 1
  %jc = icmp ult i32 %j2, 3
  br %jc, inner, outer.latch
outer.latch:
  %i2 = add i32 %i, 1
  %ic = icmp ult i32 %i2, 4
  br %ic, outer, done
done:
  %r = mul i32 %i2, 100
  ret i32 %r
}
";
    let mut m = parse_module(src).unwrap();
    let report = harden(&mut m, &Config::new(Defenses::ALL_EXCEPT_DELAY));
    verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
    assert!(report.loops_instrumented >= 2, "both loop exits instrumented");
    let mut detected = 0;
    assert_eq!(interp_main(&m, &mut detected), 400);
    assert_eq!(detected, 0);
}

#[test]
fn return_codes_rewrite_multiple_callers_consistently() {
    let src = "
fn @status(%x: i32) -> i32 {
entry:
  %c = icmp eq i32 %x, 9
  br %c, ok, no
ok:
  ret i32 1
no:
  ret i32 0
}
fn @first() -> i32 {
entry:
  %r = call i32 @status(9)
  %c = icmp eq i32 %r, 1
  br %c, a, b
a:
  ret i32 10
b:
  ret i32 20
}
fn @second() -> i32 {
entry:
  %r = call i32 @status(5)
  %c = icmp ne i32 %r, 0
  br %c, a, b
a:
  ret i32 30
b:
  ret i32 40
}
fn @main() -> i32 {
entry:
  %x = call i32 @first()
  %y = call i32 @second()
  %s = add i32 %x, %y
  ret i32 %s
}
";
    let mut m = parse_module(src).unwrap();
    let mut report = Report::default();
    glitch_resistor::ReturnCodes.run(&mut m, &Config::new(Defenses::RETURNS), &mut report);
    verify_module(&m).unwrap();
    // `second` compares against 0 — also rewritten consistently.
    let mut detected = 0;
    assert_eq!(interp_main(&m, &mut detected), 10 + 40);
}

#[test]
fn return_codes_skip_functions_whose_result_escapes() {
    let src = "
fn @status() -> i32 {
entry:
  ret i32 1
}
fn @main() -> i32 {
entry:
  %r = call i32 @status()
  ret i32 %r
}
";
    let mut m = parse_module(src).unwrap();
    let mut report = Report::default();
    glitch_resistor::ReturnCodes.run(&mut m, &Config::new(Defenses::RETURNS), &mut report);
    assert_eq!(report.returns_rewritten, 0, "result flows into a return, not a compare");
    let mut detected = 0;
    assert_eq!(interp_main(&m, &mut detected), 1);
}

#[test]
fn integrity_handles_two_loads_in_one_block() {
    let src = "
global @k : i32 = 0x40 sensitive
fn @main() -> i32 {
entry:
  %p = globaladdr @k
  %a = load i32, %p
  %b = load i32, %p
  %s = add i32 %a, %b
  ret i32 %s
}
";
    let mut m = parse_module(src).unwrap();
    let report = harden(&mut m, &Config::new(Defenses::INTEGRITY));
    verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
    assert_eq!(report.loads_checked, 2, "both loads in the block get checks");
    let mut detected = 0;
    assert_eq!(interp_main(&m, &mut detected), 0x80);
    assert_eq!(detected, 0);

    // Corrupting the primary after boot is caught at the first check; the
    // generated gr_detected parks the core (observable as fuel exhaustion
    // with the detect flag raised).
    let mut interp = Interpreter::new(&m);
    interp.fuel = 100_000;
    interp.set_global("k", 0x41);
    let err = interp.run("main", &[], &mut |_, _| RtVal::Int(0)).unwrap_err();
    assert_eq!(err, gd_ir::InterpError::OutOfFuel);
    assert_eq!(interp.global("__gr_detect_flag"), 1, "detection flag raised");
}

#[test]
fn integrity_then_branches_compose_on_the_same_guard() {
    // The integrity check introduces new cond branches; the branch pass
    // then instruments those too — double-layered checks must still be
    // semantics-preserving.
    let src = "
global @k : i32 = 5 sensitive
fn @main() -> i32 {
entry:
  %p = globaladdr @k
  %v = load i32, %p
  %c = icmp eq i32 %v, 5
  br %c, yes, no
yes:
  ret i32 111
no:
  ret i32 222
}
";
    let mut m = parse_module(src).unwrap();
    let report = harden(&mut m, &Config::new(Defenses::ALL_EXCEPT_DELAY));
    verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
    assert!(report.loads_checked >= 1);
    assert!(report.branches_instrumented >= 2, "guard + integrity branch");
    let mut detected = 0;
    assert_eq!(interp_main(&m, &mut detected), 111);
    assert_eq!(detected, 0);
}

#[test]
fn enum_rewriter_handles_multiple_enums_with_shared_variant_names() {
    let src = "
enum A { ZERO, ONE }
enum B { NIL, UNIT }
fn @main() -> i32 {
entry:
  %x = add i32 A::ONE, 0
  %y = add i32 B::UNIT, 0
  %c = icmp eq i32 %x, %y
  br %c, same, diff
same:
  ret i32 1
diff:
  ret i32 0
}
";
    let mut m = parse_module(src).unwrap();
    let mut report = Report::default();
    glitch_resistor::EnumRewriter.run(&mut m, &Config::new(Defenses::ENUMS), &mut report);
    verify_module(&m).unwrap();
    assert_eq!(report.enums_rewritten, 2);
    // Identical ordinals now map to identical RS codes (same generator) —
    // by design, like the paper's per-set generation.
    let a1 = m.enum_def("A").unwrap().value_of(1);
    let b1 = m.enum_def("B").unwrap().value_of(1);
    assert_eq!(a1, b1);
    let mut detected = 0;
    assert_eq!(interp_main(&m, &mut detected), 1);
}

#[test]
fn delay_injection_counts_scale_with_cfg_size() {
    let src = "
fn @main() -> i32 {
entry:
  br a
a:
  br b
b:
  br c
c:
  ret i32 0
}
";
    let mut m = parse_module(src).unwrap();
    let report = harden(&mut m, &Config::new(Defenses::DELAY));
    verify_module(&m).unwrap();
    // entry, a, b end in branches (plus gr_delay's own branch-free blocks
    // are exempt).
    assert_eq!(report.delays_injected, 3);
}

#[test]
fn hardening_is_stable_under_repetition() {
    // Running harden twice must not blow up or change behavior (passes are
    // not strictly idempotent in size, but must stay correct).
    let src = "
fn @main() -> i32 {
entry:
  %c = icmp eq i32 3, 3
  br %c, a, b
a:
  ret i32 7
b:
  ret i32 8
}
";
    let mut m = parse_module(src).unwrap();
    harden(&mut m, &Config::new(Defenses::ALL_EXCEPT_DELAY));
    harden(&mut m, &Config::new(Defenses::ALL_EXCEPT_DELAY));
    verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
    let mut detected = 0;
    assert_eq!(interp_main(&m, &mut detected), 7);
    assert_eq!(detected, 0);
}
