//! Regression tests for the campaign service's failure paths (the PR 3
//! hardening): slow-dribbling clients get `408` without wedging the
//! accept thread, failed campaigns answer `409` with their failure
//! message (404 stays reserved for unknown ids), and the `/metrics`
//! route exposes the gd-obs families that prove the fixes hold.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gd_campaign::http::{request, request_timeout};
use gd_campaign::json::parse;
use gd_campaign::service::{Server, ServerConfig};
use gd_campaign::CampaignSpec;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gd-service-test-{tag}-{}", std::process::id()))
}

/// A one-shard Figure 2 spec — the smallest valid campaign.
fn tiny_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::fig2();
    spec.shards = Some((0, 1));
    spec
}

fn submit(addr: &str, spec: &CampaignSpec) -> (u16, String) {
    let body = spec.to_json_text().expect("spec serializes");
    request(addr, "POST", "/campaigns", Some(&body)).expect("POST /campaigns")
}

/// Polls until the job reaches `want` (`done` or `failed`).
fn await_state(addr: &str, id: u64, want: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/campaigns/{id}"), None).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body).expect("status is JSON");
        let state = doc.get("state").and_then(|s| s.as_str()).expect("state field").to_owned();
        if state == want {
            return body;
        }
        assert!(
            state == "queued" || state == "running",
            "campaign reached {state:?} while waiting for {want:?}: {body}"
        );
        assert!(Instant::now() < deadline, "timed out waiting for {want}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The value of an unlabeled counter/gauge sample in a Prometheus
/// rendering.
fn metric_value(text: &str, name: &str) -> Option<i64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Status-semantics regression: pre-fix, a *failed* campaign's results
/// route returned 404, indistinguishable from an unknown id. A store
/// rooted under a plain file makes the engine fail deterministically
/// (checkpoint dir creation) before any shard runs.
#[test]
fn failed_campaigns_answer_409_with_the_failure_unknown_ids_stay_404() {
    let obstruction = tmp_path("obstruction");
    std::fs::write(&obstruction, b"not a directory").unwrap();
    let config = ServerConfig { store: Some(obstruction.join("store")), ..ServerConfig::default() };
    let server = Server::start(config).unwrap();
    let addr = server.addr().to_string();

    let (status, body) = submit(&addr, &tiny_spec());
    assert_eq!(status, 202, "{body}");
    let id = parse(&body).unwrap().get("id").and_then(|v| v.as_u64()).unwrap();

    let status_body = await_state(&addr, id, "failed");
    let doc = parse(&status_body).unwrap();
    assert!(
        doc.get("error").and_then(|e| e.as_str()).unwrap_or("").contains("checkpoint"),
        "the status carries the real failure: {status_body}"
    );
    assert!(doc.get("elapsed_ms").and_then(|v| v.as_i64()).is_some(), "{status_body}");

    // The failed campaign: 409 + the message, in both result formats.
    let (status, body) = request(&addr, "GET", &format!("/campaigns/{id}/results"), None).unwrap();
    assert_eq!(status, 409, "a failed campaign is a conflict, not a missing id: {body}");
    assert!(body.contains("campaign failed"), "{body}");
    let (status, _) =
        request(&addr, "GET", &format!("/campaigns/{id}/results?format=text"), None).unwrap();
    assert_eq!(status, 409);

    // An unknown id keeps its 404 — the two cases are distinguishable.
    let (status, body) = request(&addr, "GET", "/campaigns/99999/results", None).unwrap();
    assert_eq!(status, 404, "{body}");

    server.shutdown().unwrap();
    let _ = std::fs::remove_file(&obstruction);
}

/// Slowloris regression at the service level: a client dribbling header
/// bytes must be cut off with 408 at the configured deadline, the
/// occurrence must be counted, and the accept thread must come back for
/// well-behaved clients immediately.
#[test]
fn dribbling_clients_get_408_and_do_not_wedge_the_service() {
    let config = ServerConfig { read_deadline: Duration::from_millis(300), ..Default::default() };
    let server = Server::start(config).unwrap();
    let addr = server.addr().to_string();

    let started = Instant::now();
    let mut slow = TcpStream::connect(&addr).unwrap();
    // One byte per ~50 ms: every write lands well inside a per-read
    // window, but the overall deadline (300 ms) must still fire. Poll
    // for the response between writes and stop dribbling the moment it
    // arrives — writing into a closed socket would trigger an RST that
    // can discard the buffered 408 before we read it.
    let mut collected = Vec::new();
    slow.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
    for byte in b"GET /campaigns HTTP/1.1\r\nx-slow: yes\r\n".iter().take(30) {
        use std::io::Read;
        if slow.write_all(&[*byte]).is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(30));
        let mut buf = [0u8; 512];
        match slow.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                collected.extend_from_slice(&buf[..n]);
                break;
            }
            Err(_) => {} // nothing yet; keep dribbling
        }
    }
    let response = {
        use std::io::Read;
        let _ = slow.set_read_timeout(Some(Duration::from_secs(5)));
        let mut rest = Vec::new();
        let _ = slow.read_to_end(&mut rest);
        collected.extend_from_slice(&rest);
        String::from_utf8_lossy(&collected).into_owned()
    };
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "the dribbler is answered with 408: {response:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the deadline, not the dribble, bounds the exchange"
    );

    // The accept thread survived and serves the next client at once.
    let (status, _) =
        request_timeout(&addr, "GET", "/campaigns/0", None, Duration::from_secs(5)).unwrap();
    assert_eq!(status, 404);

    // The occurrence is visible on /metrics.
    let (status, text) = request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let timeouts = metric_value(&text, "gd_http_request_timeouts_total").unwrap_or(0);
    assert!(timeouts >= 1, "408 occurrences are counted: {text}");

    server.shutdown().unwrap();
}

/// A completed campaign leaves the full metrics trail: request counters
/// by route pattern and status, the per-shard and per-campaign duration
/// histograms, cache hit/miss counters (exercised via an identical
/// resubmission), and a live elapsed_ms in the status document.
#[test]
fn metrics_expose_cache_shard_and_duration_families() {
    let store = tmp_path("metrics-store");
    let _ = std::fs::remove_dir_all(&store);
    let config = ServerConfig { store: Some(store.clone()), ..ServerConfig::default() };
    let server = Server::start(config).unwrap();
    let addr = server.addr().to_string();

    let (status, body) = submit(&addr, &tiny_spec());
    assert_eq!(status, 202, "{body}");
    let id = parse(&body).unwrap().get("id").and_then(|v| v.as_u64()).unwrap();
    await_state(&addr, id, "done");

    // An identical resubmission must be served from the result cache.
    let (status, body) = submit(&addr, &tiny_spec());
    assert_eq!(status, 202, "{body}");
    let id2 = parse(&body).unwrap().get("id").and_then(|v| v.as_u64()).unwrap();
    let status_body = await_state(&addr, id2, "done");
    let doc = parse(&status_body).unwrap();
    assert!(doc.get("elapsed_ms").and_then(|v| v.as_i64()).is_some(), "{status_body}");

    let (status, text) = request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    for family in [
        "# TYPE gd_http_requests_total counter",
        "# TYPE gd_campaign_queue_depth gauge",
        "# TYPE gd_campaign_cache_hits_total counter",
        "# TYPE gd_campaign_cache_misses_total counter",
        "# TYPE gd_campaign_checkpoint_loads_total counter",
        "# TYPE gd_campaign_shards_executed_total counter",
        "# TYPE gd_campaign_shard_ms histogram",
        "# TYPE gd_campaign_duration_ms histogram",
        "# TYPE gd_exec_chunks_executed_total counter",
        "# TYPE gd_exec_worker_busy_us_total counter",
        "# TYPE gd_exec_serial_fallbacks_total counter",
        // The PR 4 self-healing families: present (at zero) even in a
        // fault-free process, so dashboards never 404 on them.
        "# TYPE gd_chaos_injected_total counter",
        "# TYPE gd_campaign_shard_retries histogram",
        "# TYPE gd_campaign_shards_quarantined_total counter",
        "# TYPE gd_campaign_fanout_retries_total counter",
        "# TYPE gd_campaign_watchdog_stalls_total counter",
        "# TYPE gd_campaign_store_integrity_failures_total counter",
        "# TYPE gd_campaign_tmp_files_swept_total counter",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }
    assert!(metric_value(&text, "gd_campaign_cache_hits_total").unwrap() >= 1, "{text}");
    assert!(metric_value(&text, "gd_campaign_cache_misses_total").unwrap() >= 1, "{text}");
    assert!(metric_value(&text, "gd_campaign_shards_executed_total").unwrap() >= 1, "{text}");
    assert!(metric_value(&text, "gd_campaign_shard_ms_count").unwrap() >= 1, "{text}");
    assert!(metric_value(&text, "gd_campaign_duration_ms_count").unwrap() >= 2, "{text}");
    assert!(text.contains(r#"gd_http_requests_total{route="/campaigns",status="202"}"#), "{text}");

    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&store);
}
