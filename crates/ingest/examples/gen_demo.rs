//! Regenerates `testdata/ingest_demo.bin` from the deterministic
//! builder. Run after changing `testimg::demo_bin`:
//!
//! ```text
//! cargo run -p gd-ingest --example gen_demo
//! ```

use std::path::Path;

fn main() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../testdata/ingest_demo.bin");
    std::fs::write(&path, gd_ingest::testimg::demo_bin()).expect("write demo blob");
    println!("wrote {}", path.display());
}
