//! Regenerates Table I: single-glitch scans (8 cycles × 9,801 parameter
//! combinations) against the three §V loop guards, with post-mortems.

use gd_chipwhisperer::FaultModel;

fn main() {
    let model = FaultModel::default();
    let rows = gd_bench::glitch_tables::table1(&model);
    for row in rows {
        let (_, src) = gd_chipwhisperer::targets::table1_guards()
            .into_iter()
            .find(|(n, _)| *n == row.name)
            .expect("guard exists");
        let dev = gd_chipwhisperer::Device::from_asm(src).expect("guard assembles");
        let notes = gd_bench::glitch_tables::cycle_annotations(&dev, 8);
        gd_bench::glitch_tables::print_table1_row(&row, &notes);
    }
}
