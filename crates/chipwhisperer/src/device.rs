//! The device under attack: firmware plus the standard board memory map,
//! bootable afresh for every glitch attempt, with non-volatile memory that
//! survives resets (the delay defense's seed lives there).

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use gd_backend::{layout, FirmwareImage};
use gd_emu::{Emu, Perms, PredecodedImage};
use gd_pipeline::Pipeline;
use gd_thumb::asm::{assemble, AsmError};

/// A bootable target.
#[derive(Debug, Clone)]
pub struct Device {
    /// Code, based at the flash base.
    pub text: Vec<u8>,
    /// Initialized data records.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Entry point.
    pub entry: u32,
    /// Initial stack pointer.
    pub sp: u32,
    /// Symbols (labels / functions / globals).
    pub symbols: BTreeMap<String, u32>,
    /// Micro-op table for the flash image, built on first boot and shared
    /// by every subsequent boot (flash contents are identical per boot).
    predecode: OnceLock<Arc<PredecodedImage>>,
    /// Whether boots attach the table; disabled for interpreter-path
    /// baselines in benchmarks.
    predecode_enabled: bool,
}

impl Device {
    /// Assembles a §V-style bare-metal snippet at the flash base.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors.
    pub fn from_asm(src: &str) -> Result<Device, AsmError> {
        let prog = assemble(src, layout::FLASH_BASE)?;
        Ok(Device {
            text: prog.code,
            data: Vec::new(),
            entry: layout::FLASH_BASE,
            sp: layout::STACK_TOP,
            symbols: prog.symbols,
            predecode: OnceLock::new(),
            predecode_enabled: true,
        })
    }

    /// Wraps a compiled firmware image (§VII targets).
    pub fn from_image(image: &FirmwareImage) -> Device {
        Device {
            text: image.text.clone(),
            data: image.data.clone(),
            entry: image.entry,
            sp: layout::STACK_TOP,
            symbols: image.symbols.clone(),
            predecode: OnceLock::new(),
            predecode_enabled: true,
        }
    }

    /// Enables or disables predecoded dispatch on future boots.
    ///
    /// On by default; benchmarks switch it off to time the pure
    /// interpreter path. The scan results are identical either way (the
    /// table mirrors live decode), only the speed differs.
    pub fn set_predecode_enabled(&mut self, enabled: bool) {
        self.predecode_enabled = enabled;
    }

    /// Address of the detection flag, when the firmware has one.
    pub fn detect_flag(&self) -> Option<u32> {
        self.symbols.get("__gr_detect_flag").copied()
    }

    /// Boots a fresh pipeline (power-on state).
    ///
    /// # Panics
    ///
    /// Panics if the firmware does not fit the standard memory map.
    pub fn boot(&self) -> Pipeline {
        self.boot_with_nvm(None)
    }

    /// Boots with the given non-volatile memory contents (carried over
    /// from the previous attempt), or fresh NVM when `None`.
    ///
    /// # Panics
    ///
    /// Panics if the firmware does not fit the standard memory map.
    pub fn boot_with_nvm(&self, nvm: Option<&[u8]>) -> Pipeline {
        let mut emu = Emu::new();
        emu.mem.map("flash", layout::FLASH_BASE, layout::FLASH_SIZE, Perms::RX).expect("fresh map");
        emu.mem.map("nvm", layout::NVM_BASE, layout::NVM_SIZE, Perms::RW).expect("fresh map");
        emu.mem.map("sram", layout::SRAM_BASE, layout::SRAM_SIZE, Perms::RW).expect("fresh map");
        emu.mem
            .map("shadow", layout::SHADOW_BASE, layout::SHADOW_SIZE, Perms::RW)
            .expect("fresh map");
        emu.mem.map("gpio", layout::GPIO_BASE, layout::GPIO_SIZE, Perms::RW).expect("fresh map");
        emu.mem
            .map("periph", layout::PERIPH_BASE, layout::PERIPH_SIZE, Perms::RW)
            .expect("fresh map");
        emu.mem.map("scs", layout::SCS_BASE, layout::SCS_SIZE, Perms::RW).expect("fresh map");
        // Physical SRAM powers up holding garbage; deterministic noise here
        // so wild loads (corrupted addresses) read realistic junk instead
        // of convenient zeros. Firmware data records overwrite their part.
        emu.mem.load(layout::SRAM_BASE, sram_garbage()).expect("sram mapped");
        emu.mem.load(layout::FLASH_BASE, &self.text).expect("firmware fits flash");
        for (addr, bytes) in &self.data {
            emu.mem.load(*addr, bytes).expect("data fits its region");
        }
        if let Some(nvm) = nvm {
            emu.mem.load(layout::NVM_BASE, nvm).expect("nvm snapshot fits");
        }
        emu.set_pc(self.entry);
        emu.cpu.set_sp(self.sp);
        let mut pipe = Pipeline::new(emu);
        if self.predecode_enabled {
            // Flash bytes (text + flash-resident data records) are the
            // same every boot, so the table from the first boot serves
            // all later ones.
            let image = self.predecode.get_or_init(|| {
                let flash = pipe.emu.mem.region_at(layout::FLASH_BASE).expect("flash mapped");
                Arc::new(PredecodedImage::from_region(flash, pipe.emu.cfg))
            });
            pipe.set_predecode(Arc::clone(image));
        }
        pipe
    }

    /// Snapshots the NVM region of a finished run (for the next boot).
    ///
    /// # Panics
    ///
    /// Panics if the pipeline was not booted from a [`Device`].
    pub fn snapshot_nvm(pipe: &Pipeline) -> Vec<u8> {
        pipe.emu.mem.peek(layout::NVM_BASE, layout::NVM_SIZE).expect("nvm region mapped")
    }
}

/// The deterministic SRAM power-on pattern, generated once per process —
/// every boot reads the same fixed-seed stream, so caching it is
/// bit-identical to regenerating it.
fn sram_garbage() -> &'static [u8] {
    static GARBAGE: OnceLock<Vec<u8>> = OnceLock::new();
    GARBAGE.get_or_init(|| {
        let mut rng = crate::rng::Rng::new(0x5AA5_0FF0);
        (0..layout::SRAM_SIZE).map(|_| rng.next_u64() as u8).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_pipeline::RunEnd;

    #[test]
    fn asm_device_boots_and_runs() {
        let dev = Device::from_asm("movs r0, #7\nbkpt #1\n").unwrap();
        let mut pipe = dev.boot();
        let end = pipe.run(100);
        assert!(matches!(end, RunEnd::Stop { reason: gd_emu::StopReason::Bkpt(1), .. }));
        assert_eq!(pipe.emu.cpu.reg(gd_thumb::Reg::R0), 7);
    }

    #[test]
    fn nvm_survives_across_boots() {
        let src = "
            ldr r0, =0x0800F000
            ldr r1, [r0]
            adds r1, #1
            str r1, [r0]
            mov r2, r1
            bkpt #1
        ";
        let dev = Device::from_asm(src).unwrap();
        let mut pipe = dev.boot();
        pipe.run(1_000_000);
        assert_eq!(pipe.emu.cpu.reg(gd_thumb::Reg::R2), 1);
        let nvm = Device::snapshot_nvm(&pipe);
        let mut pipe = dev.boot_with_nvm(Some(&nvm));
        pipe.run(1_000_000);
        assert_eq!(pipe.emu.cpu.reg(gd_thumb::Reg::R2), 2, "seed persisted");
    }

    #[test]
    fn image_device_round_trip() {
        let m = gd_ir::parse_module(
            "fn @main() -> i32 {\nentry:\n  %1 = add i32 1, 2\n  ret i32 %1\n}\n",
        )
        .unwrap();
        let image = gd_backend::compile(&m, "main").unwrap();
        let dev = Device::from_image(&image);
        let mut pipe = dev.boot();
        let end = pipe.run(10_000);
        assert!(matches!(end, RunEnd::Stop { reason: gd_emu::StopReason::Bkpt(0), .. }));
        assert_eq!(pipe.emu.cpu.reg(gd_thumb::Reg::R0), 3);
    }
}
