//! A minimal HTTP/1.1 layer over [`std::net::TcpStream`] — just enough
//! protocol for the campaign service and its tests, with hard limits on
//! header and body sizes and hard *deadlines* on both directions. One
//! request per connection (`Connection: close` semantics); no chunked
//! encoding, no keep-alive, no TLS.
//!
//! Deadlines are overall, not per-read: a client dribbling one header
//! byte per socket-timeout window must not hold the service's single
//! accept thread (the "slowloris" failure PR 3 fixed), so
//! [`read_request_deadline`] re-arms the socket timeout with the
//! *remaining* budget before every read and fails with
//! [`RequestError::Timeout`] — which the service answers with `408`.
//! Symmetrically, [`request_timeout`] bounds connect, send, and receive
//! on the client side so a wedged server cannot hang a caller (the CLI
//! and `Server::shutdown` both go through it).

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Maximum accepted request-line + header bytes.
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request body bytes (campaign specs are small).
pub const MAX_BODY: usize = 1024 * 1024;
/// Overall server-side deadline [`read_request`] applies across the
/// whole head + body read.
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(30);
/// Overall client-side deadline [`request`] applies across connect,
/// send, and the whole response read.
pub const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string split off (`/campaigns/3`).
    pub path: String,
    /// Raw query string after `?`, or empty.
    pub query: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read — the split decides the status code:
/// timeouts get `408`, everything else `400`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The overall read deadline elapsed before a full request arrived.
    Timeout(String),
    /// The bytes that did arrive are not an acceptable request.
    Malformed(String),
}

impl RequestError {
    /// The human-readable description (what goes in the error body).
    pub fn message(&self) -> &str {
        match self {
            RequestError::Timeout(m) | RequestError::Malformed(m) => m,
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Sets the socket read timeout to the time left until `deadline`, or
/// fails with [`RequestError::Timeout`] when none is left. Re-arming
/// before every read is what turns the per-read socket timeout into an
/// overall deadline.
fn arm_read(stream: &TcpStream, deadline: Instant, what: &str) -> Result<(), RequestError> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| RequestError::Timeout(format!("timed out reading the request {what}")))?;
    stream
        .set_read_timeout(Some(remaining))
        .map_err(|e| RequestError::Malformed(format!("arming read timeout: {e}")))
}

/// Reads one request from `stream` with the default
/// [`DEFAULT_READ_DEADLINE`]. See [`read_request_deadline`].
///
/// # Errors
///
/// Same conditions as [`read_request_deadline`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    read_request_deadline(stream, DEFAULT_READ_DEADLINE)
}

/// Reads one request from `stream`, enforcing `limit` as an overall
/// deadline across the head *and* body reads.
///
/// # Errors
///
/// [`RequestError::Timeout`] when the deadline elapses first (a 408);
/// [`RequestError::Malformed`] for a bad request line, over-limit head
/// or body, or an unreadable socket (a 400).
pub fn read_request_deadline(
    stream: &mut TcpStream,
    limit: Duration,
) -> Result<Request, RequestError> {
    let deadline = Instant::now() + limit;
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    // Read byte-wise up to the blank line; BufReader keeps this cheap.
    while !head.ends_with(b"\r\n\r\n") {
        arm_read(reader.get_ref(), deadline, "head")?;
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => return Err(RequestError::Malformed("connection closed mid-header".into())),
            Ok(_) => head.push(byte[0]),
            Err(e) if is_timeout(&e) => {
                return Err(RequestError::Timeout("timed out reading the request head".into()));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(RequestError::Malformed(format!("reading request head: {e}"))),
        }
        if head.len() > MAX_HEAD {
            return Err(RequestError::Malformed("request head exceeds limit".into()));
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_uppercase();
    let target =
        parts.next().ok_or_else(|| RequestError::Malformed("request line lacks a path".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line lacks a version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!("unsupported protocol {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed("malformed header line".into()))?;
        headers.push((name.trim().to_lowercase(), value.trim().to_owned()));
    }
    let mut request = Request { method, path, query, headers, body: Vec::new() };
    if let Some(len) = request.header("content-length") {
        let len: usize =
            len.parse().map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
        if len > MAX_BODY {
            return Err(RequestError::Malformed("request body exceeds limit".into()));
        }
        // A dribbled body must hit the same overall deadline as the
        // head, so no single read_exact: loop with the remaining budget.
        let mut body = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            arm_read(reader.get_ref(), deadline, "body")?;
            match reader.read(&mut body[filled..]) {
                Ok(0) => {
                    return Err(RequestError::Malformed("connection closed mid-body".into()));
                }
                Ok(n) => filled += n,
                Err(e) if is_timeout(&e) => {
                    return Err(RequestError::Timeout("timed out reading the request body".into()));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(RequestError::Malformed(format!("reading body: {e}"))),
            }
        }
        request.body = body;
    }
    Ok(request)
}

/// Writes a complete response and flushes. Errors are returned for the
/// caller to log; the connection is closed either way.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with(stream, status, content_type, &[], body)
}

/// [`write_response`] with additional response headers (e.g.
/// `Retry-After` on a `429`). Names and values are written verbatim.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    };
    write!(stream, "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n")?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "Content-Length: {}\r\nConnection: close\r\n\r\n", body.len())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Time left until `deadline` on the client side, as an error message
/// containing "timed out" when the budget is spent.
fn client_remaining(deadline: Instant, what: &str) -> Result<Duration, String> {
    deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| format!("request timed out {what}"))
}

fn client_read_err(e: &std::io::Error, what: &str) -> String {
    if is_timeout(e) {
        format!("request timed out reading the {what}")
    } else {
        format!("reading {what}: {e}")
    }
}

/// A one-shot client request with the default
/// [`DEFAULT_CLIENT_TIMEOUT`]. See [`request_timeout`].
///
/// # Errors
///
/// Same conditions as [`request_timeout`].
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    request_timeout(addr, method, path, body, DEFAULT_CLIENT_TIMEOUT)
}

/// A one-shot client request (the test harness, the CLI, and
/// `Server::shutdown` use this; no external HTTP client exists in the
/// workspace). `timeout` is an overall deadline covering connect, send,
/// and the response read — a wedged or silent server fails the call
/// instead of blocking it forever.
///
/// # Errors
///
/// Returns a message on connection failure, deadline expiry (the
/// message contains "timed out"), or a malformed response.
pub fn request_timeout(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let (status, _, body) = request_timeout_full(addr, method, path, body, timeout)?;
    Ok((status, body))
}

/// [`request_timeout`], additionally returning the response headers
/// (names lowercased) — the retrying client needs `Retry-After`.
///
/// # Errors
///
/// Same conditions as [`request_timeout`].
pub fn request_timeout_full(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(u16, Vec<(String, String)>, String), String> {
    request_timeout_with_headers(addr, method, path, &[], body, timeout)
}

/// [`request_timeout_full`] with additional request headers, written
/// verbatim — the service's quota (`x-gd-client`) and priority
/// (`x-gd-priority`) headers go through here.
///
/// # Errors
///
/// Same conditions as [`request_timeout`].
pub fn request_timeout_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: Option<&str>,
    timeout: Duration,
) -> Result<(u16, Vec<(String, String)>, String), String> {
    let deadline = Instant::now() + timeout;
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolving {addr}: no usable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let remaining = client_remaining(deadline, "connecting")?;
    stream.set_write_timeout(Some(remaining)).map_err(|e| e.to_string())?;
    stream.set_read_timeout(Some(remaining)).map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    write!(stream, "{head}Content-Length: {}\r\nConnection: close\r\n\r\n{body}", body.len())
        .map_err(|e| format!("sending request: {e}"))?;
    stream.flush().map_err(|e| e.to_string())?;

    let arm = |stream: &TcpStream, what: &str| -> Result<(), String> {
        let remaining = client_remaining(deadline, what)?;
        stream.set_read_timeout(Some(remaining)).map_err(|e| e.to_string())
    };
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    arm(reader.get_ref(), "awaiting the status line")?;
    reader.read_line(&mut status_line).map_err(|e| client_read_err(&e, "status line"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let mut line = String::new();
        arm(reader.get_ref(), "awaiting headers")?;
        reader.read_line(&mut line).map_err(|e| client_read_err(&e, "headers"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    arm(reader.get_ref(), "awaiting the body")?;
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf).map_err(|e| client_read_err(&e, "body"))?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf).map_err(|e| client_read_err(&e, "body"))?;
            buf
        }
    };
    Ok((status, headers, String::from_utf8_lossy(&body).into_owned()))
}

/// Ceiling on how long the retrying client honors a `Retry-After` hint
/// — a hostile or confused server must not park a client for an hour.
pub const RETRY_AFTER_CAP: Duration = Duration::from_secs(2);

/// Backoff between retries when the server gave no `Retry-After` (grows
/// linearly with the attempt number).
const CLIENT_RETRY_STEP: Duration = Duration::from_millis(50);

/// Why [`request_with_retries`] gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The overall `budget` elapsed before any attempt succeeded — a
    /// persistently 429ing (or silent) server cannot park the client
    /// past its own deadline.
    TimedOut {
        /// Attempts actually started before the budget ran out.
        attempts: u32,
        /// The overall wall-time budget that elapsed.
        budget: Duration,
        /// The last failure seen (transport error or `429` body).
        last: String,
    },
    /// Every attempt failed on transport before the budget elapsed.
    Exhausted {
        /// The attempt budget that was spent.
        attempts: u32,
        /// The last transport error.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::TimedOut { attempts, budget, last } => write!(
                f,
                "request timed out: {budget:?} budget spent over {attempts} attempts \
                 (last failure: {last})"
            ),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientError> for String {
    fn from(e: ClientError) -> String {
        e.to_string()
    }
}

/// A client request that *retries*: transport errors (connection
/// refused or dropped mid-response, timeouts) and `429` responses are
/// retried up to `attempts` total tries. On a `429` the server's
/// `Retry-After` header sets the pause (capped at [`RETRY_AFTER_CAP`]);
/// everything else backs off linearly. Any other status — including
/// errors like `400` or `409`, which retrying cannot cure — returns on
/// first sight.
///
/// `budget` caps **total wall time** across every attempt and every
/// pause, not just each attempt's read: a persistently 429ing server
/// once kept this loop alive for `attempts × Retry-After`, which for a
/// patient caller was effectively forever. Now each attempt gets the
/// *remaining* budget as its own deadline, pauses are clamped to fit,
/// and when the budget runs dry the caller gets a typed
/// [`ClientError::TimedOut`].
///
/// A final-attempt `429` still returns `Ok((429, body))` — the server
/// answered; running out of patience with its answer is the caller's
/// decision — whereas running out of *time* is [`ClientError::TimedOut`].
///
/// # Errors
///
/// [`ClientError::TimedOut`] when `budget` elapses first,
/// [`ClientError::Exhausted`] with the last transport error once all
/// attempts are spent inside the budget.
pub fn request_with_retries(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    attempts: u32,
    budget: Duration,
) -> Result<(u16, String), ClientError> {
    assert!(attempts >= 1, "a request needs at least one attempt");
    let deadline = Instant::now() + budget;
    let mut last = String::from("no attempt started");
    let timed_out = |started: u32, last: &str| ClientError::TimedOut {
        attempts: started,
        budget,
        last: last.to_owned(),
    };
    for attempt in 1..=attempts {
        let Some(remaining) =
            deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
        else {
            return Err(timed_out(attempt - 1, &last));
        };
        match request_timeout_full(addr, method, path, body, remaining) {
            Ok((429, headers, resp_body)) => {
                if attempt == attempts {
                    return Ok((429, resp_body));
                }
                last = format!("server answered 429: {resp_body}");
                let hinted = headers
                    .iter()
                    .find(|(k, _)| k == "retry-after")
                    .and_then(|(_, v)| v.parse::<u64>().ok())
                    .map(Duration::from_secs)
                    .unwrap_or(CLIENT_RETRY_STEP);
                let pause = hinted.clamp(Duration::from_millis(20), RETRY_AFTER_CAP);
                // A pause that would outlive the budget is pointless:
                // fail now instead of waking up past the deadline.
                let Some(room) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(timed_out(attempt, &last));
                };
                if pause >= room {
                    return Err(timed_out(attempt, &last));
                }
                std::thread::sleep(pause);
            }
            Ok((status, _, resp_body)) => return Ok((status, resp_body)),
            Err(e) => {
                last = e;
                if attempt < attempts {
                    let pause = CLIENT_RETRY_STEP.saturating_mul(attempt);
                    let Some(room) = deadline.checked_duration_since(Instant::now()) else {
                        return Err(timed_out(attempt, &last));
                    };
                    if pause >= room {
                        return Err(timed_out(attempt, &last));
                    }
                    std::thread::sleep(pause);
                }
            }
        }
    }
    Err(ClientError::Exhausted { attempts, last })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips a request through a real socket pair: the client side
    /// uses [`request`], the server side [`read_request`] +
    /// [`write_response`].
    #[test]
    fn request_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/campaigns");
            assert_eq!(req.query, "format=text");
            assert_eq!(req.body, b"{\"x\":1}");
            write_response(&mut stream, 202, "application/json", b"{\"id\":7}").unwrap();
        });
        let (status, body) =
            request(&addr, "POST", "/campaigns?format=text", Some("{\"x\":1}")).unwrap();
        server.join().unwrap();
        assert_eq!((status, body.as_str()), (202, "{\"id\":7}"));
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        for raw in
            ["\r\n\r\n", "GET\r\n\r\n", "GET / SPDY/3\r\n\r\n", "GET / HTTP/1.1\r\nbad\r\n\r\n"]
        {
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(raw.as_bytes()).unwrap();
            let (mut stream, _) = listener.accept().unwrap();
            let err = read_request(&mut stream).expect_err(raw);
            assert!(
                matches!(err, RequestError::Malformed(_)),
                "{raw:?} is malformed, not a timeout: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        write!(client, "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1).unwrap();
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_request(&mut stream).unwrap_err();
        assert!(err.message().contains("exceeds"), "{err}");
    }

    /// The slowloris regression: pre-fix, only a *per-read* timeout
    /// existed, so a client feeding one byte per window could hold the
    /// accept thread for hours. With the overall deadline the read must
    /// fail as a Timeout in roughly the deadline, not the dribble total.
    #[test]
    fn dribbled_header_bytes_hit_the_overall_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dribbler = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            // ~2 s of one byte per 50 ms — each write easily inside any
            // per-read window, the total far beyond the 300 ms deadline.
            for byte in b"GET / HTTP/1.1\r\nx-slow: 1\r\n".iter().cycle().take(40) {
                if client.write_all(&[*byte]).is_err() {
                    break; // server gave up on us, as it should
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let started = Instant::now();
        let err = read_request_deadline(&mut stream, Duration::from_millis(300)).unwrap_err();
        let elapsed = started.elapsed();
        assert!(matches!(err, RequestError::Timeout(_)), "a dribble is a timeout: {err:?}");
        assert!(
            elapsed < Duration::from_secs(1),
            "the deadline bounds the read (took {elapsed:?}, dribble runs ~2 s)"
        );
        drop(stream);
        dribbler.join().unwrap();
    }

    /// Same deadline, dribbled through the *body* phase: a well-formed
    /// head followed by a Content-Length the client never delivers.
    #[test]
    fn dribbled_body_bytes_hit_the_overall_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dribbler = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n").unwrap();
            for _ in 0..40 {
                if client.write_all(b"x").is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let started = Instant::now();
        let err = read_request_deadline(&mut stream, Duration::from_millis(300)).unwrap_err();
        assert!(matches!(err, RequestError::Timeout(_)), "{err:?}");
        assert!(started.elapsed() < Duration::from_secs(1));
        drop(stream);
        dribbler.join().unwrap();
    }

    /// The parked-client regression: pre-fix, `request_with_retries`
    /// bounded only each attempt and each `Retry-After` pause, so a
    /// persistently 429ing server held a patient caller for
    /// `attempts × Retry-After` — with `attempts=1000` that is half an
    /// hour. The budget is now total wall time, and running out of it
    /// is a typed `TimedOut`, distinct from exhausting attempts.
    #[test]
    fn a_persistently_429ing_server_cannot_outlive_the_total_budget() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Far more 429s on offer than the budget allows attempts.
            for _ in 0..1000 {
                let Ok((mut stream, _)) = listener.accept() else { return };
                if read_request(&mut stream).is_err() {
                    return;
                }
                let done = write_response_with(
                    &mut stream,
                    429,
                    "application/json",
                    &[("Retry-After", "1")],
                    b"{\"error\":\"queue full\"}",
                )
                .is_err();
                if done {
                    return;
                }
            }
        });
        let started = Instant::now();
        let err = request_with_retries(
            &addr,
            "POST",
            "/campaigns",
            Some("{}"),
            1000,
            Duration::from_millis(300),
        )
        .unwrap_err();
        let elapsed = started.elapsed();
        assert!(
            matches!(err, ClientError::TimedOut { .. }),
            "budget expiry is typed, not a transport error: {err:?}"
        );
        assert!(err.to_string().contains("timed out"), "{err}");
        assert!(err.to_string().contains("429"), "the last failure is named: {err}");
        assert!(
            elapsed < Duration::from_secs(3),
            "the budget bounds the loop (took {elapsed:?}; the hinted pauses alone were 1000 s)"
        );
        // Unblock and reap the server thread.
        drop(TcpStream::connect(&addr));
        server.join().unwrap();
    }

    /// A final-attempt 429 inside the budget is still an *answer*:
    /// `Ok((429, body))`, not an error — only time expiry is `TimedOut`.
    #[test]
    fn attempts_exhausting_inside_the_budget_return_the_last_429() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                read_request(&mut stream).unwrap();
                write_response_with(
                    &mut stream,
                    429,
                    "application/json",
                    &[("Retry-After", "0")],
                    b"{\"error\":\"still full\"}",
                )
                .unwrap();
            }
        });
        let (status, body) = request_with_retries(
            &addr,
            "POST",
            "/campaigns",
            Some("{}"),
            2,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(status, 429);
        assert!(body.contains("still full"), "{body}");
        server.join().unwrap();
    }

    /// The hung-shutdown regression: pre-fix, the client set no
    /// timeouts, so a server that accepts and then never responds hung
    /// the caller (and `Server::shutdown`) forever.
    #[test]
    fn client_times_out_against_a_server_that_never_responds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Accept and hold the connection open, never writing a byte.
        let silent = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let started = Instant::now();
        let err = request_timeout(&addr, "POST", "/shutdown", None, Duration::from_millis(300))
            .unwrap_err();
        assert!(err.contains("timed out"), "{err}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the deadline bounds the call: {:?}",
            started.elapsed()
        );
        drop(silent.join().unwrap());
    }
}
