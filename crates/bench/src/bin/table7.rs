//! Regenerates Table VII: the qualitative comparison with prior
//! software-based glitching defenses.

use glitch_resistor::related;

fn main() {
    gd_bench::report::heading("Table VII — software-based defense comparison");
    println!("{}", related::TABLE_HEADER);
    for row in related::comparison() {
        println!("{row}");
    }
}
