//! The gd-lint driver over the boot firmware.
//!
//! - no arguments: print the full report (all Table IV configurations) —
//!   the `results/lint_boot.txt` artifact.
//! - `--check`: diff the regenerated report against the committed golden.
//! - `--deny [--config NAME] [--allow SPEC]...`: lint one configuration
//!   (default `All`) and exit non-zero on any unsuppressed
//!   warning-or-worse finding. `SPEC` is `LINT` or `function:LINT`.
//! - `--json [--config NAME]`: the one-configuration report as strict JSON.

use std::process::ExitCode;

use gd_bench::lint::{full_report, lint_boot};
use gd_bench::overhead::configurations;
use gd_lint::Suppressions;

fn find_config(name: &str) -> Option<(&'static str, glitch_resistor::Defenses)> {
    configurations().into_iter().find(|(n, _)| *n == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--deny" || a == "--json") {
        return single_config(&args);
    }
    gd_bench::selfcheck::main("lint_boot.txt", &[], || print!("{}", full_report()))
}

fn single_config(args: &[String]) -> ExitCode {
    let mut config = "All";
    let mut allows: Vec<String> = Vec::new();
    let mut json = false;
    let mut deny = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--config" => match it.next().and_then(|n| find_config(n)) {
                Some((name, _)) => config = name,
                None => {
                    eprintln!(
                        "--config wants one of: {:?}",
                        configurations().iter().map(|(n, _)| *n).collect::<Vec<_>>()
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--allow" => match it.next() {
                Some(spec) => allows.push(spec.clone()),
                None => {
                    eprintln!("--allow wants LINT or function:LINT");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let suppress = match Suppressions::parse(&allows) {
        Ok(s) => s,
        Err(bad) => {
            eprintln!("--allow {bad}: unknown lint ID");
            return ExitCode::FAILURE;
        }
    };
    let (_, defenses) = find_config(config).expect("validated above");
    let (report, rendered) = lint_boot(config, defenses);
    // Re-apply suppressions over the raw findings.
    let report = gd_lint::LintReport::new(report.findings().to_vec(), &suppress);
    if json {
        println!("{}", report.render_json());
    } else if allows.is_empty() {
        print!("{rendered}");
    } else {
        // The full rendering predates suppression; re-render so the text
        // agrees with the exit decision.
        print!("{}", report.render_text(gd_lint::Severity::Warning));
    }
    if deny && report.deny() {
        eprintln!(
            "gd-lint: denying: {} warning-or-worse finding(s) on configuration `{config}`",
            report.findings().iter().filter(|f| f.severity >= gd_lint::Severity::Warning).count()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
