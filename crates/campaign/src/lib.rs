//! # gd-campaign — a sharded campaign engine for the paper's workloads
//!
//! The experiment binaries of this workspace (`fig2`, `table1`–`table3`,
//! `table6`) each regenerate one published artifact of *Glitching
//! Demystified* (DSN 2021) as a monolithic run. This crate turns those
//! workloads into *campaigns*: typed, serializable specifications
//! ([`spec::CampaignSpec`]) that an [`engine::Engine`] decomposes into
//! deterministic shards ([`shards`]), fans out over [`gd_exec`], and
//! merges back **bit-identically** to the serial binaries — while
//! persisting completed shards as resumable checkpoints and finished
//! campaigns in a content-addressed result cache ([`hash`]). A small
//! HTTP/1.1 service ([`service`], `gd-campaign serve`) fronts the engine
//! for remote submission, progress polling, and result retrieval in
//! JSON or the exact legacy text format.
//!
//! Everything is dependency-free: JSON ([`json`]) and SHA-256 ([`hash`])
//! are implemented from scratch, and the HTTP layer ([`http`]) sits
//! directly on [`std::net::TcpListener`] — the workspace builds fully
//! offline.
//!
//! ```
//! use gd_campaign::{engine::Engine, spec::CampaignSpec};
//!
//! let mut spec = CampaignSpec::fig2();
//! spec.shards = Some((0, 1)); // just the first panel's first branch
//! let result = Engine::ephemeral().run(&spec)?;
//! assert!(result.text.contains("beq"));
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod defense;
pub mod engine;
pub mod error;
pub mod fig2;
pub mod fleet;
pub mod glitch_tables;
pub mod hash;
pub mod http;
pub mod json;
pub mod multifault;
pub mod report;
pub mod service;
pub mod shards;
pub mod spec;

pub use engine::{CampaignResult, Engine};
pub use error::CampaignError;
pub use spec::{CampaignSpec, Workload};
