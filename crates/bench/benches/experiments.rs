//! Benchmarks of the experiment machinery: one Figure 2 bit-flip sweep,
//! one Table I-style glitch attempt, one pipeline spin, and the fault-model
//! severity landscape.

use core::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

/// Short, stable sampling so `cargo bench --workspace` stays in CI budget.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
}
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    use gd_glitch_emu::{branch_case, sweep_k, Direction};
    let case = branch_case(gd_thumb::Cond::Eq);
    c.bench_function("fig2/sweep_beq_k2_and", |b| {
        b.iter(|| black_box(sweep_k(&case, Direction::And, 2, gd_emu::Config::default())))
    });
}

fn bench_attack(c: &mut Criterion) {
    use gd_chipwhisperer::{
        run_attack, targets, AttackSpec, Device, FaultModel, GlitchParams, SuccessCheck,
    };
    let dev = Device::from_asm(targets::WHILE_NOT_A).unwrap();
    let model = FaultModel::default();
    let spec = AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: 600 };
    // An in-region point (runs the whole boot + glitch + aftermath).
    c.bench_function("chipwhisperer/attack_in_region", |b| {
        let mut boot = 0u64;
        b.iter(|| {
            boot += 1;
            black_box(run_attack(
                &dev,
                &model,
                GlitchParams::single(4, 12, -18),
                boot,
                &spec,
                None,
            ))
        })
    });
    c.bench_function("chipwhisperer/severity_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for w in -49i8..=49 {
                for o in -49i8..=49 {
                    acc += model.severity(black_box(w), black_box(o));
                }
            }
            black_box(acc)
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    use gd_chipwhisperer::{targets, Device};
    let dev = Device::from_asm(targets::WHILE_A).unwrap();
    c.bench_function("pipeline/spin_10k_cycles", |b| {
        b.iter(|| {
            let mut pipe = dev.boot();
            black_box(pipe.run(10_000))
        })
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig2, bench_attack, bench_pipeline
}
criterion_main!(benches);
