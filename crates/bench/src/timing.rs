//! A dependency-free wall-clock micro-benchmark harness (the Criterion
//! substitute — the workspace must build fully offline).
//!
//! Methodology: after a short warm-up, each benchmark is run for `N`
//! samples (default 20, `GD_BENCH_SAMPLES` overrides); every sample
//! executes enough iterations to span a fixed time budget and reports
//! the mean per-iteration time; the harness prints the **median** of the
//! samples, with min/max for spread. Medians over fixed-budget samples
//! track Criterion's point estimates closely while needing nothing but
//! `std::time::Instant`.

use std::time::{Duration, Instant};

/// One benchmark runner with a fixed sampling plan.
#[derive(Debug, Clone)]
pub struct Harness {
    samples: usize,
    sample_budget: Duration,
    warmup: Duration,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness {
            samples: 20,
            sample_budget: Duration::from_millis(100),
            warmup: Duration::from_millis(500),
        }
    }
}

impl Harness {
    /// The default plan (20 samples × 100 ms, 500 ms warm-up), with the
    /// sample count overridable via `GD_BENCH_SAMPLES`.
    pub fn from_env() -> Harness {
        let mut h = Harness::default();
        if let Ok(v) = std::env::var("GD_BENCH_SAMPLES") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    h.samples = n;
                }
            }
        }
        h
    }

    /// Times `f`, printing `name` with the median per-iteration time.
    ///
    /// The closure's return value is passed through [`std::hint::black_box`]
    /// so the measured work cannot be optimized away.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // Warm up: fill caches, trigger lazy init, settle the clock.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(f());
        }

        // Calibrate the per-sample iteration count from one timed run.
        let once = Instant::now();
        std::hint::black_box(f());
        let t1 = once.elapsed().max(Duration::from_nanos(1));
        let iters =
            (self.sample_budget.as_nanos() / t1.as_nanos()).clamp(1, u128::from(u32::MAX)) as u32;

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed() / iters
            })
            .collect();
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{name:<40} median {:>10}   [min {:>10}, max {:>10}]   ({} samples x {iters} iters)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            self.samples,
        );
    }
}

/// Renders a duration with an SI unit chosen for 3–4 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1_500)), "1.50 us");
        assert_eq!(fmt_duration(Duration::from_micros(2_500)), "2.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(3_250)), "3.25 s");
    }

    #[test]
    fn bench_runs_the_closure_and_terminates() {
        // A fast plan so the unit test stays quick.
        let h = Harness {
            samples: 3,
            sample_budget: Duration::from_micros(200),
            warmup: Duration::from_micros(200),
        };
        let mut runs = 0u64;
        h.bench("timing/self_test", || {
            runs += 1;
            runs
        });
        assert!(runs > 3, "warm-up + samples actually executed ({runs} runs)");
    }
}
