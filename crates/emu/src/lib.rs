//! # gd-emu — an architectural emulator for ARMv6-M Thumb-1
//!
//! The Unicorn substitute for the *Glitching Demystified* (DSN 2021)
//! reproduction. It executes [`gd_thumb`] instructions over a region-based
//! [`Memory`] with a precise fault taxonomy matching the paper's outcome
//! classes (§IV): *Bad Read*, *Bad Fetch*, *Invalid Instruction*, and so on.
//!
//! Two entry points matter downstream:
//!
//! - [`Emu::step`]/[`Emu::run`] — ordinary fetch/decode/execute, used by the
//!   bit-flip emulation framework (`gd-glitch-emu`), which corrupts
//!   instructions *in memory*;
//! - [`Emu::exec`] — execute an already-decoded instruction, used by the
//!   pipeline simulator (`gd-pipeline`), which does its own fetching so that
//!   clock glitches can corrupt halfwords *in flight*. The one-shot
//!   [`Emu::load_override`] hook models data-bus corruption.
//!
//! ```
//! use gd_emu::{Emu, Perms, RunOutcome, StopReason};
//! use gd_thumb::{asm::assemble, Reg};
//!
//! let mut emu = Emu::new();
//! emu.mem.map("flash", 0, 0x1000, Perms::RX)?;
//! let prog = assemble(
//!     "movs r0, #0xde\nlsls r0, r0, #8\nadds r0, #0xad\nbkpt #42\n",
//!     0,
//! )?;
//! emu.mem.load(0, &prog.code)?;
//! emu.set_pc(0);
//! let outcome = emu.run(100);
//! assert!(matches!(
//!     outcome,
//!     RunOutcome::Stop { reason: StopReason::Bkpt(42), .. }
//! ));
//! assert_eq!(emu.cpu.reg(Reg::R0), 0xdead);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod cpu;
mod exec;
mod mem;
mod predecode;

pub use cpu::Cpu;
pub use exec::{
    add_with_carry, Config, Emu, Fault, InjectKind, Injection, LoadOverride, Persistence,
    RunOutcome, Snapshot, Step, StepOutcome, StopReason,
};
pub use mem::{Access, FaultKind, MapError, MemFault, MemSnapshot, Memory, Perms, Region};
pub use predecode::{classify, PredecodedImage, Slot};
