#!/usr/bin/env sh
# Tier-1 gate: formatting, a warnings-denied release build, the full
# workspace test suite, and experiment self-checks, all offline. The
# workspace has zero external dependencies, so this runs on a machine
# with no network and no registry cache.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline (RUSTFLAGS=-Dwarnings)"
RUSTFLAGS=-Dwarnings cargo build --release --offline

echo "==> cargo test --offline (workspace)"
cargo test --offline -q

# Experiment binaries must regenerate their committed golden outputs
# byte for byte. table1 goes through the campaign engine (and therefore
# the sharded path); fig2 covers the emulation-side sweeps.
echo "==> table1 --check"
./target/release/table1 --check

echo "==> fig2 --check"
./target/release/fig2 --check

# End-to-end smoke test of the campaign service: boot the HTTP server on
# an ephemeral port, submit Table I, and require the bytes served back
# to equal results/table1.txt exactly.
echo "==> campaign service e2e (Table I over HTTP)"
cargo test --release --offline -q -p gd-campaign --test e2e_http

echo "==> OK"
