//! Condition codes for Thumb conditional branches.

use core::fmt;
use core::str::FromStr;

/// Snapshot of the four APSR condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry (no borrow for subtractions).
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bit = |b: bool, ch: char| if b { ch } else { '-' };
        write!(
            f,
            "{}{}{}{}",
            bit(self.n, 'N'),
            bit(self.z, 'Z'),
            bit(self.c, 'C'),
            bit(self.v, 'V')
        )
    }
}

/// One of the fourteen usable Thumb condition codes.
///
/// The encodings `0b1110` and `0b1111` are not conditions in the 16-bit
/// conditional-branch space: they select the permanently-undefined
/// instruction and `SVC` respectively, so they are deliberately absent here.
///
/// ```
/// use gd_thumb::{Cond, Flags};
/// let flags = Flags { z: true, ..Flags::default() };
/// assert!(Cond::Eq.holds(flags));
/// assert!(!Cond::Ne.holds(flags));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq = 0b0000,
    /// Not equal (`Z == 0`).
    Ne = 0b0001,
    /// Carry set / unsigned higher-or-same (`C == 1`).
    Cs = 0b0010,
    /// Carry clear / unsigned lower (`C == 0`).
    Cc = 0b0011,
    /// Minus / negative (`N == 1`).
    Mi = 0b0100,
    /// Plus / positive-or-zero (`N == 0`).
    Pl = 0b0101,
    /// Overflow set (`V == 1`).
    Vs = 0b0110,
    /// Overflow clear (`V == 0`).
    Vc = 0b0111,
    /// Unsigned higher (`C == 1 && Z == 0`).
    Hi = 0b1000,
    /// Unsigned lower-or-same (`C == 0 || Z == 1`).
    Ls = 0b1001,
    /// Signed greater-or-equal (`N == V`).
    Ge = 0b1010,
    /// Signed less-than (`N != V`).
    Lt = 0b1011,
    /// Signed greater-than (`Z == 0 && N == V`).
    Gt = 0b1100,
    /// Signed less-or-equal (`Z == 1 || N != V`).
    Le = 0b1101,
}

impl Cond {
    /// All fourteen condition codes in encoding order.
    pub const ALL: [Cond; 14] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
    ];

    /// Decodes the 4-bit condition field.
    ///
    /// Returns `None` for `0b1110`/`0b1111`, which are not conditions.
    pub const fn from_bits(bits: u8) -> Option<Cond> {
        if bits < 14 {
            // SAFETY-free rebuild: a match keeps this fully safe code.
            Some(match bits {
                0b0000 => Cond::Eq,
                0b0001 => Cond::Ne,
                0b0010 => Cond::Cs,
                0b0011 => Cond::Cc,
                0b0100 => Cond::Mi,
                0b0101 => Cond::Pl,
                0b0110 => Cond::Vs,
                0b0111 => Cond::Vc,
                0b1000 => Cond::Hi,
                0b1001 => Cond::Ls,
                0b1010 => Cond::Ge,
                0b1011 => Cond::Lt,
                0b1100 => Cond::Gt,
                _ => Cond::Le,
            })
        } else {
            None
        }
    }

    /// The 4-bit encoding of this condition.
    pub const fn bits(self) -> u8 {
        self as u8
    }

    /// Whether the condition passes under the given flags.
    pub const fn holds(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Cs => f.c,
            Cond::Cc => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Vs => f.v,
            Cond::Vc => !f.v,
            Cond::Hi => f.c && !f.z,
            Cond::Ls => !f.c || f.z,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
        }
    }

    /// The condition that holds exactly when `self` does not.
    pub const fn invert(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Cs => Cond::Cc,
            Cond::Cc => Cond::Cs,
            Cond::Mi => Cond::Pl,
            Cond::Pl => Cond::Mi,
            Cond::Vs => Cond::Vc,
            Cond::Vc => Cond::Vs,
            Cond::Hi => Cond::Ls,
            Cond::Ls => Cond::Hi,
            Cond::Ge => Cond::Lt,
            Cond::Lt => Cond::Ge,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
        }
    }

    /// The assembly mnemonic suffix (`"eq"`, `"ne"`, …).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing a condition mnemonic fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCondError {
    text: String,
}

impl fmt::Display for ParseCondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid condition code `{}`", self.text)
    }
}

impl std::error::Error for ParseCondError {}

impl FromStr for Cond {
    type Err = ParseCondError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        // "hs"/"lo" are the architecture's preferred aliases for cs/cc.
        let canonical = match lower.as_str() {
            "hs" => "cs",
            "lo" => "cc",
            other => other,
        };
        Cond::ALL
            .iter()
            .copied()
            .find(|c| c.mnemonic() == canonical)
            .ok_or_else(|| ParseCondError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_flags() -> impl Iterator<Item = Flags> {
        (0u8..16).map(|bits| Flags {
            n: bits & 1 != 0,
            z: bits & 2 != 0,
            c: bits & 4 != 0,
            v: bits & 8 != 0,
        })
    }

    #[test]
    fn bits_round_trip() {
        for cond in Cond::ALL {
            assert_eq!(Cond::from_bits(cond.bits()), Some(cond));
        }
        assert_eq!(Cond::from_bits(0b1110), None);
        assert_eq!(Cond::from_bits(0b1111), None);
    }

    #[test]
    fn invert_is_logical_negation() {
        for cond in Cond::ALL {
            for flags in all_flags() {
                assert_eq!(
                    cond.holds(flags),
                    !cond.invert().holds(flags),
                    "{cond} vs {} under {flags}",
                    cond.invert()
                );
            }
        }
    }

    #[test]
    fn invert_is_involutive() {
        for cond in Cond::ALL {
            assert_eq!(cond.invert().invert(), cond);
        }
    }

    #[test]
    fn paired_conditions_partition_flag_space() {
        // eq/ne, cs/cc, mi/pl, vs/vc, hi/ls, ge/lt, gt/le are complements;
        // exactly one of each pair holds for every flag combination.
        for flags in all_flags() {
            let holding = Cond::ALL.iter().filter(|c| c.holds(flags)).count();
            assert_eq!(holding, 7, "exactly half the conditions hold: {flags}");
        }
    }

    #[test]
    fn semantics_spot_checks() {
        let f = |n, z, c, v| Flags { n, z, c, v };
        assert!(Cond::Hi.holds(f(false, false, true, false)));
        assert!(!Cond::Hi.holds(f(false, true, true, false)));
        assert!(Cond::Ge.holds(f(true, false, false, true)));
        assert!(Cond::Lt.holds(f(true, false, false, false)));
        assert!(Cond::Gt.holds(f(false, false, false, false)));
        assert!(Cond::Le.holds(f(false, true, false, false)));
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("hs".parse::<Cond>().unwrap(), Cond::Cs);
        assert_eq!("lo".parse::<Cond>().unwrap(), Cond::Cc);
        assert_eq!("GE".parse::<Cond>().unwrap(), Cond::Ge);
        assert!("al".parse::<Cond>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for cond in Cond::ALL {
            assert_eq!(cond.to_string().parse::<Cond>().unwrap(), cond);
        }
    }

    #[test]
    fn flags_display() {
        let f = Flags { n: true, z: false, c: true, v: false };
        assert_eq!(f.to_string(), "N-C-");
    }
}
