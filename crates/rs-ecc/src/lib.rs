//! # gd-rs-ecc — Reed–Solomon codes for constant diversification
//!
//! The substrate behind GlitchResistor's *constant diversification* defenses
//! (paper §VI-A): ENUM values and return codes are replaced with
//! Reed–Solomon parity words so that valid constants sit at least 8 bit
//! flips apart — a glitch that corrupts one valid value almost never lands
//! on another.
//!
//! ```
//! use gd_rs_ecc::{diversified_constants, min_pairwise_distance};
//! let values = diversified_constants(8);
//! assert!(min_pairwise_distance(&values) >= 8);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod gf256;
mod rs;

pub use gf256::Gf256;
pub use rs::{diversified_constants, min_pairwise_distance, RsEncoder};
