//! The worker fleet: remote shard execution over the workspace's own
//! HTTP/1.1 + strict-JSON stack, behind the same [`ShardDispatcher`]
//! boundary the in-process executor implements.
//!
//! Dispatch is pure execution strategy. Everything that determines
//! output bytes — checkpointing, caching, plan-order merging — stays in
//! the engine's completion callback, so a campaign renders
//! bit-identically whether its shards ran on 0, 1, or 40 workers.
//!
//! ## Wire protocol
//!
//! A worker ([`WorkerServer`], `gd-campaign worker`) serves:
//!
//! | Route | Effect |
//! |---|---|
//! | `GET /healthz` | registration + heartbeat: identity JSON (`role`, `pid`, shards served) |
//! | `POST /shards` | body = sealed shard lease; computes and answers the sealed result |
//! | `GET /metrics` | the worker process's `gd_obs` families |
//! | `POST /shutdown` | stop accepting; in-flight shards finish their responses |
//!
//! Shard leases and results both travel under the store's SHA-256 seal
//! (`#gd-sha256:<hex>`), and — unlike store files, where unsealed legacy
//! bytes pass through — the wire parsers are *strict*: an unsealed
//! payload is rejected outright, so a corrupt or truncated transfer can
//! never be mistaken for work. The lease carries the full spec plus a
//! shard index; the worker recomputes the plan and refuses indices
//! outside it, so a confused dispatcher cannot make a worker invent
//! work.
//!
//! ## Failure handling
//!
//! [`FleetDispatcher`] assumes workers fail and the network lies:
//!
//! * **Heartbeats** — a monitor thread polls `/healthz`; a worker silent
//!   past the liveness deadline is marked dead and receives no leases
//!   until it answers again.
//! * **Hedged dispatch** — a lease unanswered after `hedge_after` is
//!   re-sent to a second worker; first valid answer wins, the loser's
//!   (identical, deterministic) result is discarded.
//! * **Bounded retries with seeded jitter** — failed leases re-dispatch
//!   with the engine's [`retry_backoff`] schedule, so a mass failure
//!   doesn't resubmit in lockstep and a fixed seed replays exactly.
//! * **Quarantine** — a worker failing repeatedly in a row sits out a
//!   cooldown instead of eating every retry.
//! * **Graceful degradation** — shards that exhaust their remote budget,
//!   and whole campaigns when no worker is live, fall back to the
//!   in-process [`LocalDispatcher`]. A shrinking fleet slows a campaign;
//!   it never fails one.
//!
//! The `fleet.*` gd-chaos sites exercise each seam deterministically,
//! and the `gd_fleet_*` metric families make every recovery observable.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gd_obs::Timer;

use crate::engine::{panic_message, retry_backoff, seal, unseal, LocalDispatcher, SEAL_PREFIX};
use crate::error::CampaignError;
use crate::http::{
    read_request_deadline, request_timeout, request_timeout_full, write_response, RequestError,
};
use crate::json::{parse, Json};
use crate::shards::{run_shard, shard_plan, ShardResult, ShardWork};
use crate::spec::CampaignSpec;

/// Wire format version inside shard leases and results.
pub const WIRE_VERSION: i64 = 1;

/// Base delay of the remote re-dispatch backoff (doubles per attempt).
const FLEET_BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Ceiling of the remote re-dispatch backoff.
const FLEET_BACKOFF_CAP: Duration = Duration::from_millis(200);
/// Salts the jitter stream so fleet re-dispatch and the local shard
/// retry of the same (seed, shard) never share a schedule.
const FLEET_SEED_SALT: u64 = 0x666c_6565_7421;
/// How long [`FleetDispatcher::new`] waits for at least one worker to
/// answer its first heartbeat before giving up on registration (the
/// campaign then degrades to local execution).
const REGISTRATION_WAIT: Duration = Duration::from_secs(2);
/// Overall deadline for reading one request on the worker side.
const WORKER_READ_DEADLINE: Duration = Duration::from_secs(30);

/// How a dispatcher executes the missing shards of one campaign.
///
/// Implementations must call `ctx.complete` exactly once per shard they
/// finish (the engine checkpoints and counts there) and must only
/// return `Ok` when *every* shard in `ctx.missing` completed.
pub trait ShardDispatcher: Send + Sync + std::fmt::Debug {
    /// A short label for logs and metrics (`"local"`, `"fleet"`).
    fn name(&self) -> &'static str;

    /// Executes every shard in `ctx.missing`, reporting each completed
    /// result through `ctx.complete`.
    ///
    /// # Errors
    ///
    /// A typed [`CampaignError`] when a shard (or the fan-out itself)
    /// exhausts its recovery budget.
    fn dispatch(&self, ctx: &DispatchContext<'_>) -> Result<(), CampaignError>;
}

/// Everything a [`ShardDispatcher`] needs from the engine for one
/// campaign: the spec, the missing shards, the completion callback that
/// owns checkpointing/progress, and the engine's recovery knobs.
pub struct DispatchContext<'a> {
    /// The validated campaign spec.
    pub spec: &'a CampaignSpec,
    /// The shards still to run: `(plan index, work)` pairs.
    pub missing: &'a [(u32, ShardWork)],
    /// Called exactly once per completed shard, from any thread.
    pub complete: &'a (dyn Fn(u32, ShardResult) + Sync),
    /// Per-shard attempt budget.
    pub attempts: u32,
    /// Stuck-shard watchdog deadline.
    pub watchdog_deadline: Duration,
}

impl std::fmt::Debug for DispatchContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DispatchContext")
            .field("missing", &self.missing.len())
            .field("attempts", &self.attempts)
            .field("watchdog_deadline", &self.watchdog_deadline)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Wire envelopes
// ---------------------------------------------------------------------------

/// Serializes one shard lease: the full spec plus the plan index, under
/// the integrity seal.
///
/// # Errors
///
/// Returns a message when the spec fails to serialize.
pub fn shard_payload(spec: &CampaignSpec, index: u32) -> Result<String, String> {
    let body = Json::obj(vec![
        ("version", Json::Int(WIRE_VERSION.into())),
        ("shard", Json::Int(index.into())),
        ("spec", spec.to_json()),
    ])
    .to_string_compact()
    .map_err(|e| e.to_string())?;
    Ok(seal(&body))
}

/// Verifies the seal *strictly* (the wire admits no legacy unsealed
/// bytes) and returns the body.
fn unseal_strict<'a>(text: &'a str, what: &str) -> Result<&'a str, String> {
    if !text.starts_with(SEAL_PREFIX) {
        return Err(format!("{what} is not sealed"));
    }
    unseal(text).map_err(|e| format!("{what}: {e}"))
}

/// Parses and validates a shard lease: strict seal, version, spec
/// validity, and that the index falls inside the spec's own plan.
///
/// # Errors
///
/// Returns a message naming the first check that failed.
pub fn parse_shard_payload(text: &str) -> Result<(CampaignSpec, u32, ShardWork), String> {
    let body = unseal_strict(text, "shard lease")?;
    let v = parse(body).map_err(|e| format!("shard lease: {e}"))?;
    let version =
        v.get("version").and_then(Json::as_i64).ok_or("shard lease: missing `version`")?;
    if version != WIRE_VERSION {
        return Err(format!("unsupported shard lease version {version}"));
    }
    let index = v
        .get("shard")
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or("shard lease: missing `shard` index")?;
    let spec = CampaignSpec::from_json(v.get("spec").ok_or("shard lease: missing `spec`")?)?;
    spec.validate()?;
    let plan = shard_plan(&spec);
    let work = *plan
        .get(index as usize)
        .ok_or_else(|| format!("shard {index} outside the plan's {} shards", plan.len()))?;
    Ok((spec, index, work))
}

/// Serializes one shard result for the wire, echoing the lease's index,
/// under the integrity seal.
///
/// # Errors
///
/// Returns a message when the result fails to serialize.
pub fn shard_response(index: u32, result: &ShardResult) -> Result<String, String> {
    let body = Json::obj(vec![
        ("version", Json::Int(WIRE_VERSION.into())),
        ("shard", Json::Int(index.into())),
        ("result", result.to_json()),
    ])
    .to_string_compact()
    .map_err(|e| e.to_string())?;
    Ok(seal(&body))
}

/// Parses a shard result off the wire: strict seal, version, and the
/// echoed index must match the lease (a worker answering the wrong
/// question is as corrupt as a flipped bit).
///
/// # Errors
///
/// Returns a message naming the first check that failed.
pub fn parse_shard_response(text: &str, expect: u32) -> Result<ShardResult, String> {
    let body = unseal_strict(text, "shard result")?;
    let v = parse(body).map_err(|e| format!("shard result: {e}"))?;
    let version =
        v.get("version").and_then(Json::as_i64).ok_or("shard result: missing `version`")?;
    if version != WIRE_VERSION {
        return Err(format!("unsupported shard result version {version}"));
    }
    let index = v.get("shard").and_then(Json::as_u64).ok_or("shard result: missing `shard`")?;
    if index != u64::from(expect) {
        return Err(format!("shard result answers shard {index}, lease was for {expect}"));
    }
    ShardResult::from_json(v.get("result").ok_or("shard result: missing `result`")?)
}

// ---------------------------------------------------------------------------
// Fleet metrics
// ---------------------------------------------------------------------------

/// `gd_obs` handles for the fleet, registered eagerly so `/metrics`
/// exposes every family (at zero) before the first lease goes out.
struct FleetMetrics {
    /// `gd_fleet_workers_live`
    workers_live: Arc<gd_obs::Gauge>,
    /// `gd_fleet_shards_hedged_total`
    hedged: Arc<gd_obs::Counter>,
    /// `gd_fleet_shards_requeued_total`
    requeued: Arc<gd_obs::Counter>,
    /// `gd_fleet_workers_quarantined_total`
    quarantined: Arc<gd_obs::Counter>,
    /// `gd_fleet_local_fallback_shards_total`
    local_fallback: Arc<gd_obs::Counter>,
    /// `gd_fleet_seal_failures_total`
    seal_failures: Arc<gd_obs::Counter>,
    /// `gd_fleet_heartbeat_failures_total`
    heartbeat_failures: Arc<gd_obs::Counter>,
}

fn fleet_metrics() -> &'static FleetMetrics {
    static METRICS: OnceLock<FleetMetrics> = OnceLock::new();
    METRICS.get_or_init(|| FleetMetrics {
        workers_live: gd_obs::gauge(
            "gd_fleet_workers_live",
            "fleet workers currently answering heartbeats",
            &[],
        ),
        hedged: gd_obs::counter(
            "gd_fleet_shards_hedged_total",
            "shard leases re-sent to a second worker after the hedge deadline",
            &[],
        ),
        requeued: gd_obs::counter(
            "gd_fleet_shards_requeued_total",
            "failed shard leases re-dispatched with backoff",
            &[],
        ),
        quarantined: gd_obs::counter(
            "gd_fleet_workers_quarantined_total",
            "workers benched for a cooldown after repeated consecutive failures",
            &[],
        ),
        local_fallback: gd_obs::counter(
            "gd_fleet_local_fallback_shards_total",
            "shards degraded to in-process execution after the remote budget exhausted",
            &[],
        ),
        seal_failures: gd_obs::counter(
            "gd_fleet_seal_failures_total",
            "shard results rejected by the wire integrity seal",
            &[],
        ),
        heartbeat_failures: gd_obs::counter(
            "gd_fleet_heartbeat_failures_total",
            "heartbeat probes that failed or timed out",
            &[],
        ),
    })
}

/// Per-worker dispatched-shards counter.
fn dispatched_counter(worker: &str) -> Arc<gd_obs::Counter> {
    gd_obs::counter(
        "gd_fleet_shards_dispatched_total",
        "shard leases answered successfully, by worker",
        &[("worker", worker)],
    )
}

/// Per-worker shard round-trip latency histogram.
fn shard_ms_histogram(worker: &str) -> Arc<gd_obs::Histogram> {
    gd_obs::histogram(
        "gd_fleet_shard_ms",
        "lease-to-result round trip per shard in milliseconds, by worker",
        &[("worker", worker)],
    )
}

// ---------------------------------------------------------------------------
// Worker server
// ---------------------------------------------------------------------------

/// A shard worker: serves leases over HTTP until shut down.
///
/// Shard computation runs under [`gd_exec::serialized`] — a worker's
/// parallelism unit is the *lease* (several can be in flight from
/// hedging and multi-slot dispatch), so the sweeps inside each shard
/// must not multiply the thread count on top of that.
#[derive(Debug)]
pub struct WorkerServer {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl WorkerServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts serving.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn start(addr: &str) -> Result<WorkerServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        let bound = listener.local_addr().map_err(|e| e.to_string())?;
        // Expose the chaos site inventory and the served counter at zero
        // before the first lease, like every other process's /metrics.
        gd_chaos::register_metrics();
        let served = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let served = Arc::clone(&served);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || worker_accept_loop(&listener, &served, &stop))
        };
        gd_obs::info!("gd_campaign::fleet", "worker serving", addr = bound);
        Ok(WorkerServer { addr: bound, accept: Some(accept) })
    }

    /// The actually bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the worker: delivers `POST /shutdown` and joins the accept
    /// thread. In-flight shard computations finish their responses.
    ///
    /// # Errors
    ///
    /// Fails when the shutdown request cannot be delivered or the accept
    /// thread panicked.
    pub fn shutdown(mut self) -> Result<(), String> {
        request_timeout(
            &self.addr.to_string(),
            "POST",
            "/shutdown",
            None,
            Duration::from_secs(10),
        )?;
        if let Some(handle) = self.accept.take() {
            handle.join().map_err(|_| "worker accept thread panicked")?;
        }
        Ok(())
    }

    /// Blocks until the worker stops (a `POST /shutdown` arrives).
    ///
    /// # Errors
    ///
    /// Fails when the accept thread panicked.
    pub fn join(mut self) -> Result<(), String> {
        if let Some(handle) = self.accept.take() {
            handle.join().map_err(|_| "worker accept thread panicked")?;
        }
        Ok(())
    }
}

fn worker_accept_loop(listener: &TcpListener, served: &Arc<AtomicU64>, stop: &Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let (mut stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                gd_obs::warn!("gd_campaign::fleet", "worker accept failed", error = e);
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        let _ = stream.set_write_timeout(Some(WORKER_READ_DEADLINE));
        let request = match read_request_deadline(&mut stream, WORKER_READ_DEADLINE) {
            Ok(r) => r,
            Err(e) => {
                let status = match e {
                    RequestError::Timeout(_) => 408,
                    RequestError::Malformed(_) => 400,
                };
                let body = error_json(e.message());
                let _ = write_response(&mut stream, status, "application/json", &body);
                continue;
            }
        };
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                let body = Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("role", Json::Str("worker".into())),
                    ("pid", Json::Int(i64::from(std::process::id()).into())),
                    (
                        "served",
                        Json::Int(
                            i64::try_from(served.load(Ordering::Relaxed))
                                .unwrap_or(i64::MAX)
                                .into(),
                        ),
                    ),
                ]);
                let text = body.to_string_compact().expect("healthz serializes");
                let _ = write_response(&mut stream, 200, "application/json", text.as_bytes());
            }
            ("GET", "/metrics") => {
                let text = gd_obs::global().render_prometheus();
                let _ =
                    write_response(&mut stream, 200, gd_obs::prom::CONTENT_TYPE, text.as_bytes());
            }
            ("POST", "/shutdown") => {
                stop.store(true, Ordering::Relaxed);
                let _ = write_response(&mut stream, 200, "application/json", b"{\"ok\":true}");
                return;
            }
            ("POST", "/shards") => {
                // Leases compute on their own thread so the accept loop
                // stays available for heartbeats and further (hedged)
                // leases — this is the worker's concurrency unit.
                let served = Arc::clone(served);
                std::thread::spawn(move || serve_shard(stream, &request.body, &served));
            }
            (_, "/healthz" | "/metrics" | "/shutdown" | "/shards") => {
                let _ = write_response(
                    &mut stream,
                    405,
                    "application/json",
                    &error_json("method not allowed"),
                );
            }
            _ => {
                let _ = write_response(
                    &mut stream,
                    404,
                    "application/json",
                    &error_json("no such route"),
                );
            }
        }
    }
}

fn error_json(message: &str) -> Vec<u8> {
    Json::obj(vec![("error", Json::Str(message.into()))])
        .to_string_compact()
        .expect("error body serializes")
        .into_bytes()
}

/// Handles one `POST /shards` lease on its own thread (the accept loop
/// already read the request; the body and stream move here together).
fn serve_shard(mut stream: TcpStream, body: &[u8], served: &AtomicU64) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            let _ = write_response(
                &mut stream,
                400,
                "application/json",
                &error_json("lease is not UTF-8"),
            );
            return;
        }
    };
    let (spec, index, work) = match parse_shard_payload(text) {
        Ok(parsed) => parsed,
        Err(e) => {
            gd_obs::warn!("gd_campaign::fleet", "worker rejected a shard lease", error = e);
            let _ = write_response(&mut stream, 400, "application/json", &error_json(&e));
            return;
        }
    };
    // Chaos: a hung worker sits on the lease past the hedge deadline...
    gd_chaos::fleet_hang();
    // ...and a crashed one dies mid-shard: the connection closes with no
    // response at all, which the dispatcher must treat as a transport
    // failure, not an answer.
    if gd_chaos::fleet_worker_crashed() {
        gd_obs::warn!("gd_campaign::fleet", "chaos crashed the worker mid-shard", shard = index);
        return;
    }
    match catch_unwind(AssertUnwindSafe(|| gd_exec::serialized(|| run_shard(&spec, &work)))) {
        Ok(result) => match shard_response(index, &result) {
            Ok(sealed) => {
                served.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut stream,
                    200,
                    "text/plain; charset=utf-8",
                    sealed.as_bytes(),
                );
            }
            Err(e) => {
                let _ = write_response(&mut stream, 500, "application/json", &error_json(&e));
            }
        },
        Err(payload) => {
            let cause = panic_message(payload.as_ref());
            gd_obs::warn!(
                "gd_campaign::fleet",
                "shard lease panicked on the worker",
                shard = index,
                cause = cause,
            );
            let body = error_json(&format!("shard panicked: {cause}"));
            let _ = write_response(&mut stream, 500, "application/json", &body);
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet dispatcher
// ---------------------------------------------------------------------------

/// Knobs of the [`FleetDispatcher`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker addresses (`host:port`). Empty means every campaign runs
    /// locally.
    pub workers: Vec<String>,
    /// Overall deadline for one shard lease round trip (covering the
    /// hedge, when one launches).
    pub shard_timeout: Duration,
    /// How long an unanswered lease waits before a hedge goes to a
    /// second worker.
    pub hedge_after: Duration,
    /// Remote attempts per shard before it degrades to local execution.
    pub attempts: u32,
    /// Consecutive failures that quarantine a worker.
    pub quarantine_after: u32,
    /// How long a quarantined worker sits out.
    pub quarantine_cooldown: Duration,
    /// Heartbeat probe interval.
    pub heartbeat_interval: Duration,
    /// A worker silent this long is marked dead until it answers again.
    pub liveness_deadline: Duration,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            workers: Vec::new(),
            shard_timeout: Duration::from_secs(60),
            hedge_after: Duration::from_secs(1),
            attempts: 3,
            quarantine_after: 3,
            quarantine_cooldown: Duration::from_secs(5),
            heartbeat_interval: Duration::from_millis(500),
            liveness_deadline: Duration::from_secs(2),
        }
    }
}

/// Dispatcher-side view of one worker.
#[derive(Debug)]
struct WorkerState {
    addr: String,
    /// Answering heartbeats.
    live: AtomicBool,
    /// Leases currently in flight to this worker (load balancing).
    inflight: AtomicU32,
    /// Consecutive lease failures (reset on success or parole).
    consecutive_failures: AtomicU32,
    /// Quarantine bench: no leases until this instant passes.
    quarantined_until: Mutex<Option<Instant>>,
    /// Last successful heartbeat.
    last_seen: Mutex<Option<Instant>>,
}

/// The remote [`ShardDispatcher`]: leases shards to a worker fleet with
/// heartbeat liveness, hedged re-dispatch, jittered bounded retries,
/// quarantine, and graceful degradation to [`LocalDispatcher`]. See the
/// module docs for the failure model.
#[derive(Debug)]
pub struct FleetDispatcher {
    config: FleetConfig,
    workers: Vec<Arc<WorkerState>>,
    stop: Arc<AtomicBool>,
    heartbeat: Mutex<Option<JoinHandle<()>>>,
}

impl FleetDispatcher {
    /// Builds the dispatcher, starts the heartbeat thread, and waits up
    /// to [`REGISTRATION_WAIT`] for at least one worker to register. A
    /// fleet where nobody answers is not an error — campaigns degrade to
    /// local execution — but it is loudly logged.
    pub fn new(config: FleetConfig) -> FleetDispatcher {
        let _ = fleet_metrics();
        let workers: Vec<Arc<WorkerState>> = config
            .workers
            .iter()
            .map(|addr| {
                // Register the per-worker families at zero up front.
                let _ = dispatched_counter(addr);
                let _ = shard_ms_histogram(addr);
                Arc::new(WorkerState {
                    addr: addr.clone(),
                    live: AtomicBool::new(false),
                    inflight: AtomicU32::new(0),
                    consecutive_failures: AtomicU32::new(0),
                    quarantined_until: Mutex::new(None),
                    last_seen: Mutex::new(None),
                })
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let heartbeat = if workers.is_empty() {
            None
        } else {
            let workers = workers.clone();
            let stop = Arc::clone(&stop);
            let config = config.clone();
            Some(std::thread::spawn(move || heartbeat_loop(&workers, &config, &stop)))
        };
        let dispatcher =
            FleetDispatcher { config, workers, stop, heartbeat: Mutex::new(heartbeat) };
        // Registration: give the first heartbeat pass a moment so the
        // first campaign doesn't needlessly degrade to local execution.
        if !dispatcher.workers.is_empty() {
            let deadline = Instant::now() + REGISTRATION_WAIT;
            while dispatcher.live_count() == 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
            if dispatcher.live_count() == 0 {
                gd_obs::warn!(
                    "gd_campaign::fleet",
                    "no worker registered within the wait; campaigns will run locally until one appears",
                    workers = dispatcher.workers.len(),
                );
            }
        }
        dispatcher
    }

    /// Workers currently marked live (quarantine not considered).
    pub fn live_count(&self) -> usize {
        self.workers.iter().filter(|w| w.live.load(Ordering::Relaxed)).count()
    }

    /// Whether `worker` may receive a lease right now; expired
    /// quarantines are lifted (parole) on the way.
    fn eligible(&self, worker: &Arc<WorkerState>) -> bool {
        if !worker.live.load(Ordering::Relaxed) {
            return false;
        }
        let mut bench = worker.quarantined_until.lock().unwrap();
        match *bench {
            Some(until) if Instant::now() < until => false,
            Some(_) => {
                *bench = None;
                worker.consecutive_failures.store(0, Ordering::Relaxed);
                gd_obs::info!("gd_campaign::fleet", "worker paroled", worker = worker.addr);
                true
            }
            None => true,
        }
    }

    /// The least-loaded eligible worker, optionally excluding one
    /// address (the hedge must go somewhere else).
    fn pick_worker(&self, exclude: Option<&str>) -> Option<Arc<WorkerState>> {
        self.workers
            .iter()
            .filter(|w| exclude != Some(w.addr.as_str()))
            .filter(|w| self.eligible(w))
            .min_by_key(|w| w.inflight.load(Ordering::Relaxed))
            .cloned()
    }

    fn record_failure(&self, worker: &Arc<WorkerState>) {
        let failures = worker.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if failures >= self.config.quarantine_after {
            let mut bench = worker.quarantined_until.lock().unwrap();
            if bench.is_none() {
                *bench = Some(Instant::now() + self.config.quarantine_cooldown);
                fleet_metrics().quarantined.inc();
                gd_obs::warn!(
                    "gd_campaign::fleet",
                    "worker quarantined",
                    worker = worker.addr,
                    consecutive_failures = failures,
                    cooldown_ms = self.config.quarantine_cooldown.as_millis(),
                );
            }
        }
    }

    /// One lease round trip with hedging: sends to `first`, waits
    /// `hedge_after`, re-sends to a second worker on silence, and
    /// returns the first response that survives the seal.
    fn attempt(
        &self,
        first: &Arc<WorkerState>,
        payload: &Arc<String>,
        index: u32,
    ) -> Result<ShardResult, String> {
        let metrics = fleet_metrics();
        let timer = Timer::start();
        let deadline = Instant::now() + self.config.shard_timeout;
        let (tx, rx) = mpsc::channel::<(String, Result<String, String>)>();
        launch_lease(first, payload, deadline, &tx);
        let mut in_flight = 1u32;
        let mut hedged = false;
        let mut last = String::new();
        let (addr, body) = loop {
            let now = Instant::now();
            if now >= deadline {
                break Err(format!(
                    "no response within the {:?} shard timeout",
                    self.config.shard_timeout
                ));
            }
            let wait =
                if hedged { deadline - now } else { (deadline - now).min(self.config.hedge_after) };
            match rx.recv_timeout(wait) {
                Ok((addr, Ok(body))) => break Ok((addr, body)),
                Ok((addr, Err(e))) => {
                    in_flight -= 1;
                    last = format!("{addr}: {e}");
                    if in_flight == 0 {
                        break Err(last);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !hedged {
                        hedged = true;
                        if let Some(other) = self.pick_worker(Some(first.addr.as_str())) {
                            metrics.hedged.inc();
                            gd_obs::info!(
                                "gd_campaign::fleet",
                                "hedging a straggler lease",
                                shard = index,
                                slow_worker = first.addr,
                                hedge_worker = other.addr,
                            );
                            launch_lease(&other, payload, deadline, &tx);
                            in_flight += 1;
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    break Err(if last.is_empty() { "all leases vanished".into() } else { last });
                }
            }
        }?;
        // Chaos: a bit flipped in transit must die at the seal, never
        // reach the merge.
        let mut bytes = body.into_bytes();
        let corrupted = gd_chaos::fleet_corrupt_result(&mut bytes);
        let text = String::from_utf8(bytes)
            .map_err(|_| format!("{addr}: shard result is not UTF-8"))
            .and_then(|t| parse_shard_response(&t, index).map_err(|e| format!("{addr}: {e}")));
        match text {
            Ok(result) => {
                dispatched_counter(&addr).inc();
                shard_ms_histogram(&addr).observe(timer.elapsed_ms());
                Ok(result)
            }
            Err(e) => {
                metrics.seal_failures.inc();
                gd_obs::warn!(
                    "gd_campaign::fleet",
                    "shard result failed verification",
                    shard = index,
                    chaos_corrupted = corrupted,
                    error = e,
                );
                Err(e)
            }
        }
    }

    /// Runs one shard remotely with the full retry ladder. `Err` means
    /// the remote budget exhausted — the caller degrades it to local.
    fn run_remote(&self, ctx: &DispatchContext<'_>, index: u32) -> Result<ShardResult, String> {
        let payload = Arc::new(shard_payload(ctx.spec, index)?);
        let mut last = String::from("no live workers");
        for attempt in 0..self.config.attempts {
            let Some(worker) = self.pick_worker(None) else {
                return Err(last);
            };
            match self.attempt(&worker, &payload, index) {
                Ok(result) => {
                    worker.consecutive_failures.store(0, Ordering::Relaxed);
                    return Ok(result);
                }
                Err(e) => {
                    last = e;
                    self.record_failure(&worker);
                    if attempt + 1 < self.config.attempts {
                        fleet_metrics().requeued.inc();
                        // The same seeded-jitter schedule as local shard
                        // retries, on a salted stream: mass failures
                        // de-synchronize, fixed seeds replay.
                        std::thread::sleep(retry_backoff(
                            FLEET_BACKOFF_BASE,
                            FLEET_BACKOFF_CAP,
                            attempt,
                            ctx.spec.model.seed ^ FLEET_SEED_SALT,
                            u64::from(index),
                        ));
                    }
                }
            }
        }
        Err(format!("{} remote attempts failed; last: {last}", self.config.attempts))
    }
}

impl Drop for FleetDispatcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.heartbeat.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl ShardDispatcher for FleetDispatcher {
    fn name(&self) -> &'static str {
        "fleet"
    }

    fn dispatch(&self, ctx: &DispatchContext<'_>) -> Result<(), CampaignError> {
        let metrics = fleet_metrics();
        if ctx.missing.is_empty() {
            return Ok(());
        }
        let live = self.live_count();
        if live == 0 {
            // Whole-campaign degradation: a fleet of zero is just a
            // slower day, never a failed campaign.
            metrics.local_fallback.add(ctx.missing.len() as u64);
            gd_obs::warn!(
                "gd_campaign::fleet",
                "no live workers; campaign degrades to local execution",
                shards = ctx.missing.len(),
            );
            return LocalDispatcher.dispatch(ctx);
        }
        // Slot threads each own the shards they pop, so every shard has
        // exactly one owner and `ctx.complete` fires exactly once per
        // shard — hedging races *within* an owner, never across owners.
        let slots = (live * 2).min(ctx.missing.len()).max(1);
        let pending: Mutex<VecDeque<(u32, ShardWork)>> =
            Mutex::new(ctx.missing.iter().copied().collect());
        let fallback: Mutex<Vec<(u32, ShardWork)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..slots {
                s.spawn(|| loop {
                    let item = pending.lock().unwrap().pop_front();
                    let Some((index, work)) = item else { break };
                    match self.run_remote(ctx, index) {
                        Ok(result) => (ctx.complete)(index, result),
                        Err(why) => {
                            gd_obs::warn!(
                                "gd_campaign::fleet",
                                "shard exhausted its remote budget; degrading to local",
                                shard = index,
                                error = why,
                            );
                            fallback.lock().unwrap().push((index, work));
                        }
                    }
                });
            }
        });
        let mut fallback = fallback.into_inner().unwrap();
        if fallback.is_empty() {
            return Ok(());
        }
        fallback.sort_by_key(|(i, _)| *i);
        metrics.local_fallback.add(fallback.len() as u64);
        let local = DispatchContext {
            spec: ctx.spec,
            missing: &fallback,
            complete: ctx.complete,
            attempts: ctx.attempts,
            watchdog_deadline: ctx.watchdog_deadline,
        };
        LocalDispatcher.dispatch(&local)
    }
}

/// Fires one lease at `worker` on a detached thread; the outcome lands
/// on `tx` (ignored if the race is already decided and `rx` dropped).
fn launch_lease(
    worker: &Arc<WorkerState>,
    payload: &Arc<String>,
    deadline: Instant,
    tx: &mpsc::Sender<(String, Result<String, String>)>,
) {
    let worker = Arc::clone(worker);
    let payload = Arc::clone(payload);
    let tx = tx.clone();
    worker.inflight.fetch_add(1, Ordering::Relaxed);
    std::thread::spawn(move || {
        let outcome = (|| {
            // Chaos: the connection drops before the lease is sent.
            if gd_chaos::fleet_conn_dropped() {
                return Err("chaos dropped the worker connection".to_string());
            }
            let budget = deadline.saturating_duration_since(Instant::now());
            if budget.is_zero() {
                return Err("lease deadline exhausted before send".to_string());
            }
            let (status, _, body) =
                request_timeout_full(&worker.addr, "POST", "/shards", Some(&payload), budget)?;
            if status != 200 {
                return Err(format!("worker answered {status}: {body}"));
            }
            Ok(body)
        })();
        worker.inflight.fetch_sub(1, Ordering::Relaxed);
        let _ = tx.send((worker.addr.clone(), outcome));
    });
}

/// Polls every worker's `/healthz` on the configured interval and keeps
/// liveness, the `gd_fleet_workers_live` gauge, and `last_seen` current.
fn heartbeat_loop(workers: &[Arc<WorkerState>], config: &FleetConfig, stop: &Arc<AtomicBool>) {
    let metrics = fleet_metrics();
    let probe_timeout = config.heartbeat_interval.max(Duration::from_millis(100));
    while !stop.load(Ordering::Relaxed) {
        for worker in workers {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            match request_timeout(&worker.addr, "GET", "/healthz", None, probe_timeout) {
                Ok((200, _)) => {
                    *worker.last_seen.lock().unwrap() = Some(Instant::now());
                    if !worker.live.swap(true, Ordering::Relaxed) {
                        gd_obs::info!(
                            "gd_campaign::fleet",
                            "worker registered",
                            worker = worker.addr,
                        );
                    }
                }
                other => {
                    metrics.heartbeat_failures.inc();
                    let silent_for = worker
                        .last_seen
                        .lock()
                        .unwrap()
                        .map_or(Duration::MAX, |seen| seen.elapsed());
                    if silent_for > config.liveness_deadline
                        && worker.live.swap(false, Ordering::Relaxed)
                    {
                        gd_obs::warn!(
                            "gd_campaign::fleet",
                            "worker missed its liveness deadline; marked dead",
                            worker = worker.addr,
                            detail = match other {
                                Ok((status, _)) => format!("status {status}"),
                                Err(e) => e,
                            },
                        );
                    }
                }
            }
        }
        let live = workers.iter().filter(|w| w.live.load(Ordering::Relaxed)).count();
        metrics.workers_live.set(i64::try_from(live).unwrap_or(i64::MAX));
        std::thread::sleep(config.heartbeat_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::fig2();
        spec.shards = Some((0, 2));
        spec
    }

    #[test]
    fn wire_envelopes_round_trip_and_reject_tampering() {
        let spec = lease_spec();
        let lease = shard_payload(&spec, 1).unwrap();
        let (back_spec, index, work) = parse_shard_payload(&lease).unwrap();
        assert_eq!(back_spec, spec);
        assert_eq!(index, 1);
        assert_eq!(work, shard_plan(&spec)[1]);

        // The wire is strict: unsealed bytes are rejected even though
        // the store would wave them through.
        let unsealed = unseal(&lease).unwrap();
        let err = parse_shard_payload(unsealed).unwrap_err();
        assert!(err.contains("not sealed"), "{err}");

        // A flipped bit dies at the seal.
        let mut corrupt = lease.into_bytes();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        let err = parse_shard_payload(&String::from_utf8(corrupt).unwrap()).unwrap_err();
        assert!(err.contains("seal") || err.contains("not sealed"), "{err}");

        // An index outside the spec's own plan is refused.
        let err = parse_shard_payload(&shard_payload(&spec, 999).unwrap()).unwrap_err();
        assert!(err.contains("outside the plan"), "{err}");

        // Results echo their index, and a mismatch is corruption.
        let result = run_shard(&spec, &shard_plan(&spec)[0]);
        let wire = shard_response(0, &result).unwrap();
        assert_eq!(parse_shard_response(&wire, 0).unwrap(), result);
        let err = parse_shard_response(&wire, 1).unwrap_err();
        assert!(err.contains("lease was for 1"), "{err}");
    }

    #[test]
    fn worker_serves_healthz_shards_and_shutdown() {
        let worker = WorkerServer::start("127.0.0.1:0").unwrap();
        let addr = worker.addr().to_string();

        let (status, body) =
            request_timeout(&addr, "GET", "/healthz", None, Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"role\":\"worker\""), "{body}");

        // A real lease computes the same bytes as a direct run_shard.
        let spec = lease_spec();
        let lease = shard_payload(&spec, 0).unwrap();
        let (status, body) =
            request_timeout(&addr, "POST", "/shards", Some(&lease), Duration::from_secs(60))
                .unwrap();
        assert_eq!(status, 200, "{body}");
        let result = parse_shard_response(&body, 0).unwrap();
        assert_eq!(result, run_shard(&spec, &shard_plan(&spec)[0]));

        // Garbage leases are a 400, not a dead worker.
        let (status, body) =
            request_timeout(&addr, "POST", "/shards", Some("junk"), Duration::from_secs(5))
                .unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("not sealed"), "{body}");

        let (status, _) =
            request_timeout(&addr, "GET", "/nope", None, Duration::from_secs(5)).unwrap();
        assert_eq!(status, 404);
        let (status, _) =
            request_timeout(&addr, "DELETE", "/healthz", None, Duration::from_secs(5)).unwrap();
        assert_eq!(status, 405);

        worker.shutdown().unwrap();
    }

    #[test]
    fn fleet_config_defaults_are_sane() {
        let config = FleetConfig::default();
        assert!(config.workers.is_empty());
        assert!(config.hedge_after < config.shard_timeout);
        assert!(config.attempts >= 1 && config.quarantine_after >= 1);
        assert!(config.heartbeat_interval < config.liveness_deadline);
    }
}
