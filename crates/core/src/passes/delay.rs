//! Random-timing injection (paper §VI-1).
//!
//! A call to the runtime's `gr_delay()` — a glibc-parameter linear
//! congruential generator driving 0–10 busy iterations — is inserted at the
//! end of every basic block that ends in a branch, i.e. right before the
//! branch an attacker would time against. The entry function additionally
//! calls `gr_seed_init()` first thing, which increments the seed and writes
//! it back to non-volatile memory so repeated attempts against the same
//! seed are thwarted.

use gd_ir::{Instr, Module, Terminator, Ty, ValueDef};

use crate::config::Config;
use crate::pass::{is_runtime_fn, Pass, Report, DELAY_FN, SEED_INIT_FN};

/// The random-delay pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomDelay {
    /// Function whose entry receives the one-time `gr_seed_init()` call
    /// (typically the reset/main entry). `None` skips seed-init insertion.
    pub entry_function: Option<&'static str>,
}

impl RandomDelay {
    /// Delay pass that seeds at the entry of `entry` (usually `"main"`).
    pub fn with_entry(entry: &'static str) -> RandomDelay {
        RandomDelay { entry_function: Some(entry) }
    }
}

impl Pass for RandomDelay {
    fn name(&self) -> &'static str {
        "random-delay"
    }

    fn run(&self, module: &mut Module, config: &Config, report: &mut Report) {
        module.declare_extern(DELAY_FN, vec![], Ty::Void);
        module.declare_extern(SEED_INIT_FN, vec![], Ty::Void);
        for func in &mut module.funcs {
            if is_runtime_fn(&func.name) || !config.delay_applies_to(&func.name) {
                continue;
            }
            for bb in func.block_ids().collect::<Vec<_>>() {
                let ends_in_branch = matches!(
                    func.block(bb).term,
                    Some(Terminator::Br { .. }) | Some(Terminator::CondBr { .. })
                );
                if !ends_in_branch {
                    continue;
                }
                // Skip blocks that already end in a delay call (idempotence).
                if let Some(&last) = func.block(bb).instrs.last() {
                    if let ValueDef::Instr(Instr::Call { callee, .. }) = func.value(last) {
                        if callee == DELAY_FN {
                            continue;
                        }
                    }
                }
                let call = func.create_instr(
                    Instr::Call { callee: DELAY_FN.to_owned(), args: vec![] },
                    Ty::Void,
                );
                func.block_mut(bb).instrs.push(call);
                if !func.guards.delay_blocks.contains(&bb) {
                    func.guards.delay_blocks.push(bb);
                }
                report.delays_injected += 1;
            }
            if Some(func.name.as_str()) == self.entry_function {
                let entry = func.entry();
                let call = func.create_instr(
                    Instr::Call { callee: SEED_INIT_FN.to_owned(), args: vec![] },
                    Ty::Void,
                );
                // Before everything, but after any phis (entry has none).
                func.block_mut(entry).instrs.insert(0, call);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, Defenses, DelayScope};
    use gd_ir::{parse_module, print_module, verify_module};

    const SRC: &str = "
fn @main(%n: i32) -> i32 {
entry:
  br loop
loop:
  %i = phi i32 [ 0, entry ], [ %i2, loop ]
  %i2 = add i32 %i, 1
  %c = icmp ult i32 %i2, %n
  br %c, loop, done
done:
  ret i32 %i2
}

fn @gr_delay() -> void {
entry:
  ret void
}
";

    fn harden(cfg: &Config) -> (Module, Report) {
        let mut m = parse_module(SRC).unwrap();
        let mut report = Report::default();
        RandomDelay::with_entry("main").run(&mut m, cfg, &mut report);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        (m, report)
    }

    #[test]
    fn delays_before_every_branch_not_before_ret() {
        let (m, report) = harden(&Config::new(Defenses::DELAY));
        assert_eq!(report.delays_injected, 2, "entry and loop blocks branch; done returns");
        let text = print_module(&m);
        assert_eq!(text.matches("call void @gr_delay()").count(), 2, "{text}");
        assert!(text.contains("call void @gr_seed_init()"), "{text}");
    }

    #[test]
    fn runtime_functions_are_exempt() {
        let (m, _) = harden(&Config::new(Defenses::DELAY));
        let gr = m.func("gr_delay").unwrap();
        let entry = gr.entry();
        assert!(gr.block(entry).instrs.is_empty(), "gr_delay must not call itself");
    }

    #[test]
    fn opt_in_mode_requires_listing() {
        let mut cfg = Config::new(Defenses::DELAY);
        cfg.delay_scope = DelayScope::OptIn;
        let (_, report) = harden(&cfg);
        assert_eq!(report.delays_injected, 0);
        cfg.included.insert("main".into());
        let (_, report) = harden(&cfg);
        assert_eq!(report.delays_injected, 2);
    }

    #[test]
    fn opt_out_mode_respects_exclusions() {
        let mut cfg = Config::new(Defenses::DELAY);
        cfg.excluded.insert("main".into());
        let (_, report) = harden(&cfg);
        assert_eq!(report.delays_injected, 0);
    }

    #[test]
    fn idempotent() {
        let mut m = parse_module(SRC).unwrap();
        let cfg = Config::new(Defenses::DELAY);
        let mut report = Report::default();
        RandomDelay::default().run(&mut m, &cfg, &mut report);
        let first = report.delays_injected;
        RandomDelay::default().run(&mut m, &cfg, &mut report);
        assert_eq!(report.delays_injected, first, "second run adds nothing");
    }

    #[test]
    fn phi_blocks_get_the_call_after_phis() {
        let (m, _) = harden(&Config::new(Defenses::DELAY));
        let f = m.func("main").unwrap();
        let bb = f.block_by_name("loop").unwrap();
        let first = f.block(bb).instrs[0];
        assert!(
            matches!(f.value(first), ValueDef::Instr(Instr::Phi { .. })),
            "phi stays at block head"
        );
    }
}
