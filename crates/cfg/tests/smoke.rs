//! Recovery smoke tests: the boot image and the ingest demo produce
//! structurally sane graphs.

use gd_cfg::{recover, Term};
use glitch_resistor::{harden, Config as GrConfig, Defenses};

fn boot_image(defenses: Defenses) -> gd_backend::FirmwareImage {
    let mut m = gd_firmware::boot();
    harden(&mut m, &GrConfig::new(defenses));
    gd_backend::compile(&m, "main").expect("boot lowers")
}

#[test]
fn boot_none_recovers_a_sane_graph() {
    let image = boot_image(Defenses::NONE);
    let g = recover(&image, gd_emu::Config::default());
    assert!(!g.blocks.is_empty());
    // Every extent base that holds code becomes a block start.
    for e in &image.extents {
        if e.code_end > e.base {
            assert!(g.index.contains_key(&e.base), "{} entry block missing", e.name);
        }
    }
    // Blocks are sorted, non-overlapping, and instruction-contiguous.
    for w in g.blocks.windows(2) {
        assert!(w[0].end <= w[1].start || w[0].start < w[1].start);
    }
    for b in &g.blocks {
        let mut addr = b.start;
        for &(a, _, size) in &b.instrs {
            assert_eq!(a, addr, "instructions are contiguous");
            addr += size;
        }
        assert_eq!(addr, b.end);
    }
    // The compiled boot image has no computed branches left unresolved.
    assert!(g.unresolved.is_empty(), "unresolved: {:x?}", g.unresolved);
}

#[test]
fn boot_all_recovers_and_has_returns() {
    let image = boot_image(Defenses::ALL);
    let g = recover(&image, gd_emu::Config::default());
    assert!(g.blocks.iter().any(|b| b.term == Term::Ret));
    assert!(!g.return_edges.is_empty());
}

#[test]
fn demo_recovers_with_wide_decode() {
    let ing = gd_ingest::ingest_bin(&gd_ingest::testimg::demo_bin(), gd_ingest::testimg::DEMO_BASE)
        .expect("demo ingests");
    let cfg = gd_emu::Config { wide: true, ..gd_emu::Config::default() };
    let g = recover(&ing.image, cfg);
    // The demo's pool word must not be decoded as code.
    let pool = gd_ingest::testimg::DEMO_BASE + 0x40;
    assert!(!g.instr_blocks.contains_key(&pool));
    // The impossible `bad` region is recovered even though no honest
    // path reaches it (it is straight-line flow from the beq fall arm).
    assert!(g.instr_blocks.contains_key(&(gd_ingest::testimg::DEMO_BASE + 0x1a)));
}
