//! Textual IR input: parses the format emitted by [`crate::print`].

use core::fmt;
use std::collections::HashMap;

use crate::core::{
    BinOp, BlockId, EnumDef, EnumRef, ExternDecl, Function, Global, Instr, Module, Pred,
    Terminator, Ty, ValueId,
};

/// Error produced while parsing IR text, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line (0 for end-of-input errors).
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a module from its textual form.
///
/// # Errors
///
/// Returns [`ParseError`] for malformed syntax, unknown types/opcodes, and
/// references to undefined values, blocks, or enums.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    Parser::new(text).module()
}

struct Parser<'t> {
    lines: Vec<(usize, &'t str)>,
    pos: usize,
}

struct FnCtx {
    values: HashMap<String, ValueId>,
    blocks: HashMap<String, BlockId>,
    /// (line, block, kind, textual instruction, pre-created result slot).
    pending: Vec<(usize, BlockId, PendingKind, String, Option<ValueId>)>,
}

enum PendingKind {
    Instr,
    Term,
}

/// Result type of a producing instruction, read off the annotation — enough
/// to pre-create placeholder values so later lines can reference them
/// (forward references, phi back-edges).
fn result_ty(line: usize, body: &str) -> Result<Ty, ParseError> {
    let mut words = body.split_whitespace();
    let opcode = words.next().unwrap_or_default();
    if BinOp::ALL.iter().any(|o| o.mnemonic() == opcode) {
        return parse_ty(line, words.next().unwrap_or_default());
    }
    match opcode {
        "icmp" => Ok(Ty::I1),
        "inttoptr" => Ok(Ty::Ptr),
        "alloca" | "globaladdr" => {
            if opcode == "alloca" {
                parse_ty(line, words.next().unwrap_or_default())?;
            }
            Ok(Ty::Ptr)
        }
        "not" | "phi" | "call" => parse_ty(line, words.next().unwrap_or_default()),
        "load" => {
            let mut w = words.peekable();
            let first = w.next().unwrap_or_default();
            let tytext = if first == "volatile" { w.next().unwrap_or_default() } else { first };
            parse_ty(line, tytext.trim_end_matches(','))
        }
        "cast" => {
            let to = body.rsplit(" to ").next().unwrap_or_default();
            parse_ty(line, to.trim())
        }
        other => Err(Parser::err(line, format!("unknown opcode `{other}`"))),
    }
}

impl<'t> Parser<'t> {
    fn new(text: &'t str) -> Parser<'t> {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = l.split(';').next().unwrap_or("");
                (i + 1, l.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'t str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'t str)> {
        let item = self.peek();
        self.pos += 1;
        item
    }

    fn err(line: usize, msg: impl Into<String>) -> ParseError {
        ParseError { line, msg: msg.into() }
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        let mut module = Module::default();
        while let Some((line, text)) = self.peek() {
            if let Some(rest) = text.strip_prefix("module ") {
                module.name = rest.trim().to_owned();
                self.pos += 1;
            } else if text.starts_with("global ") {
                module.globals.push(self.global(line, text)?);
                self.pos += 1;
            } else if text.starts_with("enum ") {
                module.enums.push(self.enum_def(line, text)?);
                self.pos += 1;
            } else if text.starts_with("declare ") {
                module.externs.push(self.extern_decl(line, text)?);
                self.pos += 1;
            } else if text.starts_with("fn ") {
                let f = self.function(&module)?;
                module.funcs.push(f);
            } else {
                return Err(Self::err(line, format!("unexpected `{text}`")));
            }
        }
        Ok(module)
    }

    fn global(&self, line: usize, text: &str) -> Result<Global, ParseError> {
        // global @name : ty = init [sensitive]
        let rest = text.strip_prefix("global ").expect("caller checked");
        let (name, rest) =
            rest.split_once(':').ok_or_else(|| Self::err(line, "expected `:` in global"))?;
        let name = name
            .trim()
            .strip_prefix('@')
            .ok_or_else(|| Self::err(line, "global name needs `@`"))?
            .to_owned();
        let (ty, rest) =
            rest.split_once('=').ok_or_else(|| Self::err(line, "expected `=` in global"))?;
        let ty = parse_ty(line, ty.trim())?;
        let mut parts = rest.split_whitespace();
        let init: i64 = parts
            .next()
            .and_then(parse_int)
            .ok_or_else(|| Self::err(line, "bad global initializer"))?;
        let sensitive = match parts.next() {
            None => false,
            Some("sensitive") => true,
            Some(other) => return Err(Self::err(line, format!("unexpected `{other}`"))),
        };
        Ok(Global { name, ty, init, sensitive })
    }

    fn enum_def(&self, line: usize, text: &str) -> Result<EnumDef, ParseError> {
        // enum Name { A, B = 3, C }
        let rest = text.strip_prefix("enum ").expect("caller checked");
        let (name, rest) =
            rest.split_once('{').ok_or_else(|| Self::err(line, "expected `{` in enum"))?;
        let body =
            rest.strip_suffix('}').ok_or_else(|| Self::err(line, "expected `}` closing enum"))?;
        let mut variants = Vec::new();
        for part in body.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some((vname, init)) = part.split_once('=') {
                let value = parse_int(init.trim())
                    .ok_or_else(|| Self::err(line, format!("bad initializer `{init}`")))?;
                variants.push((vname.trim().to_owned(), Some(value)));
            } else {
                variants.push((part.to_owned(), None));
            }
        }
        Ok(EnumDef { name: name.trim().to_owned(), variants })
    }

    fn extern_decl(&self, line: usize, text: &str) -> Result<ExternDecl, ParseError> {
        // declare @name(ty, ty) -> ty
        let rest = text.strip_prefix("declare ").expect("caller checked");
        let (sig, ret) =
            rest.split_once("->").ok_or_else(|| Self::err(line, "expected `->` in declare"))?;
        let (name, params) =
            sig.split_once('(').ok_or_else(|| Self::err(line, "expected `(` in declare"))?;
        let name = name
            .trim()
            .strip_prefix('@')
            .ok_or_else(|| Self::err(line, "extern name needs `@`"))?
            .to_owned();
        let params = params
            .trim()
            .strip_suffix(')')
            .ok_or_else(|| Self::err(line, "expected `)` in declare"))?;
        let params = params
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|t| parse_ty(line, t))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExternDecl { name, params, ret: parse_ty(line, ret.trim())? })
    }

    fn function(&mut self, module: &Module) -> Result<Function, ParseError> {
        let (line, header) = self.next().expect("caller checked");
        // fn @name(%0: ty, ...) -> ty {
        let rest = header
            .strip_prefix("fn ")
            .and_then(|r| r.trim_end().strip_suffix('{'))
            .ok_or_else(|| Self::err(line, "malformed function header"))?;
        let (sig, ret) = rest
            .split_once("->")
            .ok_or_else(|| Self::err(line, "expected `->` in function header"))?;
        let (name, params_text) = sig
            .split_once('(')
            .ok_or_else(|| Self::err(line, "expected `(` in function header"))?;
        let name = name
            .trim()
            .strip_prefix('@')
            .ok_or_else(|| Self::err(line, "function name needs `@`"))?;
        let params_text = params_text
            .trim()
            .strip_suffix(')')
            .ok_or_else(|| Self::err(line, "expected `)` in function header"))?;
        let mut param_names = Vec::new();
        let mut param_tys = Vec::new();
        for p in params_text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (pname, pty) =
                p.split_once(':').ok_or_else(|| Self::err(line, "parameter needs `name: ty`"))?;
            let pname = pname
                .trim()
                .strip_prefix('%')
                .ok_or_else(|| Self::err(line, "parameter name needs `%`"))?;
            param_names.push(pname.to_owned());
            param_tys.push(parse_ty(line, pty.trim())?);
        }
        let ret = parse_ty(line, ret.trim())?;
        let mut func = Function::new(name, param_tys, ret);
        let mut ctx = FnCtx {
            values: param_names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), func.param(i)))
                .collect(),
            blocks: HashMap::new(),
            pending: Vec::new(),
        };

        // Pass 1: structure — blocks and raw lines.
        let mut current: Option<BlockId> = None;
        loop {
            let (line, text) = self
                .next()
                .ok_or_else(|| Self::err(0, "unexpected end of input inside function"))?;
            if text == "}" {
                break;
            }
            if let Some(label) = text.strip_suffix(':') {
                let bb = func.add_block(label.trim());
                if ctx.blocks.insert(label.trim().to_owned(), bb).is_some() {
                    return Err(Self::err(line, format!("duplicate block `{label}`")));
                }
                current = Some(bb);
                continue;
            }
            let bb =
                current.ok_or_else(|| Self::err(line, "instruction before first block label"))?;
            let kind = if text.starts_with("br ") || text.starts_with("ret") {
                PendingKind::Term
            } else {
                PendingKind::Instr
            };
            // Pre-create a placeholder value for producing instructions so
            // forward references (e.g. phi back-edges) resolve.
            let slot = match (&kind, text.split_once('=')) {
                (PendingKind::Instr, Some((dest, body))) if dest.trim_start().starts_with('%') => {
                    let name = dest.trim().trim_start_matches('%').to_owned();
                    let ty = result_ty(line, body.trim())?;
                    let id = func.create_instr(Instr::GlobalAddr { name: "<pending>".into() }, ty);
                    if ctx.values.insert(name.clone(), id).is_some() {
                        return Err(Self::err(line, format!("value `%{name}` redefined")));
                    }
                    Some(id)
                }
                _ => None,
            };
            ctx.pending.push((line, bb, kind, text.to_owned(), slot));
        }

        // Pass 2: instructions, now that every block label is known. Values
        // are defined strictly top-to-bottom, matching printer output.
        for i in 0..ctx.pending.len() {
            let line = ctx.pending[i].0;
            let bb = ctx.pending[i].1;
            let text = ctx.pending[i].3.clone();
            let slot = ctx.pending[i].4;
            match ctx.pending[i].2 {
                PendingKind::Instr => {
                    self.instr(line, &text, bb, slot, &mut func, &mut ctx, module)?
                }
                PendingKind::Term => {
                    self.terminator(line, &text, bb, &mut func, &mut ctx, module)?
                }
            }
        }
        Ok(func)
    }

    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn instr(
        &self,
        line: usize,
        text: &str,
        bb: BlockId,
        slot: Option<ValueId>,
        func: &mut Function,
        ctx: &mut FnCtx,
        module: &Module,
    ) -> Result<(), ParseError> {
        let body = match text.split_once('=') {
            Some((d, b)) if d.trim_start().starts_with('%') => b.trim(),
            _ => text.trim(),
        };
        let mut words = body.split_whitespace();
        let opcode = words.next().ok_or_else(|| Self::err(line, "empty instruction"))?;
        let rest = body[opcode.len()..].trim();

        let (instr, ty): (Instr, Ty) = if let Some(op) =
            BinOp::ALL.iter().find(|o| o.mnemonic() == opcode)
        {
            // add i32 %a, %b
            let (ty, args) =
                rest.split_once(' ').ok_or_else(|| Self::err(line, "binop needs a type"))?;
            let ty = parse_ty(line, ty)?;
            let (lhs, rhs) = split2(line, args)?;
            let lhs = self.operand(line, &lhs, ty, func, ctx, module)?;
            let rhs = self.operand(line, &rhs, ty, func, ctx, module)?;
            (Instr::Bin { op: *op, lhs, rhs }, ty)
        } else {
            match opcode {
                "icmp" => {
                    // icmp eq i32 %a, 0
                    let mut parts = rest.splitn(3, ' ');
                    let pred_text = parts.next().unwrap_or_default();
                    let pred = Pred::ALL
                        .iter()
                        .find(|p| p.mnemonic() == pred_text)
                        .ok_or_else(|| Self::err(line, format!("bad predicate `{pred_text}`")))?;
                    let ty = parse_ty(line, parts.next().unwrap_or_default())?;
                    let (lhs, rhs) = split2(line, parts.next().unwrap_or_default())?;
                    let lhs = self.operand(line, &lhs, ty, func, ctx, module)?;
                    let rhs = self.operand(line, &rhs, ty, func, ctx, module)?;
                    (Instr::Icmp { pred: *pred, lhs, rhs }, Ty::I1)
                }
                "not" => {
                    let (ty, arg) =
                        rest.split_once(' ').ok_or_else(|| Self::err(line, "not needs a type"))?;
                    let ty = parse_ty(line, ty)?;
                    let arg = self.operand(line, arg.trim(), ty, func, ctx, module)?;
                    (Instr::Not { arg }, ty)
                }
                "cast" => {
                    // cast i32 %a to i8
                    let (from_part, to_part) = rest
                        .split_once(" to ")
                        .ok_or_else(|| Self::err(line, "cast needs `to`"))?;
                    let (fty, arg) = from_part
                        .split_once(' ')
                        .ok_or_else(|| Self::err(line, "cast needs a source type"))?;
                    let fty = parse_ty(line, fty)?;
                    let to = parse_ty(line, to_part.trim())?;
                    let arg = self.operand(line, arg.trim(), fty, func, ctx, module)?;
                    (Instr::Cast { arg, to }, to)
                }
                "alloca" => (Instr::Alloca { ty: parse_ty(line, rest)? }, Ty::Ptr),
                "inttoptr" => {
                    let (ty, arg) = rest
                        .split_once(' ')
                        .ok_or_else(|| Self::err(line, "inttoptr needs `i32 value`"))?;
                    let ty = parse_ty(line, ty)?;
                    let arg = self.operand(line, arg.trim(), ty, func, ctx, module)?;
                    (Instr::IntToPtr { arg }, Ty::Ptr)
                }
                "load" => {
                    // load [volatile] i32, %p
                    let (spec, ptr) = rest
                        .split_once(',')
                        .ok_or_else(|| Self::err(line, "load needs `, ptr`"))?;
                    let (volatile, tytext) = match spec.trim().strip_prefix("volatile ") {
                        Some(t) => (true, t),
                        None => (false, spec.trim()),
                    };
                    let ty = parse_ty(line, tytext.trim())?;
                    let ptr = self.operand(line, ptr.trim(), Ty::Ptr, func, ctx, module)?;
                    (Instr::Load { ptr, ty, volatile }, ty)
                }
                "store" => {
                    // store [volatile] i32 %v, %p
                    let (spec, ptr) = rest
                        .split_once(',')
                        .ok_or_else(|| Self::err(line, "store needs `, ptr`"))?;
                    let (volatile, valtext) = match spec.trim().strip_prefix("volatile ") {
                        Some(t) => (true, t),
                        None => (false, spec.trim()),
                    };
                    let (ty, v) = valtext
                        .split_once(' ')
                        .ok_or_else(|| Self::err(line, "store needs `ty value`"))?;
                    let ty = parse_ty(line, ty)?;
                    let value = self.operand(line, v.trim(), ty, func, ctx, module)?;
                    let ptr = self.operand(line, ptr.trim(), Ty::Ptr, func, ctx, module)?;
                    (Instr::Store { ptr, value, volatile }, Ty::Void)
                }
                "globaladdr" => {
                    let name = rest
                        .trim()
                        .strip_prefix('@')
                        .ok_or_else(|| Self::err(line, "globaladdr needs `@name`"))?;
                    (Instr::GlobalAddr { name: name.to_owned() }, Ty::Ptr)
                }
                "call" => {
                    // call i32 @f(%a, 3) | call void @f()
                    let (ty, callpart) = rest
                        .split_once(' ')
                        .ok_or_else(|| Self::err(line, "call needs a return type"))?;
                    let ty = parse_ty(line, ty)?;
                    let (callee, args_text) = callpart
                        .trim()
                        .split_once('(')
                        .ok_or_else(|| Self::err(line, "call needs `(`"))?;
                    let callee = callee
                        .trim()
                        .strip_prefix('@')
                        .ok_or_else(|| Self::err(line, "callee needs `@`"))?;
                    let args_text = args_text
                        .strip_suffix(')')
                        .ok_or_else(|| Self::err(line, "call needs `)`"))?;
                    let sig = module.signature(callee);
                    let mut args = Vec::new();
                    for (i, a) in
                        args_text.split(',').map(str::trim).filter(|s| !s.is_empty()).enumerate()
                    {
                        let aty =
                            sig.as_ref().and_then(|(p, _)| p.get(i).copied()).unwrap_or(Ty::I32);
                        args.push(self.operand(line, a, aty, func, ctx, module)?);
                    }
                    (Instr::Call { callee: callee.to_owned(), args }, ty)
                }
                "phi" => {
                    // phi i32 [ %a, entry ], [ 0, loop ]
                    let (ty, rest2) =
                        rest.split_once(' ').ok_or_else(|| Self::err(line, "phi needs a type"))?;
                    let ty = parse_ty(line, ty)?;
                    let mut incomings = Vec::new();
                    for part in rest2.split("],").map(|p| p.trim().trim_matches(['[', ']'])) {
                        if part.is_empty() {
                            continue;
                        }
                        let (v, label) = part
                            .split_once(',')
                            .ok_or_else(|| Self::err(line, "phi arm needs `value, label`"))?;
                        let value = self.operand(line, v.trim(), ty, func, ctx, module)?;
                        let block = *ctx.blocks.get(label.trim()).ok_or_else(|| {
                            Self::err(line, format!("unknown block `{}`", label.trim()))
                        })?;
                        incomings.push((block, value));
                    }
                    (Instr::Phi { incomings }, ty)
                }
                other => return Err(Self::err(line, format!("unknown opcode `{other}`"))),
            }
        };
        let id = match slot {
            Some(id) => {
                *func.value_mut(id) = crate::core::ValueDef::Instr(instr);
                debug_assert_eq!(func.ty(id), ty, "pre-scanned type matches");
                id
            }
            None => func.create_instr(instr, ty),
        };
        func.block_mut(bb).instrs.push(id);
        Ok(())
    }

    fn terminator(
        &self,
        line: usize,
        text: &str,
        bb: BlockId,
        func: &mut Function,
        ctx: &mut FnCtx,
        module: &Module,
    ) -> Result<(), ParseError> {
        let term = if let Some(rest) = text.strip_prefix("br ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            match parts.as_slice() {
                [label] => {
                    let target = *ctx
                        .blocks
                        .get(*label)
                        .ok_or_else(|| Self::err(line, format!("unknown block `{label}`")))?;
                    Terminator::Br { target }
                }
                [cond, t, e] => {
                    let cond = self.operand(line, cond, Ty::I1, func, ctx, module)?;
                    let then_bb = *ctx
                        .blocks
                        .get(*t)
                        .ok_or_else(|| Self::err(line, format!("unknown block `{t}`")))?;
                    let else_bb = *ctx
                        .blocks
                        .get(*e)
                        .ok_or_else(|| Self::err(line, format!("unknown block `{e}`")))?;
                    Terminator::CondBr { cond, then_bb, else_bb }
                }
                _ => return Err(Self::err(line, "br takes 1 or 3 operands")),
            }
        } else if text == "ret void" {
            Terminator::Ret { value: None }
        } else if let Some(rest) = text.strip_prefix("ret ") {
            let (ty, v) = rest
                .split_once(' ')
                .ok_or_else(|| Self::err(line, "ret needs `ty value` or `void`"))?;
            let ty = parse_ty(line, ty)?;
            let value = self.operand(line, v.trim(), ty, func, ctx, module)?;
            Terminator::Ret { value: Some(value) }
        } else {
            return Err(Self::err(line, format!("unknown terminator `{text}`")));
        };
        let block = func.block_mut(bb);
        if block.term.is_some() {
            return Err(Self::err(line, format!("block `{}` has two terminators", block.name)));
        }
        block.term = Some(term);
        Ok(())
    }

    fn operand(
        &self,
        line: usize,
        text: &str,
        ty: Ty,
        func: &mut Function,
        ctx: &FnCtx,
        module: &Module,
    ) -> Result<ValueId, ParseError> {
        let text = text.trim();
        if let Some(name) = text.strip_prefix('%') {
            return ctx
                .values
                .get(name)
                .copied()
                .ok_or_else(|| Self::err(line, format!("unknown value `%{name}`")));
        }
        if let Some(value) = parse_int(text) {
            return Ok(func.const_int(ty, value));
        }
        // Enum reference: Name::Variant (by name or index).
        if let Some((ename, variant)) = text.split_once("::") {
            let e = module
                .enum_def(ename)
                .ok_or_else(|| Self::err(line, format!("unknown enum `{ename}`")))?;
            let idx = match variant.parse::<u32>() {
                Ok(i) => i,
                Err(_) => e
                    .variants
                    .iter()
                    .position(|(n, _)| n == variant)
                    .ok_or_else(|| Self::err(line, format!("unknown variant `{variant}`")))?
                    as u32,
            };
            if idx as usize >= e.variants.len() {
                return Err(Self::err(line, format!("variant index {idx} out of range")));
            }
            let value = e.value_of(idx);
            let er = EnumRef { enum_name: ename.to_owned(), variant: idx };
            return Ok(func.const_enum(ty, value, er));
        }
        Err(Self::err(line, format!("cannot parse operand `{text}`")))
    }
}

fn split2(line: usize, text: &str) -> Result<(String, String), ParseError> {
    text.split_once(',')
        .map(|(a, b)| (a.trim().to_owned(), b.trim().to_owned()))
        .ok_or_else(|| Parser::err(line, "expected two comma-separated operands"))
}

fn parse_ty(line: usize, text: &str) -> Result<Ty, ParseError> {
    match text {
        "i1" => Ok(Ty::I1),
        "i8" => Ok(Ty::I8),
        "i16" => Ok(Ty::I16),
        "i32" => Ok(Ty::I32),
        "ptr" => Ok(Ty::Ptr),
        "void" => Ok(Ty::Void),
        other => Err(Parser::err(line, format!("unknown type `{other}`"))),
    }
}

fn parse_int(text: &str) -> Option<i64> {
    let (neg, digits) = match text.strip_prefix('-') {
        Some(d) => (true, d),
        None => (false, text),
    };
    let value = if let Some(hex) = digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if digits.chars().all(|c| c.is_ascii_digit()) && !digits.is_empty() {
        digits.parse().ok()?
    } else {
        return None;
    };
    Some(if neg { -value } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::print_module;

    const EXAMPLE: &str = r"
module demo

enum Status { FAILURE, SUCCESS }
global @tick : i32 = 0 sensitive
declare @gr_detected() -> void

fn @check(%a: i32) -> i32 {
entry:
  %1 = icmp eq i32 %a, Status::SUCCESS
  br %1, then, else
then:
  %2 = add i32 %a, 1
  ret i32 %2
else:
  call void @gr_detected()
  ret i32 0
}
";

    #[test]
    fn parses_the_example() {
        let m = parse_module(EXAMPLE).unwrap();
        assert_eq!(m.name, "demo");
        assert_eq!(m.enums.len(), 1);
        assert!(m.global("tick").unwrap().sensitive);
        assert_eq!(m.externs.len(), 1);
        let f = m.func("check").unwrap();
        assert_eq!(f.block_count(), 3);
        assert_eq!(f.ret, Ty::I32);
    }

    #[test]
    fn round_trips_through_printer() {
        let m = parse_module(EXAMPLE).unwrap();
        let printed = print_module(&m);
        let m2 = parse_module(&printed).unwrap();
        let printed2 = print_module(&m2);
        assert_eq!(printed, printed2, "print∘parse is a fixed point");
    }

    #[test]
    fn enum_reference_computes_c_value() {
        let m = parse_module(EXAMPLE).unwrap();
        let f = m.func("check").unwrap();
        // The icmp's rhs constant should be SUCCESS = 1 with provenance.
        let entry = f.block_by_name("entry").unwrap();
        let icmp = f.block(entry).instrs[0];
        let crate::core::ValueDef::Instr(Instr::Icmp { rhs, .. }) = f.value(icmp) else {
            panic!("expected icmp");
        };
        let crate::core::ValueDef::Const { value, enum_ref: Some(er) } = f.value(*rhs) else {
            panic!("expected enum constant");
        };
        assert_eq!(*value, 1);
        assert_eq!(er.variant, 1);
    }

    #[test]
    fn volatile_loads_round_trip() {
        let src = "
fn @spin(%p: ptr) -> void {
entry:
  br header
header:
  %1 = load volatile i32, %p
  %2 = icmp ne i32 %1, 0
  br %2, header, exit
exit:
  store volatile i32 42, %p
  ret void
}
";
        let m = parse_module(src).unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("load volatile i32, %0"));
        assert!(printed.contains("store volatile i32 42"));
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(print_module(&m2), printed);
    }

    #[test]
    fn phi_round_trips() {
        let src = "
fn @count(%n: i32) -> i32 {
entry:
  br loop
loop:
  %1 = phi i32 [ 0, entry ], [ %2, loop ]
  %2 = add i32 %1, 1
  %3 = icmp ult i32 %2, %n
  br %3, loop, done
done:
  ret i32 %2
}
";
        let m = parse_module(src).unwrap();
        let printed = print_module(&m);
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(print_module(&m2), printed);
    }

    #[test]
    fn errors_have_lines() {
        let err = parse_module("fn @f() -> i32 {\nentry:\n  %1 = bogus i32 %x\n}\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("unknown opcode"));
        let err = parse_module("fn @f() -> i32 {\nentry:\n  ret i32 %nope\n}\n").unwrap_err();
        assert!(err.msg.contains("unknown value"));
        let err = parse_module("wibble\n").unwrap_err();
        assert!(err.msg.contains("unexpected"));
    }

    #[test]
    fn forward_block_references_work() {
        let src = "
fn @f(%c: i1) -> void {
entry:
  br %c, later, exit
later:
  br exit
exit:
  ret void
}
";
        let m = parse_module(src).unwrap();
        assert_eq!(m.func("f").unwrap().block_count(), 3);
    }
}
