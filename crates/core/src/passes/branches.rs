//! Branch duplication and loop hardening (paper §VI-B-b).
//!
//! For every conditional branch, the **true** arm gets a redundant,
//! *complemented* re-check: the comparison chain is recomputed over
//! bitwise-complemented operands with the order-mirrored predicate, so the
//! same unidirectional bit flips applied twice cannot satisfy both checks.
//! A failing re-check calls `gr_detected()`.
//!
//! The loop pass adds the same instrumentation to the **false** (exit) arm
//! of loop guards, which the branch pass deliberately leaves alone (the
//! false arm of an `if` is the common path; a loop's false arm is the exit
//! that a glitch wants to force).

use gd_ir::{
    natural_loops, BlockId, BranchCheck, Cfg, DomTree, Function, Instr, Module, Pred, Terminator,
    Ty, ValueDef, ValueId,
};

use crate::config::Config;
use crate::pass::{clone_chain, detect_trampoline, split_edge, EdgeArm, Pass, Report};

/// The branch-duplication pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct BranchDuplication;

/// The loop-hardening pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoopHardening;

impl Pass for BranchDuplication {
    fn name(&self) -> &'static str {
        "branch-duplication"
    }

    fn run(&self, module: &mut Module, _config: &Config, report: &mut Report) {
        for func in &mut module.funcs {
            let blocks: Vec<BlockId> = func.block_ids().collect();
            for bb in blocks {
                let Some(Terminator::CondBr { cond, then_bb, else_bb }) =
                    func.block(bb).term.clone()
                else {
                    continue;
                };
                if then_bb == else_bb {
                    continue; // degenerate edge; nothing to protect
                }
                let (check, detect) =
                    instrument_edge(func, bb, cond, then_bb, EdgeArm::Then, Expect::Holds);
                func.guards.branch_checks.push(BranchCheck { site: bb, check });
                func.guards.guard_blocks.push(detect);
                report.branches_instrumented += 1;
            }
        }
    }
}

impl Pass for LoopHardening {
    fn name(&self) -> &'static str {
        "loop-hardening"
    }

    fn run(&self, module: &mut Module, _config: &Config, report: &mut Report) {
        for func in &mut module.funcs {
            let cfg = Cfg::compute(func);
            let dom = DomTree::compute(func, &cfg);
            let loops = natural_loops(func, &cfg, &dom);
            // Collect (block, cond, exit target) for false arms leaving a loop.
            let mut edges = Vec::new();
            for l in &loops {
                for &bb in &l.body {
                    let Some(Terminator::CondBr { cond, then_bb, else_bb }) =
                        func.block(bb).term.clone()
                    else {
                        continue;
                    };
                    if then_bb == else_bb {
                        continue;
                    }
                    if !l.contains(else_bb) {
                        edges.push((bb, cond, else_bb));
                    }
                }
            }
            edges.sort_by_key(|(bb, _, _)| *bb);
            edges.dedup_by_key(|(bb, _, _)| *bb);
            for (bb, cond, else_bb) in edges {
                let (check, detect) =
                    instrument_edge(func, bb, cond, else_bb, EdgeArm::Else, Expect::Fails);
                func.guards.loop_checks.push(BranchCheck { site: bb, check });
                func.guards.guard_blocks.push(detect);
                report.loops_instrumented += 1;
            }
        }
    }
}

/// What the redundant check expects of the original condition on this edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// The edge is taken when the condition holds (true arm).
    Holds,
    /// The edge is taken when the condition fails (false arm).
    Fails,
}

/// Builds the re-check block on the `from →(arm)→ to` edge, returning the
/// check block and its detection trampoline.
fn instrument_edge(
    func: &mut Function,
    from: BlockId,
    cond: ValueId,
    to: BlockId,
    arm: EdgeArm,
    expect: Expect,
) -> (BlockId, BlockId) {
    // 1. Interpose a check block on the edge.
    let check_bb = split_edge(func, from, to, arm);

    // 2. Recompute the condition in complemented form.
    let recheck = match func.value(cond).clone() {
        ValueDef::Instr(Instr::Icmp { pred, lhs, rhs }) => {
            // Clone the chains feeding both operands, complement them, and
            // compare with the order-mirrored predicate: a ⊕ b ⇔ ¬a ⊕ˢ ¬b.
            let (lhs_c, _) = clone_chain(func, lhs, check_bb);
            let (rhs_c, _) = clone_chain(func, rhs, check_bb);
            let ty = func.ty(lhs);
            let not_l = push(func, check_bb, Instr::Not { arg: lhs_c }, ty);
            let not_r = push(func, check_bb, Instr::Not { arg: rhs_c }, ty);
            let pred = match expect {
                Expect::Holds => pred.swap(),
                Expect::Fails => pred.negate().swap(),
            };
            push(func, check_bb, Instr::Icmp { pred, lhs: not_l, rhs: not_r }, Ty::I1)
        }
        _ => {
            // Generic i1 condition: re-evaluate its chain and compare
            // against the expected truth value.
            let (cond_c, _) = clone_chain(func, cond, check_bb);
            let expected = func.const_int(Ty::I1, i64::from(expect == Expect::Holds));
            push(func, check_bb, Instr::Icmp { pred: Pred::Eq, lhs: cond_c, rhs: expected }, Ty::I1)
        }
    };

    // 3. Passing re-check continues to `to`; failing calls gr_detected().
    let detect_bb = detect_trampoline(func, to);
    func.block_mut(check_bb).term =
        Some(Terminator::CondBr { cond: recheck, then_bb: to, else_bb: detect_bb });
    // `to` gains `detect_bb` as a predecessor; phis that saw `check_bb`
    // must also accept the detect edge with the same values.
    duplicate_phi_edge(func, to, check_bb, detect_bb);
    (check_bb, detect_bb)
}

fn push(func: &mut Function, bb: BlockId, instr: Instr, ty: Ty) -> ValueId {
    let id = func.create_instr(instr, ty);
    func.block_mut(bb).instrs.push(id);
    id
}

/// For each phi in `bb` with an incoming from `existing`, adds an identical
/// incoming from `added`.
fn duplicate_phi_edge(func: &mut Function, bb: BlockId, existing: BlockId, added: BlockId) {
    let phi_ids: Vec<ValueId> = func
        .block(bb)
        .instrs
        .iter()
        .copied()
        .filter(|&id| matches!(func.value(id), ValueDef::Instr(Instr::Phi { .. })))
        .collect();
    for id in phi_ids {
        if let ValueDef::Instr(Instr::Phi { incomings }) = func.value_mut(id) {
            if let Some((_, v)) = incomings.iter().find(|(p, _)| *p == existing).copied() {
                incomings.push((added, v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, Defenses};
    use gd_ir::{parse_module, print_module, verify_module, Interpreter, RtVal};

    fn harden_branches(src: &str) -> (Module, Report) {
        let mut m = parse_module(src).unwrap();
        m.declare_extern("gr_detected", vec![], Ty::Void);
        let mut report = Report::default();
        BranchDuplication.run(&mut m, &Config::new(Defenses::BRANCHES), &mut report);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        (m, report)
    }

    const IF_SRC: &str = "
fn @check(%a: i32) -> i32 {
entry:
  %1 = icmp eq i32 %a, 5
  br %1, then, else
then:
  ret i32 1
else:
  ret i32 0
}
";

    #[test]
    fn true_arm_gets_complemented_recheck() {
        let (m, report) = harden_branches(IF_SRC);
        assert_eq!(report.branches_instrumented, 1);
        let text = print_module(&m);
        // The recheck compares complemented operands.
        assert!(text.contains("not i32"), "{text}");
        assert!(text.contains("gr_detected"), "{text}");
        let f = m.func("check").unwrap();
        assert_eq!(f.block_count(), 5, "entry, then, else, check, detect");
    }

    #[test]
    fn semantics_preserved_when_unglitched() {
        let (m, _) = harden_branches(IF_SRC);
        let mut detected = 0u32;
        let mut interp = Interpreter::new(&m);
        let mut handler = |name: &str, _: &[RtVal]| {
            if name == "gr_detected" {
                detected += 1;
            }
            RtVal::Int(0)
        };
        let r5 = interp.run("check", &[RtVal::Int(5)], &mut handler).unwrap();
        let r7 = interp.run("check", &[RtVal::Int(7)], &mut handler).unwrap();
        drop(interp); // release the handler borrow before reading `detected`
        assert_eq!(r5, RtVal::Int(1));
        assert_eq!(r7, RtVal::Int(0));
        assert_eq!(detected, 0, "the redundant check never fires without a fault");
    }

    #[test]
    fn ordered_predicates_use_swapped_form() {
        let src = "
fn @lt(%a: i32, %b: i32) -> i32 {
entry:
  %1 = icmp ult i32 %a, %b
  br %1, then, else
then:
  ret i32 1
else:
  ret i32 0
}
";
        let (m, _) = harden_branches(src);
        // Exhaustive-ish semantic check over interesting corners.
        for (a, b) in [(0i64, 0i64), (0, 1), (1, 0), (0xFFFF_FFFF, 0), (5, 0xFFFF_FFFF)] {
            let mut interp = Interpreter::new(&m);
            let mut fired = false;
            let r = interp
                .run("lt", &[RtVal::Int(a), RtVal::Int(b)], &mut |n, _| {
                    fired |= n == "gr_detected";
                    RtVal::Int(0)
                })
                .unwrap();
            let expected = i64::from((a as u32) < (b as u32));
            assert_eq!(r, RtVal::Int(expected), "lt({a},{b})");
            assert!(!fired, "no detection for lt({a},{b})");
        }
    }

    #[test]
    fn volatile_load_is_not_duplicated() {
        // The guard loads a volatile; the recheck must reuse the loaded
        // value rather than reading twice (paper §VI-B-b).
        let src = "
global @mmio : i32 = 0
fn @guard() -> i32 {
entry:
  %p = globaladdr @mmio
  %v = load volatile i32, %p
  %1 = icmp eq i32 %v, 0
  br %1, then, else
then:
  ret i32 1
else:
  ret i32 0
}
";
        let (m, _) = harden_branches(src);
        let text = print_module(&m);
        let loads = text.matches("load volatile").count();
        assert_eq!(loads, 1, "volatile load must appear exactly once:\n{text}");
    }

    #[test]
    fn phis_in_target_survive() {
        let src = "
fn @f(%a: i32) -> i32 {
entry:
  %1 = icmp ne i32 %a, 0
  br %1, join, other
other:
  br join
join:
  %2 = phi i32 [ 10, entry ], [ 20, other ]
  ret i32 %2
}
";
        let (m, _) = harden_branches(src);
        // Unglitched behavior unchanged.
        for (a, want) in [(1i64, 10i64), (0, 20)] {
            let mut interp = Interpreter::new(&m);
            let r = interp.run("f", &[RtVal::Int(a)], &mut |_, _| RtVal::Int(0)).unwrap();
            assert_eq!(r, RtVal::Int(want), "f({a})");
        }
    }

    const LOOP_SRC: &str = "
fn @spin(%p: ptr) -> i32 {
entry:
  br header
header:
  %v = load volatile i32, %p
  %c = icmp ne i32 %v, 0
  br %c, body, exit
body:
  br header
exit:
  ret i32 42
}
";

    #[test]
    fn loop_pass_instruments_exit_edge() {
        let mut m = parse_module(LOOP_SRC).unwrap();
        m.declare_extern("gr_detected", vec![], Ty::Void);
        let mut report = Report::default();
        LoopHardening.run(&mut m, &Config::new(Defenses::LOOPS), &mut report);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        assert_eq!(report.loops_instrumented, 1);
        let text = print_module(&m);
        assert!(text.contains("gr_detected"), "{text}");
        // The check sits on the exit edge: header's else arm is rewritten.
        let f = m.func("spin").unwrap();
        let header = f.block_by_name("header").unwrap();
        let Some(Terminator::CondBr { else_bb, .. }) = &f.block(header).term else {
            panic!("header keeps its cond-br");
        };
        assert_ne!(f.block(*else_bb).name, "exit", "else edge goes through the check");
    }

    #[test]
    fn loop_pass_ignores_non_loop_branches() {
        let mut m = parse_module(IF_SRC).unwrap();
        m.declare_extern("gr_detected", vec![], Ty::Void);
        let mut report = Report::default();
        LoopHardening.run(&mut m, &Config::new(Defenses::LOOPS), &mut report);
        assert_eq!(report.loops_instrumented, 0);
    }

    #[test]
    fn branch_pass_on_loops_targets_the_body_edge() {
        let mut m = parse_module(LOOP_SRC).unwrap();
        m.declare_extern("gr_detected", vec![], Ty::Void);
        let mut report = Report::default();
        BranchDuplication.run(&mut m, &Config::new(Defenses::BRANCHES), &mut report);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        assert_eq!(report.branches_instrumented, 1);
    }

    #[test]
    fn both_passes_compose() {
        let mut m = parse_module(LOOP_SRC).unwrap();
        m.declare_extern("gr_detected", vec![], Ty::Void);
        let mut report = Report::default();
        BranchDuplication.run(&mut m, &Config::new(Defenses::ALL), &mut report);
        LoopHardening.run(&mut m, &Config::new(Defenses::ALL), &mut report);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        assert!(report.branches_instrumented >= 1);
        assert!(report.loops_instrumented >= 1);
    }
}
