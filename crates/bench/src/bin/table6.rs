//! Regenerates Table VI: hardened-firmware effectiveness under single,
//! long, and windowed glitch campaigns (107,811 / 98,010 attempts each).
//! A thin client of the campaign engine; `--check` diffs the output
//! against `results/table6.txt`.

use std::process::ExitCode;

fn main() -> ExitCode {
    gd_bench::selfcheck::main("table6.txt", &[], || {
        let result = gd_campaign::Engine::ephemeral()
            .run(&gd_campaign::CampaignSpec::table6())
            .expect("campaign runs");
        print!("{}", result.text);
    })
}
