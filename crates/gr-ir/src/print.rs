//! Textual IR output. The format round-trips through [`crate::parse`].

use core::fmt;
use std::fmt::Write as _;

use crate::core::{Function, Instr, Module, Terminator, Ty, ValueDef, ValueId};

fn operand(func: &Function, v: ValueId) -> String {
    match func.value(v) {
        ValueDef::Const { value, enum_ref: None } => value.to_string(),
        ValueDef::Const { enum_ref: Some(er), .. } => {
            format!("{}::{}", er.enum_name, er.variant)
        }
        _ => format!("%{}", v.index()),
    }
}

fn print_instr(func: &Function, id: ValueId, out: &mut String) {
    let ValueDef::Instr(instr) = func.value(id) else {
        panic!("block lists a non-instruction value");
    };
    let ty = func.ty(id);
    let op = |v: &ValueId| operand(func, *v);
    let line = match instr {
        Instr::Bin { op: bop, lhs, rhs } => {
            format!("%{} = {} {ty} {}, {}", id.index(), bop.mnemonic(), op(lhs), op(rhs))
        }
        Instr::Icmp { pred, lhs, rhs } => {
            let opnd_ty = func.ty(*lhs);
            format!("%{} = icmp {} {opnd_ty} {}, {}", id.index(), pred.mnemonic(), op(lhs), op(rhs))
        }
        Instr::Not { arg } => format!("%{} = not {ty} {}", id.index(), op(arg)),
        Instr::Cast { arg, to } => {
            let from = func.ty(*arg);
            format!("%{} = cast {from} {} to {to}", id.index(), op(arg))
        }
        Instr::IntToPtr { arg } => format!("%{} = inttoptr i32 {}", id.index(), op(arg)),
        Instr::Alloca { ty: pointee } => format!("%{} = alloca {pointee}", id.index()),
        Instr::Load { ptr, ty: loaded, volatile } => {
            let v = if *volatile { "volatile " } else { "" };
            format!("%{} = load {v}{loaded}, {}", id.index(), op(ptr))
        }
        Instr::Store { ptr, value, volatile } => {
            let v = if *volatile { "volatile " } else { "" };
            let ty = func.ty(*value);
            format!("store {v}{ty} {}, {}", op(value), op(ptr))
        }
        Instr::GlobalAddr { name } => format!("%{} = globaladdr @{name}", id.index()),
        Instr::Call { callee, args } => {
            let args: Vec<String> = args.iter().map(&op).collect();
            if ty == Ty::Void {
                format!("call void @{callee}({})", args.join(", "))
            } else {
                format!("%{} = call {ty} @{callee}({})", id.index(), args.join(", "))
            }
        }
        Instr::Phi { incomings } => {
            let parts: Vec<String> = incomings
                .iter()
                .map(|(bb, v)| format!("[ {}, {} ]", op(v), func.block(*bb).name))
                .collect();
            format!("%{} = phi {ty} {}", id.index(), parts.join(", "))
        }
    };
    let _ = writeln!(out, "  {line}");
}

fn print_terminator(func: &Function, term: &Terminator, out: &mut String) {
    let line = match term {
        Terminator::Br { target } => format!("br {}", func.block(*target).name),
        Terminator::CondBr { cond, then_bb, else_bb } => format!(
            "br {}, {}, {}",
            operand(func, *cond),
            func.block(*then_bb).name,
            func.block(*else_bb).name
        ),
        Terminator::Ret { value: Some(v) } => format!("ret {} {}", func.ty(*v), operand(func, *v)),
        Terminator::Ret { value: None } => "ret void".to_owned(),
    };
    let _ = writeln!(out, "  {line}");
}

/// Prints one function in the text format.
pub fn print_function(func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> =
        func.params.iter().enumerate().map(|(i, ty)| format!("%{i}: {ty}")).collect();
    let _ = writeln!(out, "fn @{}({}) -> {} {{", func.name, params.join(", "), func.ret);
    for bb in func.block_ids() {
        let block = func.block(bb);
        let _ = writeln!(out, "{}:", block.name);
        for &id in &block.instrs {
            print_instr(func, id, &mut out);
        }
        if let Some(term) = &block.term {
            print_terminator(func, term, &mut out);
        }
    }
    out.push_str("}\n");
    out
}

/// Prints a whole module in the text format.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    if !module.name.is_empty() {
        let _ = writeln!(out, "module {}", module.name);
        out.push('\n');
    }
    for e in &module.enums {
        let variants: Vec<String> = e
            .variants
            .iter()
            .map(|(n, init)| match init {
                Some(v) => format!("{n} = {v}"),
                None => n.clone(),
            })
            .collect();
        let _ = writeln!(out, "enum {} {{ {} }}", e.name, variants.join(", "));
    }
    for g in &module.globals {
        let sens = if g.sensitive { " sensitive" } else { "" };
        let _ = writeln!(out, "global @{} : {} = {}{}", g.name, g.ty, g.init, sens);
    }
    for x in &module.externs {
        let params: Vec<String> = x.params.iter().map(Ty::to_string).collect();
        let _ = writeln!(out, "declare @{}({}) -> {}", x.name, params.join(", "), x.ret);
    }
    if !(module.enums.is_empty() && module.globals.is_empty() && module.externs.is_empty()) {
        out.push('\n');
    }
    for (i, f) in module.funcs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(f));
    }
    out
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print_module(self))
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print_function(self))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::Builder;
    use crate::core::{Function, Pred, Ty};

    #[test]
    fn prints_a_readable_function() {
        let mut f = Function::new("is_zero", vec![Ty::I32], Ty::I32);
        let entry = f.add_block("entry");
        let then_bb = f.add_block("then");
        let else_bb = f.add_block("else");
        let p = f.param(0);
        let mut b = Builder::new(&mut f, entry);
        let zero = b.const_i32(0);
        let c = b.icmp(Pred::Eq, p, zero);
        b.cond_br(c, then_bb, else_bb);
        b.switch_to(then_bb);
        let one = b.const_i32(1);
        b.ret(Some(one));
        b.switch_to(else_bb);
        let z = b.const_i32(0);
        b.ret(Some(z));

        let text = f.to_string();
        assert!(text.contains("fn @is_zero(%0: i32) -> i32 {"));
        assert!(text.contains("icmp eq i32 %0, 0"));
        assert!(text.contains("br %2, then, else"));
        assert!(text.contains("ret i32 1"));
    }
}
