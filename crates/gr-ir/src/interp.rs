//! A reference interpreter for the IR.
//!
//! Used throughout the test suite to show that defense passes are
//! *semantics-preserving*: a module must compute the same results before
//! and after instrumentation (the inserted checks never fire without a
//! fault).

use core::fmt;

use crate::core::{BinOp, Function, Instr, Module, Pred, Terminator, Ty, ValueDef, ValueId};

/// A runtime value: an integer or a pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtVal {
    /// An integer (width tracked by the IR type system).
    Int(i64),
    /// A pointer to a global (by module index).
    GlobalPtr(usize),
    /// A pointer to an alloca slot (by interpreter slot index).
    SlotPtr(usize),
    /// A raw address (MMIO); the interpreter cannot dereference these.
    RawPtr(u32),
}

impl RtVal {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics on pointers.
    pub fn int(self) -> i64 {
        match self {
            RtVal::Int(v) => v,
            other => panic!("expected integer, got {other:?}"),
        }
    }
}

/// Handler invoked for calls to external declarations.
pub type ExternHandler<'a> = dyn FnMut(&str, &[RtVal]) -> RtVal + 'a;

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Function not found in the module.
    UnknownFunction(String),
    /// Execution exceeded the fuel budget (infinite loop guard).
    OutOfFuel,
    /// An integer was used where a pointer was needed (or vice versa).
    BadPointer(String),
    /// A value was read before being computed (verifier should prevent).
    Uninitialized(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnknownFunction(n) => write!(f, "unknown function @{n}"),
            InterpError::OutOfFuel => f.write_str("out of fuel"),
            InterpError::BadPointer(m) => write!(f, "bad pointer: {m}"),
            InterpError::Uninitialized(m) => write!(f, "uninitialized value: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The interpreter: module-level memory plus a fuel budget.
///
/// ```
/// use gd_ir::{parse_module, Interpreter, RtVal};
///
/// let m = parse_module(
///     "fn @triple(%x: i32) -> i32 {\n\
///      entry:\n  %1 = mul i32 %x, 3\n  ret i32 %1\n}\n",
/// )?;
/// let mut interp = Interpreter::new(&m);
/// let r = interp.run("triple", &[RtVal::Int(7)], &mut |_, _| RtVal::Int(0))?;
/// assert_eq!(r, RtVal::Int(21));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    /// Current global values, index-aligned with `module.globals`.
    pub globals: Vec<i64>,
    slots: Vec<i64>,
    /// Remaining instruction budget.
    pub fuel: u64,
    /// Names of extern functions called, in order.
    pub extern_calls: Vec<String>,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with globals at their initial values and a
    /// default fuel budget of one million instructions.
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        Interpreter {
            module,
            globals: module.globals.iter().map(|g| g.init).collect(),
            slots: Vec::new(),
            fuel: 1_000_000,
            extern_calls: Vec::new(),
        }
    }

    /// Reads a global by name.
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist.
    pub fn global(&self, name: &str) -> i64 {
        let idx = self
            .module
            .globals
            .iter()
            .position(|g| g.name == name)
            .unwrap_or_else(|| panic!("unknown global @{name}"));
        self.globals[idx]
    }

    /// Writes a global by name.
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist.
    pub fn set_global(&mut self, name: &str, value: i64) {
        let idx = self
            .module
            .globals
            .iter()
            .position(|g| g.name == name)
            .unwrap_or_else(|| panic!("unknown global @{name}"));
        self.globals[idx] = value;
    }

    /// Calls `name` with `args`; extern calls go to `handler`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] for unknown functions, fuel exhaustion, and
    /// pointer misuse.
    pub fn run(
        &mut self,
        name: &str,
        args: &[RtVal],
        handler: &mut dyn FnMut(&str, &[RtVal]) -> RtVal,
    ) -> Result<RtVal, InterpError> {
        let func =
            self.module.func(name).ok_or_else(|| InterpError::UnknownFunction(name.to_owned()))?;
        self.exec(func, args, handler)
    }

    #[allow(clippy::too_many_lines)]
    fn exec(
        &mut self,
        func: &Function,
        args: &[RtVal],
        handler: &mut dyn FnMut(&str, &[RtVal]) -> RtVal,
    ) -> Result<RtVal, InterpError> {
        let mut locals: Vec<Option<RtVal>> = vec![None; func.value_count()];
        // Pre-populate params and constants.
        for id in func.value_ids() {
            match func.value(id) {
                ValueDef::Param { index } => {
                    locals[id.index()] = Some(*args.get(*index as usize).unwrap_or(&RtVal::Int(0)));
                }
                ValueDef::Const { value, .. } => {
                    locals[id.index()] = Some(RtVal::Int(*value));
                }
                ValueDef::Instr(_) => {}
            }
        }
        let read = |locals: &[Option<RtVal>], v: ValueId| -> Result<RtVal, InterpError> {
            locals[v.index()].ok_or_else(|| InterpError::Uninitialized(format!("%{}", v.index())))
        };

        let mut prev = None;
        let mut cur = func.entry();
        loop {
            // Terminators cost fuel too, so empty self-loops still halt.
            self.fuel = self.fuel.checked_sub(1).ok_or(InterpError::OutOfFuel)?;
            // Phis evaluate simultaneously from the edge.
            let block = func.block(cur);
            let mut phi_updates = Vec::new();
            for &id in &block.instrs {
                if let ValueDef::Instr(Instr::Phi { incomings }) = func.value(id) {
                    let from = prev.ok_or_else(|| {
                        InterpError::Uninitialized(format!("phi %{} in entry block", id.index()))
                    })?;
                    let (_, v) = incomings.iter().find(|(bb, _)| *bb == from).ok_or_else(|| {
                        InterpError::Uninitialized(format!("phi %{} missing incoming", id.index()))
                    })?;
                    phi_updates.push((id, read(&locals, *v)?));
                } else {
                    break;
                }
            }
            for (id, v) in phi_updates {
                locals[id.index()] = Some(v);
            }

            for &id in &block.instrs {
                self.fuel = self.fuel.checked_sub(1).ok_or(InterpError::OutOfFuel)?;
                let ValueDef::Instr(instr) = func.value(id) else { unreachable!() };
                let result: Option<RtVal> = match instr {
                    Instr::Phi { .. } => None, // handled above
                    Instr::Bin { op, lhs, rhs } => {
                        let ty = func.ty(id);
                        let a = read(&locals, *lhs)?.int();
                        let b = read(&locals, *rhs)?.int();
                        Some(RtVal::Int(eval_bin(*op, ty, a, b)))
                    }
                    Instr::Icmp { pred, lhs, rhs } => {
                        let ty = func.ty(*lhs);
                        let a = read(&locals, *lhs)?.int();
                        let b = read(&locals, *rhs)?.int();
                        Some(RtVal::Int(i64::from(eval_icmp(*pred, ty, a, b))))
                    }
                    Instr::Not { arg } => {
                        let ty = func.ty(id);
                        let a = read(&locals, *arg)?.int();
                        Some(RtVal::Int(mask(ty, !a)))
                    }
                    Instr::IntToPtr { arg } => {
                        let a = read(&locals, *arg)?.int();
                        Some(RtVal::RawPtr(a as u32))
                    }
                    Instr::Cast { arg, to } => {
                        let a = read(&locals, *arg)?.int();
                        Some(RtVal::Int(mask(*to, a)))
                    }
                    Instr::Alloca { .. } => {
                        self.slots.push(0);
                        Some(RtVal::SlotPtr(self.slots.len() - 1))
                    }
                    Instr::Load { ptr, ty, .. } => {
                        let raw = match read(&locals, *ptr)? {
                            RtVal::GlobalPtr(i) => self.globals[i],
                            RtVal::SlotPtr(i) => self.slots[i],
                            RtVal::RawPtr(_) => 0, // MMIO reads as zero here
                            RtVal::Int(v) => {
                                return Err(InterpError::BadPointer(format!(
                                    "load through integer {v}"
                                )))
                            }
                        };
                        Some(RtVal::Int(mask(*ty, raw)))
                    }
                    Instr::Store { ptr, value, .. } => {
                        let v = read(&locals, *value)?.int();
                        match read(&locals, *ptr)? {
                            RtVal::GlobalPtr(i) => self.globals[i] = v,
                            RtVal::SlotPtr(i) => self.slots[i] = v,
                            RtVal::RawPtr(_) => {} // MMIO writes are dropped here
                            RtVal::Int(x) => {
                                return Err(InterpError::BadPointer(format!(
                                    "store through integer {x}"
                                )))
                            }
                        }
                        None
                    }
                    Instr::GlobalAddr { name } => {
                        let idx =
                            self.module.globals.iter().position(|g| g.name == *name).ok_or_else(
                                || InterpError::BadPointer(format!("unknown global @{name}")),
                            )?;
                        Some(RtVal::GlobalPtr(idx))
                    }
                    Instr::Call { callee, args: call_args } => {
                        let mut vals = Vec::with_capacity(call_args.len());
                        for a in call_args {
                            vals.push(read(&locals, *a)?);
                        }
                        if let Some(inner) = self.module.func(callee) {
                            Some(self.exec(inner, &vals, handler)?)
                        } else {
                            self.extern_calls.push(callee.clone());
                            Some(handler(callee, &vals))
                        }
                    }
                };
                if let Some(v) = result {
                    locals[id.index()] = Some(v);
                }
            }

            match block.term.as_ref().expect("verified function") {
                Terminator::Br { target } => {
                    prev = Some(cur);
                    cur = *target;
                }
                Terminator::CondBr { cond, then_bb, else_bb } => {
                    let c = read(&locals, *cond)?.int();
                    prev = Some(cur);
                    cur = if c != 0 { *then_bb } else { *else_bb };
                }
                Terminator::Ret { value } => {
                    return Ok(match value {
                        Some(v) => read(&locals, *v)?,
                        None => RtVal::Int(0),
                    });
                }
            }
        }
    }
}

/// Zero-extends `v` to the width of `ty` (the canonical in-register form).
fn mask(ty: Ty, v: i64) -> i64 {
    match ty {
        Ty::I1 => v & 1,
        Ty::I8 => v & 0xFF,
        Ty::I16 => v & 0xFFFF,
        Ty::I32 | Ty::Ptr => v & 0xFFFF_FFFF,
        Ty::Void => 0,
    }
}

fn sext(ty: Ty, v: i64) -> i64 {
    match ty {
        Ty::I1 => {
            if v & 1 != 0 {
                -1
            } else {
                0
            }
        }
        Ty::I8 => v as u8 as i8 as i64,
        Ty::I16 => v as u16 as i16 as i64,
        _ => v as u32 as i32 as i64,
    }
}

fn eval_bin(op: BinOp, ty: Ty, a: i64, b: i64) -> i64 {
    let (ua, ub) = (mask(ty, a) as u64, mask(ty, b) as u64);
    let bits = ty.size() * 8;
    let raw = match op {
        BinOp::Add => ua.wrapping_add(ub),
        BinOp::Sub => ua.wrapping_sub(ub),
        BinOp::Mul => ua.wrapping_mul(ub),
        BinOp::And => ua & ub,
        BinOp::Or => ua | ub,
        BinOp::Xor => ua ^ ub,
        BinOp::Shl => {
            if ub >= u64::from(bits) {
                0
            } else {
                ua << ub
            }
        }
        BinOp::Lshr => {
            if ub >= u64::from(bits) {
                0
            } else {
                ua >> ub
            }
        }
        BinOp::Ashr => {
            let sa = sext(ty, a);
            if ub >= u64::from(bits) {
                if sa < 0 {
                    u64::MAX
                } else {
                    0
                }
            } else {
                (sa >> ub) as u64
            }
        }
        // Embedded-friendly total division: /0 → 0, %0 → dividend.
        BinOp::Udiv => ua.checked_div(ub).unwrap_or(0),
        BinOp::Urem => {
            if ub == 0 {
                ua
            } else {
                ua % ub
            }
        }
    };
    mask(ty, raw as i64)
}

fn eval_icmp(pred: Pred, ty: Ty, a: i64, b: i64) -> bool {
    let (ua, ub) = (mask(ty, a) as u64, mask(ty, b) as u64);
    let (sa, sb) = (sext(ty, a), sext(ty, b));
    match pred {
        Pred::Eq => ua == ub,
        Pred::Ne => ua != ub,
        Pred::Ult => ua < ub,
        Pred::Ule => ua <= ub,
        Pred::Ugt => ua > ub,
        Pred::Uge => ua >= ub,
        Pred::Slt => sa < sb,
        Pred::Sle => sa <= sb,
        Pred::Sgt => sa > sb,
        Pred::Sge => sa >= sb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn run(src: &str, func: &str, args: &[i64]) -> i64 {
        let m = parse_module(src).unwrap();
        crate::verify::verify_module(&m).unwrap();
        let mut i = Interpreter::new(&m);
        let args: Vec<RtVal> = args.iter().map(|&v| RtVal::Int(v)).collect();
        i.run(func, &args, &mut |_, _| RtVal::Int(0)).unwrap().int()
    }

    #[test]
    fn arithmetic_and_width_wrapping() {
        let src = "
fn @f(%a: i32, %b: i32) -> i32 {
entry:
  %1 = add i32 %a, %b
  ret i32 %1
}
";
        assert_eq!(run(src, "f", &[2, 3]), 5);
        assert_eq!(run(src, "f", &[0xFFFF_FFFF, 1]), 0, "i32 wraps");

        let src8 = "
fn @f(%a: i8) -> i8 {
entry:
  %1 = add i8 %a, 1
  ret i8 %1
}
";
        assert_eq!(run(src8, "f", &[255]), 0, "i8 wraps");
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let src = "
fn @slt(%a: i32, %b: i32) -> i1 {
entry:
  %1 = icmp slt i32 %a, %b
  ret i1 %1
}
";
        assert_eq!(run(src, "slt", &[0xFFFF_FFFF, 0]), 1, "-1 < 0 signed");
        let src = "
fn @ult(%a: i32, %b: i32) -> i1 {
entry:
  %1 = icmp ult i32 %a, %b
  ret i1 %1
}
";
        assert_eq!(run(src, "ult", &[0xFFFF_FFFF, 0]), 0, "0xFFFFFFFF > 0 unsigned");
    }

    #[test]
    fn loops_with_phi() {
        let src = "
fn @sum(%n: i32) -> i32 {
entry:
  br loop
loop:
  %i = phi i32 [ 0, entry ], [ %i2, loop ]
  %acc = phi i32 [ 0, entry ], [ %acc2, loop ]
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  %c = icmp ule i32 %i2, %n
  br %c, loop, done
done:
  ret i32 %acc2
}
";
        assert_eq!(run(src, "sum", &[5]), 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn globals_and_allocas() {
        let src = "
global @g : i32 = 10
fn @f(%x: i32) -> i32 {
entry:
  %p = globaladdr @g
  %v = load i32, %p
  %s = alloca i32
  store i32 %x, %s
  %w = load i32, %s
  %r = add i32 %v, %w
  store i32 %r, %p
  ret i32 %r
}
";
        let m = parse_module(src).unwrap();
        let mut i = Interpreter::new(&m);
        let r = i.run("f", &[RtVal::Int(7)], &mut |_, _| RtVal::Int(0)).unwrap().int();
        assert_eq!(r, 17);
        assert_eq!(i.global("g"), 17, "store to the global persists");
    }

    #[test]
    fn internal_and_external_calls() {
        let src = "
declare @ext(i32) -> i32
fn @helper(%x: i32) -> i32 {
entry:
  %1 = mul i32 %x, 2
  ret i32 %1
}
fn @main(%x: i32) -> i32 {
entry:
  %1 = call i32 @helper(%x)
  %2 = call i32 @ext(%1)
  ret i32 %2
}
";
        let m = parse_module(src).unwrap();
        let mut i = Interpreter::new(&m);
        let r = i
            .run("main", &[RtVal::Int(21)], &mut |name, args| {
                assert_eq!(name, "ext");
                RtVal::Int(args[0].int() + 1)
            })
            .unwrap()
            .int();
        assert_eq!(r, 43);
        assert_eq!(i.extern_calls, vec!["ext"]);
    }

    #[test]
    fn fuel_stops_infinite_loops() {
        let src = "
fn @spin() -> void {
entry:
  br entry
}
";
        let m = parse_module(src).unwrap();
        let mut i = Interpreter::new(&m);
        i.fuel = 1000;
        let err = i.run("spin", &[], &mut |_, _| RtVal::Int(0)).unwrap_err();
        assert_eq!(err, InterpError::OutOfFuel);
    }

    #[test]
    fn not_and_cast() {
        let src = "
fn @f(%x: i32) -> i32 {
entry:
  %1 = not i32 %x
  ret i32 %1
}
";
        assert_eq!(run(src, "f", &[0]), 0xFFFF_FFFF);
        let src = "
fn @f(%x: i32) -> i8 {
entry:
  %1 = cast i32 %x to i8
  ret i8 %1
}
";
        assert_eq!(run(src, "f", &[0x1234]), 0x34);
    }

    #[test]
    fn division_is_total() {
        let src = "
fn @f(%a: i32, %b: i32) -> i32 {
entry:
  %1 = udiv i32 %a, %b
  ret i32 %1
}
";
        assert_eq!(run(src, "f", &[10, 3]), 3);
        assert_eq!(run(src, "f", &[10, 0]), 0, "division by zero yields 0");
    }
}
