//! The campaign service: a small HTTP/1.1 front-end over [`Engine`]
//! with a bounded job queue, graceful shutdown, and a Prometheus
//! metrics endpoint.
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /campaigns` | body = spec JSON; enqueue; `202 {"id": n}`, or `429` when the queue is full or the client's quota is spent |
//! | `GET /campaigns/{id}` | job status: `queued` / `running` (+ shard progress) / `done` / `failed`, with `elapsed_ms` |
//! | `GET /campaigns/{id}/results` | the finished result as JSON, or with `?format=text` the exact legacy report bytes; `409` + the failure message for a failed campaign, `404` only for unknown ids |
//! | `GET /metrics` | every `gd_obs` metric family in the Prometheus text format |
//! | `POST /shutdown` | stop accepting, finish the running campaign, drop queued jobs |
//!
//! One accept thread handles requests serially (every request is a
//! cheap in-memory operation) and one worker thread runs campaigns one
//! at a time — campaign *internals* already saturate the machine via
//! [`gd_exec`], so service-level concurrency would only thrash. The
//! accept thread is therefore the availability bottleneck, and it
//! defends itself: an overall per-request read deadline (`408` for
//! slow-dribbling clients), a write timeout on responses, and a short
//! back-off when `accept` itself fails persistently (e.g. EMFILE)
//! instead of a 100 % CPU error spin.
//!
//! ## Fairness ahead of backpressure
//!
//! Two admission controls run *before* the global queue-full `429`:
//!
//! * **Per-client quotas** ([`ServerConfig::client_quota`]): a client —
//!   the `x-gd-client` header, or the peer IP when absent — may hold at
//!   most that many campaigns queued-or-running at once. Exceeding it is
//!   a `429` counted in `gd_http_quota_rejections_total`, and one
//!   greedy client can no longer starve the shared queue.
//! * **Priorities**: `x-gd-priority: high | normal | low` (default
//!   `normal`) selects one of three FIFO sub-queues; the worker always
//!   drains `high` before `normal` before `low`.
//!
//! With [`ServerConfig::workers`] set, the engine executes shards
//! through a [`FleetDispatcher`] over those workers instead of the
//! in-process pool — results stay byte-identical either way.

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gd_obs::Timer;

use crate::engine::{CampaignResult, Engine};
use crate::fleet::{FleetConfig, FleetDispatcher};
use crate::http::{
    read_request_deadline, write_response, write_response_with, Request, RequestError,
};
use crate::json::Json;
use crate::shards::shard_plan;
use crate::spec::CampaignSpec;

/// How long the accept thread sleeps after a failed `accept` before
/// retrying — long enough to stop an EMFILE error loop from pinning a
/// core, short enough to be invisible when the condition clears.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Default overall deadline for delivering the `POST /shutdown` request
/// in [`Server::shutdown`].
const SHUTDOWN_REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// `Retry-After` value on `429` responses. The queue drains at campaign
/// speed, so "shortly" is the honest answer; clients with their own
/// budget can override.
const RETRY_AFTER_SECS: &str = "1";

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Engine store directory (`None` = no cache, no checkpoints).
    pub store: Option<PathBuf>,
    /// Maximum *queued* campaigns (the running one not counted); further
    /// submissions get `429 Too Many Requests`.
    pub queue_limit: usize,
    /// Overall deadline for reading one request (head + body). A client
    /// that dribbles bytes slower than this gets `408` and its
    /// connection closed, instead of wedging the accept thread.
    pub read_deadline: Duration,
    /// Maximum campaigns one client may hold queued-or-running at once
    /// (`None` = unlimited). Clients identify via the `x-gd-client`
    /// header, falling back to their peer IP.
    pub client_quota: Option<usize>,
    /// Worker addresses (`host:port`). Non-empty routes shard execution
    /// through a [`FleetDispatcher`]; empty keeps the in-process pool.
    pub workers: Vec<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            store: None,
            queue_limit: 16,
            read_deadline: Duration::from_secs(10),
            client_quota: None,
            workers: Vec::new(),
        }
    }
}

/// `gd_obs` handles for the service, registered eagerly at
/// [`Server::start`] so `/metrics` exposes the families before traffic.
struct ServiceMetrics {
    /// `gd_campaign_queue_depth`
    queue_depth: Arc<gd_obs::Gauge>,
    /// `gd_http_429_total`
    rejected: Arc<gd_obs::Counter>,
    /// `gd_http_quota_rejections_total`
    quota_rejected: Arc<gd_obs::Counter>,
    /// `gd_http_request_timeouts_total`
    read_timeouts: Arc<gd_obs::Counter>,
    /// `gd_http_accept_errors_total`
    accept_errors: Arc<gd_obs::Counter>,
    /// `gd_campaign_duration_ms`
    campaign_ms: Arc<gd_obs::Histogram>,
}

fn service_metrics() -> &'static ServiceMetrics {
    static METRICS: OnceLock<ServiceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ServiceMetrics {
        queue_depth: gd_obs::gauge(
            "gd_campaign_queue_depth",
            "campaigns waiting in the service queue (the running one not counted)",
            &[],
        ),
        rejected: gd_obs::counter(
            "gd_http_429_total",
            "submissions rejected with 429 because the queue was full",
            &[],
        ),
        quota_rejected: gd_obs::counter(
            "gd_http_quota_rejections_total",
            "submissions rejected with 429 because the client's quota was spent",
            &[],
        ),
        read_timeouts: gd_obs::counter(
            "gd_http_request_timeouts_total",
            "requests dropped with 408 for exceeding the overall read deadline",
            &[],
        ),
        accept_errors: gd_obs::counter(
            "gd_http_accept_errors_total",
            "listener accept failures (each is followed by a short back-off)",
            &[],
        ),
        campaign_ms: gd_obs::histogram(
            "gd_campaign_duration_ms",
            "wall time per campaign run by the service worker, milliseconds",
            &[],
        ),
    })
}

/// Counts one served request under its route *pattern* (so label
/// cardinality stays bounded regardless of ids probed) and status.
fn record_request(route: &str, status: u16) {
    gd_obs::counter(
        "gd_http_requests_total",
        "HTTP requests served, by route pattern and status",
        &[("route", route), ("status", &status.to_string())],
    )
    .inc();
}

/// The bounded-cardinality route label for a request path.
fn route_label(path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["campaigns"] => "/campaigns",
        ["campaigns", _] => "/campaigns/{id}",
        ["campaigns", _, "results"] => "/campaigns/{id}/results",
        ["shutdown"] => "/shutdown",
        ["metrics"] => "/metrics",
        _ => "other",
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed(String),
}

/// Submission priority, from the `x-gd-priority` header. The discriminant
/// indexes [`ServiceState::queues`]; lower drains first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Priority {
    High = 0,
    Normal = 1,
    Low = 2,
}

impl Priority {
    fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

#[derive(Debug)]
struct JobRecord {
    spec: CampaignSpec,
    state: JobState,
    done: u32,
    total: u32,
    result: Option<CampaignResult>,
    /// Quota identity this job counts against until it completes.
    client: String,
    priority: Priority,
    /// When the worker picked the job up (None while queued).
    started: Option<Instant>,
    /// Final wall time, frozen when the job completes or fails.
    duration_ms: Option<u64>,
}

#[derive(Debug, Default)]
struct ServiceState {
    next_id: u64,
    /// One FIFO per [`Priority`], indexed by discriminant.
    queues: [VecDeque<u64>; 3],
    jobs: BTreeMap<u64, JobRecord>,
    /// Campaigns queued-or-running per client; entries vanish at zero.
    active: BTreeMap<String, usize>,
}

impl ServiceState {
    fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Next job to run: strict priority order, FIFO within a tier.
    fn pop_next(&mut self) -> Option<u64> {
        self.queues.iter_mut().find_map(VecDeque::pop_front)
    }

    fn release_client(&mut self, client: &str) {
        if let Some(held) = self.active.get_mut(client) {
            *held = held.saturating_sub(1);
            if *held == 0 {
                self.active.remove(client);
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    engine: Engine,
    queue_limit: usize,
    client_quota: Option<usize>,
    read_deadline: Duration,
    shutdown: AtomicBool,
    state: Mutex<ServiceState>,
    wake: Condvar,
}

/// A running campaign service. Dropping the handle leaks the threads;
/// call [`Server::shutdown`] for an orderly stop.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept and worker threads, and returns.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let _ = service_metrics();
        let mut engine = match &config.store {
            Some(dir) => Engine::with_store(dir),
            None => Engine::ephemeral(),
        };
        if !config.workers.is_empty() {
            let fleet = FleetDispatcher::new(FleetConfig {
                workers: config.workers.clone(),
                ..FleetConfig::default()
            });
            engine = engine.with_dispatcher(Arc::new(fleet));
        }
        let inner = Arc::new(Inner {
            engine,
            queue_limit: config.queue_limit,
            client_quota: config.client_quota,
            read_deadline: config.read_deadline,
            shutdown: AtomicBool::new(false),
            state: Mutex::new(ServiceState::default()),
            wake: Condvar::new(),
        });
        let worker = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner))
        };
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };
        gd_obs::info!("gd_campaign::service", "serving", addr = addr);
        Ok(Server { addr, accept: Some(accept), worker: Some(worker) })
    }

    /// The actually bound address (resolves an ephemeral port request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, lets the in-flight campaign
    /// finish (its checkpoints and cache entry are written), drops
    /// queued jobs, and joins both threads. The shutdown request itself
    /// is bounded by a default deadline; use [`Server::shutdown_within`]
    /// to supply your own.
    ///
    /// # Errors
    ///
    /// Fails when the shutdown request cannot be delivered in time or a
    /// thread panicked.
    pub fn shutdown(self) -> Result<(), String> {
        self.shutdown_within(SHUTDOWN_REQUEST_TIMEOUT)
    }

    /// [`Server::shutdown`] with a caller-supplied deadline on
    /// *delivering* the shutdown request (the join still waits for the
    /// in-flight campaign, which is the graceful contract). A wedged
    /// accept thread therefore fails this call instead of hanging it.
    ///
    /// # Errors
    ///
    /// Fails when the shutdown request cannot be delivered within
    /// `timeout` or a thread panicked.
    pub fn shutdown_within(self, timeout: Duration) -> Result<(), String> {
        crate::http::request_timeout(&self.addr.to_string(), "POST", "/shutdown", None, timeout)?;
        self.join()
    }

    /// Blocks until the service stops (an HTTP `POST /shutdown` arrives)
    /// and joins both threads.
    ///
    /// # Errors
    ///
    /// Fails when a service thread panicked.
    pub fn join(mut self) -> Result<(), String> {
        for handle in [self.accept.take(), self.worker.take()].into_iter().flatten() {
            handle.join().map_err(|_| "service thread panicked")?;
        }
        Ok(())
    }
}

fn worker_loop(inner: &Inner) {
    let metrics = service_metrics();
    loop {
        let (id, spec) = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(id) = state.pop_next() {
                    metrics.queue_depth.set(state.queued() as i64);
                    let job = state.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    job.started = Some(Instant::now());
                    break (id, job.spec.clone());
                }
                let (next, _) = inner.wake.wait_timeout(state, Duration::from_millis(200)).unwrap();
                state = next;
            }
        };
        let progress = |done: u32, total: u32| {
            let mut state = inner.state.lock().unwrap();
            if let Some(job) = state.jobs.get_mut(&id) {
                job.done = done;
                job.total = total;
            }
        };
        let timer = Timer::start();
        let outcome = inner.engine.run_with(&spec, &progress);
        let elapsed_ms = timer.elapsed_ms();
        metrics.campaign_ms.observe(elapsed_ms);
        let mut state = inner.state.lock().unwrap();
        let mut finished_client = None;
        if let Some(job) = state.jobs.get_mut(&id) {
            job.duration_ms = Some(elapsed_ms);
            finished_client = Some(job.client.clone());
            match outcome {
                Ok(result) => {
                    gd_obs::info!(
                        "gd_campaign::service",
                        "campaign done",
                        id = id,
                        elapsed_ms = elapsed_ms,
                    );
                    job.state = JobState::Done;
                    job.result = Some(result);
                }
                Err(e) => {
                    gd_obs::warn!(
                        "gd_campaign::service",
                        "campaign failed",
                        id = id,
                        elapsed_ms = elapsed_ms,
                        retryable = e.retryable(),
                        error = e,
                    );
                    job.state = JobState::Failed(e.to_string());
                }
            }
        }
        // The job no longer holds queue capacity — release its quota slot.
        if let Some(client) = finished_client {
            state.release_client(&client);
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Inner) {
    let metrics = service_metrics();
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // A persistent accept error (EMFILE, ENFILE, …) must degrade to
        // a paced retry loop, not a 100 % CPU spin.
        let (mut stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                metrics.accept_errors.inc();
                gd_obs::warn!("gd_campaign::service", "accept failed; backing off", error = e);
                std::thread::sleep(ACCEPT_BACKOFF);
                continue;
            }
        };
        // Chaos connection sites: a dropped connection models a client
        // (or middlebox) hanging up before the request is read; a read
        // delay models a slow network. Clients must survive both.
        if gd_chaos::connection_dropped() {
            drop(stream);
            continue;
        }
        gd_chaos::delay_read();
        // A stalled reader must not wedge response writes either.
        let _ = stream.set_write_timeout(Some(inner.read_deadline));
        match read_request_deadline(&mut stream, inner.read_deadline) {
            Ok(request) => {
                let (status, content_type, body) = route(inner, &request, peer);
                record_request(route_label(&request.path), status);
                gd_obs::debug!(
                    "gd_campaign::service",
                    "request",
                    method = request.method,
                    path = request.path,
                    status = status,
                );
                // A queue-full rejection tells the client *when* to come
                // back; the built-in client honors it (`request_with_retries`).
                let extra: &[(&str, &str)] =
                    if status == 429 { &[("Retry-After", RETRY_AFTER_SECS)] } else { &[] };
                let _ = write_response_with(&mut stream, status, &content_type, extra, &body);
            }
            Err(e) => {
                let status = match &e {
                    RequestError::Timeout(_) => {
                        metrics.read_timeouts.inc();
                        408
                    }
                    RequestError::Malformed(_) => 400,
                };
                record_request("unparsed", status);
                gd_obs::debug!(
                    "gd_campaign::service",
                    "request rejected",
                    status = status,
                    error = e.message(),
                );
                let body = error_json(e.message());
                let _ = write_response(&mut stream, status, "application/json", &body);
            }
        }
    }
}

fn error_json(message: &str) -> Vec<u8> {
    Json::obj(vec![("error", Json::Str(message.into()))])
        .to_string_compact()
        .expect("error body serializes")
        .into_bytes()
}

fn json_body(v: &Json) -> Vec<u8> {
    v.to_string_compact().expect("response body serializes").into_bytes()
}

type Response = (u16, String, Vec<u8>);

fn route(inner: &Inner, request: &Request, peer: SocketAddr) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["campaigns"]) => submit(inner, request, peer),
        ("GET", ["campaigns", id]) => with_job(inner, id, status_response),
        ("GET", ["campaigns", id, "results"]) => {
            let as_text = request.query.split('&').any(|kv| kv == "format=text");
            with_job(inner, id, |job| results_response(job, as_text))
        }
        ("GET", ["metrics"]) => (
            200,
            gd_obs::prom::CONTENT_TYPE.into(),
            gd_obs::global().render_prometheus().into_bytes(),
        ),
        ("POST", ["shutdown"]) => {
            inner.shutdown.store(true, Ordering::Relaxed);
            inner.wake.notify_all();
            ok_json(&Json::obj(vec![("ok", Json::Bool(true))]))
        }
        (_, ["campaigns", ..]) | (_, ["shutdown"]) | (_, ["metrics"]) => {
            (405, "application/json".into(), error_json("method not allowed"))
        }
        _ => (404, "application/json".into(), error_json("no such route")),
    }
}

fn ok_json(v: &Json) -> Response {
    (200, "application/json".into(), json_body(v))
}

fn submit(inner: &Inner, request: &Request, peer: SocketAddr) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return (400, "application/json".into(), error_json("body is not UTF-8")),
    };
    let spec = match CampaignSpec::from_json_text(text) {
        Ok(s) => s,
        Err(e) => return (400, "application/json".into(), error_json(&e)),
    };
    let priority = match request.header("x-gd-priority") {
        None => Priority::Normal,
        Some(value) => match Priority::parse(value) {
            Some(p) => p,
            None => {
                let e = format!("unknown x-gd-priority {value:?}: use high, normal, or low");
                return (400, "application/json".into(), error_json(&e));
            }
        },
    };
    let client = match request.header("x-gd-client") {
        Some(name) if !name.is_empty() => name.to_string(),
        _ => peer.ip().to_string(),
    };
    // Size the progress denominator up front so `queued` status already
    // reports the shard total.
    let full = shard_plan(&spec).len() as u32;
    let total = match spec.shards {
        Some((lo, hi)) if hi <= full => hi - lo,
        Some((_, hi)) => {
            let e = format!("shard range end {hi} exceeds the plan's {full} shards");
            return (400, "application/json".into(), error_json(&e));
        }
        None => full,
    };
    let mut state = inner.state.lock().unwrap();
    // Quota first: a client over its own allowance gets the targeted
    // refusal even when the shared queue also happens to be full.
    if let Some(quota) = inner.client_quota {
        if state.active.get(&client).copied().unwrap_or(0) >= quota {
            service_metrics().quota_rejected.inc();
            gd_obs::debug!(
                "gd_campaign::service",
                "client quota spent",
                client = client,
                quota = quota,
            );
            let e = format!("client quota spent ({quota} campaigns in flight), retry later");
            return (429, "application/json".into(), error_json(&e));
        }
    }
    if state.queued() >= inner.queue_limit {
        service_metrics().rejected.inc();
        return (429, "application/json".into(), error_json("queue full, retry later"));
    }
    let id = state.next_id;
    state.next_id += 1;
    state.jobs.insert(
        id,
        JobRecord {
            spec,
            state: JobState::Queued,
            done: 0,
            total,
            result: None,
            client: client.clone(),
            priority,
            started: None,
            duration_ms: None,
        },
    );
    state.queues[priority as usize].push_back(id);
    *state.active.entry(client).or_insert(0) += 1;
    service_metrics().queue_depth.set(state.queued() as i64);
    inner.wake.notify_all();
    (
        202,
        "application/json".into(),
        json_body(&Json::obj(vec![
            ("id", Json::Int(id.into())),
            ("url", Json::Str(format!("/campaigns/{id}"))),
            ("priority", Json::Str(priority.label().into())),
        ])),
    )
}

fn with_job(inner: &Inner, id: &str, f: impl Fn(&JobRecord) -> Response) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return (404, "application/json".into(), error_json("campaign ids are integers"));
    };
    let state = inner.state.lock().unwrap();
    match state.jobs.get(&id) {
        Some(job) => f(job),
        None => (404, "application/json".into(), error_json("no such campaign")),
    }
}

/// Wall time the job has consumed: still ticking while running, frozen
/// at completion, zero while queued.
fn job_elapsed_ms(job: &JobRecord) -> u64 {
    match (&job.state, job.started, job.duration_ms) {
        (JobState::Queued, ..) => 0,
        (JobState::Running, Some(started), _) => {
            u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX)
        }
        (_, _, Some(frozen)) => frozen,
        _ => 0,
    }
}

fn status_response(job: &JobRecord) -> Response {
    let (label, error) = match &job.state {
        JobState::Queued => ("queued", None),
        JobState::Running => ("running", None),
        JobState::Done => ("done", None),
        JobState::Failed(e) => ("failed", Some(e.clone())),
    };
    let mut fields = vec![
        ("state", Json::Str(label.into())),
        ("done", Json::Int(job.done.into())),
        ("total", Json::Int(job.total.into())),
        ("elapsed_ms", Json::Int(i64::try_from(job_elapsed_ms(job)).unwrap_or(i64::MAX).into())),
        ("workload", Json::Str(job.spec.workload.kind().into())),
        ("priority", Json::Str(job.priority.label().into())),
    ];
    if let Some(e) = error {
        fields.push(("error", Json::Str(e)));
    }
    ok_json(&Json::obj(fields))
}

fn results_response(job: &JobRecord, as_text: bool) -> Response {
    match (&job.state, &job.result) {
        (JobState::Done, Some(result)) => {
            if as_text {
                (200, "text/plain; charset=utf-8".into(), result.text.clone().into_bytes())
            } else {
                ok_json(&result.to_json())
            }
        }
        // A failed campaign is a *known* id with a definite outcome —
        // 409 with the failure, never the 404 reserved for unknown ids.
        (JobState::Failed(e), _) => {
            (409, "application/json".into(), error_json(&format!("campaign failed: {e}")))
        }
        _ => (404, "application/json".into(), error_json("campaign not finished")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{request, request_timeout_with_headers};

    /// Control-plane behavior that needs no campaign work: routing,
    /// validation, metrics exposition, and shutdown. (Full campaigns
    /// over HTTP live in the `e2e_http` integration test; failure paths
    /// in `service_failures`.)
    #[test]
    fn control_plane_routes_validate_and_shut_down() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.addr().to_string();

        let (status, body) = request(&addr, "GET", "/campaigns/0", None).unwrap();
        assert_eq!(status, 404, "{body}");
        let (status, _) = request(&addr, "GET", "/campaigns/not-a-number", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = request(&addr, "DELETE", "/campaigns/1", None).unwrap();
        assert_eq!(status, 405);
        let (status, _) = request(&addr, "DELETE", "/metrics", None).unwrap();
        assert_eq!(status, 405);

        let (status, body) = request(&addr, "POST", "/campaigns", Some("{not json")).unwrap();
        assert_eq!(status, 400, "{body}");
        let bad_spec = r#"{"version":1,"workload":{"kind":"table9"}}"#;
        let (status, body) = request(&addr, "POST", "/campaigns", Some(bad_spec)).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("table9"), "{body}");
        let bad_range =
            r#"{"version":1,"workload":{"kind":"table1"},"shards":[0,999]}"#.to_string();
        let (status, body) = request(&addr, "POST", "/campaigns", Some(&bad_range)).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("exceeds"), "{body}");

        // The metrics route serves the Prometheus text format, and the
        // traffic above is already visible in it, labeled by pattern.
        let (status, text) = request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(text.contains("# TYPE gd_http_requests_total counter"), "{text}");
        assert!(
            text.contains(r#"gd_http_requests_total{route="/campaigns/{id}",status="404"}"#),
            "ids are collapsed to a pattern label: {text}"
        );
        assert!(text.contains("# TYPE gd_campaign_queue_depth gauge"), "{text}");

        server.shutdown().unwrap();
    }

    #[test]
    fn priorities_drain_high_before_normal_before_low() {
        let mut state = ServiceState::default();
        // Submission order: low 0, normal 1, high 2, normal 3, high 4.
        state.queues[Priority::Low as usize].push_back(0);
        state.queues[Priority::Normal as usize].push_back(1);
        state.queues[Priority::High as usize].push_back(2);
        state.queues[Priority::Normal as usize].push_back(3);
        state.queues[Priority::High as usize].push_back(4);
        assert_eq!(state.queued(), 5);
        let drained: Vec<u64> = std::iter::from_fn(|| state.pop_next()).collect();
        assert_eq!(drained, vec![2, 4, 1, 3, 0], "tiers strict, FIFO within a tier");
        assert_eq!(state.queued(), 0);

        state.active.insert("alice".into(), 2);
        state.release_client("alice");
        assert_eq!(state.active.get("alice"), Some(&1));
        state.release_client("alice");
        assert!(!state.active.contains_key("alice"), "entries vanish at zero");
        state.release_client("ghost"); // never counted: must not panic or underflow
        assert!(state.active.is_empty());
    }

    #[test]
    fn client_quotas_reject_the_greedy_and_admit_the_rest() {
        let config = ServerConfig { client_quota: Some(1), ..ServerConfig::default() };
        let server = Server::start(config).unwrap();
        let addr = server.addr().to_string();
        let spec = r#"{"version":1,"workload":{"kind":"fig2"},"shards":[0,1]}"#;
        let deadline = Duration::from_secs(10);

        // Alice's first campaign is admitted and holds her whole quota
        // until it completes — whether queued or already running.
        let (status, _, body) = request_timeout_with_headers(
            &addr,
            "POST",
            "/campaigns",
            &[("x-gd-client", "alice"), ("x-gd-priority", "high")],
            Some(spec),
            deadline,
        )
        .unwrap();
        assert_eq!(status, 202, "{body}");
        assert!(body.contains(r#""priority":"high""#), "{body}");
        let (status, _, body) = request_timeout_with_headers(
            &addr,
            "POST",
            "/campaigns",
            &[("x-gd-client", "alice")],
            Some(spec),
            deadline,
        )
        .unwrap();
        assert_eq!(status, 429, "{body}");
        assert!(body.contains("quota"), "{body}");

        // A different client is unaffected by Alice's spent quota.
        let (status, _, body) = request_timeout_with_headers(
            &addr,
            "POST",
            "/campaigns",
            &[("x-gd-client", "bob"), ("x-gd-priority", "low")],
            Some(spec),
            deadline,
        )
        .unwrap();
        assert_eq!(status, 202, "{body}");

        let (status, _, body) = request_timeout_with_headers(
            &addr,
            "POST",
            "/campaigns",
            &[("x-gd-priority", "urgent")],
            Some(spec),
            deadline,
        )
        .unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("urgent"), "{body}");

        let (status, text) = request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(text.contains("gd_http_quota_rejections_total"), "{text}");

        // Wait for both campaigns to finish; completion releases the
        // quota slot, so Alice may submit again.
        let waiting = Instant::now();
        loop {
            let (_, a) = request(&addr, "GET", "/campaigns/0", None).unwrap();
            let (_, b) = request(&addr, "GET", "/campaigns/1", None).unwrap();
            if a.contains(r#""state":"done""#) && b.contains(r#""state":"done""#) {
                break;
            }
            assert!(waiting.elapsed() < Duration::from_secs(60), "campaigns wedged: {a} {b}");
            std::thread::sleep(Duration::from_millis(20));
        }
        let (status, _, body) = request_timeout_with_headers(
            &addr,
            "POST",
            "/campaigns",
            &[("x-gd-client", "alice")],
            Some(spec),
            deadline,
        )
        .unwrap();
        assert_eq!(status, 202, "completion must release the quota slot: {body}");

        server.shutdown().unwrap();
    }

    #[test]
    fn route_labels_have_bounded_cardinality() {
        assert_eq!(route_label("/campaigns"), "/campaigns");
        assert_eq!(route_label("/campaigns/17"), "/campaigns/{id}");
        assert_eq!(route_label("/campaigns/xyz/results"), "/campaigns/{id}/results");
        assert_eq!(route_label("/metrics"), "/metrics");
        assert_eq!(route_label("/shutdown"), "/shutdown");
        assert_eq!(route_label("/a/b/c/d"), "other");
        assert_eq!(route_label("/"), "other");
    }
}
