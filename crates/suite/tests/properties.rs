//! Property-based tests across the stack: codec round-trips, differential
//! execution of generated programs, and semantics preservation under
//! hardening.
//!
//! Generation runs on the in-repo deterministic harness
//! ([`gd_exec::check`]) — xorshift64* inputs, fixed case counts, and a
//! failing-input report — so the suite needs no external crates and
//! reproduces identically offline. Case counts match the harness this
//! suite previously ran under (256 default, 48 for compiled-program
//! properties, 64 for byte-soup robustness).

use gd_exec::check::{cases, Rng};
use gd_ir::{parse_module, print_module, verify_module, Interpreter, RtVal};
use glitching_demystified::prelude::*;

// ---------------------------------------------------------------------
// Thumb codec properties
// ---------------------------------------------------------------------

/// Any defined halfword re-encodes to itself (the glitch emulator's
/// correctness hinges on this canonicity).
#[test]
fn decode_encode_canonical() {
    cases(256, "decode_encode_canonical", |rng| {
        let hw = rng.u16();
        if let Ok(instr) = gd_thumb::decode16(hw) {
            assert_eq!(instr.encode(), gd_thumb::Encoding::Half(hw), "hw = {hw:#06x}");
        }
    });
}

/// Disassembling a defined instruction and re-assembling it yields the
/// original encoding (text round trip).
#[test]
fn disasm_asm_round_trip() {
    cases(256, "disasm_asm_round_trip", |rng| {
        let hw = rng.u16();
        // Skip branches: their textual form (`beq .+6`) is origin-relative
        // and covered by dedicated tests.
        if let Ok(instr) = gd_thumb::decode16(hw) {
            if instr.is_branch() || matches!(instr, gd_thumb::Instr::BCond { .. }) {
                return;
            }
            let text = instr.to_string();
            let prog = gd_thumb::asm::assemble(&text, 0)
                .unwrap_or_else(|e| panic!("`{text}` ({hw:#06x}) failed to re-assemble: {e}"));
            assert_eq!(&prog.code, &hw.to_le_bytes(), "hw = {hw:#06x}: {text}");
        }
    });
}

/// AND-direction perturbation never sets bits; OR never clears them.
#[test]
fn perturbation_directions() {
    cases(256, "perturbation_directions", |rng| {
        use gd_glitch_emu::Direction;
        let (hw, mask) = (rng.u16(), rng.u16());
        let anded = Direction::And.apply(hw, mask);
        let orred = Direction::Or.apply(hw, mask);
        assert_eq!(anded & hw, anded, "AND only clears: hw={hw:#06x} mask={mask:#06x}");
        assert_eq!(orred | hw, orred, "OR only sets: hw={hw:#06x} mask={mask:#06x}");
        assert_eq!(Direction::Xor.apply(hw, mask), hw ^ mask, "hw={hw:#06x} mask={mask:#06x}");
    });
}

// ---------------------------------------------------------------------
// Reed–Solomon properties
// ---------------------------------------------------------------------

/// Every systematic codeword checks; any single byte flip is caught.
#[test]
fn rs_detects_any_single_byte_error() {
    cases(256, "rs_detects_any_single_byte_error", |rng| {
        let (m0, m1) = (rng.u8(), rng.u8());
        let pos = rng.usize(0, 6);
        let flip = rng.range(1, 256) as u8;
        let rs = gd_rs_ecc::RsEncoder::new(4);
        let cw = rs.encode(&[m0, m1]);
        assert!(rs.check(&cw), "m=({m0:#x},{m1:#x})");
        let mut bad = cw.clone();
        bad[pos] ^= flip;
        assert!(!rs.check(&bad), "m=({m0:#x},{m1:#x}) pos={pos} flip={flip:#x}");
    });
}

/// Diversified constant sets keep their pairwise distance guarantee.
#[test]
fn rs_constants_keep_distance() {
    cases(256, "rs_constants_keep_distance", |rng| {
        let count = rng.range(2, 64) as u32;
        let values = gd_rs_ecc::diversified_constants(count);
        assert!(gd_rs_ecc::min_pairwise_distance(&values) >= 8, "count = {count}");
    });
}

// ---------------------------------------------------------------------
// Generated-program differential execution
// ---------------------------------------------------------------------

/// A tiny random straight-line program over two variables, in IR text.
fn arb_program(rng: &mut Rng) -> String {
    const OPS: [&str; 6] = ["add", "sub", "mul", "and", "or", "xor"];
    let steps = rng.usize(1, 12);
    let mut body = String::new();
    let mut names = ["%x".to_owned(), "%y".to_owned()];
    for i in 0..steps {
        let op = *rng.choose(&OPS);
        let which = rng.usize(0, 2);
        let c = rng.i64() & 0xFFFF;
        let lhs = &names[which];
        body.push_str(&format!("  %v{i} = {op} i32 {lhs}, {c}\n"));
        names[which] = format!("%v{i}");
    }
    format!(
        "fn @main() -> i32 {{\nentry:\n  %x = add i32 3, 0\n  %y = add i32 5, 0\n{body}  %r = xor i32 {}, {}\n  ret i32 %r\n}}\n",
        names[0], names[1]
    )
}

/// Compiled code and the reference interpreter agree on every random
/// straight-line program.
#[test]
fn native_matches_interpreter() {
    cases(48, "native_matches_interpreter", |rng| {
        let src = arb_program(rng);
        let module = parse_module(&src).unwrap();
        verify_module(&module).unwrap();
        let mut interp = Interpreter::new(&module);
        let expected = interp.run("main", &[], &mut |_, _| RtVal::Int(0)).unwrap().int() as u32;

        let image = compile(&module, "main").unwrap();
        let mut emu = image.boot_emu();
        emu.run(1_000_000);
        assert_eq!(emu.cpu.reg(Reg::R0), expected, "{src}");
    });
}

/// Hardening never changes the computed result of a clean run.
#[test]
fn hardening_preserves_semantics() {
    cases(48, "hardening_preserves_semantics", |rng| {
        let src = arb_program(rng);
        let module = parse_module(&src).unwrap();
        let mut interp = Interpreter::new(&module);
        let expected = interp.run("main", &[], &mut |_, _| RtVal::Int(0)).unwrap().int() as u32;

        let mut hardened = module.clone();
        harden(&mut hardened, &Config::new(Defenses::ALL_EXCEPT_DELAY));
        verify_module(&hardened).unwrap();
        let image = compile(&hardened, "main").unwrap();
        let mut emu = image.boot_emu();
        emu.run(2_000_000);
        assert_eq!(emu.cpu.reg(Reg::R0), expected, "{src}");
    });
}

/// The IR text format is a fixed point of print ∘ parse.
#[test]
fn ir_print_parse_fixed_point() {
    cases(48, "ir_print_parse_fixed_point", |rng| {
        let src = arb_program(rng);
        let module = parse_module(&src).unwrap();
        let printed = print_module(&module);
        let reparsed = parse_module(&printed).unwrap();
        assert_eq!(print_module(&reparsed), printed, "{src}");
    });
}

// ---------------------------------------------------------------------
// Fault-model invariants
// ---------------------------------------------------------------------

/// The violation landscape is a pure function of its inputs.
#[test]
fn fault_landscape_deterministic() {
    cases(256, "fault_landscape_deterministic", |rng| {
        let w = rng.i8_in(-49, 49);
        let o = rng.i8_in(-49, 49);
        let m = FaultModel::default();
        assert_eq!(m.severity(w, o), m.severity(w, o), "w={w} o={o}");
        assert!((0.0..=1.0).contains(&m.severity(w, o)), "w={w} o={o}");
    });
}

// ---------------------------------------------------------------------
// Robustness: random byte soup must never panic the emulator
// ---------------------------------------------------------------------

/// Executing arbitrary bytes produces a classified outcome, never a
/// panic — the glitch experiments depend on this totality.
#[test]
fn emulator_survives_byte_soup() {
    cases(64, "emulator_survives_byte_soup", |rng| {
        let code = rng.vec(2, 256, |r| r.u8());
        let mut emu = gd_emu::Emu::new();
        emu.mem.map("flash", 0, 0x1000, gd_emu::Perms::RX).unwrap();
        emu.mem.map("sram", 0x2000_0000, 0x1000, gd_emu::Perms::RW).unwrap();
        emu.mem.load(0, &code).unwrap();
        emu.set_pc(0);
        emu.cpu.set_sp(0x2000_0FF8);
        let _ = emu.run(2_000); // outcome irrelevant; absence of panic is the property
    });
}

/// The pipeline wrapper is equally total, including under random
/// injected faults.
#[test]
fn pipeline_survives_byte_soup_with_faults() {
    cases(64, "pipeline_survives_byte_soup_with_faults", |rng| {
        let code = rng.vec(2, 128, |r| r.u8());
        let masks = rng.vec(1, 8, |r| r.u16());
        let mut emu = gd_emu::Emu::new();
        emu.mem.map("flash", 0, 0x1000, gd_emu::Perms::RX).unwrap();
        emu.mem.map("sram", 0x2000_0000, 0x1000, gd_emu::Perms::RW).unwrap();
        emu.mem.load(0, &code).unwrap();
        emu.set_pc(0);
        emu.cpu.set_sp(0x2000_0FF8);
        let mut pipe = gd_pipeline::Pipeline::new(emu);
        let mut i = 0usize;
        let _ = pipe.run_with(2_000, |_| {
            i = (i + 1) % masks.len();
            if i % 3 == 0 {
                vec![gd_pipeline::StageFault::CorruptExec { and_mask: masks[i] }]
            } else {
                Vec::new()
            }
        });
    });
}
