//! Regenerates Table IV: boot-time overhead (clock cycles) per defense.

fn main() {
    let rows = gd_bench::overhead::table4();
    gd_bench::overhead::print_table4(&rows);
}
