//! Ablation study: Table VI only reports *All* and *All\Delay*; this
//! extension measures each defense's individual contribution against the
//! worst-case `while(!a)` guard under a single-glitch campaign, answering
//! which mechanism buys which part of the protection. `--check` diffs the
//! output against `results/ablation.txt`.

use std::process::ExitCode;

use gd_backend::compile;
use gd_chipwhisperer::{
    run_attack, AttackOutcome, AttackSpec, Device, FaultModel, GlitchParams, SuccessCheck,
};
use gd_firmware::SUCCESS_MARKER;
use glitch_resistor::{harden, Config, Defenses};

fn campaign(device: &Device, model: &FaultModel) -> (u64, u64, u64, u64) {
    // Boot-to-trigger differs per configuration (the delay defense's flash
    // write); size the budget accordingly.
    let mut probe = device.boot();
    probe.run(2_000_000);
    let budget = probe.trigger_cycle().unwrap_or(0) + 4_000;
    let spec = AttackSpec { success: SuccessCheck::HaltWithR0(SUCCESS_MARKER), max_cycles: budget };

    let (mut total, mut successes, mut detections, mut crashes) = (0u64, 0u64, 0u64, 0u64);
    let mut nvm: Vec<u8> = Vec::new();
    let mut boot = 0u64;
    for cycle in 0..44u32 {
        // A dense slice through both violation lobes.
        for w in [-36i8, -35, -34, -33, 10, 11, 12, 13, 14] {
            for o in [-20i8, -18, -16, 20, 22, 24] {
                boot += 1;
                if model.severity(w, o) == 0.0 {
                    continue;
                }
                total += 1;
                let attempt = run_attack(
                    device,
                    model,
                    GlitchParams::single(cycle, w, o),
                    boot,
                    &spec,
                    Some(&mut nvm),
                );
                match attempt.outcome {
                    AttackOutcome::Success => successes += 1,
                    AttackOutcome::Detected => detections += 1,
                    AttackOutcome::Crash | AttackOutcome::Reset => crashes += 1,
                    AttackOutcome::NoEffect => {}
                }
            }
        }
    }
    (total, successes, detections, crashes)
}

fn regenerate() {
    let model = FaultModel::default();
    let module = gd_firmware::while_not_a();
    let configs: Vec<(&str, Defenses)> = vec![
        ("None", Defenses::NONE),
        ("Branches", Defenses::BRANCHES),
        ("Loops", Defenses::LOOPS),
        ("Branches+Loops", Defenses { branches: true, loops: true, ..Defenses::NONE }),
        ("Integrity", Defenses::INTEGRITY),
        ("Delay", Defenses::DELAY),
        ("All\\Delay", Defenses::ALL_EXCEPT_DELAY),
        ("All", Defenses::ALL),
    ];

    gd_bench::report::heading(
        "Ablation — single-glitch campaign vs while(!a), per defense (faulting attempts only)",
    );
    println!(
        "{:<16} {:>9} {:>10} {:>11} {:>9} {:>11} {:>10}",
        "Defense", "Attempts", "Successes", "Succ. rate", "Detected", "Det. rate", "Crashes"
    );
    for (name, defenses) in configs {
        let mut m = module.clone();
        harden(&mut m, &Config::new(defenses));
        let image = compile(&m, "main").expect("firmware lowers");
        let device = Device::from_image(&image);
        let (total, suc, det, crash) = campaign(&device, &model);
        let det_rate = if det + suc == 0 { 0.0 } else { 100.0 * det as f64 / (det + suc) as f64 };
        println!(
            "{name:<16} {total:>9} {suc:>10} {:>10.3}% {det:>9} {det_rate:>10.1}% {crash:>10}",
            100.0 * suc as f64 / total.max(1) as f64
        );
    }
    println!(
        "\n(branch duplication provides the bulk of the mitigation; loop hardening\n\
         closes the exit edge; the delay defense converts residual successes into\n\
         detections by de-aligning the attack window, as §VII argues)"
    );
}

fn main() -> ExitCode {
    gd_bench::selfcheck::main("ablation.txt", &[], regenerate)
}
