//! Regenerates Figure 2: exhaustive bit-flip sweeps over every Thumb
//! conditional branch under the AND / OR / AND-with-invalid-zero models.
//! A thin client of the campaign engine; `--check` diffs the output
//! against `results/fig2.txt`.

use std::process::ExitCode;

fn main() -> ExitCode {
    gd_bench::selfcheck::main("fig2.txt", &[], || {
        let result = gd_campaign::Engine::ephemeral()
            .run(&gd_campaign::CampaignSpec::fig2())
            .expect("campaign runs");
        print!("{}", result.text);
    })
}
