//! The `GL03xx` glitch-reachability lints: static verdicts for every
//! single-bit flip and instruction skip, cross-validated against the
//! fault simulator by `gd-bench`'s agreement harness.
//!
//! The verdicts are sound in one direction only: a fault the simulator
//! proves *Successful* must never come back [`Verdict::Safe`]. To hold
//! that line against data-corrupting faults (not just control-flow
//! diversion), reachability takes *both* arms of every conditional — a
//! fault upstream of a deciding branch may flip the data the condition
//! reads, so the sink is considered reachable from any point whose
//! continuation passes through the branch. The price is
//! over-approximation downstream of the sink decision, which the
//! agreement tables measure instead of hiding.

use gd_backend::{FirmwareImage, FuncExtent};
use gd_emu::Slot;
use gd_lint::Finding;
use gd_thumb::{Hint, Instr, Reg};

use crate::dom;
use crate::graph::{Cfg, Term};
use crate::reach::{entry_context, reach};

/// Why a fault is statically harmless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafeReason {
    /// The faulted halfword does not decode; the core takes an
    /// undefined-instruction trap.
    Undefined,
    /// The faulted instruction halts (`BKPT`, `UDF`, `SVC`, `WFI`,
    /// `WFE`).
    Stop,
    /// Every successor either faults on fetch or reaches no sink block
    /// under the over-approximating traversal.
    NoPath,
}

/// Why a fault is statically dangerous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Danger {
    /// A path into the sensitive sink exists.
    Sink,
    /// Control flow cannot be bounded (computed target, unmapped
    /// landing, unresolved callee) — assumed dangerous.
    Unknown,
}

/// Static classification of one fault instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Provably cannot reach the sink.
    Safe(SafeReason),
    /// May reach the sink (or cannot be bounded).
    Dangerous(Danger),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Dangerous`].
    pub fn dangerous(self) -> bool {
        matches!(self, Verdict::Dangerous(_))
    }
}

/// One faultable instruction site, as the models see it.
#[derive(Debug, Clone, Copy)]
pub struct SiteDesc {
    /// Address of the first halfword.
    pub addr: u32,
    /// That halfword as laid out in the image.
    pub hw: u16,
    /// The following halfword, when one exists.
    pub hw2: Option<u16>,
    /// Encoding size in bytes (2 or 4).
    pub size: u32,
}

/// The sensitive region faults must not reach.
#[derive(Debug, Clone)]
pub struct Sink {
    /// Short name used in finding messages.
    pub label: String,
    /// Absolute address spans `[start, end)`.
    pub spans: Vec<(u32, u32)>,
}

impl Sink {
    /// Whether `addr` falls inside the sink.
    pub fn contains(&self, addr: u32) -> bool {
        self.spans.iter().any(|&(s, e)| addr >= s && addr < e)
    }
}

/// Builds the sink for a compiled image from a named IR block: the span
/// runs from that block's machine start through the end of the first
/// call-terminated machine block on the fall chain (the call that acts
/// on the sensitive value), *excluding* the call's continuation — the
/// continuation is where legitimate return edges land, and code there
/// no longer performs the sensitive action.
pub fn compiled_sink(
    g: &Cfg,
    image: &FirmwareImage,
    func: &str,
    block: &str,
    label: &str,
) -> Option<Sink> {
    let extent = image.extent(func)?;
    let &(_, off) = extent.blocks.iter().find(|(name, _)| name == block)?;
    let start = extent.base + off;
    let mut bi = *g.index.get(&start)?;
    let end = loop {
        match g.blocks[bi].term {
            Term::Call { .. } => break g.blocks[bi].end,
            Term::Fall => match g.index.get(&g.blocks[bi].end) {
                Some(&next) => bi = next,
                None => break g.blocks[bi].end,
            },
            _ => break g.blocks[bi].end,
        }
    };
    Some(Sink { label: label.to_owned(), spans: vec![(start, end)] })
}

/// One guard re-check and the site it protects, in machine coordinates.
#[derive(Debug, Clone)]
pub struct GuardCheck {
    /// Routine containing the guard.
    pub func: String,
    /// Absolute span of the protected (branching) block.
    pub site_span: (u32, u32),
    /// Absolute start of the re-check block.
    pub check: u32,
    /// `"branch"`, `"loop"`, or `"pattern"` (matched, not recorded).
    pub kind: &'static str,
}

/// All guard metadata for an image, in machine coordinates.
#[derive(Debug, Clone, Default)]
pub struct GuardChecks {
    /// Re-checks with the spans they protect.
    pub checks: Vec<GuardCheck>,
    /// Absolute spans of detection trampolines and other
    /// hardening-synthesized blocks.
    pub detect_spans: Vec<(u32, u32)>,
}

/// Machine span of IR block `bb` inside `extent` (next recorded block
/// offset, or `code_end`, bounds it).
fn block_span(extent: &FuncExtent, bb: usize) -> Option<(u32, u32)> {
    let &(_, off) = extent.blocks.get(bb)?;
    let end = extent.blocks.get(bb + 1).map_or(extent.code_end, |&(_, next)| extent.base + next);
    Some((extent.base + off, end))
}

impl GuardChecks {
    /// Reads compiled guard metadata: IR block ids from each function's
    /// [`gd_ir::GuardInfo`] resolve positionally through the extent's
    /// recorded block layout.
    pub fn from_module(module: &gd_ir::Module, image: &FirmwareImage) -> GuardChecks {
        let mut out = GuardChecks::default();
        for func in &module.funcs {
            let Some(extent) = image.extent(&func.name) else { continue };
            if extent.blocks.is_empty() {
                continue;
            }
            let lists =
                [("branch", &func.guards.branch_checks), ("loop", &func.guards.loop_checks)];
            for (kind, checks) in lists {
                for bc in checks {
                    let (Some(site_span), Some(check_span)) =
                        (block_span(extent, bc.site.index()), block_span(extent, bc.check.index()))
                    else {
                        continue;
                    };
                    out.checks.push(GuardCheck {
                        func: func.name.clone(),
                        site_span,
                        check: check_span.0,
                        kind,
                    });
                }
            }
            for &gb in &func.guards.guard_blocks {
                if let Some(span) = block_span(extent, gb.index()) {
                    out.detect_spans.push(span);
                }
            }
        }
        out
    }

    /// Pattern-matches re-check sequences on images without compiled
    /// guard metadata (ingested firmware): a conditional block one of
    /// whose arms is a trap block, fed by a predecessor that itself ends
    /// in a conditional branch (the original decision).
    pub fn pattern_rechecks(g: &Cfg, image: &FirmwareImage) -> GuardChecks {
        let mut out = GuardChecks::default();
        let trap = |bi: usize| {
            let b = &g.blocks[bi];
            match b.term {
                Term::Stop => true,
                Term::Uncond { target } => target == b.start, // spin loop
                _ => false,
            }
        };
        for (bi, b) in g.blocks.iter().enumerate() {
            if !matches!(b.term, Term::Cond { .. }) {
                continue;
            }
            if !g.succs[bi].iter().any(|&(t, _)| trap(t)) {
                continue;
            }
            let Some((name, _)) = image.symbolize(b.start) else { continue };
            for &(p, _) in &g.preds[bi] {
                let pb = &g.blocks[p];
                if matches!(pb.term, Term::Cond { .. }) {
                    out.checks.push(GuardCheck {
                        func: name.to_owned(),
                        site_span: (pb.start, pb.end),
                        check: b.start,
                        kind: "pattern",
                    });
                }
            }
            for &(t, _) in &g.succs[bi] {
                if trap(t) {
                    out.detect_spans.push((g.blocks[t].start, g.blocks[t].end));
                }
            }
        }
        out
    }

    /// Whether `addr` lies in a detection trampoline.
    pub fn in_detect(&self, addr: u32) -> bool {
        self.detect_spans.iter().any(|&(s, e)| addr >= s && addr < e)
    }
}

/// Everything a fault classification query needs.
pub struct FaultCtx<'a> {
    /// The recovered graph.
    pub g: &'a Cfg,
    /// The image under analysis.
    pub image: &'a FirmwareImage,
    /// The sensitive sink.
    pub sink: &'a Sink,
    /// Guard metadata (compiled or pattern-matched).
    pub guards: &'a GuardChecks,
    /// Blocks live under the over-approximating entry traversal.
    pub context: Vec<bool>,
}

impl<'a> FaultCtx<'a> {
    /// Builds the context (one entry-reachability query).
    pub fn new(
        g: &'a Cfg,
        image: &'a FirmwareImage,
        sink: &'a Sink,
        guards: &'a GuardChecks,
    ) -> FaultCtx<'a> {
        let context = entry_context(g, image.entry);
        FaultCtx { g, image, sink, guards, context }
    }

    /// Classifies corrupting the site's first halfword with `site.hw ^
    /// mask` (the xor1.t model enumerates the sixteen single-bit masks).
    pub fn classify_flip(&self, site: &SiteDesc, mask: u16) -> Verdict {
        match gd_emu::classify(site.hw ^ mask, site.hw2, self.g.emu_cfg) {
            Slot::Undefined { .. } => Verdict::Safe(SafeReason::Undefined),
            // A wide prefix at the end of text: the second fetch runs
            // off the image. The emulator faults, but decoding is
            // config-sensitive enough that we do not bet on it.
            Slot::Incomplete { .. } => Verdict::Dangerous(Danger::Unknown),
            // `classify` on raw halfwords never yields `Live` (that is
            // the invalidated-table marker), but be conservative.
            Slot::Live => Verdict::Dangerous(Danger::Unknown),
            Slot::Instr { instr, size } => self.faulted_instr(site, instr, size),
        }
    }

    /// Classifies skipping the site (the skip.t model): execution
    /// resumes at the next instruction with the site's effects missing.
    pub fn classify_skip(&self, site: &SiteDesc) -> Verdict {
        self.verdict_from(site, &[site.addr + site.size], false)
    }

    fn faulted_instr(&self, site: &SiteDesc, instr: Instr, size: u32) -> Verdict {
        if matches!(instr, Instr::Bkpt { .. } | Instr::Udf { .. } | Instr::Svc { .. })
            || matches!(instr, Instr::Hint { hint: Hint::Wfi | Hint::Wfe })
        {
            return Verdict::Safe(SafeReason::Stop);
        }
        let pc = site.addr.wrapping_add(4);
        let direct_branch = matches!(
            instr,
            Instr::BCond { .. } | Instr::BCondW { .. } | Instr::B { .. } | Instr::BW { .. }
        );
        let addrs: Vec<u32> = match instr {
            Instr::BCond { offset, .. } | Instr::BCondW { offset, .. } => {
                vec![pc.wrapping_add(offset as u32), site.addr + size]
            }
            Instr::B { offset } | Instr::BW { offset } => vec![pc.wrapping_add(offset as u32)],
            Instr::Bl { offset } => vec![pc.wrapping_add(offset as u32), site.addr + 4],
            Instr::Bx { rm: Reg::LR } => return self.early_return(site),
            // Register-indirect control transfer under a corrupted
            // register file: unboundable.
            Instr::Bx { .. }
            | Instr::Blx { .. }
            | Instr::MovHi { rd: Reg::PC, .. }
            | Instr::AddHi { rdn: Reg::PC, .. }
            | Instr::Pop { pc: true, .. }
            | Instr::LdrW { rt: Reg::PC, .. } => return Verdict::Dangerous(Danger::Unknown),
            _ => vec![site.addr + size],
        };
        self.verdict_from(site, &addrs, direct_branch)
    }

    /// A flipped `BX LR` returns early. Mid-routine, LR holds either the
    /// caller's return address or the continuation of the last call this
    /// routine made — so the landing set is every caller continuation
    /// (gated on the call frame being live in the context) plus every
    /// call continuation inside the routine.
    fn early_return(&self, site: &SiteDesc) -> Verdict {
        let Some(extent) = containing_extent(self.image, site.addr) else {
            return Verdict::Dangerous(Danger::Unknown);
        };
        let in_routine = |start: u32| start >= extent.base && start < extent.end;
        let mut starts = Vec::new();
        for re in &self.g.return_edges {
            if in_routine(self.g.blocks[re.from].start) && self.context[re.call] {
                starts.push(re.to);
            }
        }
        for (bi, b) in self.g.blocks.iter().enumerate() {
            let _ = bi;
            if in_routine(b.start) && matches!(b.term, Term::Call { .. }) {
                if let Some(&cont) = self.g.index.get(&b.end) {
                    starts.push(cont);
                }
            }
        }
        if starts.is_empty() {
            return Verdict::Safe(SafeReason::NoPath);
        }
        self.reach_verdict(&starts)
    }

    /// Maps landing addresses to blocks and runs the reachability query.
    fn verdict_from(&self, site: &SiteDesc, addrs: &[u32], direct_branch: bool) -> Verdict {
        let site_extent = containing_extent(self.image, site.addr).map(|e| e.base);
        let mut starts = Vec::new();
        for &a in addrs {
            // Landing outside the text section fetch-faults: safe.
            if !self.in_text(a) {
                continue;
            }
            // A direct branch carries honest registers. When it fires
            // from inside a guarded block straight into that block's own
            // re-check, the re-check sees consistent data and either
            // detects the diversion or continues exactly as the honest
            // path would — either way, no new behavior. (Checks guarding
            // *other* sites get no such credit: a data fault can corrupt
            // the value a foreign check recomputes its complement from.)
            if direct_branch && self.caught(site.addr, a) {
                continue;
            }
            if self.sink.contains(a) {
                return Verdict::Dangerous(Danger::Sink);
            }
            // Landing in a *foreign* routine runs that body on the
            // faulting routine's frame: its epilogue returns through the
            // faulting routine's live LR (or pops arbitrary stack slots),
            // landings the callee's own return edges cannot model.
            if containing_extent(self.image, a).map(|e| e.base) != site_extent {
                return Verdict::Dangerous(Danger::Unknown);
            }
            match self.g.instr_blocks.get(&a) {
                Some(&(bi, _)) => starts.push(bi),
                // In text but not a decoded instruction start (literal
                // pool, misaligned landing): unboundable.
                None => return Verdict::Dangerous(Danger::Unknown),
            }
        }
        if starts.is_empty() {
            return Verdict::Safe(SafeReason::NoPath);
        }
        self.reach_verdict(&starts)
    }

    fn reach_verdict(&self, starts: &[usize]) -> Verdict {
        let r = reach(self.g, starts, &self.context);
        if r.hit_unresolved {
            return Verdict::Dangerous(Danger::Unknown);
        }
        for (bi, b) in self.g.blocks.iter().enumerate() {
            if r.blocks[bi] && self.sink.contains(b.start) {
                return Verdict::Dangerous(Danger::Sink);
            }
        }
        Verdict::Safe(SafeReason::NoPath)
    }

    fn in_text(&self, addr: u32) -> bool {
        addr >= self.image.text_base
            && (addr - self.image.text_base) as usize + 2 <= self.image.text.len()
    }

    fn caught(&self, site: u32, succ: u32) -> bool {
        self.guards
            .checks
            .iter()
            .any(|gc| site >= gc.site_span.0 && site < gc.site_span.1 && succ == gc.check)
    }

    /// Site descriptor for the instruction at `(block, pos)`.
    pub fn site_at(&self, bi: usize, pos: usize) -> SiteDesc {
        let (addr, _, size) = self.g.blocks[bi].instrs[pos];
        let off = (addr - self.image.text_base) as usize;
        let hw = u16::from_le_bytes([self.image.text[off], self.image.text[off + 1]]);
        let hw2 = self.image.text.get(off + 2..off + 4).map(|b| u16::from_le_bytes([b[0], b[1]]));
        SiteDesc { addr, hw, hw2, size }
    }
}

fn containing_extent(image: &FirmwareImage, addr: u32) -> Option<&FuncExtent> {
    let idx = image.extents.partition_point(|e| e.base <= addr).checked_sub(1)?;
    let e = &image.extents[idx];
    (addr < e.end).then_some(e)
}

/// The sixteen single-bit masks of the xor1.t model.
pub fn bit_masks() -> impl Iterator<Item = u16> {
    (0..16).map(|i| 1u16 << i)
}

/// Runs the `GL03xx` lints over a classified image.
pub fn lint_cfg(ctx: &FaultCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let routines = dom::routines(ctx.g, ctx.image);

    // GL0301: conditional-branch sites where a single-bit flip opens a
    // path into the sink. GL0304: call sites inside a detection
    // trampoline whose skip bypasses the guard entirely.
    for (bi, b) in ctx.g.blocks.iter().enumerate() {
        let Some((func, off)) = ctx.image.symbolize(b.term_addr()) else { continue };
        let (func, off) = (func.to_owned(), off);
        let pos = b.instrs.len() - 1;
        let site = ctx.site_at(bi, pos);
        match b.term {
            Term::Cond { .. } => {
                let dangerous =
                    bit_masks().filter(|&m| ctx.classify_flip(&site, m).dangerous()).count();
                if dangerous > 0 {
                    findings.push(
                        Finding::new(
                            "GL0301",
                            &func,
                            &format!("+{off:#x}"),
                            format!(
                                "{dangerous} of 16 single-bit flips open a path to {} \
                                 crossing no re-check",
                                ctx.sink.label,
                            ),
                        )
                        .with_span(off, off + site.size),
                    );
                }
            }
            Term::Call { .. } if ctx.guards.in_detect(site.addr) => {
                if ctx.classify_skip(&site).dangerous() {
                    findings.push(
                        Finding::new(
                            "GL0304",
                            &func,
                            &format!("+{off:#x}"),
                            format!(
                                "skipping this call bypasses the guard and opens a path to {}",
                                ctx.sink.label,
                            ),
                        )
                        .with_span(off, off + site.size),
                    );
                }
            }
            _ => {}
        }
    }

    // GL0302/GL0303: structural health of every recorded guard.
    for gc in &ctx.guards.checks {
        let Some(routine) = routines.iter().find(|r| r.name == gc.func) else { continue };
        let Some(&check_bi) = ctx.g.index.get(&gc.check) else { continue };
        let (span_lo, span_hi) = gc.site_span;
        let rel = |a: u32| a - ctx.image.extent(&gc.func).map_or(0, |e| e.base);
        let loc = format!("+{:#x}", rel(gc.check));
        let check_span = (rel(gc.check), rel(ctx.g.blocks[check_bi].end));

        let has_edge = ctx
            .g
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.start >= span_lo && b.start < span_hi)
            .any(|(bi, _)| ctx.g.succs[bi].iter().any(|&(t, _)| t == check_bi));
        if !has_edge {
            findings.push(
                Finding::new(
                    "GL0302",
                    &gc.func,
                    &loc,
                    format!(
                        "{} re-check has no machine edge from the site it protects \
                         (+{:#x}..+{:#x})",
                        gc.kind,
                        rel(span_lo),
                        rel(span_hi),
                    ),
                )
                .with_span(check_span.0, check_span.1),
            );
        } else if let (Some(check_l), Some(dom)) = (routine.local(check_bi), routine.dominators()) {
            // The check must strictly dominate each protected (non-
            // detect) target it forwards to.
            for &(t, _) in &ctx.g.succs[check_bi] {
                let tb = &ctx.g.blocks[t];
                if ctx.guards.in_detect(tb.start) {
                    continue;
                }
                let Some(t_l) = routine.local(t) else { continue };
                if t_l == check_l || !dom.dominates(check_l, t_l) {
                    findings.push(
                        Finding::new(
                            "GL0302",
                            &gc.func,
                            &loc,
                            format!(
                                "{} re-check does not strictly dominate its protected \
                                 target +{:#x}",
                                gc.kind,
                                rel(tb.start),
                            ),
                        )
                        .with_span(check_span.0, check_span.1),
                    );
                }
            }
        }
        if !ctx.context.get(check_bi).copied().unwrap_or(false) {
            findings.push(
                Finding::new(
                    "GL0303",
                    &gc.func,
                    &loc,
                    format!("{} re-check is unreachable from the image entry", gc.kind),
                )
                .with_span(check_span.0, check_span.1),
            );
        }
    }

    findings.sort_by(|a, b| {
        (a.lint, &a.function, &a.location, &a.message).cmp(&(
            b.lint,
            &b.function,
            &b.location,
            &b.message,
        ))
    });
    findings.dedup();
    findings
}
