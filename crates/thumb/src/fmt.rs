//! Disassembly: canonical textual form for every instruction.
//!
//! The printed syntax round-trips through the [`asm`](crate::asm) assembler.
//! Branch targets print as `.<offset>` where `<offset>` is the byte offset
//! from the branch's PC (instruction address + 4), e.g. `beq .+6`.

use core::fmt;

use crate::instr::{ShiftOp, Width};
use crate::{Instr, Reg};

fn reg_list(f: &mut fmt::Formatter<'_>, rlist: u8, extra: Option<Reg>) -> fmt::Result {
    f.write_str("{")?;
    let mut first = true;
    for i in 0..8 {
        if rlist & (1 << i) != 0 {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "r{i}")?;
            first = false;
        }
    }
    if let Some(reg) = extra {
        if !first {
            f.write_str(", ")?;
        }
        write!(f, "{reg}")?;
    }
    f.write_str("}")
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::ShiftImm { op, rd, rm, imm5 } => {
                // lsr/asr encode a 32-bit shift as imm5 = 0.
                let amount = match (op, imm5) {
                    (ShiftOp::Lsr | ShiftOp::Asr, 0) => 32,
                    _ => u32::from(imm5),
                };
                write!(f, "{} {rd}, {rm}, #{amount}", op.mnemonic())
            }
            Instr::AddReg3 { rd, rn, rm } => write!(f, "adds {rd}, {rn}, {rm}"),
            Instr::SubReg3 { rd, rn, rm } => write!(f, "subs {rd}, {rn}, {rm}"),
            Instr::AddImm3 { rd, rn, imm3 } => write!(f, "adds {rd}, {rn}, #{imm3}"),
            Instr::SubImm3 { rd, rn, imm3 } => write!(f, "subs {rd}, {rn}, #{imm3}"),
            Instr::MovImm { rd, imm8 } => write!(f, "movs {rd}, #{imm8}"),
            Instr::CmpImm { rn, imm8 } => write!(f, "cmp {rn}, #{imm8}"),
            Instr::AddImm8 { rdn, imm8 } => write!(f, "adds {rdn}, #{imm8}"),
            Instr::SubImm8 { rdn, imm8 } => write!(f, "subs {rdn}, #{imm8}"),
            Instr::Alu { op, rdn, rm } => write!(f, "{} {rdn}, {rm}", op.mnemonic()),
            Instr::AddHi { rdn, rm } => write!(f, "add {rdn}, {rm}"),
            Instr::CmpHi { rn, rm } => write!(f, "cmp {rn}, {rm}"),
            Instr::MovHi { rd, rm } => write!(f, "mov {rd}, {rm}"),
            Instr::Bx { rm } => write!(f, "bx {rm}"),
            Instr::Blx { rm } => write!(f, "blx {rm}"),
            Instr::LdrLit { rt, imm8 } => write!(f, "ldr {rt}, [pc, #{}]", u32::from(imm8) * 4),
            Instr::StoreReg { width, rt, rn, rm } => {
                write!(f, "str{} {rt}, [{rn}, {rm}]", width_suffix(width))
            }
            Instr::LoadReg { width, rt, rn, rm } => {
                write!(f, "ldr{} {rt}, [{rn}, {rm}]", width_suffix(width))
            }
            Instr::LdrsbReg { rt, rn, rm } => write!(f, "ldrsb {rt}, [{rn}, {rm}]"),
            Instr::LdrshReg { rt, rn, rm } => write!(f, "ldrsh {rt}, [{rn}, {rm}]"),
            Instr::StoreImm { width, rt, rn, imm5 } => {
                let off = u32::from(imm5) * width.bytes();
                write!(f, "str{} {rt}, [{rn}, #{off}]", width_suffix(width))
            }
            Instr::LoadImm { width, rt, rn, imm5 } => {
                let off = u32::from(imm5) * width.bytes();
                write!(f, "ldr{} {rt}, [{rn}, #{off}]", width_suffix(width))
            }
            Instr::StrSp { rt, imm8 } => write!(f, "str {rt}, [sp, #{}]", u32::from(imm8) * 4),
            Instr::LdrSp { rt, imm8 } => write!(f, "ldr {rt}, [sp, #{}]", u32::from(imm8) * 4),
            Instr::Adr { rd, imm8 } => write!(f, "adr {rd}, #{}", u32::from(imm8) * 4),
            Instr::AddSpImm { rd, imm8 } => write!(f, "add {rd}, sp, #{}", u32::from(imm8) * 4),
            Instr::AddSp { imm7 } => write!(f, "add sp, #{}", u32::from(imm7) * 4),
            Instr::SubSp { imm7 } => write!(f, "sub sp, #{}", u32::from(imm7) * 4),
            Instr::Sxth { rd, rm } => write!(f, "sxth {rd}, {rm}"),
            Instr::Sxtb { rd, rm } => write!(f, "sxtb {rd}, {rm}"),
            Instr::Uxth { rd, rm } => write!(f, "uxth {rd}, {rm}"),
            Instr::Uxtb { rd, rm } => write!(f, "uxtb {rd}, {rm}"),
            Instr::Rev { rd, rm } => write!(f, "rev {rd}, {rm}"),
            Instr::Rev16 { rd, rm } => write!(f, "rev16 {rd}, {rm}"),
            Instr::Revsh { rd, rm } => write!(f, "revsh {rd}, {rm}"),
            Instr::Push { rlist, lr } => {
                f.write_str("push ")?;
                reg_list(f, rlist, lr.then_some(Reg::LR))
            }
            Instr::Pop { rlist, pc } => {
                f.write_str("pop ")?;
                reg_list(f, rlist, pc.then_some(Reg::PC))
            }
            Instr::Bkpt { imm8 } => write!(f, "bkpt #{imm8}"),
            Instr::Hint { hint } => f.write_str(hint.mnemonic()),
            Instr::Cps { disable } => f.write_str(if disable { "cpsid i" } else { "cpsie i" }),
            Instr::Stm { rn, rlist } => {
                write!(f, "stmia {rn}!, ")?;
                reg_list(f, rlist, None)
            }
            Instr::Ldm { rn, rlist } => {
                write!(f, "ldmia {rn}!, ")?;
                reg_list(f, rlist, None)
            }
            Instr::BCond { cond, offset } => write!(f, "b{cond} .{offset:+}"),
            Instr::Udf { imm8 } => write!(f, "udf #{imm8}"),
            Instr::Svc { imm8 } => write!(f, "svc #{imm8}"),
            Instr::B { offset } => write!(f, "b .{offset:+}"),
            Instr::Bl { offset } => write!(f, "bl .{offset:+}"),
            Instr::BW { offset } => write!(f, "b.w .{offset:+}"),
            Instr::BCondW { cond, offset } => write!(f, "b{cond}.w .{offset:+}"),
            Instr::DpImm { op, s, rn, rd, imm12 } => {
                let imm = crate::instr::thumb_expand_imm(imm12);
                if rd == Reg::PC {
                    let mnem = op.discard_mnemonic().unwrap_or(op.mnemonic());
                    write!(f, "{mnem}.w {rn}, #{imm:#x}")
                } else if rn == Reg::PC {
                    let mnem = if op == crate::instr::WideDpOp::Orr { "mov" } else { "mvn" };
                    write!(f, "{mnem}{}.w {rd}, #{imm:#x}", if s { "s" } else { "" })
                } else {
                    let s = if s { "s" } else { "" };
                    write!(f, "{}{s}.w {rd}, {rn}, #{imm:#x}", op.mnemonic())
                }
            }
            Instr::MovW { rd, imm16 } => write!(f, "movw {rd}, #{imm16:#x}"),
            Instr::MovT { rd, imm16 } => write!(f, "movt {rd}, #{imm16:#x}"),
            Instr::LdrW { rt, rn, imm12 } => write!(f, "ldr.w {rt}, [{rn}, #{imm12}]"),
            Instr::StrW { rt, rn, imm12 } => write!(f, "str.w {rt}, [{rn}, #{imm12}]"),
        }
    }
}

fn width_suffix(width: Width) -> &'static str {
    match width {
        Width::Byte => "b",
        Width::Half => "h",
        Width::Word => "",
    }
}

/// Disassembles a code buffer, yielding `(byte offset, text)` lines.
///
/// Undefined patterns render as `.hword 0x....` so the output always covers
/// the whole buffer.
///
/// ```
/// use gd_thumb::fmt::disassemble;
/// let lines = disassemble(&[0xAA, 0x20, 0x00, 0xBF]);
/// assert_eq!(lines[0], (0, "movs r0, #170".to_owned()));
/// assert_eq!(lines[1], (2, "nop".to_owned()));
/// ```
pub fn disassemble(code: &[u8]) -> Vec<(u32, String)> {
    disassemble_with(code, crate::decode::decode_bytes)
}

/// [`disassemble`] with the Thumb-2 wide subset enabled
/// ([`decode_bytes_wide`](crate::decode::decode_bytes_wide)).
pub fn disassemble_wide(code: &[u8]) -> Vec<(u32, String)> {
    disassemble_with(code, crate::decode::decode_bytes_wide)
}

fn disassemble_with(
    code: &[u8],
    decode: fn(&[u8]) -> Result<(Instr, u32), crate::DecodeError>,
) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset + 1 < code.len() {
        match decode(&code[offset..]) {
            Ok((instr, size)) => {
                out.push((offset as u32, instr.to_string()));
                offset += size as usize;
            }
            Err(_) => {
                let hw = u16::from_le_bytes([code[offset], code[offset + 1]]);
                out.push((offset as u32, format!(".hword {hw:#06x}")));
                offset += 2;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Hint};
    use crate::Cond;

    #[test]
    fn canonical_text() {
        let cases: Vec<(Instr, &str)> = vec![
            (Instr::MovImm { rd: Reg::R0, imm8: 170 }, "movs r0, #170"),
            (Instr::Alu { op: AluOp::Cmp, rdn: Reg::R2, rm: Reg::R3 }, "cmp r2, r3"),
            (Instr::MovHi { rd: Reg::R3, rm: Reg::SP }, "mov r3, sp"),
            (Instr::BCond { cond: Cond::Eq, offset: 6 }, "beq .+6"),
            (Instr::B { offset: -4 }, "b .-4"),
            (
                Instr::LoadImm { width: Width::Byte, rt: Reg::R3, rn: Reg::R3, imm5: 0 },
                "ldrb r3, [r3, #0]",
            ),
            (
                Instr::LoadImm { width: Width::Word, rt: Reg::R2, rn: Reg::R1, imm5: 4 },
                "ldr r2, [r1, #16]",
            ),
            (Instr::Push { rlist: 0b0001_0001, lr: true }, "push {r0, r4, lr}"),
            (Instr::Pop { rlist: 0, pc: true }, "pop {pc}"),
            (Instr::Hint { hint: Hint::Wfi }, "wfi"),
            (Instr::LdrSp { rt: Reg::R1, imm8: 3 }, "ldr r1, [sp, #12]"),
            (Instr::Stm { rn: Reg::R0, rlist: 0b110 }, "stmia r0!, {r1, r2}"),
            (Instr::Cps { disable: true }, "cpsid i"),
            (Instr::Bl { offset: 8 }, "bl .+8"),
        ];
        for (instr, text) in cases {
            assert_eq!(instr.to_string(), text);
        }
    }

    #[test]
    fn disassemble_covers_undefined_gaps() {
        // movs r0, #1 ; <undefined B100> ; nop
        let code = [0x01, 0x20, 0x00, 0xB1, 0x00, 0xBF];
        let lines = disassemble(&code);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].1, ".hword 0xb100");
        assert_eq!(lines[2], (4, "nop".to_owned()));
    }
}
