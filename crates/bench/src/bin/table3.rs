//! Regenerates Table III: long glitches (0..10 through 0..20 cycles)
//! against the doubled loop guards. A thin client of the campaign
//! engine; `--check` diffs the output against `results/table3.txt`.

use std::process::ExitCode;

fn main() -> ExitCode {
    gd_bench::selfcheck::main("table3.txt", &[], || {
        let result = gd_campaign::Engine::ephemeral()
            .run(&gd_campaign::CampaignSpec::table3())
            .expect("campaign runs");
        print!("{}", result.text);
    })
}
