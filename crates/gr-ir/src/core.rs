//! Core IR data model: types, values, instructions, blocks, functions,
//! modules.
//!
//! The IR is a small typed SSA form shaped after the LLVM subset that
//! GlitchResistor's passes reason about: integer arithmetic, comparisons,
//! (volatile) loads and stores, calls, conditional branches, phis, and
//! module-level globals / enum definitions.

use core::fmt;

/// A first-class IR type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Boolean (comparison results).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// Pointer (to any of the integer types; loads/stores carry the width).
    Ptr,
    /// No value (function returns, stores).
    Void,
}

impl Ty {
    /// Size in bytes when stored in memory.
    ///
    /// # Panics
    ///
    /// Panics for [`Ty::Void`], which has no storage.
    pub fn size(self) -> u32 {
        match self {
            Ty::I1 | Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 | Ty::Ptr => 4,
            Ty::Void => panic!("void has no size"),
        }
    }

    /// Whether this is an integer type (including `i1`).
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I1 | Ty::I8 | Ty::I16 | Ty::I32)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I1 => "i1",
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::Ptr => "ptr",
            Ty::Void => "void",
        };
        f.write_str(s)
    }
}

/// Identifier of a value inside one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub(crate) u32);

impl ValueId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a basic block inside one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Binary integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
    /// Unsigned division (0 divisor yields 0, embedded-style).
    Udiv,
    /// Unsigned remainder (0 divisor yields the dividend).
    Urem,
}

impl BinOp {
    /// The text-format mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Lshr => "lshr",
            BinOp::Ashr => "ashr",
            BinOp::Udiv => "udiv",
            BinOp::Urem => "urem",
        }
    }

    /// All operations (text-format parsing).
    pub const ALL: [BinOp; 11] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Lshr,
        BinOp::Ashr,
        BinOp::Udiv,
        BinOp::Urem,
    ];
}

/// Comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
}

impl Pred {
    /// The predicate `p'` with `a p' b ⇔ !(a p b)`.
    pub fn negate(self) -> Pred {
        match self {
            Pred::Eq => Pred::Ne,
            Pred::Ne => Pred::Eq,
            Pred::Ult => Pred::Uge,
            Pred::Ule => Pred::Ugt,
            Pred::Ugt => Pred::Ule,
            Pred::Uge => Pred::Ult,
            Pred::Slt => Pred::Sge,
            Pred::Sle => Pred::Sgt,
            Pred::Sgt => Pred::Sle,
            Pred::Sge => Pred::Slt,
        }
    }

    /// The predicate `p'` with `a p' b ⇔ b p a`.
    pub fn swap(self) -> Pred {
        match self {
            Pred::Eq => Pred::Eq,
            Pred::Ne => Pred::Ne,
            Pred::Ult => Pred::Ugt,
            Pred::Ule => Pred::Uge,
            Pred::Ugt => Pred::Ult,
            Pred::Uge => Pred::Ule,
            Pred::Slt => Pred::Sgt,
            Pred::Sle => Pred::Sge,
            Pred::Sgt => Pred::Slt,
            Pred::Sge => Pred::Sle,
        }
    }

    /// The text-format mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Pred::Eq => "eq",
            Pred::Ne => "ne",
            Pred::Ult => "ult",
            Pred::Ule => "ule",
            Pred::Ugt => "ugt",
            Pred::Uge => "uge",
            Pred::Slt => "slt",
            Pred::Sle => "sle",
            Pred::Sgt => "sgt",
            Pred::Sge => "sge",
        }
    }

    /// All predicates (text-format parsing).
    pub const ALL: [Pred; 10] = [
        Pred::Eq,
        Pred::Ne,
        Pred::Ult,
        Pred::Ule,
        Pred::Ugt,
        Pred::Uge,
        Pred::Slt,
        Pred::Sle,
        Pred::Sgt,
        Pred::Sge,
    ];
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Binary arithmetic/logic on same-typed integers.
    Bin {
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Comparison producing an `i1`.
    Icmp {
        /// Predicate.
        pred: Pred,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Bitwise complement.
    Not {
        /// Operand.
        arg: ValueId,
    },
    /// Integer width change.
    Cast {
        /// Operand.
        arg: ValueId,
        /// Destination type (truncation or zero-extension).
        to: Ty,
    },
    /// Reinterpret an `i32` as a pointer (MMIO access, e.g. the GPIO
    /// trigger register).
    IntToPtr {
        /// Operand (an `i32` address).
        arg: ValueId,
    },
    /// Stack slot allocation; yields a pointer.
    Alloca {
        /// Pointee type.
        ty: Ty,
    },
    /// Memory load.
    Load {
        /// Pointer operand.
        ptr: ValueId,
        /// Loaded type.
        ty: Ty,
        /// Volatile loads are never duplicated or elided by passes.
        volatile: bool,
    },
    /// Memory store (no result).
    Store {
        /// Pointer operand.
        ptr: ValueId,
        /// Stored value.
        value: ValueId,
        /// Volatile stores are never duplicated or elided by passes.
        volatile: bool,
    },
    /// Address of a module global; yields a pointer.
    GlobalAddr {
        /// Global name (no `@` sigil).
        name: String,
    },
    /// Direct call by name.
    Call {
        /// Callee name (no `@` sigil).
        callee: String,
        /// Arguments.
        args: Vec<ValueId>,
    },
    /// SSA phi node (must be at the head of its block).
    Phi {
        /// `(predecessor, value)` incomings.
        incomings: Vec<(BlockId, ValueId)>,
    },
}

impl Instr {
    /// The value operands of this instruction.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Instr::Bin { lhs, rhs, .. } | Instr::Icmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::Not { arg } | Instr::Cast { arg, .. } | Instr::IntToPtr { arg } => vec![*arg],
            Instr::Load { ptr, .. } => vec![*ptr],
            Instr::Store { ptr, value, .. } => vec![*ptr, *value],
            Instr::Call { args, .. } => args.clone(),
            Instr::Phi { incomings } => incomings.iter().map(|(_, v)| *v).collect(),
            Instr::Alloca { .. } | Instr::GlobalAddr { .. } => vec![],
        }
    }

    /// Rewrites every operand equal to `from` into `to`.
    pub fn replace_operand(&mut self, from: ValueId, to: ValueId) {
        let swap = |v: &mut ValueId| {
            if *v == from {
                *v = to;
            }
        };
        match self {
            Instr::Bin { lhs, rhs, .. } | Instr::Icmp { lhs, rhs, .. } => {
                swap(lhs);
                swap(rhs);
            }
            Instr::Not { arg } | Instr::Cast { arg, .. } | Instr::IntToPtr { arg } => swap(arg),
            Instr::Load { ptr, .. } => swap(ptr),
            Instr::Store { ptr, value, .. } => {
                swap(ptr);
                swap(value);
            }
            Instr::Call { args, .. } => args.iter_mut().for_each(swap),
            Instr::Phi { incomings } => incomings.iter_mut().for_each(|(_, v)| swap(v)),
            Instr::Alloca { .. } | Instr::GlobalAddr { .. } => {}
        }
    }

    /// Whether passes may duplicate this instruction. The paper excludes
    /// volatile accesses, calls, and phis from branch-condition replication
    /// (§VI-B): they may have side effects or change between evaluations.
    pub fn replicable(&self) -> bool {
        match self {
            Instr::Load { volatile, .. } => !volatile,
            Instr::Store { .. } | Instr::Call { .. } | Instr::Phi { .. } => false,
            Instr::Alloca { .. } => false,
            _ => true,
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Two-way conditional branch on an `i1`.
    CondBr {
        /// Condition value.
        cond: ValueId,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return.
    Ret {
        /// Returned value (`None` for void functions).
        value: Option<ValueId>,
    },
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { target } => vec![*target],
            Terminator::CondBr { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Ret { .. } => vec![],
        }
    }

    /// Rewrites successor `from` into `to`.
    pub fn replace_successor(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Br { target } => {
                if *target == from {
                    *target = to;
                }
            }
            Terminator::CondBr { then_bb, else_bb, .. } => {
                if *then_bb == from {
                    *then_bb = to;
                }
                if *else_bb == from {
                    *else_bb = to;
                }
            }
            Terminator::Ret { .. } => {}
        }
    }
}

/// How a value is defined.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueDef {
    /// A function parameter.
    Param {
        /// Zero-based parameter index.
        index: u32,
    },
    /// An integer constant.
    Const {
        /// The value, sign-extended to `i64`.
        value: i64,
        /// Optional provenance: this constant came from expanding an enum
        /// variant — the hook the ENUM rewriter needs, standing in for the
        /// Clang AST information the paper's source-level rewriter uses.
        enum_ref: Option<EnumRef>,
    },
    /// An instruction result (or effect, for `void`-typed instructions).
    Instr(Instr),
}

/// Provenance of a constant that came from an enum variant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EnumRef {
    /// The enum's name.
    pub enum_name: String,
    /// Index of the variant within the enum.
    pub variant: u32,
}

/// A basic block: named, with ordered instructions and one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block label (unique within the function).
    pub name: String,
    /// Instruction values in execution order.
    pub instrs: Vec<ValueId>,
    /// The terminator (`None` only while under construction).
    pub term: Option<Terminator>,
}

/// One branch re-check recorded by a hardening pass: the block whose
/// conditional branch is protected (`site`) and the interposed block that
/// re-evaluates the condition in complemented form (`check`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchCheck {
    /// Block whose conditional branch got the redundant check.
    pub site: BlockId,
    /// The interposed re-check block on the protected edge.
    pub check: BlockId,
}

/// Guard metadata recorded by instrumentation passes (GlitchResistor's
/// defenses) describing *what they protected*. Static analyzers read this
/// instead of reverse-engineering block names, and can cross-check each
/// entry against the instructions actually present — the annotation says
/// where a guard claims to be, the IR says whether it really is.
///
/// This is in-memory provenance only: it is not part of the text format
/// and does not survive a print/parse round trip.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuardInfo {
    /// Branch-duplication re-checks on taken (then) edges.
    pub branch_checks: Vec<BranchCheck>,
    /// Loop-hardening re-checks on loop-exit (else) edges.
    pub loop_checks: Vec<BranchCheck>,
    /// Blocks synthesized by hardening passes (re-check and detection
    /// trampolines). Their terminators are guards, not application
    /// control flow.
    pub guard_blocks: Vec<BlockId>,
    /// Loads of sensitive globals that are integrity-checked.
    pub checked_loads: Vec<ValueId>,
    /// Stores to sensitive globals that also update the complement shadow.
    pub shadowed_stores: Vec<ValueId>,
    /// Blocks that received a trailing random-delay call.
    pub delay_blocks: Vec<BlockId>,
}

impl GuardInfo {
    /// Whether `bb` was synthesized by a hardening pass.
    pub fn is_guard_block(&self, bb: BlockId) -> bool {
        self.guard_blocks.contains(&bb)
            || self.branch_checks.iter().any(|c| c.check == bb)
            || self.loop_checks.iter().any(|c| c.check == bb)
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (no `@` sigil).
    pub name: String,
    /// Parameter types (parameter values are created automatically).
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// Guard metadata recorded by hardening passes (empty until a pass
    /// annotates the function).
    pub guards: GuardInfo,
    values: Vec<(ValueDef, Ty)>,
    blocks: Vec<Block>,
}

impl Function {
    /// Creates an empty function; parameters get values `v0..vN`.
    pub fn new(name: &str, params: Vec<Ty>, ret: Ty) -> Function {
        let values = params
            .iter()
            .enumerate()
            .map(|(i, ty)| (ValueDef::Param { index: i as u32 }, *ty))
            .collect();
        Function {
            name: name.to_owned(),
            params,
            ret,
            guards: GuardInfo::default(),
            values,
            blocks: Vec::new(),
        }
    }

    /// The value for parameter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> ValueId {
        assert!(index < self.params.len(), "parameter index out of range");
        ValueId(index as u32)
    }

    /// Appends a new empty block.
    pub fn add_block(&mut self, name: &str) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block { name: name.to_owned(), instrs: Vec::new(), term: None });
        id
    }

    /// The entry block (the first added).
    ///
    /// # Panics
    ///
    /// Panics on a function with no blocks.
    pub fn entry(&self) -> BlockId {
        assert!(!self.blocks.is_empty(), "function has no blocks");
        BlockId(0)
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// All block ids in creation order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Immutable block access.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable block access.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Looks a block up by label.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.name == name).map(|i| BlockId(i as u32))
    }

    /// Number of values (params + constants + instruction results).
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// All value ids in creation order.
    pub fn value_ids(&self) -> impl Iterator<Item = ValueId> {
        (0..self.values.len() as u32).map(ValueId)
    }

    /// The definition of a value.
    pub fn value(&self, id: ValueId) -> &ValueDef {
        &self.values[id.index()].0
    }

    /// Mutable definition access (passes rewriting operands).
    pub fn value_mut(&mut self, id: ValueId) -> &mut ValueDef {
        &mut self.values[id.index()].0
    }

    /// The type of a value.
    pub fn ty(&self, id: ValueId) -> Ty {
        self.values[id.index()].1
    }

    /// Interns a plain integer constant.
    pub fn const_int(&mut self, ty: Ty, value: i64) -> ValueId {
        self.intern_const(ty, value, None)
    }

    /// Interns a constant carrying enum provenance.
    pub fn const_enum(&mut self, ty: Ty, value: i64, enum_ref: EnumRef) -> ValueId {
        self.intern_const(ty, value, Some(enum_ref))
    }

    fn intern_const(&mut self, ty: Ty, value: i64, enum_ref: Option<EnumRef>) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push((ValueDef::Const { value, enum_ref }, ty));
        id
    }

    /// Creates an instruction value without inserting it into a block.
    /// Builders and passes insert the id into `block.instrs` themselves.
    pub fn create_instr(&mut self, instr: Instr, ty: Ty) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push((ValueDef::Instr(instr), ty));
        id
    }

    /// Replaces every use of `from` with `to` across instructions and
    /// terminators ("replace all uses with").
    pub fn replace_all_uses(&mut self, from: ValueId, to: ValueId) {
        for i in 0..self.values.len() {
            if let (ValueDef::Instr(instr), _) = &mut self.values[i] {
                instr.replace_operand(from, to);
            }
        }
        for block in &mut self.blocks {
            if let Some(Terminator::CondBr { cond, .. }) = &mut block.term {
                if *cond == from {
                    *cond = to;
                }
            }
            if let Some(Terminator::Ret { value: Some(v) }) = &mut block.term {
                if *v == from {
                    *v = to;
                }
            }
        }
    }

    /// All `Ret` values in the function.
    pub fn return_values(&self) -> Vec<Option<ValueId>> {
        self.blocks
            .iter()
            .filter_map(|b| match &b.term {
                Some(Terminator::Ret { value }) => Some(*value),
                _ => None,
            })
            .collect()
    }
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name (no `@` sigil).
    pub name: String,
    /// Stored type.
    pub ty: Ty,
    /// Initial value (zero-initialized when 0; placed in `.data` otherwise).
    pub init: i64,
    /// Marked sensitive by the developer → protected by the data-integrity
    /// defense (paper §VI-B-a).
    pub sensitive: bool,
}

/// A C-style enum definition.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variants: name plus explicit initializer if the source gave one.
    pub variants: Vec<(String, Option<i64>)>,
}

impl EnumDef {
    /// Whether every variant is uninitialized — the only enums the rewriter
    /// touches (paper §VI-A-a).
    pub fn fully_uninitialized(&self) -> bool {
        self.variants.iter().all(|(_, init)| init.is_none())
    }

    /// The C-semantics value of a variant: explicit initializer, or previous
    /// value + 1 (starting from 0).
    pub fn value_of(&self, variant: u32) -> i64 {
        let mut value = -1i64;
        for (i, (_, init)) in self.variants.iter().enumerate() {
            value = init.unwrap_or(value + 1);
            if i as u32 == variant {
                return value;
            }
        }
        panic!("variant index {variant} out of range for enum {}", self.name);
    }
}

/// An external function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternDecl {
    /// Name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
}

/// A compilation unit: globals, enums, extern declarations, functions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
    /// External declarations (resolved at link/lowering time).
    pub externs: Vec<ExternDecl>,
    /// Function definitions.
    pub funcs: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new(name: &str) -> Module {
        Module { name: name.to_owned(), ..Module::default() }
    }

    /// Adds a global, returning its name for convenience.
    pub fn add_global(&mut self, global: Global) {
        self.globals.push(global);
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up a function mutably by name.
    pub fn func_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.funcs.iter_mut().find(|f| f.name == name)
    }

    /// Looks up an enum by name.
    pub fn enum_def(&self, name: &str) -> Option<&EnumDef> {
        self.enums.iter().find(|e| e.name == name)
    }

    /// The signature (params, ret) of a callee: function or extern.
    pub fn signature(&self, name: &str) -> Option<(Vec<Ty>, Ty)> {
        if let Some(f) = self.func(name) {
            return Some((f.params.clone(), f.ret));
        }
        self.externs.iter().find(|e| e.name == name).map(|e| (e.params.clone(), e.ret))
    }

    /// Declares an external function (idempotent).
    pub fn declare_extern(&mut self, name: &str, params: Vec<Ty>, ret: Ty) {
        if !self.externs.iter().any(|e| e.name == name) {
            self.externs.push(ExternDecl { name: name.to_owned(), params, ret });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Ty::I8.size(), 1);
        assert_eq!(Ty::I16.size(), 2);
        assert_eq!(Ty::I32.size(), 4);
        assert_eq!(Ty::Ptr.size(), 4);
        assert!(Ty::I1.is_int());
        assert!(!Ty::Ptr.is_int());
    }

    #[test]
    fn pred_negate_covers_all() {
        for p in Pred::ALL {
            assert_ne!(p, p.negate());
            assert_eq!(p, p.negate().negate());
        }
    }

    #[test]
    fn enum_c_semantics_values() {
        let e = EnumDef {
            name: "status".into(),
            variants: vec![("A".into(), None), ("B".into(), Some(10)), ("C".into(), None)],
        };
        assert_eq!(e.value_of(0), 0);
        assert_eq!(e.value_of(1), 10);
        assert_eq!(e.value_of(2), 11);
        assert!(!e.fully_uninitialized());
    }

    #[test]
    fn function_value_bookkeeping() {
        let mut f = Function::new("f", vec![Ty::I32, Ty::I32], Ty::I32);
        assert_eq!(f.value_count(), 2);
        let a = f.param(0);
        let b = f.param(1);
        let c = f.const_int(Ty::I32, 7);
        let add = f.create_instr(Instr::Bin { op: BinOp::Add, lhs: a, rhs: c }, Ty::I32);
        let bb = f.add_block("entry");
        f.block_mut(bb).instrs.push(add);
        f.block_mut(bb).term = Some(Terminator::Ret { value: Some(add) });
        assert_eq!(f.ty(add), Ty::I32);
        assert_eq!(f.entry(), bb);

        // RAUW rewires the operand and the return.
        f.replace_all_uses(add, b);
        assert_eq!(f.return_values(), vec![Some(b)]);
    }

    #[test]
    fn replace_operand_and_successor() {
        let mut i = Instr::Bin { op: BinOp::Xor, lhs: ValueId(1), rhs: ValueId(1) };
        i.replace_operand(ValueId(1), ValueId(9));
        assert_eq!(i.operands(), vec![ValueId(9), ValueId(9)]);

        let mut t =
            Terminator::CondBr { cond: ValueId(0), then_bb: BlockId(1), else_bb: BlockId(2) };
        t.replace_successor(BlockId(2), BlockId(5));
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(5)]);
    }

    #[test]
    fn replicability_matches_paper_exclusions() {
        assert!(Instr::Bin { op: BinOp::Add, lhs: ValueId(0), rhs: ValueId(1) }.replicable());
        assert!(Instr::Load { ptr: ValueId(0), ty: Ty::I32, volatile: false }.replicable());
        assert!(!Instr::Load { ptr: ValueId(0), ty: Ty::I32, volatile: true }.replicable());
        assert!(!Instr::Call { callee: "f".into(), args: vec![] }.replicable());
        assert!(!Instr::Phi { incomings: vec![] }.replicable());
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new("test");
        m.add_global(Global { name: "tick".into(), ty: Ty::I32, init: 0, sensitive: true });
        m.declare_extern("gr_detected", vec![], Ty::Void);
        m.declare_extern("gr_detected", vec![], Ty::Void);
        assert_eq!(m.externs.len(), 1);
        assert!(m.global("tick").unwrap().sensitive);
        assert_eq!(m.signature("gr_detected"), Some((vec![], Ty::Void)));
        assert_eq!(m.signature("nope"), None);
    }
}
