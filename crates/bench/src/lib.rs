//! # gd-bench — experiment harnesses for every table and figure
//!
//! One module per published artifact of *Glitching Demystified* (DSN 2021):
//!
//! | Module | Regenerates | Binary |
//! |---|---|---|
//! | [`fig2`] | Figure 2 (a–c) | `fig2` |
//! | [`glitch_tables`] | Tables I–III | `table1`, `table2`, `table3` |
//! | [`overhead`] | Tables IV–V | `table4`, `table5` |
//! | [`defense`] | Table VI | `table6` |
//! | `table7` binary | Table VII | `table7` |
//! | `search` binary | §V-B tuning | `search` |
//!
//! The campaign-shardable workload harnesses ([`fig2`],
//! [`glitch_tables`], [`defense`], [`report`]) live in [`gd_campaign`]
//! and are re-exported here unchanged; the `fig2`/`table1`–`table3`/
//! `table6` binaries are thin clients of [`gd_campaign::Engine`]. Every
//! binary also accepts `--check` ([`selfcheck`]): regenerate the
//! artifact, diff it against the committed golden file under `results/`,
//! and exit non-zero on drift.
//!
//! Dependency-free timing benches covering the hot paths live in
//! `benches/`, built on the [`timing`] harness.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use gd_campaign::{defense, fig2, glitch_tables, report};

pub mod cfg_report;
pub mod lint;
pub mod overhead;
pub mod selfcheck;
pub mod timing;
pub mod trajectory;
