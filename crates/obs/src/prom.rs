//! Prometheus text exposition (format version 0.0.4) for a
//! [`Registry`]: `# HELP` / `# TYPE` headers per family, one sample
//! line per series, and the cumulative `_bucket`/`_sum`/`_count`
//! expansion for histograms.

use std::fmt::Write;

use crate::metrics::{Histogram, Kind, Registry, Snapshot};

/// The Content-Type a `/metrics` endpoint should serve.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Splices an `le` label into a rendered label key (`{a="x"}` →
/// `{a="x",le="2"}`).
fn with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

impl Registry {
    /// Renders every family in the Prometheus text format. Families and
    /// series appear in lexicographic order, so output is deterministic
    /// for a given metric state.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        self.visit(|name, help, kind, labels, snap| {
            if name != last_family {
                let type_name = match kind {
                    Kind::Counter => "counter",
                    Kind::Gauge => "gauge",
                    Kind::Histogram => "histogram",
                };
                if !help.is_empty() {
                    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
                }
                let _ = writeln!(out, "# TYPE {name} {type_name}");
                last_family = name.to_owned();
            }
            match snap {
                Snapshot::Counter(v) => {
                    let _ = writeln!(out, "{name}{labels} {v}");
                }
                Snapshot::Gauge(v) => {
                    let _ = writeln!(out, "{name}{labels} {v}");
                }
                Snapshot::Histogram { buckets, sum } => {
                    let mut cumulative = 0u64;
                    for (bound, count) in Histogram::bounds().zip(&buckets) {
                        cumulative += *count;
                        let le = with_le(labels, &bound.to_string());
                        let _ = writeln!(out, "{name}_bucket{le} {cumulative}");
                    }
                    cumulative += buckets.last().copied().unwrap_or(0);
                    let le = with_le(labels, "+Inf");
                    let _ = writeln!(out, "{name}_bucket{le} {cumulative}");
                    let _ = writeln!(out, "{name}_sum{labels} {sum}");
                    let _ = writeln!(out, "{name}_count{labels} {cumulative}");
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_headers_once_per_family() {
        let r = Registry::new();
        r.counter("req_total", "requests served", &[("route", "/a")]).add(3);
        r.counter("req_total", "requests served", &[("route", "/b")]).inc();
        r.gauge("depth", "queue depth", &[]).set(-2);
        let text = r.render_prometheus();
        let expected = "# HELP depth queue depth\n\
                        # TYPE depth gauge\n\
                        depth -2\n\
                        # HELP req_total requests served\n\
                        # TYPE req_total counter\n\
                        req_total{route=\"/a\"} 3\n\
                        req_total{route=\"/b\"} 1\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn histograms_render_cumulative_buckets_sum_and_count() {
        let r = Registry::new();
        let h = r.histogram("lat_ms", "latency", &[("op", "run")]);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(u64::MAX);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE lat_ms histogram"), "{text}");
        assert!(text.contains("lat_ms_bucket{op=\"run\",le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("lat_ms_bucket{op=\"run\",le=\"2\"} 2\n"), "{text}");
        assert!(text.contains("lat_ms_bucket{op=\"run\",le=\"4\"} 3\n"), "{text}");
        assert!(
            text.contains("lat_ms_bucket{op=\"run\",le=\"1073741824\"} 3\n"),
            "largest finite bucket excludes the overflow: {text}"
        );
        assert!(text.contains("lat_ms_bucket{op=\"run\",le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("lat_ms_count{op=\"run\"} 4\n"), "{text}");
        let sum = 1u64.wrapping_add(2).wrapping_add(3).wrapping_add(u64::MAX);
        assert!(text.contains(&format!("lat_ms_sum{{op=\"run\"}} {sum}\n")), "{text}");
    }

    #[test]
    fn unlabeled_histograms_get_a_bare_le_label() {
        let r = Registry::new();
        r.histogram("h", "", &[]).observe(10);
        let text = r.render_prometheus();
        assert!(text.contains("h_bucket{le=\"16\"} 1\n"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 1\n"), "{text}");
        assert!(!text.contains("# HELP h"), "empty help is omitted: {text}");
    }

    #[test]
    fn help_text_is_escaped() {
        let r = Registry::new();
        let _ = r.counter("c_total", "line\nbreak \\ slash", &[]);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP c_total line\\nbreak \\\\ slash\n"), "{text}");
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(Registry::new().render_prometheus(), "");
    }
}
