//! The diagnostics engine: the lint catalog, findings, suppressions, and
//! the text/JSON renderers.
//!
//! Everything here is deliberately deterministic: findings sort into a
//! total order before rendering, the JSON renderer reuses the campaign
//! codec's canonical formatting, and lint IDs are stable strings — the
//! golden report in `results/` must be byte-identical run to run.

use std::collections::BTreeMap;
use std::fmt;

use gd_campaign::json::Json;

/// How serious a finding is.
///
/// Only `Warning` and above trip `--deny`; `Note`s are informational
/// surface measurements (a conditional branch always *has* a flip
/// surface, hardened or not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: measured glitch surface, nothing actionable.
    Note,
    /// A defense the toolchain could have applied is missing.
    Warning,
    /// An inconsistency that indicates a broken hardening pipeline.
    Error,
}

impl Severity {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A lint's identity: stable ID, default severity, one-line summary.
#[derive(Debug, Clone, Copy)]
pub struct LintSpec {
    /// Stable ID (`GL01xx` = IR missing-defense, `GL02xx` = image surface).
    pub id: &'static str,
    /// Default severity of its findings.
    pub severity: Severity,
    /// One-line description for `--help` and docs.
    pub summary: &'static str,
}

/// Every lint this analyzer knows, in report order.
pub const CATALOG: &[LintSpec] = &[
    LintSpec {
        id: "GL0101",
        severity: Severity::Warning,
        summary: "conditional branch without a duplicated complement re-check",
    },
    LintSpec {
        id: "GL0102",
        severity: Severity::Warning,
        summary: "loop exit edge without a loop-integrity re-check",
    },
    LintSpec {
        id: "GL0103",
        severity: Severity::Warning,
        summary: "constant return codes closer than 8 bits pairwise Hamming distance",
    },
    LintSpec {
        id: "GL0104",
        severity: Severity::Warning,
        summary: "trivially glitchable enum constants (0, 1, all-ones, or close pairs)",
    },
    LintSpec {
        id: "GL0105",
        severity: Severity::Warning,
        summary: "branching blocks without a trailing random-delay call",
    },
    LintSpec {
        id: "GL0106",
        severity: Severity::Warning,
        summary: "store to a sensitive global bypassing the complement shadow",
    },
    LintSpec {
        id: "GL0201",
        severity: Severity::Note,
        summary: "single-bit flips that divert a conditional branch (§IV taxonomy)",
    },
    LintSpec {
        id: "GL0202",
        severity: Severity::Note,
        summary: "per-function glitch-sensitivity summary",
    },
    LintSpec {
        id: "GL0301",
        severity: Severity::Note,
        summary: "single-bit branch flip reaches a sensitive sink without a re-check",
    },
    LintSpec {
        id: "GL0302",
        severity: Severity::Error,
        summary: "guard re-check does not dominate the site it protects",
    },
    LintSpec {
        id: "GL0303",
        severity: Severity::Warning,
        summary: "guard re-check unreachable from the image entry (dead guard)",
    },
    LintSpec {
        id: "GL0304",
        severity: Severity::Note,
        summary: "single instruction-skip of a call bypasses its only dominating check",
    },
];

/// Looks up a lint in [`CATALOG`].
pub fn spec(id: &str) -> Option<&'static LintSpec> {
    CATALOG.iter().find(|s| s.id == id)
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint ID from [`CATALOG`].
    pub lint: &'static str,
    /// Severity (normally the lint's default).
    pub severity: Severity,
    /// Function (or routine) the finding is about.
    pub function: String,
    /// Position within the function: a block label for IR lints, a
    /// `+0x…` byte offset for image lints, empty for whole-function
    /// findings.
    pub location: String,
    /// Human-readable explanation.
    pub message: String,
    /// Function-relative byte span `[start, end)` the finding covers,
    /// for image-level lints that concern a range rather than a point.
    pub span: Option<(u32, u32)>,
}

impl Finding {
    /// Builds a finding with the lint's catalog severity.
    ///
    /// # Panics
    ///
    /// Panics when `lint` is not in [`CATALOG`] — lint IDs are
    /// compile-time constants, so a miss is a bug in the caller.
    pub fn new(lint: &'static str, function: &str, location: &str, message: String) -> Finding {
        let spec = spec(lint).unwrap_or_else(|| panic!("unknown lint `{lint}`"));
        Finding {
            lint,
            severity: spec.severity,
            function: function.to_owned(),
            location: location.to_owned(),
            message,
            span: None,
        }
    }

    /// Attaches a function-relative byte span to the finding.
    #[must_use]
    pub fn with_span(mut self, start: u32, end: u32) -> Finding {
        self.span = Some((start, end));
        self
    }

    fn sort_key(&self) -> (&'static str, &str, &str, &str) {
        (self.lint, &self.function, &self.location, &self.message)
    }
}

/// Per-function / per-lint suppressions, parsed from `--allow` flags.
///
/// Syntax: `--allow GL0105` silences a lint everywhere; `--allow
/// main:GL0105` silences it in function `main` only.
#[derive(Debug, Clone, Default)]
pub struct Suppressions {
    global: Vec<String>,
    scoped: Vec<(String, String)>,
}

impl Suppressions {
    /// Parses a list of `--allow` arguments.
    ///
    /// # Errors
    ///
    /// Returns the offending argument when a lint ID is unknown (catches
    /// typos like `GL101`).
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Suppressions, String> {
        let mut s = Suppressions::default();
        for arg in args {
            let arg = arg.as_ref();
            let (scope, id) = match arg.split_once(':') {
                Some((f, id)) => (Some(f), id),
                None => (None, arg),
            };
            if spec(id).is_none() {
                return Err(arg.to_owned());
            }
            match scope {
                Some(f) => s.scoped.push((f.to_owned(), id.to_owned())),
                None => s.global.push(id.to_owned()),
            }
        }
        Ok(s)
    }

    /// Whether `finding` is suppressed.
    pub fn allows(&self, finding: &Finding) -> bool {
        self.global.iter().any(|id| id == finding.lint)
            || self.scoped.iter().any(|(f, id)| f == &finding.function && id == finding.lint)
    }
}

/// The result of a lint run: findings in a deterministic total order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    findings: Vec<Finding>,
}

impl LintReport {
    /// Builds a report, applying `suppress` and sorting into report order
    /// (catalog order, then function, location, message).
    pub fn new(mut findings: Vec<Finding>, suppress: &Suppressions) -> LintReport {
        findings.retain(|f| !suppress.allows(f));
        findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        LintReport { findings }
    }

    /// The findings, in report order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Finding count per lint ID, for every catalog lint (zeros included).
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts: BTreeMap<&'static str, u64> = CATALOG.iter().map(|s| (s.id, 0)).collect();
        for f in &self.findings {
            *counts.get_mut(f.lint).expect("catalog lint") += 1;
        }
        counts
    }

    /// Whether `--deny` should fail the run: any warning-or-worse finding.
    pub fn deny(&self) -> bool {
        self.findings.iter().any(|f| f.severity >= Severity::Warning)
    }

    /// Renders the fixed-order text report. `min_detail` controls which
    /// findings are itemized (counts always cover everything); pass
    /// [`Severity::Note`] for the full listing.
    pub fn render_text(&self, min_detail: Severity) -> String {
        let mut out = String::new();
        for (id, n) in self.counts() {
            out.push_str(&format!("{id} {n}\n"));
        }
        for f in self.findings.iter().filter(|f| f.severity >= min_detail) {
            out.push_str(&f.render());
            out.push('\n');
        }
        out
    }

    /// The report as a [`Json`] value (strict campaign codec).
    pub fn to_json(&self) -> Json {
        let counts = self.counts().into_iter().map(|(id, n)| (id, Json::Int(n as i128))).collect();
        let findings = self
            .findings
            .iter()
            .map(|f| {
                let mut fields = vec![
                    ("lint", Json::Str(f.lint.to_owned())),
                    ("severity", Json::Str(f.severity.label().to_owned())),
                    ("function", Json::Str(f.function.clone())),
                    ("location", Json::Str(f.location.clone())),
                ];
                if let Some((start, end)) = f.span {
                    fields.push(("span_start", Json::Int(i128::from(start))));
                    fields.push(("span_end", Json::Int(i128::from(end))));
                }
                fields.push(("message", Json::Str(f.message.clone())));
                Json::obj(fields)
            })
            .collect();
        Json::obj(vec![("counts", Json::obj(counts)), ("findings", Json::Arr(findings))])
    }

    /// Renders the strict-JSON report (pretty, stable key order).
    pub fn render_json(&self) -> String {
        // Serialization only fails on non-finite numbers; counts are ints.
        self.to_json().to_string_pretty().expect("finite values serialize")
    }

    /// Bumps the `gd_lint_findings_total{lint}` counter family — one
    /// series per catalog lint, so the family is visible even at zero.
    pub fn record_metrics(&self) {
        for (id, n) in self.counts() {
            let c = gd_obs::counter(
                "gd_lint_findings_total",
                "Lint findings reported, by lint ID",
                &[("lint", id)],
            );
            c.add(n);
        }
    }
}

impl Finding {
    /// One fixed-format report line.
    pub fn render(&self) -> String {
        let at =
            if self.location.is_empty() { String::new() } else { format!(" {}", self.location) };
        let span = match self.span {
            Some((s, e)) => format!(" [+{s:#x}..+{e:#x}]"),
            None => String::new(),
        };
        format!(
            "{}[{}] @{}{}{}: {}",
            self.severity, self.lint, self.function, at, span, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(lint: &'static str, func: &str, loc: &str) -> Finding {
        Finding::new(lint, func, loc, format!("{lint} in {func}"))
    }

    #[test]
    fn catalog_ids_are_unique_and_ordered() {
        for w in CATALOG.windows(2) {
            assert!(w[0].id < w[1].id, "{} before {}", w[0].id, w[1].id);
        }
    }

    #[test]
    fn findings_sort_into_catalog_order() {
        let report = LintReport::new(
            vec![f("GL0105", "b", ""), f("GL0101", "z", "entry"), f("GL0101", "a", "entry")],
            &Suppressions::default(),
        );
        let ids: Vec<(&str, &str)> =
            report.findings().iter().map(|x| (x.lint, x.function.as_str())).collect();
        assert_eq!(ids, [("GL0101", "a"), ("GL0101", "z"), ("GL0105", "b")]);
    }

    #[test]
    fn suppressions_scope_correctly() {
        let s = Suppressions::parse(&["GL0105", "main:GL0101"]).unwrap();
        assert!(s.allows(&f("GL0105", "anything", "")));
        assert!(s.allows(&f("GL0101", "main", "entry")));
        assert!(!s.allows(&f("GL0101", "other", "entry")));
        assert!(Suppressions::parse(&["GL9999"]).is_err(), "unknown IDs rejected");
        assert!(Suppressions::parse(&["main:GL999"]).is_err());
    }

    #[test]
    fn deny_triggers_on_warnings_not_notes() {
        let none = Suppressions::default();
        assert!(!LintReport::new(vec![f("GL0201", "m", "+0x4")], &none).deny());
        assert!(LintReport::new(vec![f("GL0101", "m", "entry")], &none).deny());
        let allow = Suppressions::parse(&["GL0101"]).unwrap();
        assert!(!LintReport::new(vec![f("GL0101", "m", "entry")], &allow).deny());
    }

    #[test]
    fn text_report_counts_all_itemizes_filtered() {
        let report = LintReport::new(
            vec![f("GL0101", "m", "entry"), f("GL0201", "m", "+0x4")],
            &Suppressions::default(),
        );
        let text = report.render_text(Severity::Warning);
        assert!(text.contains("GL0101 1\n"));
        assert!(text.contains("GL0201 1\n"), "notes still counted: {text}");
        assert!(text.contains("warning[GL0101] @m entry:"));
        assert!(!text.contains("note[GL0201]"), "notes not itemized: {text}");
        let full = report.render_text(Severity::Note);
        assert!(full.contains("note[GL0201] @m +0x4:"));
    }

    #[test]
    fn json_roundtrips_through_the_strict_codec() {
        let report = LintReport::new(vec![f("GL0103", "status", "")], &Suppressions::default());
        let text = report.render_json();
        let parsed = gd_campaign::json::parse(&text).expect("self-produced JSON parses");
        assert_eq!(
            parsed.get("counts").and_then(|c| c.get("GL0103")).and_then(Json::as_u64),
            Some(1)
        );
        let arr = parsed.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("lint").and_then(Json::as_str), Some("GL0103"));
    }

    #[test]
    fn spans_roundtrip_through_text_and_json() {
        let spanned = f("GL0301", "main", "+0x12").with_span(0x12, 0x16);
        let line = spanned.render();
        assert!(line.contains("[+0x12..+0x16]"), "span rendered: {line}");
        let report =
            LintReport::new(vec![spanned, f("GL0201", "main", "+0x4")], &Suppressions::default());
        let parsed = gd_campaign::json::parse(&report.render_json()).unwrap();
        let arr = parsed.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        // GL0201 sorts first and carries no span keys.
        assert!(arr[0].get("span_start").is_none());
        assert_eq!(arr[1].get("span_start").and_then(Json::as_u64), Some(0x12));
        assert_eq!(arr[1].get("span_end").and_then(Json::as_u64), Some(0x16));
    }
}
