//! Typed ingestion specs: a strict-JSON description of what was loaded
//! from where — container format, base, entry, stack pointer, text
//! length, and the inferred extents.
//!
//! Parsing is *strict*: unknown keys are rejected, not ignored. A spec
//! describes untrusted input (see the crate docs), and a key the engine
//! does not understand means the spec was written by a newer tool or
//! tampered with — either way, silently dropping it would let two
//! different descriptions of an image parse identically.

use gd_campaign::json::{parse, Json};

use crate::Format;

/// Spec format version accepted by this reader.
pub const SPEC_VERSION: i64 = 1;

/// One inferred routine extent, as serialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentSpec {
    /// Routine name (`reset`, `handler_N`, or an ELF symbol).
    pub name: String,
    /// First instruction address.
    pub base: u32,
    /// End of decodable code (start of the literal pool, if any).
    pub code_end: u32,
    /// End of the extent (next routine or end of text).
    pub end: u32,
}

/// A complete ingestion description, serializable as canonical JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestSpec {
    /// Spec format version ([`SPEC_VERSION`]).
    pub version: i64,
    /// Container format the image came from.
    pub format: Format,
    /// Load address of the text bytes.
    pub base: u32,
    /// Entry point (Thumb bit stripped).
    pub entry: u32,
    /// Initial stack pointer.
    pub sp: u32,
    /// Number of text bytes loaded.
    pub text_len: u32,
    /// Inferred routine extents, in address order.
    pub extents: Vec<ExtentSpec>,
}

fn check_keys(obj: &Json, what: &str, allowed: &[&str]) -> Result<(), String> {
    let Json::Obj(fields) = obj else {
        return Err(format!("{what} must be an object"));
    };
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("unknown key {k:?} in {what}"));
        }
    }
    Ok(())
}

fn u32_field(obj: &Json, name: &str) -> Result<u32, String> {
    obj.get(name)
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or(format!("missing u32 field `{name}`"))
}

impl IngestSpec {
    /// The spec as a JSON value (insertion order is fixed, so the
    /// serialization is canonical).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::Int(self.version.into())),
            ("format", Json::Str(self.format.label().to_owned())),
            ("base", Json::Int(self.base.into())),
            ("entry", Json::Int(self.entry.into())),
            ("sp", Json::Int(self.sp.into())),
            ("text_len", Json::Int(self.text_len.into())),
            (
                "extents",
                Json::Arr(
                    self.extents
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("name", Json::Str(e.name.clone())),
                                ("base", Json::Int(e.base.into())),
                                ("code_end", Json::Int(e.code_end.into())),
                                ("end", Json::Int(e.end.into())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a spec from its JSON value, rejecting unknown keys.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing, ill-typed, or unknown field.
    pub fn from_json(v: &Json) -> Result<IngestSpec, String> {
        check_keys(
            v,
            "spec",
            &["version", "format", "base", "entry", "sp", "text_len", "extents"],
        )?;
        let version =
            v.get("version").and_then(Json::as_i64).ok_or("missing integer field `version`")?;
        if version != SPEC_VERSION {
            return Err(format!("unsupported spec version {version} (expected {SPEC_VERSION})"));
        }
        let format = match v.get("format").and_then(Json::as_str) {
            Some("bin") => Format::Bin,
            Some("elf") => Format::Elf,
            Some(other) => return Err(format!("unknown format {other:?}")),
            None => return Err("missing string field `format`".into()),
        };
        let extents = v
            .get("extents")
            .and_then(Json::as_arr)
            .ok_or("missing array field `extents`")?
            .iter()
            .map(|e| {
                check_keys(e, "extent", &["name", "base", "code_end", "end"])?;
                Ok(ExtentSpec {
                    name: e
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("missing string field `name`")?
                        .to_owned(),
                    base: u32_field(e, "base")?,
                    code_end: u32_field(e, "code_end")?,
                    end: u32_field(e, "end")?,
                })
            })
            .collect::<Result<Vec<ExtentSpec>, String>>()?;
        Ok(IngestSpec {
            version,
            format,
            base: u32_field(v, "base")?,
            entry: u32_field(v, "entry")?,
            sp: u32_field(v, "sp")?,
            text_len: u32_field(v, "text_len")?,
            extents,
        })
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates both JSON syntax errors and spec-shape errors as text.
    pub fn from_json_text(text: &str) -> Result<IngestSpec, String> {
        let v = parse(text).map_err(|e| e.to_string())?;
        IngestSpec::from_json(&v)
    }

    /// Pretty JSON text for reports and on-disk specs.
    pub fn to_json_text(&self) -> String {
        self.to_json().to_string_pretty().expect("ingest specs hold no non-finite numbers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testimg;

    fn demo_spec() -> IngestSpec {
        crate::ingest_bin(&testimg::demo_bin(), testimg::DEMO_BASE).unwrap().spec()
    }

    #[test]
    fn demo_spec_round_trips_through_text() {
        let spec = demo_spec();
        let text = spec.to_json_text();
        let back = IngestSpec::from_json_text(&text).unwrap();
        assert_eq!(back, spec, "through\n{text}");
        // Compact form too.
        let compact = spec.to_json().to_string_compact().unwrap();
        assert_eq!(IngestSpec::from_json_text(&compact).unwrap(), spec);
    }

    #[test]
    fn elf_spec_round_trips() {
        let spec = crate::ingest_elf(&testimg::demo_elf()).unwrap().spec();
        assert_eq!(spec.format, Format::Elf);
        assert_eq!(IngestSpec::from_json_text(&spec.to_json_text()).unwrap(), spec);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let mut text = demo_spec().to_json_text();
        text = text.replacen("\"sp\"", "\"sp_extra\": 1,\n  \"sp\"", 1);
        let err = IngestSpec::from_json_text(&text).unwrap_err();
        assert!(err.contains("unknown key \"sp_extra\""), "{err}");
        // Unknown key nested in an extent.
        let mut text = demo_spec().to_json_text();
        text = text.replacen("\"code_end\"", "\"pad\": 0,\n      \"code_end\"", 1);
        let err = IngestSpec::from_json_text(&text).unwrap_err();
        assert!(err.contains("unknown key \"pad\""), "{err}");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        for (label, text) in [
            (
                "bad version",
                r#"{"version":2,"format":"bin","base":0,"entry":0,"sp":8,"text_len":0,"extents":[]}"#,
            ),
            (
                "bad format",
                r#"{"version":1,"format":"hex","base":0,"entry":0,"sp":8,"text_len":0,"extents":[]}"#,
            ),
            (
                "missing sp",
                r#"{"version":1,"format":"bin","base":0,"entry":0,"text_len":0,"extents":[]}"#,
            ),
            ("non-object", r#"[1,2,3]"#),
            (
                "u32 overflow",
                r#"{"version":1,"format":"bin","base":4294967296,"entry":0,"sp":8,"text_len":0,"extents":[]}"#,
            ),
        ] {
            assert!(IngestSpec::from_json_text(text).is_err(), "{label} must be rejected");
        }
    }
}
