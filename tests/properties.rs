//! Property-based tests across the stack: codec round-trips, differential
//! execution of generated programs, and semantics preservation under
//! hardening.

use gd_ir::{parse_module, print_module, verify_module, Interpreter, RtVal};
use glitching_demystified::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Thumb codec properties
// ---------------------------------------------------------------------

proptest! {
    /// Any defined halfword re-encodes to itself (the glitch emulator's
    /// correctness hinges on this canonicity).
    #[test]
    fn decode_encode_canonical(hw: u16) {
        if let Ok(instr) = gd_thumb::decode16(hw) {
            prop_assert_eq!(instr.encode(), gd_thumb::Encoding::Half(hw));
        }
    }

    /// Disassembling a defined instruction and re-assembling it yields the
    /// original encoding (text round trip).
    #[test]
    fn disasm_asm_round_trip(hw: u16) {
        // Skip branches: their textual form (`beq .+6`) is origin-relative
        // and covered by dedicated tests.
        if let Ok(instr) = gd_thumb::decode16(hw) {
            if instr.is_branch() || matches!(instr, gd_thumb::Instr::BCond { .. }) {
                return Ok(());
            }
            let text = instr.to_string();
            let prog = gd_thumb::asm::assemble(&text, 0)
                .unwrap_or_else(|e| panic!("`{text}` failed to re-assemble: {e}"));
            prop_assert_eq!(&prog.code, &hw.to_le_bytes(), "{}", text);
        }
    }

    /// AND-direction perturbation never sets bits; OR never clears them.
    #[test]
    fn perturbation_directions(hw: u16, mask: u16) {
        use gd_glitch_emu::Direction;
        let anded = Direction::And.apply(hw, mask);
        let orred = Direction::Or.apply(hw, mask);
        prop_assert_eq!(anded & hw, anded, "AND only clears");
        prop_assert_eq!(orred | hw, orred, "OR only sets");
        prop_assert_eq!(Direction::Xor.apply(hw, mask), hw ^ mask);
    }
}

// ---------------------------------------------------------------------
// Reed–Solomon properties
// ---------------------------------------------------------------------

proptest! {
    /// Every systematic codeword checks; any single byte flip is caught.
    #[test]
    fn rs_detects_any_single_byte_error(m0: u8, m1: u8, pos in 0usize..6, flip in 1u8..=255) {
        let rs = gd_rs_ecc::RsEncoder::new(4);
        let cw = rs.encode(&[m0, m1]);
        prop_assert!(rs.check(&cw));
        let mut bad = cw.clone();
        bad[pos] ^= flip;
        prop_assert!(!rs.check(&bad));
    }

    /// Diversified constant sets keep their pairwise distance guarantee.
    #[test]
    fn rs_constants_keep_distance(count in 2u32..64) {
        let values = gd_rs_ecc::diversified_constants(count);
        prop_assert!(gd_rs_ecc::min_pairwise_distance(&values) >= 8);
    }
}

// ---------------------------------------------------------------------
// Generated-program differential execution
// ---------------------------------------------------------------------

/// A tiny random straight-line program over two variables, in IR text.
fn arb_program() -> impl Strategy<Value = String> {
    let op = prop::sample::select(vec!["add", "sub", "mul", "and", "or", "xor"]);
    let step = (op, 0u8..2, prop::num::i64::ANY.prop_map(|v| v & 0xFFFF));
    prop::collection::vec(step, 1..12).prop_map(|steps| {
        let mut body = String::new();
        let mut names = ["%x".to_owned(), "%y".to_owned()];
        for (i, (op, which, c)) in steps.into_iter().enumerate() {
            let lhs = &names[usize::from(which)];
            body.push_str(&format!("  %v{i} = {op} i32 {lhs}, {c}\n"));
            names[usize::from(which)] = format!("%v{i}");
        }
        format!(
            "fn @main() -> i32 {{\nentry:\n  %x = add i32 3, 0\n  %y = add i32 5, 0\n{body}  %r = xor i32 {}, {}\n  ret i32 %r\n}}\n",
            names[0], names[1]
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled code and the reference interpreter agree on every random
    /// straight-line program.
    #[test]
    fn native_matches_interpreter(src in arb_program()) {
        let module = parse_module(&src).unwrap();
        verify_module(&module).unwrap();
        let mut interp = Interpreter::new(&module);
        let expected =
            interp.run("main", &[], &mut |_, _| RtVal::Int(0)).unwrap().int() as u32;

        let image = compile(&module, "main").unwrap();
        let mut emu = image.boot_emu();
        emu.run(1_000_000);
        prop_assert_eq!(emu.cpu.reg(Reg::R0), expected, "{}", src);
    }

    /// Hardening never changes the computed result of a clean run.
    #[test]
    fn hardening_preserves_semantics(src in arb_program()) {
        let module = parse_module(&src).unwrap();
        let mut interp = Interpreter::new(&module);
        let expected =
            interp.run("main", &[], &mut |_, _| RtVal::Int(0)).unwrap().int() as u32;

        let mut hardened = module.clone();
        harden(&mut hardened, &Config::new(Defenses::ALL_EXCEPT_DELAY));
        verify_module(&hardened).unwrap();
        let image = compile(&hardened, "main").unwrap();
        let mut emu = image.boot_emu();
        emu.run(2_000_000);
        prop_assert_eq!(emu.cpu.reg(Reg::R0), expected, "{}", src);
    }

    /// The IR text format is a fixed point of print ∘ parse.
    #[test]
    fn ir_print_parse_fixed_point(src in arb_program()) {
        let module = parse_module(&src).unwrap();
        let printed = print_module(&module);
        let reparsed = parse_module(&printed).unwrap();
        prop_assert_eq!(print_module(&reparsed), printed);
    }
}

// ---------------------------------------------------------------------
// Fault-model invariants
// ---------------------------------------------------------------------

proptest! {
    /// The violation landscape is a pure function of its inputs.
    #[test]
    fn fault_landscape_deterministic(w in -49i8..=49, o in -49i8..=49) {
        let m = FaultModel::default();
        prop_assert_eq!(m.severity(w, o), m.severity(w, o));
        prop_assert!((0.0..=1.0).contains(&m.severity(w, o)));
    }
}

// ---------------------------------------------------------------------
// Robustness: random byte soup must never panic the emulator
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Executing arbitrary bytes produces a classified outcome, never a
    /// panic — the glitch experiments depend on this totality.
    #[test]
    fn emulator_survives_byte_soup(code in prop::collection::vec(any::<u8>(), 2..256)) {
        let mut emu = gd_emu::Emu::new();
        emu.mem.map("flash", 0, 0x1000, gd_emu::Perms::RX).unwrap();
        emu.mem.map("sram", 0x2000_0000, 0x1000, gd_emu::Perms::RW).unwrap();
        emu.mem.load(0, &code).unwrap();
        emu.set_pc(0);
        emu.cpu.set_sp(0x2000_0FF8);
        let _ = emu.run(2_000); // outcome irrelevant; absence of panic is the property
    }

    /// The pipeline wrapper is equally total, including under random
    /// injected faults.
    #[test]
    fn pipeline_survives_byte_soup_with_faults(
        code in prop::collection::vec(any::<u8>(), 2..128),
        masks in prop::collection::vec(any::<u16>(), 1..8),
    ) {
        let mut emu = gd_emu::Emu::new();
        emu.mem.map("flash", 0, 0x1000, gd_emu::Perms::RX).unwrap();
        emu.mem.map("sram", 0x2000_0000, 0x1000, gd_emu::Perms::RW).unwrap();
        emu.mem.load(0, &code).unwrap();
        emu.set_pc(0);
        emu.cpu.set_sp(0x2000_0FF8);
        let mut pipe = gd_pipeline::Pipeline::new(emu);
        let mut i = 0usize;
        let _ = pipe.run_with(2_000, |_| {
            i = (i + 1) % masks.len();
            if i % 3 == 0 {
                vec![gd_pipeline::StageFault::CorruptExec { and_mask: masks[i] }]
            } else {
                Vec::new()
            }
        });
    }
}
