//! Typed campaign specifications: which published workload to run, over
//! which parameter sub-space, with which fault-model constants, seeds,
//! thread count, and shard range — plus the JSON mapping and the
//! content-address under which results are cached.

use gd_chipwhisperer::{targets, Device, FaultModel};
use gd_glitch_emu::branch_case;
use gd_thumb::Cond;

use crate::hash::Sha256;
use crate::json::{parse, Json, JsonError};

/// Spec format version accepted by this engine.
pub const SPEC_VERSION: i64 = 1;

/// Which published experiment a campaign reproduces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// Figure 2: exhaustive bit-flip sweeps over every conditional branch
    /// under the AND / OR / AND-0x0000-invalid / XOR fault models.
    Fig2,
    /// Table I: per-cycle single-glitch grid scans over `cycles`
    /// (half-open), with comparator post-mortems.
    Table1 {
        /// Glitch cycles scanned (the paper uses `[0, 8)`).
        cycles: (u32, u32),
    },
    /// Table II: multi-glitch scans over `cycles` against the doubled
    /// guards.
    Table2 {
        /// Glitch cycles scanned (the paper uses `[0, 8)`).
        cycles: (u32, u32),
    },
    /// Table III: long glitches of `lens` cycles (half-open) from cycle 0.
    Table3 {
        /// Glitch lengths scanned (the paper uses `[10, 21)`).
        lens: (u32, u32),
    },
    /// Table VI: the three attack shapes against every hardened firmware
    /// target under All and All\Delay.
    Table6,
    /// Exhaustive first- and second-order fault campaigns over
    /// `firmware::boot`: the `gd-faultsim` registry's typed fault spaces
    /// with architectural-effect pruning.
    Multifault,
}

impl Workload {
    /// The kind tag used in JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            Workload::Fig2 => "fig2",
            Workload::Table1 { .. } => "table1",
            Workload::Table2 { .. } => "table2",
            Workload::Table3 { .. } => "table3",
            Workload::Table6 => "table6",
            Workload::Multifault => "multifault",
        }
    }
}

/// The tunable [`FaultModel`] constants carried in a spec. Mirrors
/// `gd_chipwhisperer::FaultModel` field for field so two specs hash
/// identically exactly when they simulate the same silicon.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Landscape seed (a different chip/bench setup).
    pub seed: u64,
    /// Peak probability that an in-region glitch produces any fault.
    pub peak_fault_rate: f64,
    /// Minimum per-bit 1→0 clear probability.
    pub bit_clear_min: f64,
    /// Maximum additional per-bit clear probability at full severity.
    pub bit_clear_span: f64,
}

impl Default for ModelSpec {
    fn default() -> ModelSpec {
        ModelSpec::from(&FaultModel::default())
    }
}

impl From<&FaultModel> for ModelSpec {
    fn from(m: &FaultModel) -> ModelSpec {
        ModelSpec {
            seed: m.seed,
            peak_fault_rate: m.peak_fault_rate,
            bit_clear_min: m.bit_clear_min,
            bit_clear_span: m.bit_clear_span,
        }
    }
}

impl ModelSpec {
    /// The concrete fault model this spec describes.
    pub fn model(&self) -> FaultModel {
        FaultModel {
            seed: self.seed,
            peak_fault_rate: self.peak_fault_rate,
            bit_clear_min: self.bit_clear_min,
            bit_clear_span: self.bit_clear_span,
        }
    }
}

/// A complete campaign description. Serializable, hashable, shardable.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The workload and its parameter sub-space.
    pub workload: Workload,
    /// Fault-model constants (ignored by [`Workload::Fig2`], which faults
    /// at the encoding level, but still part of the spec's identity).
    pub model: ModelSpec,
    /// Worker-thread override for this campaign (`None` = the engine
    /// default). Never part of the cache key: output is bit-identical at
    /// any thread count.
    pub threads: Option<u32>,
    /// Half-open range of shard indices to run (`None` = all). Part of
    /// the cache key — a partial campaign is a different result — but
    /// *not* of the checkpoint key, so partial runs seed full ones.
    pub shards: Option<(u32, u32)>,
}

impl CampaignSpec {
    fn with_workload(workload: Workload) -> CampaignSpec {
        CampaignSpec { workload, model: ModelSpec::default(), threads: None, shards: None }
    }

    /// The published Figure 2 campaign.
    pub fn fig2() -> CampaignSpec {
        CampaignSpec::with_workload(Workload::Fig2)
    }

    /// The published Table I campaign (cycles 0..8).
    pub fn table1() -> CampaignSpec {
        CampaignSpec::with_workload(Workload::Table1 { cycles: (0, 8) })
    }

    /// The published Table II campaign (cycles 0..8).
    pub fn table2() -> CampaignSpec {
        CampaignSpec::with_workload(Workload::Table2 { cycles: (0, 8) })
    }

    /// The published Table III campaign (lengths 10..=20).
    pub fn table3() -> CampaignSpec {
        CampaignSpec::with_workload(Workload::Table3 { lens: (10, 21) })
    }

    /// The published Table VI campaign.
    pub fn table6() -> CampaignSpec {
        CampaignSpec::with_workload(Workload::Table6)
    }

    /// The exhaustive multi-fault campaign over `firmware::boot`.
    pub fn multifault() -> CampaignSpec {
        CampaignSpec::with_workload(Workload::Multifault)
    }

    /// Structural validation beyond what parsing enforces.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        let check_range = |name: &str, (lo, hi): (u32, u32)| {
            if lo >= hi {
                Err(format!("{name} range [{lo}, {hi}) is empty"))
            } else {
                Ok(())
            }
        };
        match self.workload {
            Workload::Table1 { cycles } => check_range("cycles", cycles)?,
            Workload::Table2 { cycles } => check_range("cycles", cycles)?,
            Workload::Table3 { lens } => check_range("lens", lens)?,
            Workload::Fig2 | Workload::Table6 | Workload::Multifault => {}
        }
        if let Some((lo, hi)) = self.shards {
            check_range("shards", (lo, hi))?;
        }
        if self.threads == Some(0) {
            return Err("threads must be >= 1 when given".into());
        }
        if !(self.model.peak_fault_rate.is_finite()
            && self.model.bit_clear_min.is_finite()
            && self.model.bit_clear_span.is_finite())
        {
            return Err("fault-model rates must be finite".into());
        }
        Ok(())
    }

    /// The spec as a JSON value (insertion order is fixed, so the
    /// serialization is canonical).
    pub fn to_json(&self) -> Json {
        let workload = match &self.workload {
            Workload::Fig2 => Json::obj(vec![("kind", Json::Str("fig2".into()))]),
            Workload::Table1 { cycles } => Json::obj(vec![
                ("kind", Json::Str("table1".into())),
                ("cycles", range_json(*cycles)),
            ]),
            Workload::Table2 { cycles } => Json::obj(vec![
                ("kind", Json::Str("table2".into())),
                ("cycles", range_json(*cycles)),
            ]),
            Workload::Table3 { lens } => {
                Json::obj(vec![("kind", Json::Str("table3".into())), ("lens", range_json(*lens))])
            }
            Workload::Table6 => Json::obj(vec![("kind", Json::Str("table6".into()))]),
            Workload::Multifault => Json::obj(vec![("kind", Json::Str("multifault".into()))]),
        };
        let mut fields = vec![
            ("version", Json::Int(SPEC_VERSION.into())),
            ("workload", workload),
            (
                "model",
                Json::obj(vec![
                    ("seed", Json::Int(self.model.seed.into())),
                    ("peak_fault_rate", Json::Num(self.model.peak_fault_rate)),
                    ("bit_clear_min", Json::Num(self.model.bit_clear_min)),
                    ("bit_clear_span", Json::Num(self.model.bit_clear_span)),
                ]),
            ),
        ];
        if let Some(t) = self.threads {
            fields.push(("threads", Json::Int(t.into())));
        }
        if let Some(r) = self.shards {
            fields.push(("shards", range_json(r)));
        }
        Json::obj(fields)
    }

    /// Parses a spec from its JSON value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field; also
    /// rejects structurally invalid specs (see [`CampaignSpec::validate`]).
    pub fn from_json(v: &Json) -> Result<CampaignSpec, String> {
        let version =
            v.get("version").and_then(Json::as_i64).ok_or("missing integer field `version`")?;
        if version != SPEC_VERSION {
            return Err(format!("unsupported spec version {version} (expected {SPEC_VERSION})"));
        }
        let w = v.get("workload").ok_or("missing field `workload`")?;
        let kind = w.get("kind").and_then(Json::as_str).ok_or("missing `workload.kind`")?;
        let workload = match kind {
            "fig2" => Workload::Fig2,
            "table1" => Workload::Table1 { cycles: range_field(w, "cycles", (0, 8))? },
            "table2" => Workload::Table2 { cycles: range_field(w, "cycles", (0, 8))? },
            "table3" => Workload::Table3 { lens: range_field(w, "lens", (10, 21))? },
            "table6" => Workload::Table6,
            "multifault" => Workload::Multifault,
            other => return Err(format!("unknown workload kind {other:?}")),
        };
        let model = match v.get("model") {
            None => ModelSpec::default(),
            Some(m) => ModelSpec {
                seed: m.get("seed").and_then(Json::as_u64).ok_or("missing `model.seed`")?,
                peak_fault_rate: f64_field(m, "peak_fault_rate")?,
                bit_clear_min: f64_field(m, "bit_clear_min")?,
                bit_clear_span: f64_field(m, "bit_clear_span")?,
            },
        };
        let threads = match v.get("threads") {
            None => None,
            Some(t) => Some(
                t.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("field `threads` must be a u32")?,
            ),
        };
        let shards = match v.get("shards") {
            None => None,
            Some(r) => Some(parse_range(r).ok_or("field `shards` must be [lo, hi]")?),
        };
        let spec = CampaignSpec { workload, model, threads, shards };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates both JSON syntax errors and spec-shape errors as text.
    pub fn from_json_text(text: &str) -> Result<CampaignSpec, String> {
        let v = parse(text).map_err(|e| e.to_string())?;
        CampaignSpec::from_json(&v)
    }

    /// Pretty JSON text for on-disk specs.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (non-finite model rates).
    pub fn to_json_text(&self) -> Result<String, JsonError> {
        self.to_json().to_string_pretty()
    }

    /// The canonical preimage fields shared by [`CampaignSpec::cache_key`]
    /// and [`CampaignSpec::checkpoint_key`]: spec JSON (threads and —
    /// for the checkpoint key — shard range stripped) plus the firmware
    /// image bytes of every target the workload attacks.
    fn hash_base(&self, include_shards: bool) -> Result<Sha256, String> {
        let mut stripped = self.clone();
        stripped.threads = None;
        if !include_shards {
            stripped.shards = None;
        }
        let spec_json = stripped.to_json().to_string_compact().map_err(|e| format!("spec: {e}"))?;
        let mut h = Sha256::new();
        h.update_field(b"gd-campaign-v1");
        h.update_field(spec_json.as_bytes());
        for (name, image) in self.target_material()? {
            h.update_field(name.as_bytes());
            h.update_field(&image);
        }
        Ok(h)
    }

    /// The content address of this campaign's *result*: everything that
    /// determines output bytes — canonical spec (workload + parameter
    /// sub-space + fault-model constants + seed + shard range) and the
    /// firmware image bytes of every target. Thread count is excluded:
    /// the engine guarantees bit-identical output at any worker count.
    ///
    /// # Errors
    ///
    /// Fails if the spec does not serialize or a target does not build.
    pub fn cache_key(&self) -> Result<String, String> {
        Ok(self.hash_base(true)?.finish_hex())
    }

    /// The checkpoint address: like [`CampaignSpec::cache_key`] but with
    /// the shard range stripped, so a partial campaign's completed shards
    /// are found again by the full campaign (and by a restarted engine).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CampaignSpec::cache_key`].
    pub fn checkpoint_key(&self) -> Result<String, String> {
        Ok(self.hash_base(false)?.finish_hex())
    }

    /// The attack-target bytes folded into the content address: assembled
    /// or compiled firmware images for the scan workloads, instruction
    /// encodings for the Figure 2 sweeps.
    ///
    /// # Errors
    ///
    /// Fails if a guard fails to assemble or a firmware fails to harden
    /// and lower (fixture bugs, surfaced as errors instead of panics).
    pub fn target_material(&self) -> Result<Vec<(String, Vec<u8>)>, String> {
        match &self.workload {
            Workload::Fig2 => Ok(Cond::ALL
                .iter()
                .map(|&c| {
                    let case = branch_case(c);
                    (case.name.clone(), case.target_halfword().to_le_bytes().to_vec())
                })
                .collect()),
            Workload::Table1 { .. } => targets::table1_guards()
                .into_iter()
                .map(|(name, src)| {
                    let dev = Device::from_asm(src)
                        .map_err(|e| format!("guard {name} fails to assemble: {e}"))?;
                    Ok((name.to_owned(), dev.text))
                })
                .collect(),
            Workload::Table2 { .. } | Workload::Table3 { .. } => doubled_guards()
                .into_iter()
                .map(|(name, src)| {
                    let dev = Device::from_asm(&src)
                        .map_err(|e| format!("guard {name} fails to assemble: {e}"))?;
                    Ok((name.to_owned(), dev.text))
                })
                .collect(),
            Workload::Table6 => {
                let mut out = Vec::new();
                for (target, module) in gd_firmware::table6_targets() {
                    for (label, defenses) in [
                        ("All", glitch_resistor::Defenses::ALL),
                        ("All\\Delay", glitch_resistor::Defenses::ALL_EXCEPT_DELAY),
                    ] {
                        let mut m = module.clone();
                        glitch_resistor::harden(&mut m, &glitch_resistor::Config::new(defenses));
                        let image = gd_backend::compile(&m, "main")
                            .map_err(|e| format!("{target}/{label} fails to lower: {e}"))?;
                        let mut bytes = image.text.clone();
                        for (addr, data) in &image.data {
                            bytes.extend_from_slice(&addr.to_le_bytes());
                            bytes.extend_from_slice(data);
                        }
                        out.push((format!("{target}/{label}"), bytes));
                    }
                }
                Ok(out)
            }
            Workload::Multifault => {
                let image = gd_backend::compile(&gd_firmware::boot(), "main")
                    .map_err(|e| format!("boot fails to lower: {e}"))?;
                let mut bytes = image.text.clone();
                for (addr, data) in &image.data {
                    bytes.extend_from_slice(&addr.to_le_bytes());
                    bytes.extend_from_slice(data);
                }
                Ok(vec![("boot".to_owned(), bytes)])
            }
        }
    }
}

/// The doubled loop guards shared by the Table II and III workloads, in
/// row order.
pub fn doubled_guards() -> Vec<(&'static str, String)> {
    vec![
        ("while(!a)", targets::while_not_a_doubled()),
        ("while(a)", targets::while_a_doubled()),
        ("while(a!=0xD3B9AEC6)", targets::while_a_ne_const_doubled()),
    ]
}

fn range_json((lo, hi): (u32, u32)) -> Json {
    Json::Arr(vec![Json::Int(lo.into()), Json::Int(hi.into())])
}

fn parse_range(v: &Json) -> Option<(u32, u32)> {
    let items = v.as_arr()?;
    if items.len() != 2 {
        return None;
    }
    let lo = items[0].as_u64().and_then(|n| u32::try_from(n).ok())?;
    let hi = items[1].as_u64().and_then(|n| u32::try_from(n).ok())?;
    Some((lo, hi))
}

fn range_field(obj: &Json, name: &str, default: (u32, u32)) -> Result<(u32, u32), String> {
    match obj.get(name) {
        None => Ok(default),
        Some(v) => parse_range(v).ok_or(format!("field `{name}` must be [lo, hi]")),
    }
}

fn f64_field(obj: &Json, name: &str) -> Result<f64, String> {
    obj.get(name).and_then(Json::as_f64).ok_or(format!("missing number field `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_specs_round_trip() {
        for spec in [
            CampaignSpec::fig2(),
            CampaignSpec::table1(),
            CampaignSpec::table2(),
            CampaignSpec::table3(),
            CampaignSpec::table6(),
            CampaignSpec::multifault(),
        ] {
            let text = spec.to_json_text().unwrap();
            let back = CampaignSpec::from_json_text(&text).unwrap();
            assert_eq!(back, spec, "through\n{text}");
        }
    }

    #[test]
    fn optional_fields_round_trip() {
        let mut spec = CampaignSpec::table1();
        spec.threads = Some(4);
        spec.shards = Some((3, 9));
        let text = spec.to_json().to_string_compact().unwrap();
        assert_eq!(CampaignSpec::from_json_text(&text).unwrap(), spec);
    }

    #[test]
    fn cache_key_ignores_threads_but_not_shards() {
        let base = CampaignSpec::table1();
        let mut threaded = base.clone();
        threaded.threads = Some(8);
        assert_eq!(base.cache_key().unwrap(), threaded.cache_key().unwrap());
        let mut partial = base.clone();
        partial.shards = Some((0, 2));
        assert_ne!(base.cache_key().unwrap(), partial.cache_key().unwrap());
        // ...while the checkpoint key treats them as the same space.
        assert_eq!(base.checkpoint_key().unwrap(), partial.checkpoint_key().unwrap());
    }

    #[test]
    fn cache_key_sees_the_fault_model() {
        let base = CampaignSpec::table1();
        let mut reseeded = base.clone();
        reseeded.model.seed ^= 1;
        assert_ne!(base.cache_key().unwrap(), reseeded.cache_key().unwrap());
    }

    #[test]
    fn cache_keys_differ_across_workloads() {
        let keys: Vec<String> = [
            CampaignSpec::fig2(),
            CampaignSpec::table1(),
            CampaignSpec::table2(),
            CampaignSpec::table3(),
            CampaignSpec::table6(),
            CampaignSpec::multifault(),
        ]
        .iter()
        .map(|s| s.cache_key().unwrap())
        .collect();
        let mut unique = keys.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), keys.len(), "{keys:?}");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        for (label, text) in [
            ("empty cycles", r#"{"version":1,"workload":{"kind":"table1","cycles":[3,3]}}"#),
            ("zero threads", r#"{"version":1,"workload":{"kind":"fig2"},"threads":0}"#),
            ("bad version", r#"{"version":2,"workload":{"kind":"fig2"}}"#),
            ("bad kind", r#"{"version":1,"workload":{"kind":"table9"}}"#),
            ("no workload", r#"{"version":1}"#),
            ("bad shards", r#"{"version":1,"workload":{"kind":"fig2"},"shards":[5,2]}"#),
        ] {
            assert!(CampaignSpec::from_json_text(text).is_err(), "{label} must be rejected");
        }
    }
}
