//! Benchmarks of the experiment machinery: one Figure 2 bit-flip sweep,
//! one Table I-style glitch attempt, one pipeline spin, and the fault-model
//! severity landscape.

use gd_bench::timing::Harness;
use std::hint::black_box;

fn bench_fig2(h: &Harness) {
    use gd_glitch_emu::{branch_case, sweep_k, Direction};
    let case = branch_case(gd_thumb::Cond::Eq);
    h.bench("fig2/sweep_beq_k2_and", || {
        sweep_k(&case, Direction::And, 2, gd_emu::Config::default())
    });
}

fn bench_attack(h: &Harness) {
    use gd_chipwhisperer::{
        run_attack, targets, AttackSpec, Device, FaultModel, GlitchParams, SuccessCheck,
    };
    let dev = Device::from_asm(targets::WHILE_NOT_A).unwrap();
    let model = FaultModel::default();
    let spec = AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: 600 };
    // An in-region point (runs the whole boot + glitch + aftermath).
    let mut boot = 0u64;
    h.bench("chipwhisperer/attack_in_region", || {
        boot += 1;
        run_attack(&dev, &model, GlitchParams::single(4, 12, -18), boot, &spec, None)
    });
    h.bench("chipwhisperer/severity_grid", || {
        let mut acc = 0.0f64;
        for w in -49i8..=49 {
            for o in -49i8..=49 {
                acc += model.severity(black_box(w), black_box(o));
            }
        }
        acc
    });
}

fn bench_pipeline(h: &Harness) {
    use gd_chipwhisperer::{targets, Device};
    let dev = Device::from_asm(targets::WHILE_A).unwrap();
    h.bench("pipeline/spin_10k_cycles", || {
        let mut pipe = dev.boot();
        pipe.run(10_000)
    });
}

fn main() {
    let h = Harness::from_env();
    bench_fig2(&h);
    bench_attack(&h);
    bench_pipeline(&h);
}
