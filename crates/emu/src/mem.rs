//! A region-based memory map with permissions and a precise fault taxonomy.
//!
//! The fault kinds mirror the outcome classes of the paper's emulation
//! experiments (§IV): reads from unmapped memory become *Bad Read*, fetches
//! from unmapped memory become *Bad Fetch*, and so on.

use core::fmt;

/// Access permissions for a [`Region`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
    /// Instruction fetches allowed.
    pub execute: bool,
}

impl Perms {
    /// Read + write + execute.
    pub const RWX: Perms = Perms { read: true, write: true, execute: true };
    /// Read + execute (flash).
    pub const RX: Perms = Perms { read: true, write: false, execute: true };
    /// Read + write (RAM, peripherals).
    pub const RW: Perms = Perms { read: true, write: true, execute: false };
    /// Read only.
    pub const R: Perms = Perms { read: true, write: false, execute: false };
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bit = |b: bool, ch: char| if b { ch } else { '-' };
        write!(f, "{}{}{}", bit(self.read, 'r'), bit(self.write, 'w'), bit(self.execute, 'x'))
    }
}

/// The kind of memory access that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch.
    Fetch,
}

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// No region covers the address.
    Unmapped,
    /// A region covers the address but forbids this access.
    Protected,
    /// The address is not aligned to the access width.
    Unaligned,
}

/// A memory fault: address, access type, and cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemFault {
    /// Faulting address.
    pub addr: u32,
    /// What kind of access was attempted.
    pub access: Access,
    /// Why it failed.
    pub kind: FaultKind,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let access = match self.access {
            Access::Read => "read",
            Access::Write => "write",
            Access::Fetch => "fetch",
        };
        let kind = match self.kind {
            FaultKind::Unmapped => "unmapped",
            FaultKind::Protected => "protected",
            FaultKind::Unaligned => "unaligned",
        };
        write!(f, "{kind} {access} at {:#010x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

/// One mapped memory region.
#[derive(Debug, Clone)]
pub struct Region {
    name: String,
    base: u32,
    perms: Perms,
    data: Vec<u8>,
}

impl Region {
    /// Region name (e.g. `"flash"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First address of the region.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Permissions.
    pub fn perms(&self) -> Perms {
        self.perms
    }

    /// Raw contents.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    fn contains(&self, addr: u32) -> bool {
        addr >= self.base && u64::from(addr) < u64::from(self.base) + self.data.len() as u64
    }
}

/// Error returned by [`Memory::map`] for overlapping or empty regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapError {
    msg: String,
}

impl MapError {
    /// A free-form mapping error (used by loaders layered on `Memory`).
    pub fn other(msg: impl Into<String>) -> MapError {
        MapError { msg: msg.into() }
    }
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mapping error: {}", self.msg)
    }
}

impl std::error::Error for MapError {}

/// The full memory map of an emulated system.
///
/// ```
/// use gd_emu::{Memory, Perms};
/// let mut mem = Memory::new();
/// mem.map("sram", 0x2000_0000, 0x1000, Perms::RW)?;
/// mem.write32(0x2000_0010, 0xDEAD_BEEF)?;
/// assert_eq!(mem.read32(0x2000_0010)?, 0xDEAD_BEEF);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    regions: Vec<Region>,
    write_epoch: u64,
}

/// A copy of every region's contents, created by [`Memory::snapshot`].
#[derive(Debug, Clone)]
pub struct MemSnapshot {
    data: Vec<Vec<u8>>,
    write_epoch: u64,
}

impl Memory {
    /// An empty memory map.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Maps a zero-filled region.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the region is empty, wraps the address space,
    /// or overlaps an existing region.
    pub fn map(&mut self, name: &str, base: u32, size: u32, perms: Perms) -> Result<(), MapError> {
        self.map_with_data(name, base, vec![0; size as usize], perms)
    }

    /// Maps a region initialized with `data`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::map`].
    pub fn map_with_data(
        &mut self,
        name: &str,
        base: u32,
        data: Vec<u8>,
        perms: Perms,
    ) -> Result<(), MapError> {
        if data.is_empty() {
            return Err(MapError { msg: format!("region `{name}` is empty") });
        }
        if u64::from(base) + data.len() as u64 > 1 << 32 {
            return Err(MapError { msg: format!("region `{name}` wraps the address space") });
        }
        let end = u64::from(base) + data.len() as u64;
        for r in &self.regions {
            let rend = u64::from(r.base) + r.data.len() as u64;
            if u64::from(base) < rend && u64::from(r.base) < end {
                return Err(MapError { msg: format!("region `{name}` overlaps `{}`", r.name) });
            }
        }
        self.regions.push(Region { name: name.to_owned(), base, perms, data });
        Ok(())
    }

    /// The mapped regions, in mapping order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Looks up the region covering `addr`.
    pub fn region_at(&self, addr: u32) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Copies `bytes` into memory at `addr`, ignoring write permissions
    /// (loader-style access).
    ///
    /// Copies one region-sized chunk at a time rather than scanning the
    /// region list per byte — firmware loads run once per emulator boot,
    /// which the sweep engines put on their hot path. Loader writes do
    /// not advance [`Memory::write_epoch`]; like [`Memory::peek`], this
    /// is host-side access, not emulated-program activity.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if any byte falls outside mapped memory;
    /// bytes before the first unmapped address are already written.
    pub fn load(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemFault> {
        let mut off = 0usize;
        while off < bytes.len() {
            let a = addr.wrapping_add(off as u32);
            let region = self.regions.iter_mut().find(|r| r.contains(a)).ok_or(MemFault {
                addr: a,
                access: Access::Write,
                kind: FaultKind::Unmapped,
            })?;
            let start = (a - region.base) as usize;
            let n = (region.data.len() - start).min(bytes.len() - off);
            region.data[start..start + n].copy_from_slice(&bytes[off..off + n]);
            off += n;
        }
        Ok(())
    }

    /// A counter advanced by every emulated store ([`Memory::write8`] /
    /// [`Memory::write16`] / [`Memory::write32`]). Loader-style writes
    /// ([`Memory::load`]) are not counted. [`Memory::restore`] uses it to
    /// skip copying region contents after store-free runs.
    pub fn write_epoch(&self) -> u64 {
        self.write_epoch
    }

    /// Copies every region's contents for later [`Memory::restore`].
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            data: self.regions.iter().map(|r| r.data.clone()).collect(),
            write_epoch: self.write_epoch,
        }
    }

    /// Rolls region contents back to a snapshot of this memory map.
    ///
    /// When no emulated store happened since the snapshot (the write
    /// epoch is unchanged), the contents are known clean and the copy is
    /// skipped entirely.
    ///
    /// # Panics
    ///
    /// Panics if regions were mapped or resized since the snapshot.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        if self.write_epoch == snap.write_epoch {
            return;
        }
        assert_eq!(self.regions.len(), snap.data.len(), "memory map changed since snapshot");
        for (region, data) in self.regions.iter_mut().zip(&snap.data) {
            region.data.copy_from_slice(data);
        }
        self.write_epoch = snap.write_epoch;
    }

    /// Reads raw bytes, ignoring permissions (debugger-style access).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if any byte falls outside mapped memory.
    pub fn peek(&self, addr: u32, len: u32) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let a = addr.wrapping_add(i);
            let region = self.region_at(a).ok_or(MemFault {
                addr: a,
                access: Access::Read,
                kind: FaultKind::Unmapped,
            })?;
            out.push(region.data[(a - region.base) as usize]);
        }
        Ok(out)
    }

    fn access(&mut self, addr: u32, len: u32, access: Access) -> Result<&mut Region, MemFault> {
        let region = self
            .regions
            .iter_mut()
            .find(|r| r.contains(addr) && r.contains(addr + (len - 1)))
            .ok_or(MemFault { addr, access, kind: FaultKind::Unmapped })?;
        let allowed = match access {
            Access::Read => region.perms.read,
            Access::Write => region.perms.write,
            Access::Fetch => region.perms.execute,
        };
        if !allowed {
            return Err(MemFault { addr, access, kind: FaultKind::Protected });
        }
        Ok(region)
    }

    fn aligned(addr: u32, len: u32, access: Access) -> Result<(), MemFault> {
        if !addr.is_multiple_of(len) {
            Err(MemFault { addr, access, kind: FaultKind::Unaligned })
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for unmapped or protected addresses.
    pub fn read8(&mut self, addr: u32) -> Result<u8, MemFault> {
        let r = self.access(addr, 1, Access::Read)?;
        Ok(r.data[(addr - r.base) as usize])
    }

    /// Reads a halfword (must be 2-aligned).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for unmapped, protected, or unaligned addresses.
    pub fn read16(&mut self, addr: u32) -> Result<u16, MemFault> {
        Self::aligned(addr, 2, Access::Read)?;
        let r = self.access(addr, 2, Access::Read)?;
        let i = (addr - r.base) as usize;
        Ok(u16::from_le_bytes([r.data[i], r.data[i + 1]]))
    }

    /// Reads a word (must be 4-aligned).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for unmapped, protected, or unaligned addresses.
    pub fn read32(&mut self, addr: u32) -> Result<u32, MemFault> {
        Self::aligned(addr, 4, Access::Read)?;
        let r = self.access(addr, 4, Access::Read)?;
        let i = (addr - r.base) as usize;
        Ok(u32::from_le_bytes([r.data[i], r.data[i + 1], r.data[i + 2], r.data[i + 3]]))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for unmapped or protected addresses.
    pub fn write8(&mut self, addr: u32, value: u8) -> Result<(), MemFault> {
        let r = self.access(addr, 1, Access::Write)?;
        r.data[(addr - r.base) as usize] = value;
        self.write_epoch += 1;
        Ok(())
    }

    /// Writes a halfword (must be 2-aligned).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for unmapped, protected, or unaligned addresses.
    pub fn write16(&mut self, addr: u32, value: u16) -> Result<(), MemFault> {
        Self::aligned(addr, 2, Access::Write)?;
        let r = self.access(addr, 2, Access::Write)?;
        let i = (addr - r.base) as usize;
        r.data[i..i + 2].copy_from_slice(&value.to_le_bytes());
        self.write_epoch += 1;
        Ok(())
    }

    /// Writes a word (must be 4-aligned).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for unmapped, protected, or unaligned addresses.
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), MemFault> {
        Self::aligned(addr, 4, Access::Write)?;
        let r = self.access(addr, 4, Access::Write)?;
        let i = (addr - r.base) as usize;
        r.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        self.write_epoch += 1;
        Ok(())
    }

    /// Fetches an instruction halfword (must be 2-aligned and executable).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] with [`Access::Fetch`] on failure — the
    /// paper's *Bad Fetch* class.
    pub fn fetch16(&mut self, addr: u32) -> Result<u16, MemFault> {
        Self::aligned(addr, 2, Access::Fetch)?;
        let r = self.access(addr, 2, Access::Fetch)?;
        let i = (addr - r.base) as usize;
        Ok(u16::from_le_bytes([r.data[i], r.data[i + 1]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        let mut m = Memory::new();
        m.map("flash", 0x0800_0000, 0x1000, Perms::RX).unwrap();
        m.map("sram", 0x2000_0000, 0x1000, Perms::RW).unwrap();
        m
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem();
        m.write32(0x2000_0000, 0x1234_5678).unwrap();
        assert_eq!(m.read32(0x2000_0000).unwrap(), 0x1234_5678);
        assert_eq!(m.read16(0x2000_0000).unwrap(), 0x5678);
        assert_eq!(m.read8(0x2000_0003).unwrap(), 0x12);
        m.write16(0x2000_0004, 0xBEEF).unwrap();
        m.write8(0x2000_0006, 0xAA).unwrap();
        assert_eq!(m.read32(0x2000_0004).unwrap(), 0x00AA_BEEF);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = mem();
        let f = m.read32(0x4000_0000).unwrap_err();
        assert_eq!(f.kind, FaultKind::Unmapped);
        assert_eq!(f.access, Access::Read);
        let f = m.write8(0x1000_0000, 0).unwrap_err();
        assert_eq!(f.access, Access::Write);
    }

    #[test]
    fn permission_faults() {
        let mut m = mem();
        let f = m.write32(0x0800_0000, 0).unwrap_err();
        assert_eq!(f.kind, FaultKind::Protected);
        let f = m.fetch16(0x2000_0000).unwrap_err();
        assert_eq!(f.kind, FaultKind::Protected);
        assert_eq!(f.access, Access::Fetch);
    }

    #[test]
    fn alignment_faults() {
        let mut m = mem();
        assert_eq!(m.read32(0x2000_0002).unwrap_err().kind, FaultKind::Unaligned);
        assert_eq!(m.read16(0x2000_0001).unwrap_err().kind, FaultKind::Unaligned);
        assert_eq!(m.write32(0x2000_0001, 0).unwrap_err().kind, FaultKind::Unaligned);
    }

    #[test]
    fn straddling_region_end_faults() {
        let mut m = mem();
        // Last word of sram is fine; the next faults.
        assert!(m.read32(0x2000_0FFC).is_ok());
        assert!(m.read32(0x2000_1000).is_err());
        // A word read straddling the boundary must not succeed.
        assert!(m.read16(0x2000_0FFE).is_ok());
    }

    #[test]
    fn overlap_rejected() {
        let mut m = mem();
        assert!(m.map("clash", 0x2000_0800, 0x1000, Perms::RW).is_err());
        assert!(m.map("ok", 0x2000_1000, 0x1000, Perms::RW).is_ok());
        assert!(m.map("empty", 0x3000_0000, 0, Perms::RW).is_err());
    }

    #[test]
    fn loader_ignores_permissions() {
        let mut m = mem();
        m.load(0x0800_0000, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.peek(0x0800_0000, 4).unwrap(), vec![1, 2, 3, 4]);
        assert!(m.load(0x5000_0000, &[0]).is_err());
    }

    #[test]
    fn region_lookup() {
        let m = mem();
        assert_eq!(m.region_at(0x0800_0FFF).unwrap().name(), "flash");
        assert!(m.region_at(0x0800_1000).is_none());
        assert_eq!(m.regions().len(), 2);
    }
}
