//! Instruction decoding: machine-code bits → [`Instr`].
//!
//! The decoder is *total* over the 16-bit space: every halfword either
//! decodes to exactly one [`Instr`] whose [`encode`](Instr::try_encode) is
//! the original halfword, or is classified as undefined / needing a second
//! halfword. This totality is what lets the glitch-emulation framework
//! (paper §IV) mutate arbitrary bits of an instruction and observe exactly
//! what the perturbed pattern means.

use core::fmt;

use crate::instr::{AluOp, Hint, ShiftOp, WideDpOp, Width};
use crate::{Cond, Instr, Reg};

/// Error returned when a bit pattern is not a defined instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeError {
    /// A 16-bit pattern with no defined meaning (UNDEFINED or UNPREDICTABLE).
    Undefined16(u16),
    /// A 32-bit pattern with no defined meaning in ARMv6-M.
    Undefined32(u16, u16),
    /// The halfword is the first half of a 32-bit instruction; call
    /// [`decode32`] with the following halfword.
    Incomplete(u16),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Undefined16(hw) => write!(f, "undefined 16-bit instruction {hw:#06x}"),
            DecodeError::Undefined32(a, b) => {
                write!(f, "undefined 32-bit instruction {a:#06x} {b:#06x}")
            }
            DecodeError::Incomplete(hw) => {
                write!(f, "halfword {hw:#06x} is a 32-bit prefix and needs its second half")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Whether `hw` opens a 32-bit instruction (`0b11101`/`0b11110`/`0b11111`
/// in its top five bits).
pub const fn is_32bit_prefix(hw: u16) -> bool {
    hw >> 11 >= 0b11101
}

const fn sext(value: u16, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value as i32) << shift) >> shift
}

/// Decodes one 16-bit instruction.
///
/// # Errors
///
/// Returns [`DecodeError::Incomplete`] if `hw` opens a 32-bit instruction and
/// [`DecodeError::Undefined16`] if the pattern has no defined meaning.
pub fn decode16(hw: u16) -> Result<Instr, DecodeError> {
    let undef = Err(DecodeError::Undefined16(hw));
    let rd = Reg::low(hw & 7);
    let rm3 = Reg::low((hw >> 3) & 7);
    let rm6 = Reg::low((hw >> 6) & 7);
    let imm5 = ((hw >> 6) & 0x1F) as u8;
    let imm8 = (hw & 0xFF) as u8;
    let r8 = Reg::low((hw >> 8) & 7);

    let instr = match hw >> 12 {
        0b0000 | 0b0001 => match (hw >> 11) & 3 {
            0b00 => Instr::ShiftImm { op: ShiftOp::Lsl, rd, rm: rm3, imm5 },
            0b01 => Instr::ShiftImm { op: ShiftOp::Lsr, rd, rm: rm3, imm5 },
            0b10 => Instr::ShiftImm { op: ShiftOp::Asr, rd, rm: rm3, imm5 },
            _ => {
                let imm3 = ((hw >> 6) & 7) as u8;
                match (hw >> 9) & 3 {
                    0b00 => Instr::AddReg3 { rd, rn: rm3, rm: rm6 },
                    0b01 => Instr::SubReg3 { rd, rn: rm3, rm: rm6 },
                    0b10 => Instr::AddImm3 { rd, rn: rm3, imm3 },
                    _ => Instr::SubImm3 { rd, rn: rm3, imm3 },
                }
            }
        },
        0b0010 | 0b0011 => match (hw >> 11) & 3 {
            0b00 => Instr::MovImm { rd: r8, imm8 },
            0b01 => Instr::CmpImm { rn: r8, imm8 },
            0b10 => Instr::AddImm8 { rdn: r8, imm8 },
            _ => Instr::SubImm8 { rdn: r8, imm8 },
        },
        0b0100 => {
            if hw >> 10 == 0b010000 {
                let op = AluOp::from_bits(((hw >> 6) & 0xF) as u8);
                Instr::Alu { op, rdn: rd, rm: rm3 }
            } else if hw >> 10 == 0b010001 {
                let rm = Reg::any((hw >> 3) & 0xF);
                let rdn = Reg::any((hw >> 4) & 0b1000 | hw & 0b111);
                match (hw >> 8) & 3 {
                    0b00 => Instr::AddHi { rdn, rm },
                    0b01 => Instr::CmpHi { rn: rdn, rm },
                    0b10 => Instr::MovHi { rd: rdn, rm },
                    _ => {
                        // BX/BLX: bits 2..0 are (0)(0)(0).
                        if hw & 0b111 != 0 {
                            return undef;
                        }
                        if hw & (1 << 7) == 0 {
                            Instr::Bx { rm }
                        } else {
                            Instr::Blx { rm }
                        }
                    }
                }
            } else {
                Instr::LdrLit { rt: r8, imm8 }
            }
        }
        0b0101 => {
            let (rt, rn, rm) = (rd, rm3, rm6);
            match (hw >> 9) & 7 {
                0b000 => Instr::StoreReg { width: Width::Word, rt, rn, rm },
                0b001 => Instr::StoreReg { width: Width::Half, rt, rn, rm },
                0b010 => Instr::StoreReg { width: Width::Byte, rt, rn, rm },
                0b011 => Instr::LdrsbReg { rt, rn, rm },
                0b100 => Instr::LoadReg { width: Width::Word, rt, rn, rm },
                0b101 => Instr::LoadReg { width: Width::Half, rt, rn, rm },
                0b110 => Instr::LoadReg { width: Width::Byte, rt, rn, rm },
                _ => Instr::LdrshReg { rt, rn, rm },
            }
        }
        0b0110 | 0b0111 => {
            let width = if hw & (1 << 12) == 0 { Width::Word } else { Width::Byte };
            if hw & (1 << 11) == 0 {
                Instr::StoreImm { width, rt: rd, rn: rm3, imm5 }
            } else {
                Instr::LoadImm { width, rt: rd, rn: rm3, imm5 }
            }
        }
        0b1000 => {
            if hw & (1 << 11) == 0 {
                Instr::StoreImm { width: Width::Half, rt: rd, rn: rm3, imm5 }
            } else {
                Instr::LoadImm { width: Width::Half, rt: rd, rn: rm3, imm5 }
            }
        }
        0b1001 => {
            if hw & (1 << 11) == 0 {
                Instr::StrSp { rt: r8, imm8 }
            } else {
                Instr::LdrSp { rt: r8, imm8 }
            }
        }
        0b1010 => {
            if hw & (1 << 11) == 0 {
                Instr::Adr { rd: r8, imm8 }
            } else {
                Instr::AddSpImm { rd: r8, imm8 }
            }
        }
        0b1011 => return decode_misc(hw),
        0b1100 => {
            let rlist = imm8;
            if rlist == 0 {
                return undef;
            }
            if hw & (1 << 11) == 0 {
                Instr::Stm { rn: r8, rlist }
            } else {
                Instr::Ldm { rn: r8, rlist }
            }
        }
        0b1101 => match (hw >> 8) & 0xF {
            0b1110 => Instr::Udf { imm8 },
            0b1111 => Instr::Svc { imm8 },
            bits => {
                let cond = Cond::from_bits(bits as u8).expect("covered 1110/1111 above");
                Instr::BCond { cond, offset: sext(hw & 0xFF, 8) << 1 }
            }
        },
        0b1110 if hw & (1 << 11) == 0 => Instr::B { offset: sext(hw & 0x7FF, 11) << 1 },
        _ => return Err(DecodeError::Incomplete(hw)),
    };
    Ok(instr)
}

fn decode_misc(hw: u16) -> Result<Instr, DecodeError> {
    let undef = Err(DecodeError::Undefined16(hw));
    let rd = Reg::low(hw & 7);
    let rm = Reg::low((hw >> 3) & 7);
    let instr = match (hw >> 8) & 0xF {
        0b0000 => {
            let imm7 = (hw & 0x7F) as u8;
            if hw & (1 << 7) == 0 {
                Instr::AddSp { imm7 }
            } else {
                Instr::SubSp { imm7 }
            }
        }
        0b0010 => match (hw >> 6) & 3 {
            0b00 => Instr::Sxth { rd, rm },
            0b01 => Instr::Sxtb { rd, rm },
            0b10 => Instr::Uxth { rd, rm },
            _ => Instr::Uxtb { rd, rm },
        },
        0b0100 | 0b0101 => {
            let rlist = (hw & 0xFF) as u8;
            let lr = hw & (1 << 8) != 0;
            if rlist == 0 && !lr {
                return undef;
            }
            Instr::Push { rlist, lr }
        }
        0b1100 | 0b1101 => {
            let rlist = (hw & 0xFF) as u8;
            let pc = hw & (1 << 8) != 0;
            if rlist == 0 && !pc {
                return undef;
            }
            Instr::Pop { rlist, pc }
        }
        0b0110 => match hw {
            0xB662 => Instr::Cps { disable: false },
            0xB672 => Instr::Cps { disable: true },
            _ => return undef,
        },
        0b1010 => match (hw >> 6) & 3 {
            0b00 => Instr::Rev { rd, rm },
            0b01 => Instr::Rev16 { rd, rm },
            0b11 => Instr::Revsh { rd, rm },
            _ => return undef,
        },
        0b1110 => Instr::Bkpt { imm8: (hw & 0xFF) as u8 },
        0b1111 => {
            // Hints: opB (bits 3..0) must be zero; allocated opA are 0..=4.
            if hw & 0xF != 0 {
                return undef;
            }
            let hint = match (hw >> 4) & 0xF {
                0 => Hint::Nop,
                1 => Hint::Yield,
                2 => Hint::Wfe,
                3 => Hint::Wfi,
                4 => Hint::Sev,
                _ => return undef,
            };
            Instr::Hint { hint }
        }
        _ => return undef,
    };
    Ok(instr)
}

/// Decodes a 32-bit instruction from its two halfwords.
///
/// ARMv6-M defines only `BL` in the 32-bit space reachable from Thumb-1 code
/// (the system instructions `MSR`/`MRS`/barriers are out of scope for this
/// model and decode as undefined).
///
/// # Errors
///
/// Returns [`DecodeError::Undefined32`] when the pair is not a `BL`, and
/// [`DecodeError::Undefined16`] when `hw1` is not a 32-bit prefix at all.
pub fn decode32(hw1: u16, hw2: u16) -> Result<Instr, DecodeError> {
    if !is_32bit_prefix(hw1) {
        return Err(DecodeError::Undefined16(hw1));
    }
    // BL T1: hw1 = 11110 S imm10, hw2 = 11 J1 1 J2 imm11.
    if hw1 >> 11 == 0b11110 && hw2 & 0xD000 == 0xD000 {
        let s = u32::from((hw1 >> 10) & 1);
        let imm10 = u32::from(hw1 & 0x3FF);
        let j1 = u32::from((hw2 >> 13) & 1);
        let j2 = u32::from((hw2 >> 11) & 1);
        let imm11 = u32::from(hw2 & 0x7FF);
        let i1 = !(j1 ^ s) & 1;
        let i2 = !(j2 ^ s) & 1;
        let raw = s << 23 | i1 << 22 | i2 << 21 | imm10 << 11 | imm11;
        let half = ((raw as i32) << 8) >> 8; // sign-extend 24 bits
        return Ok(Instr::Bl { offset: half << 1 });
    }
    Err(DecodeError::Undefined32(hw1, hw2))
}

/// Decodes a 32-bit instruction with the Thumb-2 wide subset enabled.
///
/// Extends [`decode32`] with the wide encodings reachable by single-bit
/// flips of ARMv6-M code: the `B.W`/`B<cond>.W` branch family, the
/// modified-immediate and `MOVW`/`MOVT` data-processing groups, and the
/// 12-bit-immediate `LDR.W`/`STR.W`. Everything else in the 32-bit space
/// (load/store multiple and dual, register-shifted data processing,
/// coprocessor and system encodings) stays undefined, as does every `SP`
/// position and any `PC` position other than the defined compare/test,
/// `MOV`/`MVN`, literal-load, and indirect-branch forms. Like
/// [`decode16`], the function is *total* over its space: every pair
/// either decodes to an [`Instr`] whose encoding is the original pair, or
/// is [`DecodeError::Undefined32`].
///
/// # Errors
///
/// Returns [`DecodeError::Undefined32`] for pairs outside the subset and
/// [`DecodeError::Undefined16`] when `hw1` is not a 32-bit prefix at all.
pub fn decode32_wide(hw1: u16, hw2: u16) -> Result<Instr, DecodeError> {
    if !is_32bit_prefix(hw1) {
        return Err(DecodeError::Undefined16(hw1));
    }
    let undef = Err(DecodeError::Undefined32(hw1, hw2));
    match hw1 >> 11 {
        0b11110 if hw2 & 0x8000 != 0 => {
            // Branches and miscellaneous control.
            let s = u32::from((hw1 >> 10) & 1);
            let j1 = u32::from((hw2 >> 13) & 1);
            let j2 = u32::from((hw2 >> 11) & 1);
            let imm11 = u32::from(hw2 & 0x7FF);
            match hw2 & 0xD000 {
                // BL T1 — identical to the ARMv6-M decode.
                0xD000 => decode32(hw1, hw2),
                // B.W T4: same 24-bit I1/I2 offset folding as BL.
                0x9000 => {
                    let imm10 = u32::from(hw1 & 0x3FF);
                    let i1 = !(j1 ^ s) & 1;
                    let i2 = !(j2 ^ s) & 1;
                    let raw = s << 23 | i1 << 22 | i2 << 21 | imm10 << 11 | imm11;
                    let half = ((raw as i32) << 8) >> 8;
                    Ok(Instr::BW { offset: half << 1 })
                }
                // B<cond>.W T3: 20-bit S:J2:J1:imm6:imm11 offset, no
                // I1/I2 folding. cond 0b111x is the misc-control hole
                // (MSR/MRS/barriers), out of the subset.
                0x8000 => {
                    let Some(cond) = Cond::from_bits(((hw1 >> 6) & 0xF) as u8) else {
                        return undef;
                    };
                    let imm6 = u32::from(hw1 & 0x3F);
                    let raw = s << 19 | j2 << 18 | j1 << 17 | imm6 << 11 | imm11;
                    let half = ((raw as i32) << 12) >> 12;
                    Ok(Instr::BCondW { cond, offset: half << 1 })
                }
                // BLX (immediate) targets ARM state: undefined on M.
                _ => undef,
            }
        }
        0b11110 => {
            // Data processing, immediate (hw2 bit 15 is 0).
            let i = (hw1 >> 10) & 1;
            let imm3 = (hw2 >> 12) & 7;
            let imm8 = hw2 & 0xFF;
            let rd = Reg::any((hw2 >> 8) & 0xF);
            if hw1 & (1 << 9) == 0 {
                // Modified 12-bit immediate.
                let Some(op) = WideDpOp::from_bits(((hw1 >> 5) & 0xF) as u8) else {
                    return undef;
                };
                let s = hw1 & (1 << 4) != 0;
                let rn = Reg::any(hw1 & 0xF);
                let imm12 = i << 11 | imm3 << 8 | imm8;
                // Replication patterns with an all-zero imm8 are
                // UNPREDICTABLE (ThumbExpandImm).
                if imm12 >> 8 & 0xF != 0 && imm12 >> 10 == 0 && imm8 == 0 {
                    return undef;
                }
                if rd == Reg::SP || rn == Reg::SP {
                    return undef;
                }
                if rd == Reg::PC && !(s && op.has_discard_form()) {
                    return undef;
                }
                if rn == Reg::PC && !matches!(op, WideDpOp::Orr | WideDpOp::Orn) {
                    return undef;
                }
                Ok(Instr::DpImm { op, s, rn, rd, imm12 })
            } else {
                // Plain binary immediate: only MOVW/MOVT are in the
                // subset (ADDW/SUBW/ADR/BFI/saturate stay undefined).
                if rd == Reg::SP || rd == Reg::PC {
                    return undef;
                }
                let imm4 = hw1 & 0xF;
                let imm16 = imm4 << 12 | i << 11 | imm3 << 8 | imm8;
                match (hw1 >> 4) & 0x1F {
                    0b00100 => Ok(Instr::MovW { rd, imm16 }),
                    0b01100 => Ok(Instr::MovT { rd, imm16 }),
                    _ => undef,
                }
            }
        }
        0b11111 => {
            // Only the 12-bit positive-offset word load/store forms are
            // in the subset. `hw1 == 0xF8DF` is exactly the U=1 LDR
            // (literal) encoding, modelled as `rn == PC`.
            let rt = Reg::any((hw2 >> 12) & 0xF);
            let rn = Reg::any(hw1 & 0xF);
            let imm12 = hw2 & 0xFFF;
            match hw1 & 0xFFF0 {
                0xF8D0 if rt != Reg::SP => Ok(Instr::LdrW { rt, rn, imm12 }),
                0xF8C0 if rt != Reg::SP && rt != Reg::PC && rn != Reg::PC => {
                    Ok(Instr::StrW { rt, rn, imm12 })
                }
                _ => undef,
            }
        }
        // Load/store multiple and dual (0b11101) are out of the subset.
        _ => undef,
    }
}

/// Decodes the instruction at the start of `bytes` with the wide subset
/// enabled (the [`decode32_wide`] counterpart of [`decode_bytes`]).
///
/// # Errors
///
/// Propagates [`DecodeError`]; a 32-bit prefix with fewer than four bytes
/// available yields [`DecodeError::Incomplete`].
pub fn decode_bytes_wide(bytes: &[u8]) -> Result<(Instr, u32), DecodeError> {
    let hw1 = match bytes {
        [a, b, ..] => u16::from_le_bytes([*a, *b]),
        _ => return Err(DecodeError::Undefined16(0)),
    };
    if is_32bit_prefix(hw1) {
        let hw2 = match bytes {
            [_, _, c, d, ..] => u16::from_le_bytes([*c, *d]),
            _ => return Err(DecodeError::Incomplete(hw1)),
        };
        decode32_wide(hw1, hw2).map(|i| (i, 4))
    } else {
        decode16(hw1).map(|i| (i, 2))
    }
}

/// Decodes the instruction at the start of `bytes` (little-endian halfwords).
///
/// Returns the instruction and its size in bytes.
///
/// # Errors
///
/// Propagates [`DecodeError`]; a 32-bit prefix with fewer than four bytes
/// available yields [`DecodeError::Incomplete`].
pub fn decode_bytes(bytes: &[u8]) -> Result<(Instr, u32), DecodeError> {
    let hw1 = match bytes {
        [a, b, ..] => u16::from_le_bytes([*a, *b]),
        _ => return Err(DecodeError::Undefined16(0)),
    };
    if is_32bit_prefix(hw1) {
        let hw2 = match bytes {
            [_, _, c, d, ..] => u16::from_le_bytes([*c, *d]),
            _ => return Err(DecodeError::Incomplete(hw1)),
        };
        decode32(hw1, hw2).map(|i| (i, 4))
    } else {
        decode16(hw1).map(|i| (i, 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoding;

    /// The keystone property for the glitch emulator: every halfword either
    /// decodes canonically (encode(decode(hw)) == hw) or is classified.
    #[test]
    fn exhaustive_round_trip() {
        let mut defined = 0u32;
        let mut undefined = 0u32;
        let mut prefixes = 0u32;
        for hw in 0..=u16::MAX {
            match decode16(hw) {
                Ok(instr) => {
                    defined += 1;
                    let enc = instr
                        .try_encode()
                        .unwrap_or_else(|e| panic!("decoded {instr:?} from {hw:#06x}: {e}"));
                    assert_eq!(
                        enc,
                        Encoding::Half(hw),
                        "round trip failed for {hw:#06x} → {instr:?}"
                    );
                }
                Err(DecodeError::Incomplete(_)) => prefixes += 1,
                Err(DecodeError::Undefined16(_)) => undefined += 1,
                Err(e) => panic!("unexpected error {e} for {hw:#06x}"),
            }
        }
        // The three 32-bit prefix groups cover exactly 3 * 2^11 halfwords.
        assert_eq!(prefixes, 3 * 2048);
        // Sanity: the huge majority of the space is defined.
        assert!(defined > 55_000, "defined = {defined}");
        assert_eq!(defined + undefined + prefixes, 65_536);
    }

    #[test]
    fn bl_round_trip_sweep() {
        for offset in [-(1 << 24), -4096, -256, -4, -2, 0, 2, 4, 62, 4096, (1 << 24) - 2] {
            let enc = Instr::Bl { offset }.encode();
            let Encoding::Pair(a, b) = enc else { panic!("BL must be 32-bit") };
            assert_eq!(decode32(a, b), Ok(Instr::Bl { offset }), "offset {offset}");
        }
    }

    #[test]
    fn all_zero_halfword_is_mov_like_shift() {
        // 0x0000 = LSLS r0, r0, #0: the ISA's de-facto NOP that glitched
        // branches decay into (paper §IV).
        assert_eq!(
            decode16(0),
            Ok(Instr::ShiftImm { op: ShiftOp::Lsl, rd: Reg::R0, rm: Reg::R0, imm5: 0 })
        );
    }

    #[test]
    fn all_ones_halfword_is_bl_suffix_alone() {
        // 0xFFFF is the second half of a BL; alone it is a 32-bit prefix.
        assert_eq!(decode16(0xFFFF), Err(DecodeError::Incomplete(0xFFFF)));
    }

    #[test]
    fn undefined_patterns() {
        assert!(matches!(decode16(0xDE00), Ok(Instr::Udf { imm8: 0 })));
        // CBZ (ARMv7-M) space is undefined here.
        assert_eq!(decode16(0xB100), Err(DecodeError::Undefined16(0xB100)));
        // Hint with nonzero opB (IT in v7) is undefined.
        assert_eq!(decode16(0xBF01), Err(DecodeError::Undefined16(0xBF01)));
        // BX with nonzero low bits is unpredictable → undefined.
        assert_eq!(decode16(0x4771), Err(DecodeError::Undefined16(0x4771)));
        // Empty register lists.
        assert_eq!(decode16(0xB400), Err(DecodeError::Undefined16(0xB400)));
        assert_eq!(decode16(0xC800), Err(DecodeError::Undefined16(0xC800)));
    }

    /// The wide-space keystone property: for every prefix group, every
    /// `(hw1, hw2)` with a fixed representative second halfword either
    /// round-trips through its encoding or is classified undefined; and a
    /// full second-halfword sweep over representative prefixes does the
    /// same. (The full 2^32 product is swept sparsely; the emulator's
    /// differential test covers the classify path.)
    #[test]
    fn wide_round_trip_sweep() {
        let check = |hw1: u16, hw2: u16| match decode32_wide(hw1, hw2) {
            Ok(instr) => {
                let enc = instr.try_encode().unwrap_or_else(|e| {
                    panic!("decoded {instr:?} from {hw1:#06x} {hw2:#06x}: {e}")
                });
                assert_eq!(
                    enc,
                    Encoding::Pair(hw1, hw2),
                    "round trip failed for {hw1:#06x} {hw2:#06x} → {instr:?}"
                );
            }
            Err(DecodeError::Undefined32(a, b)) => assert_eq!((a, b), (hw1, hw2)),
            Err(e) => panic!("unexpected error {e} for {hw1:#06x} {hw2:#06x}"),
        };
        // Every prefix halfword, against second halfwords picking each
        // major hw2 shape (branch J-bit patterns, dp-immediate shapes).
        for hw1 in 0..=u16::MAX {
            if !is_32bit_prefix(hw1) {
                continue;
            }
            for hw2 in
                [0x0000, 0x0305, 0x0F00, 0x7FFF, 0x8000, 0x9000, 0xA800, 0xC000, 0xD000, 0xFFFF]
            {
                check(hw1, hw2);
            }
        }
        // Every second halfword, against prefixes picking each group and
        // each dp/load/store shape.
        for hw1 in [0xE800, 0xF000, 0xF04F, 0xF110, 0xF24A, 0xF2C0, 0xF5B1, 0xF8C2, 0xF8D3, 0xF8DF]
        {
            for hw2 in 0..=u16::MAX {
                check(hw1, hw2);
            }
        }
    }

    #[test]
    fn wide_reference_decodings() {
        // b.w .+0 → F000 B800; negative offset exercises I1/I2 folding.
        assert_eq!(decode32_wide(0xF000, 0xB800), Ok(Instr::BW { offset: 0 }));
        assert_eq!(decode32_wide(0xF7FF, 0xBFFE), Ok(Instr::BW { offset: -4 }));
        // beq.w .+0 → F000 8000.
        assert_eq!(decode32_wide(0xF000, 0x8000), Ok(Instr::BCondW { cond: Cond::Eq, offset: 0 }));
        // bne.w with a negative offset (S=1, J-bits literal, no folding).
        assert_eq!(decode32_wide(0xF47F, 0xAFFE), Ok(Instr::BCondW { cond: Cond::Ne, offset: -4 }));
        // BL still decodes identically to the ARMv6-M path.
        assert_eq!(decode32_wide(0xF000, 0xF800), Ok(Instr::Bl { offset: 0 }));
        // mov.w r0, #1 → F04F 0001 (ORR with rn = PC).
        assert_eq!(
            decode32_wide(0xF04F, 0x0001),
            Ok(Instr::DpImm { op: WideDpOp::Orr, s: false, rn: Reg::PC, rd: Reg::R0, imm12: 1 })
        );
        // cmp.w r1, #0x80000000 → F1B1 4F00 (SUB, S=1, rd = PC).
        assert_eq!(
            decode32_wide(0xF1B1, 0x4F00),
            Ok(Instr::DpImm { op: WideDpOp::Sub, s: true, rn: Reg::R1, rd: Reg::PC, imm12: 0x400 })
        );
        // movw r10, #0xABCD → F64A 3ACD.
        assert_eq!(decode32_wide(0xF64A, 0x3ACD), Ok(Instr::MovW { rd: Reg::R10, imm16: 0xABCD }));
        // movt r0, #0x2000 → F2C2 0000.
        assert_eq!(decode32_wide(0xF2C2, 0x0000), Ok(Instr::MovT { rd: Reg::R0, imm16: 0x2000 }));
        // ldr.w r1, [r3, #4] → F8D3 1004.
        assert_eq!(
            decode32_wide(0xF8D3, 0x1004),
            Ok(Instr::LdrW { rt: Reg::R1, rn: Reg::R3, imm12: 4 })
        );
        // ldr.w r2, [pc, #8] → F8DF 2008 (literal, U=1).
        assert_eq!(
            decode32_wide(0xF8DF, 0x2008),
            Ok(Instr::LdrW { rt: Reg::R2, rn: Reg::PC, imm12: 8 })
        );
        // str.w r0, [r2, #0] → F8C2 0000.
        assert_eq!(
            decode32_wide(0xF8C2, 0x0000),
            Ok(Instr::StrW { rt: Reg::R0, rn: Reg::R2, imm12: 0 })
        );
    }

    #[test]
    fn wide_rejects_out_of_subset() {
        // BLX (immediate) targets ARM state.
        assert!(matches!(decode32_wide(0xF000, 0xC000), Err(DecodeError::Undefined32(_, _))));
        // Load/store multiple group (0b11101).
        assert!(matches!(decode32_wide(0xE890, 0x0003), Err(DecodeError::Undefined32(_, _))));
        // SP in a dp-immediate field.
        assert!(matches!(decode32_wide(0xF04D, 0x0001), Err(DecodeError::Undefined32(_, _))));
        assert!(matches!(decode32_wide(0xF041, 0x0D01), Err(DecodeError::Undefined32(_, _))));
        // PC destination without the compare/test form.
        assert!(matches!(decode32_wide(0xF041, 0x0F01), Err(DecodeError::Undefined32(_, _))));
        // Replication pattern with an all-zero imm8 (UNPREDICTABLE).
        assert!(matches!(decode32_wide(0xF041, 0x1100), Err(DecodeError::Undefined32(_, _))));
        // str.w with a PC base or target.
        assert!(matches!(decode32_wide(0xF8CF, 0x0000), Err(DecodeError::Undefined32(_, _))));
        assert!(matches!(decode32_wide(0xF8C2, 0xF000), Err(DecodeError::Undefined32(_, _))));
        // ADDW (plain-binary op outside MOVW/MOVT).
        assert!(matches!(decode32_wide(0xF200, 0x0000), Err(DecodeError::Undefined32(_, _))));
        // Not a prefix at all.
        assert!(matches!(decode32_wide(0x2000, 0x0000), Err(DecodeError::Undefined16(_))));
    }

    #[test]
    fn decode32_rejects_non_bl() {
        assert!(matches!(decode32(0xE800, 0x0000), Err(DecodeError::Undefined32(_, _))));
        assert!(matches!(decode32(0xF000, 0x0000), Err(DecodeError::Undefined32(_, _))));
        assert!(matches!(decode32(0x2000, 0x0000), Err(DecodeError::Undefined16(_))));
    }

    #[test]
    fn decode_bytes_sizes() {
        let (i, n) = decode_bytes(&[0xAA, 0x20]).unwrap();
        assert_eq!((i, n), (Instr::MovImm { rd: Reg::R0, imm8: 0xAA }, 2));
        let (i, n) = decode_bytes(&[0x00, 0xF0, 0x00, 0xF8]).unwrap();
        assert_eq!((i, n), (Instr::Bl { offset: 0 }, 4));
        assert_eq!(decode_bytes(&[0x00, 0xF0]), Err(DecodeError::Incomplete(0xF000)));
        assert!(decode_bytes(&[0xAA]).is_err());
    }

    #[test]
    fn reference_decodings_from_paper() {
        // The paper quotes `beq #6` ≈ 0b1101_0000_0000_0011 (imm8 = 3).
        assert_eq!(decode16(0xD003), Ok(Instr::BCond { cond: Cond::Eq, offset: 6 }));
        // Table I instruction stream.
        assert_eq!(decode16(0x466B), Ok(Instr::MovHi { rd: Reg::R3, rm: Reg::SP }));
        assert_eq!(decode16(0x3307), Ok(Instr::AddImm8 { rdn: Reg::R3, imm8: 7 }));
        assert_eq!(
            decode16(0x781B),
            Ok(Instr::LoadImm { width: Width::Byte, rt: Reg::R3, rn: Reg::R3, imm5: 0 })
        );
        assert_eq!(decode16(0x2B00), Ok(Instr::CmpImm { rn: Reg::R3, imm8: 0 }));
    }
}
