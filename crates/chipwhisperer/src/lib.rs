//! # gd-chipwhisperer — a clock-glitch injection simulator
//!
//! The hardware-substitution layer for the real-world experiments of
//! *Glitching Demystified* (DSN 2021, §V): a ChipWhisperer-style clock
//! glitcher driving an STM32F0-class 3-stage core. The physical rig is
//! replaced by a calibrated [`FaultModel`] over the [`gd_pipeline`]
//! simulator; everything else — the 99×99 (width, offset) scans, the
//! per-cycle targeting from a GPIO trigger, multi-glitch and long-glitch
//! drivers, and the §V-B parameter-tuning search — matches the paper's
//! methodology and is fully deterministic.
//!
//! ```
//! use gd_chipwhisperer::{
//!     run_attack, AttackSpec, Device, FaultModel, GlitchParams, SuccessCheck,
//! };
//!
//! let device = Device::from_asm(gd_chipwhisperer::targets::WHILE_NOT_A)?;
//! let model = FaultModel::default();
//! let spec = AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: 500 };
//! // A glitch outside the violation region does nothing.
//! let attempt = run_attack(&device, &model, GlitchParams::single(4, 0, 0), 1, &spec, None);
//! assert_eq!(attempt.outcome, gd_chipwhisperer::AttackOutcome::NoEffect);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod device;
mod model;
mod rng;
mod scan;
mod search;
pub mod targets;

pub use device::Device;
pub use model::{FaultModel, GlitchParams, TriggerMode, RESIDUE_POOL};
pub use rng::{hash_words, splitmix64, Rng};
pub use scan::{
    full_grid, run_attack, scan_cell, scan_grid, scan_grid_serial, scan_multi, scan_multi_cell,
    scan_single, AttackOutcome, AttackSpec, Attempt, CellCounts, MultiCell, SuccessCheck,
};
pub use search::{find_reliable_params, SearchReport, SECONDS_PER_ATTEMPT};
