//! Reproduces the §V-B experiment: automatically tuning glitch parameters
//! to a 10-out-of-10 reliable configuration, reporting attempts and the
//! bench wall-clock they correspond to. `--check` diffs the output
//! against `results/search.txt`.

use std::process::ExitCode;

use gd_chipwhisperer::{
    find_reliable_params, targets, AttackSpec, Device, FaultModel, SuccessCheck,
};

fn regenerate() {
    let model = FaultModel::default();
    let spec = AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: 600 };
    for (name, src) in [
        ("while(a) [val != 0]", targets::WHILE_A),
        ("while(a!=0xD3B9AEC6)", targets::WHILE_A_NE_CONST),
    ] {
        gd_bench::report::heading(&format!("§V-B parameter search — {name}"));
        let dev = Device::from_asm(src).expect("target assembles");
        let report = find_reliable_params(&dev, &model, &spec, 10);
        println!("attempts:   {}", report.attempts);
        println!("successes:  {}", report.successes);
        match report.found {
            Some(p) => println!(
                "found:      cycle {} width {} offset {} (verified {}/10)",
                p.ext_offset, p.width, p.offset, report.verified
            ),
            None => println!("found:      none"),
        }
        println!("bench time: {:.1} minutes (at 95 ms/attempt)", report.minutes());
    }
}

fn main() -> ExitCode {
    gd_bench::selfcheck::main("search.txt", &[], regenerate)
}
