//! Regenerates Table II: multi-glitch (two identical back-to-back loops),
//! partial vs full success per cycle. A thin client of the campaign
//! engine; `--check` diffs the output against `results/table2.txt`.

use std::process::ExitCode;

fn main() -> ExitCode {
    gd_bench::selfcheck::main("table2.txt", &[], || {
        let result = gd_campaign::Engine::ephemeral()
            .run(&gd_campaign::CampaignSpec::table2())
            .expect("campaign runs");
        print!("{}", result.text);
    })
}
