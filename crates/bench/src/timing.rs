//! A dependency-free wall-clock micro-benchmark harness (the Criterion
//! substitute — the workspace must build fully offline).
//!
//! Methodology: after a short warm-up, each benchmark is run for `N`
//! samples (default 20, `GD_BENCH_SAMPLES` overrides); every sample
//! executes enough iterations to span a fixed time budget and reports
//! the mean per-iteration time; the harness prints the **median** of the
//! samples, with min/max for spread. Medians over fixed-budget samples
//! track Criterion's point estimates closely while needing nothing but
//! `std::time::Instant`.

use std::time::{Duration, Instant};

/// The sampled result of one benchmark: per-iteration times summarized
/// as median/min/max over the sample set, plus the sampling plan that
/// produced them. [`Harness::bench`] prints one; [`Harness::measure`]
/// returns one for machine-readable consumers (the `gd-bench` binary
/// serializes these into the committed `BENCH_*.json` trajectory).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name as passed to the harness.
    pub name: String,
    /// Median per-iteration time across samples (even sample counts
    /// average the two middle elements).
    pub median: Duration,
    /// Fastest sample's per-iteration time.
    pub min: Duration,
    /// Slowest sample's per-iteration time.
    pub max: Duration,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample (calibrated from the warm-up rate).
    pub iters: u32,
}

/// One benchmark runner with a fixed sampling plan.
#[derive(Debug, Clone)]
pub struct Harness {
    samples: usize,
    sample_budget: Duration,
    warmup: Duration,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness {
            samples: 20,
            sample_budget: Duration::from_millis(100),
            warmup: Duration::from_millis(500),
        }
    }
}

impl Harness {
    /// The default plan (20 samples × 100 ms, 500 ms warm-up), with the
    /// sample count overridable via `GD_BENCH_SAMPLES`.
    pub fn from_env() -> Harness {
        let mut h = Harness::default();
        if let Ok(v) = std::env::var("GD_BENCH_SAMPLES") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    h.samples = n;
                }
            }
        }
        h
    }

    /// Times `f`, printing `name` with the median per-iteration time.
    ///
    /// The closure's return value is passed through [`std::hint::black_box`]
    /// so the measured work cannot be optimized away.
    pub fn bench<R>(&self, name: &str, f: impl FnMut() -> R) {
        let m = self.measure(name, f);
        println!(
            "{:<40} median {:>10}   [min {:>10}, max {:>10}]   ({} samples x {} iters)",
            m.name,
            fmt_duration(m.median),
            fmt_duration(m.min),
            fmt_duration(m.max),
            m.samples,
            m.iters,
        );
    }

    /// Times `f` and returns the summarized [`Measurement`] without
    /// printing anything.
    pub fn measure<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Measurement {
        // Warm up: fill caches, trigger lazy init, settle the clock —
        // and count the runs, because the warm-up doubles as the
        // calibration source below. At least one run always happens,
        // even with a zero warm-up budget.
        let warm_start = Instant::now();
        let mut warm_runs: u64 = 0;
        while warm_runs == 0 || warm_start.elapsed() < self.warmup {
            std::hint::black_box(f());
            warm_runs += 1;
        }
        let warm_elapsed = warm_start.elapsed().max(Duration::from_nanos(1));

        // Calibrate the per-sample iteration count from the warm-up
        // loop's aggregate rate: a scheduler hiccup is amortized over
        // hundreds of runs instead of skewing a single timed run (and
        // with it every sample).
        let per_run = (warm_elapsed.as_nanos() / u128::from(warm_runs)).max(1);
        let iters = (self.sample_budget.as_nanos() / per_run).clamp(1, u128::from(u32::MAX)) as u32;

        let samples = self.samples.max(1);
        let mut per_iter: Vec<Duration> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed() / iters
            })
            .collect();
        per_iter.sort_unstable();
        Measurement {
            name: name.to_string(),
            median: median_of(&per_iter),
            min: per_iter[0],
            max: per_iter[per_iter.len() - 1],
            samples,
            iters,
        }
    }
}

/// Median of an already-sorted, non-empty slice; even lengths average
/// the two middle elements rather than picking the upper one.
fn median_of(sorted: &[Duration]) -> Duration {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Renders a duration with an SI unit chosen for 3–4 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1_500)), "1.50 us");
        assert_eq!(fmt_duration(Duration::from_micros(2_500)), "2.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(3_250)), "3.25 s");
    }

    #[test]
    fn bench_runs_the_closure_and_terminates() {
        // A fast plan so the unit test stays quick.
        let h = Harness {
            samples: 3,
            sample_budget: Duration::from_micros(200),
            warmup: Duration::from_micros(200),
        };
        let mut runs = 0u64;
        h.bench("timing/self_test", || {
            runs += 1;
            runs
        });
        assert!(runs > 3, "warm-up + samples actually executed ({runs} runs)");
    }

    #[test]
    fn even_sample_median_averages_the_middle_pair() {
        let sorted: Vec<Duration> = [10u64, 20, 30, 40].map(Duration::from_nanos).into();
        assert_eq!(median_of(&sorted), Duration::from_nanos(25));
        assert_eq!(median_of(&sorted[..3]), Duration::from_nanos(20));
        assert_eq!(median_of(&sorted[..1]), Duration::from_nanos(10));
    }

    #[test]
    fn measure_reports_the_sampling_plan() {
        let h = Harness {
            samples: 4,
            sample_budget: Duration::from_micros(200),
            warmup: Duration::from_micros(200),
        };
        let m = h.measure("timing/measure_test", || std::hint::black_box(1u64) + 1);
        assert_eq!(m.name, "timing/measure_test");
        assert_eq!(m.samples, 4);
        assert!(m.iters >= 1);
        assert!(m.min <= m.median && m.median <= m.max);
    }

    #[test]
    fn zero_warmup_still_calibrates() {
        let h = Harness {
            samples: 2,
            sample_budget: Duration::from_micros(50),
            warmup: Duration::ZERO,
        };
        let m = h.measure("timing/zero_warmup", || std::hint::black_box(0u64));
        assert!(m.iters >= 1);
    }
}
