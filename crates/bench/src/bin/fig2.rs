//! Regenerates Figure 2: exhaustive bit-flip sweeps over every Thumb
//! conditional branch under the AND / OR / AND-with-invalid-zero models.

fn main() {
    for panel in gd_bench::fig2::run_all() {
        gd_bench::fig2::print_panel(&panel);
    }
}
