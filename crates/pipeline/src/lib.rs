//! # gd-pipeline — a cycle-accounted 3-stage pipeline model
//!
//! Wraps the [`gd_emu`] architectural emulator with Cortex-M0-style cycle
//! costs, GPIO trigger detection, and per-instruction fault-injection
//! windows. This is the substrate the ChipWhisperer-style clock-glitch
//! simulator (paper §V) attacks: every glitch effect — corrupted in-flight
//! encodings, poisoned fetches, data-bus residue, skips, brown-outs — is
//! expressed as a [`StageFault`] applied to a cycle [`Window`].
//!
//! ```
//! use gd_emu::{Emu, Perms};
//! use gd_pipeline::Pipeline;
//! use gd_thumb::asm::assemble;
//!
//! let mut emu = Emu::new();
//! emu.mem.map("flash", 0, 0x1000, Perms::RX)?;
//! let prog = assemble("movs r0, #1\nldr r1, [pc, #0]\nbkpt #0\n.word 5\n", 0)?;
//! emu.mem.load(0, &prog.code)?;
//! emu.set_pc(0);
//! let mut pipe = Pipeline::new(emu);
//! pipe.run(100);
//! assert_eq!(pipe.cycle(), 4); // movs(1) + ldr(2) + bkpt(1)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod pipeline;
mod timing;

pub use pipeline::{Pipeline, RunEnd, StageFault, Window, FETCH_DEPTH, NVM_RANGE, TRIGGER_ADDR};
pub use timing::Timing;
