//! Regenerates Table V: firmware size overhead (bytes) per defense.
//! `--check` diffs the output against `results/table5.txt`.

use std::process::ExitCode;

fn main() -> ExitCode {
    gd_bench::selfcheck::main("table5.txt", &[], || {
        let rows = gd_bench::overhead::table5();
        gd_bench::overhead::print_table5(&rows);
    })
}
