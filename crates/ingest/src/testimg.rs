//! The deterministic demo firmware: a hand-assembled third-party-style
//! image exercising every ingestion feature — vector table, Thumb-2 wide
//! encodings (`MOVW`/`MOVT`, `B.W`, `B<cond>.W`, `LDR.W`-class pool
//! reference, `STR.W`), a narrow/wide mix, a literal pool, and an
//! *impossible* compromise path that only glitched control flow reaches.
//!
//! The builder is byte-deterministic; `testdata/ingest_demo.bin` is its
//! committed output and a test pins the two identical, so the blob in
//! git is self-verifying rather than opaque.

use gd_backend::layout::{SRAM_BASE, STACK_TOP};
use gd_thumb::{Cond, Encoding, Instr, Reg};

/// Load address of the demo image (the standard flash base).
pub const DEMO_BASE: u32 = 0x0800_0000;

/// Initial stack pointer in the demo's vector table.
pub const DEMO_SP: u32 = STACK_TOP;

/// Entry point (the reset handler, after the two-word vector table).
pub const DEMO_ENTRY: u32 = DEMO_BASE + 8;

/// The store only the impossible path performs: `(address, value)` — the
/// compromise oracle a divergence campaign watches for.
pub const DEMO_WATCH: (u32, u32) = (SRAM_BASE + 4, 0xC0DE);

/// Final `r0` of the unfaulted run (reported at the closing `bkpt #0`).
pub const DEMO_MARKER: u32 = 0x42;

fn emit(code: &mut Vec<u8>, instr: Instr) {
    match instr.try_encode().unwrap_or_else(|e| panic!("demo instr {instr}: {e}")) {
        Encoding::Half(hw) => code.extend_from_slice(&hw.to_le_bytes()),
        Encoding::Pair(hw1, hw2) => {
            code.extend_from_slice(&hw1.to_le_bytes());
            code.extend_from_slice(&hw2.to_le_bytes());
        }
    }
}

/// Builds the demo image. Layout (offsets from [`DEMO_BASE`]):
///
/// ```text
/// 0x00  vector table: initial SP, reset | 1
/// 0x08  reset: movw/movt r0 = 0x56781234 ; ldr r1, =0x56781234
/// 0x12         bl check ; cmp r2, #1 ; beq good
/// 0x1a  bad:   movw r3, #0xC0DE ; r4 = SRAM ; str.w r3, [r4, #4]
/// 0x28  good:  movs r0, #0x42 ; bkpt #0
/// 0x2c  check: b.w .+0 ; cmp r0, r1 ; bne.w noteq
///              movs r2, #1 ; bx lr
/// 0x3a  noteq: movs r2, #0 ; bx lr ; nop (pool alignment)
/// 0x40  pool:  .word 0x56781234
/// ```
///
/// The unfaulted run always takes `good` (the loaded literal equals the
/// constructed constant), so the `bad` store to [`DEMO_WATCH`] is
/// unreachable without a fault.
pub fn demo_bin() -> Vec<u8> {
    let mut image = Vec::new();
    image.extend_from_slice(&DEMO_SP.to_le_bytes());
    image.extend_from_slice(&(DEMO_ENTRY | 1).to_le_bytes());
    let code = &mut image;
    // reset (0x08):
    emit(code, Instr::MovW { rd: Reg::R0, imm16: 0x1234 });
    emit(code, Instr::MovT { rd: Reg::R0, imm16: 0x5678 });
    emit(code, Instr::LdrLit { rt: Reg::R1, imm8: 11 }); // 0x10 → pool @ 0x40
    emit(code, Instr::Bl { offset: 22 }); // 0x12 → check @ 0x2c
    emit(code, Instr::CmpImm { rn: Reg::R2, imm8: 1 });
    emit(code, Instr::BCond { cond: Cond::Eq, offset: 12 }); // 0x18 → good @ 0x28
                                                             // bad (0x1a) — the impossible path:
    emit(code, Instr::MovW { rd: Reg::R3, imm16: 0xC0DE });
    emit(code, Instr::MovImm { rd: Reg::R4, imm8: 0 });
    emit(code, Instr::MovT { rd: Reg::R4, imm16: (SRAM_BASE >> 16) as u16 });
    emit(code, Instr::StrW { rt: Reg::R3, rn: Reg::R4, imm12: 4 });
    // good (0x28):
    emit(code, Instr::MovImm { rd: Reg::R0, imm8: DEMO_MARKER as u8 });
    emit(code, Instr::Bkpt { imm8: 0 });
    // check (0x2c):
    emit(code, Instr::BW { offset: 0 }); // wide branch to the next instr
    emit(code, Instr::Alu { op: gd_thumb::AluOp::Cmp, rdn: Reg::R0, rm: Reg::R1 });
    emit(code, Instr::BCondW { cond: Cond::Ne, offset: 4 }); // 0x32 → noteq @ 0x3a
    emit(code, Instr::MovImm { rd: Reg::R2, imm8: 1 });
    emit(code, Instr::Bx { rm: Reg::LR });
    // noteq (0x3a):
    emit(code, Instr::MovImm { rd: Reg::R2, imm8: 0 });
    emit(code, Instr::Bx { rm: Reg::LR });
    emit(code, Instr::Hint { hint: gd_thumb::Hint::Nop }); // align the pool
                                                           // pool (0x40):
    assert_eq!(image.len(), 0x40, "demo layout drifted");
    image.extend_from_slice(&0x5678_1234u32.to_le_bytes());
    image
}

/// Wraps [`demo_bin`] in a minimal ELF32 executable: one `PT_LOAD`
/// segment at [`DEMO_BASE`], `e_entry` at the reset handler, and a
/// `SHT_SYMTAB` naming `reset` and `check` as `STT_FUNC` symbols (Thumb
/// bit set, as toolchains emit them).
pub fn demo_elf() -> Vec<u8> {
    let bin = demo_bin();
    build_elf(
        &bin,
        DEMO_BASE,
        DEMO_ENTRY | 1,
        &[("reset", DEMO_ENTRY | 1), ("check", (DEMO_BASE + 0x2C) | 1)],
    )
}

/// Assembles a little-endian ARM ELF32 executable around `segment`
/// loaded at `vaddr`, with `funcs` as `STT_FUNC` symbols. Exposed so
/// tests can build malformed variants from a valid baseline.
pub fn build_elf(segment: &[u8], vaddr: u32, entry: u32, funcs: &[(&str, u32)]) -> Vec<u8> {
    const EHSIZE: u32 = 52;
    const PHSIZE: u32 = 32;
    const SHSIZE: u32 = 40;
    let phoff = EHSIZE;
    let dataoff = EHSIZE + PHSIZE;
    // String table: \0 then each name \0.
    let mut strtab = vec![0u8];
    let mut name_offs = Vec::new();
    for (name, _) in funcs {
        name_offs.push(strtab.len() as u32);
        strtab.extend_from_slice(name.as_bytes());
        strtab.push(0);
    }
    // Symbol table: null symbol then one STT_FUNC per entry.
    let mut symtab = vec![0u8; 16];
    for ((_, addr), noff) in funcs.iter().zip(&name_offs) {
        symtab.extend_from_slice(&noff.to_le_bytes());
        symtab.extend_from_slice(&addr.to_le_bytes());
        symtab.extend_from_slice(&0u32.to_le_bytes()); // st_size
        symtab.push(0x02); // st_info: STB_LOCAL | STT_FUNC
        symtab.push(0); // st_other
        symtab.extend_from_slice(&1u16.to_le_bytes()); // st_shndx
    }
    let symoff = dataoff + segment.len() as u32;
    let stroff = symoff + symtab.len() as u32;
    let shoff = stroff + strtab.len() as u32;

    let mut elf = Vec::new();
    // ELF header.
    elf.extend_from_slice(&[0x7F, b'E', b'L', b'F', 1, 1, 1, 0]); // ident
    elf.extend_from_slice(&[0; 8]); // ident padding
    elf.extend_from_slice(&2u16.to_le_bytes()); // e_type: EXEC
    elf.extend_from_slice(&40u16.to_le_bytes()); // e_machine: EM_ARM
    elf.extend_from_slice(&1u32.to_le_bytes()); // e_version
    elf.extend_from_slice(&entry.to_le_bytes()); // e_entry
    elf.extend_from_slice(&phoff.to_le_bytes()); // e_phoff
    elf.extend_from_slice(&shoff.to_le_bytes()); // e_shoff
    elf.extend_from_slice(&0u32.to_le_bytes()); // e_flags
    elf.extend_from_slice(&(EHSIZE as u16).to_le_bytes()); // e_ehsize
    elf.extend_from_slice(&(PHSIZE as u16).to_le_bytes()); // e_phentsize
    elf.extend_from_slice(&1u16.to_le_bytes()); // e_phnum
    elf.extend_from_slice(&(SHSIZE as u16).to_le_bytes()); // e_shentsize
    elf.extend_from_slice(&3u16.to_le_bytes()); // e_shnum
    elf.extend_from_slice(&0u16.to_le_bytes()); // e_shstrndx (unused)
    assert_eq!(elf.len(), EHSIZE as usize);
    // Program header: one PT_LOAD.
    elf.extend_from_slice(&1u32.to_le_bytes()); // p_type: PT_LOAD
    elf.extend_from_slice(&dataoff.to_le_bytes()); // p_offset
    elf.extend_from_slice(&vaddr.to_le_bytes()); // p_vaddr
    elf.extend_from_slice(&vaddr.to_le_bytes()); // p_paddr
    elf.extend_from_slice(&(segment.len() as u32).to_le_bytes()); // p_filesz
    elf.extend_from_slice(&(segment.len() as u32).to_le_bytes()); // p_memsz
    elf.extend_from_slice(&5u32.to_le_bytes()); // p_flags: R+X
    elf.extend_from_slice(&4u32.to_le_bytes()); // p_align
                                                // Segment data, then symtab + strtab bodies.
    elf.extend_from_slice(segment);
    elf.extend_from_slice(&symtab);
    elf.extend_from_slice(&strtab);
    // Section headers: null, .symtab, .strtab.
    assert_eq!(elf.len(), shoff as usize);
    elf.extend_from_slice(&[0u8; SHSIZE as usize]);
    let sh = |elf: &mut Vec<u8>, sh_type: u32, off: u32, size: u32, link: u32, entsize: u32| {
        elf.extend_from_slice(&0u32.to_le_bytes()); // sh_name
        elf.extend_from_slice(&sh_type.to_le_bytes());
        elf.extend_from_slice(&0u32.to_le_bytes()); // sh_flags
        elf.extend_from_slice(&0u32.to_le_bytes()); // sh_addr
        elf.extend_from_slice(&off.to_le_bytes());
        elf.extend_from_slice(&size.to_le_bytes());
        elf.extend_from_slice(&link.to_le_bytes());
        elf.extend_from_slice(&0u32.to_le_bytes()); // sh_info
        elf.extend_from_slice(&0u32.to_le_bytes()); // sh_addralign
        elf.extend_from_slice(&entsize.to_le_bytes());
    };
    sh(&mut elf, 2, symoff, symtab.len() as u32, 2, 16); // .symtab → strtab idx 2
    sh(&mut elf, 3, stroff, strtab.len() as u32, 0, 0); // .strtab
    elf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_is_deterministic_and_well_formed() {
        let a = demo_bin();
        assert_eq!(a, demo_bin());
        assert_eq!(a.len(), 0x44);
        // The literal pool word is the constant movw/movt builds.
        assert_eq!(&a[0x40..], &0x5678_1234u32.to_le_bytes());
    }

    #[test]
    fn committed_blob_matches_the_builder() {
        let committed =
            std::fs::read(concat!(env!("CARGO_MANIFEST_DIR"), "/../../testdata/ingest_demo.bin"))
                .expect("testdata/ingest_demo.bin is committed");
        assert_eq!(committed, demo_bin(), "committed demo blob drifted from the builder");
    }
}
