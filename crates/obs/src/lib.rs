//! # gd-obs — dependency-free observability for the glitching workspace
//!
//! ARMORY-style exhaustive fault campaigns live or die on visibility
//! into per-worker throughput, and the workspace must stay offline-
//! buildable — so this crate implements the whole observability stack
//! from scratch on `std`:
//!
//! * **Metrics** ([`metrics`]): a process-global [`Registry`] of atomic
//!   [`Counter`]s, [`Gauge`]s, and log2-bucket [`Histogram`]s, cheap
//!   enough for hot loops (one relaxed atomic op per update; handles
//!   are `Arc`s cached in `OnceLock` statics by instrumented crates).
//! * **Prometheus text format** ([`prom`]): [`Registry::render_prometheus`]
//!   serializes every family in the standard exposition format; the
//!   campaign service serves it on `GET /metrics`.
//! * **Structured logging** ([`log`]): leveled `key=value` lines to
//!   stderr, filtered by the `GD_LOG` environment variable
//!   (`GD_LOG=debug`, `GD_LOG=warn,gd_exec=trace`, `GD_LOG=off`; the
//!   default is `info`). Stdout is never touched — the experiment
//!   binaries' golden `--check` diffs compare stdout bytes.
//! * **Timing** ([`Timer`]): a monotonic stopwatch for feeding duration
//!   histograms.
//!
//! ```
//! use gd_obs::Timer;
//!
//! let requests = gd_obs::counter("doc_requests_total", "requests", &[("route", "/x")]);
//! requests.inc();
//! let latency = gd_obs::histogram("doc_latency_ms", "request latency (ms)", &[]);
//! let timer = Timer::start();
//! latency.observe(timer.elapsed_ms());
//! gd_obs::info!("doc", "served", route = "/x", count = requests.get());
//! assert!(gd_obs::global().render_prometheus().contains("doc_requests_total"));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod log;
pub mod metrics;
pub mod prom;

pub use log::Level;
pub use metrics::{counter, gauge, global, histogram, Counter, Gauge, Histogram, Registry};

use std::time::Instant;

/// A monotonic stopwatch: construct with [`Timer::start`], read elapsed
/// time in the unit a histogram wants.
#[derive(Debug, Clone, Copy)]
pub struct Timer(Instant);

impl Timer {
    /// Starts the clock.
    pub fn start() -> Timer {
        Timer(Instant::now())
    }

    /// Elapsed whole milliseconds since [`Timer::start`] (saturating).
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Elapsed whole microseconds since [`Timer::start`] (saturating).
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotonic_and_unit_consistent() {
        let t = Timer::start();
        let a = t.elapsed_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = t.elapsed_us();
        assert!(b >= a + 1_000, "2 ms sleep advances at least 1000 us: {a} -> {b}");
        assert!(t.elapsed_ms() <= t.elapsed_us(), "ms never exceeds us");
    }
}
